"""Ablation benches for the design choices DESIGN.md calls out.

Not paper tables — these sweep the knobs the paper fixes (queue depth,
check latency, firmware variant) and the end-to-end co-simulation, so a
downstream user can see where each design point sits.
"""

import pytest

from repro.attacks.programs import benign_program
from repro.bench_catalog.catalog import benchmark as catalog_benchmark
from repro.core.config import TitanCfiConfig
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc
from repro.trace.generator import uniform_trace
from repro.trace.model import simulate_trace


@pytest.mark.table("ablation")
def test_queue_depth_sweep(benchmark):
    """Slowdown vs queue depth on dhrystone's arrival profile."""
    entry = catalog_benchmark("dhrystone")
    arrivals = uniform_trace(entry.cycles, entry.cf_count)

    def sweep():
        return {
            depth: simulate_trace(arrivals, entry.cycles, 267, queue_depth=depth)
            .slowdown_percent
            for depth in (1, 2, 4, 8, 16, 32, 64)
        }

    results = benchmark(sweep)
    depths = sorted(results)
    for shallow, deep in zip(depths, depths[1:]):
        assert results[deep] <= results[shallow] + 1e-9
    print()
    print("queue-depth sweep (dhrystone, IRQ):",
          {d: round(v) for d, v in results.items()})


@pytest.mark.table("ablation")
def test_latency_sweep(benchmark):
    """Slowdown vs check latency: where the saturation knee sits."""
    entry = catalog_benchmark("picojpeg")
    arrivals = uniform_trace(entry.cycles, entry.cf_count)

    def sweep():
        return {
            latency: simulate_trace(arrivals, entry.cycles, latency, queue_depth=8)
            .slowdown_percent
            for latency in (16, 32, 64, 128, 232, 267, 320)
        }

    results = benchmark(sweep)
    # The mean CF gap of picojpeg is ~232 cycles: below it, ~zero overhead;
    # above it, overhead appears.
    assert results[128] < 1
    assert results[320] > 5
    print()
    print("latency sweep (picojpeg):", {l: round(v, 1) for l, v in results.items()})


@pytest.mark.table("ablation")
@pytest.mark.parametrize("variant,fabric", [
    ("irq", "standard"),
    ("polling", "standard"),
    ("polling", "optimized"),
])
def test_end_to_end_cosimulation(benchmark, variant, fabric):
    """Full-system co-simulation cost per firmware configuration."""
    def run():
        soc = build_soc(cfi_config=TitanCfiConfig(queue_depth=8), fabric=fabric)
        firmware = shadow_stack_firmware(
            "irq" if variant == "irq" else "polling",
            FirmwareLayout(soc.addresses),
        )
        soc.load_firmware(firmware.data)
        soc.load_host_program(benign_program(soc.addresses))
        return SystemSimulator(soc).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.detected
    assert report.cfi["checks_completed"] == report.cfi["selected"]


@pytest.mark.table("ablation")
def test_dual_commit_port_conflict_rate(benchmark):
    """How often two CF ops would retire in the same cycle (the §IV-B2
    'rare event' argument), measured on a synthetic dual-issue stream."""
    import random

    from repro.core.commit_log import CommitLog
    from repro.core.queue import CfiQueue, QueueController
    from repro.isa.encode import encode_j
    from repro.isa import opcodes as op

    def run():
        rng = random.Random(7)
        queue = CfiQueue(8)
        controller = QueueController(queue)
        log = CommitLog(pc=0x1000, encoding=encode_j(op.OP_JAL, 1, 64),
                        next_address=0x1004, target=0x1040)
        cycles = 20_000
        cf_density = 0.05  # 5% of slots carry a CF op
        for _ in range(cycles):
            slots = [log if rng.random() < cf_density else None for _ in range(2)]
            controller.arbitrate(slots)
            if not queue.empty:
                queue.pop()  # instant checker
        return controller.stats

    stats = benchmark(run)
    conflict_rate = stats.conflict_stalls / 20_000
    assert conflict_rate < 0.01  # indeed rare at realistic densities
    print()
    print(f"dual-CF conflict rate: {100 * conflict_rate:.2f}% of cycles")
