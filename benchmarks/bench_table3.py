"""Regenerates Table III: 32-benchmark slowdowns at queue depth 8."""

import pytest

from repro.bench_catalog.calibration import calibrate_all
from repro.eval import table3


@pytest.fixture(scope="module")
def calibration():
    return calibrate_all()


@pytest.mark.table("III")
def test_table3_regeneration(benchmark, calibration):
    rows = benchmark.pedantic(
        lambda: table3.compute(latencies="paper", calibration=calibration),
        rounds=1, iterations=1,
    )
    by_name = {row["benchmark"]: row for row in rows}
    assert len(rows) == 32
    # Paper headline: most kernels show no or <10% overhead.
    low = sum(1 for row in rows if row["model"]["irq"] < 10)
    assert low >= 16
    # Worst cases in the right order and magnitude.
    assert by_name["mm"]["model"]["irq"] == pytest.approx(4311, rel=0.05)
    assert by_name["dhrystone"]["model"]["irq"] == pytest.approx(1215, rel=0.05)
    print()
    print(table3.render(latencies="paper"))


@pytest.mark.table("III")
def test_calibration_cost(benchmark):
    """Cost of the one-off burst-parameter calibration."""
    calibrated = benchmark.pedantic(calibrate_all, rounds=1, iterations=1)
    assert len(calibrated) == 32


@pytest.mark.table("III")
def test_trace_model_throughput(benchmark, calibration):
    """Model replay cost on the heaviest trace (mm: 233k events)."""
    from repro.trace.model import simulate_trace

    cal = calibration["mm"]
    arrivals = cal.arrivals()
    bench_entry = cal.benchmark
    result = benchmark(
        lambda: simulate_trace(arrivals, bench_entry.cycles, 267, queue_depth=8)
    )
    assert result.slowdown_percent > 4000
