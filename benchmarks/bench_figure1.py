"""Regenerates Figure 1: the verified architecture graph + DOT export."""

import pytest

from repro.eval import figure1


@pytest.mark.table("Fig.1")
def test_figure1_regeneration(benchmark):
    data = benchmark(figure1.compute)
    assert data["problems"] == []
    assert "digraph titancfi" in data["dot"]
    print()
    print(data["dot"])


@pytest.mark.table("Fig.1")
def test_architecture_verification(benchmark):
    graph = figure1.build_graph()
    problems = benchmark(lambda: figure1.verify(graph))
    assert problems == []
