"""Regenerates Table IV: hardware utilisation vs DExIE."""

import pytest

from repro.eval import table4


@pytest.mark.table("IV")
def test_table4_regeneration(benchmark):
    data = benchmark(table4.compute)
    host = data["host"]
    soc = data["soc"]
    # Paper headlines: <1% SoC overhead, <6% host overhead, less than DExIE.
    assert soc["overhead_percent"]["lut"] < 1.0
    assert host["overhead_percent"]["lut"] < 6.0
    dexie_delta = data["dexie"]["lut_with_cfi"] - data["dexie"]["lut_base"]
    assert host["delta"].luts < dexie_delta
    print()
    print(table4.render())


@pytest.mark.table("IV")
def test_queue_depth_area_ablation(benchmark):
    """DESIGN.md ablation: how the queue depth drives the register bill."""
    def sweep():
        return {
            depth: table4.compute(queue_depth=depth)["host"]["delta"].registers
            for depth in (1, 2, 4, 8, 16, 32)
        }

    registers = benchmark(sweep)
    depths = sorted(registers)
    for shallow, deep in zip(depths, depths[1:]):
        assert registers[deep] > registers[shallow]
    print()
    print("queue-depth register ablation:", {d: round(r) for d, r in registers.items()})
