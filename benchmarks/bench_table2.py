"""Regenerates Table II: depth-1 slowdown vs DExIE and FIXER."""

import pytest

from repro.eval import table2


@pytest.mark.table("II")
def test_table2_regeneration(benchmark):
    rows = benchmark(lambda: table2.compute(latencies="paper"))
    by_name = {row["benchmark"]: row for row in rows}
    # Shape checks straight from the paper's discussion:
    # TitanCFI beats DExIE on 3 of the 4 shared benchmarks...
    wins = sum(
        1 for name in ("aha-mont64", "edn", "matmult-int", "ud")
        if by_name[name]["model"]["irq"] < by_name[name]["dexie"]
    )
    assert wins >= 3
    # ...and dhrystone is the pathological outlier.
    assert by_name["dhrystone"]["model"]["irq"] > 1000
    print()
    print(table2.render(latencies="paper"))


@pytest.mark.table("II")
def test_table2_with_measured_latencies(benchmark):
    """Same table using latencies measured on this repo's Ibex model."""
    rows = benchmark.pedantic(
        lambda: table2.compute(latencies="measured"), rounds=1, iterations=1
    )
    by_name = {row["benchmark"]: row for row in rows}
    assert by_name["ud"]["model"]["irq"] == pytest.approx(43, abs=6)
    print()
    print(table2.render(latencies="measured"))
