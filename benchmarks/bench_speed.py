"""Simulator throughput benchmark (simulated cycles/sec, host instr/sec).

Measures the wall-clock speed of the two engines every experiment in
this reproduction runs on:

* **cosim** — full-platform co-simulation (CVA6 + CFI stage + Ibex)
  over a representative victim-program mix, the engine behind the
  attack runs, the ablations and Figure 1;
* **firmware** — the Ibex-only measured-latency path behind Table I
  (and therefore Table II's ``latencies="measured"`` mode).

Run standalone to print a report and optionally refresh the committed
snapshot::

    PYTHONPATH=src python benchmarks/bench_speed.py            # print
    PYTHONPATH=src python benchmarks/bench_speed.py --update   # + BENCH_speed.json
    PYTHONPATH=src python benchmarks/bench_speed.py --smoke    # CI: one quick pass

Under pytest the same workloads run through pytest-benchmark like the
table benches.  The committed ``BENCH_speed.json`` snapshot records the
trajectory across PRs; wall-clock numbers are machine-dependent, so the
snapshot also stores the *simulated* totals, which must stay identical
on any machine.
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

from repro.attacks.programs import (
    benign_program,
    deep_recursion_program,
    rop_program,
)
from repro.attacks.rop import run_attack_scenario
from repro.campaign.runner import run_campaign
from repro.campaign.spec import VICTIMS, smoke_matrix, synth_matrix
from repro.core.config import TitanCfiConfig
from repro.eval import table1
from repro.firmware.policies import CryptoReturnPolicy, ShadowStackPolicy
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.policyhost import mount_policy_host
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc
from repro.system.topology import Topology

SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_speed.json"

#: The co-simulated victim mix: (name, program builder, firmware variant).
COSIM_WORKLOADS = (
    ("benign", benign_program, "irq"),
    ("deep-recursion", deep_recursion_program, "irq"),
    ("rop", rop_program, "irq"),
    ("benign-polling", benign_program, "polling"),
)


def _build_soc(program_builder, fw_variant):
    soc = build_soc()
    firmware = shadow_stack_firmware(fw_variant, FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    soc.load_host_program(program_builder(soc.addresses))
    return soc


def run_cosim_mix(event_driven: bool = True, mode: str = None) -> dict:
    """One pass over the co-simulated workload mix.

    Returns simulated totals (cycles, instructions) so callers can
    compute throughput and assert machine-independent invariance.
    ``mode`` selects the engine explicitly (``"busy"``,
    ``"event-driven"``, ``"batched"``); the legacy ``event_driven``
    flag maps False → busy, True → the default engine (batched).
    """
    cycles = host_instructions = ibex_instructions = 0
    for _name, builder, fw_variant in COSIM_WORKLOADS:
        soc = _build_soc(builder, fw_variant)
        report = SystemSimulator(
            soc, event_driven=event_driven, mode=mode
        ).run()
        cycles += report.cycles
        host_instructions += report.host_instructions
        ibex_instructions += report.ibex_instructions
    return {
        "cycles": cycles,
        "host_instructions": host_instructions,
        "ibex_instructions": ibex_instructions,
    }


def run_cosim_mix_empty_faults(mode: str = None) -> dict:
    """The co-sim mix with the fault layer *attached but empty*.

    Every fault hook is live (controller wired into the log writer,
    mailbox and SoC) yet no event ever fires — totals must be identical
    to :func:`run_cosim_mix`, proving the fault-free path is
    cycle-exact with the fault subsystem compiled in.
    """
    from repro.faults import FaultPlan, attach_faults

    cycles = host_instructions = ibex_instructions = 0
    for _name, builder, fw_variant in COSIM_WORKLOADS:
        soc = _build_soc(builder, fw_variant)
        attach_faults(soc, FaultPlan(events=(), note="bench empty plan"))
        report = SystemSimulator(soc, mode=mode).run()
        cycles += report.cycles
        host_instructions += report.host_instructions
        ibex_instructions += report.ibex_instructions
    return {
        "cycles": cycles,
        "host_instructions": host_instructions,
        "ibex_instructions": ibex_instructions,
    }


def run_firmware_path() -> dict:
    """One pass of the Table I measured-latency path (Ibex ISS only)."""
    computed = table1.compute()
    return {"latencies": computed["derived"]["latencies"]}


#: Policy-host workload mix: (name, program builder, policy factory,
#: firmware variant whose calibrated timing model the host runs on).
POLICYHOST_WORKLOADS = (
    ("benign+shadow-stack", benign_program, ShadowStackPolicy, "irq"),
    ("deep-recursion+shadow-stack", deep_recursion_program,
     ShadowStackPolicy, "irq"),
    ("rop+crypto-return", rop_program, CryptoReturnPolicy, "irq"),
    ("benign+shadow-stack-polling", benign_program, ShadowStackPolicy,
     "polling"),
)


def run_policyhost_mix(mode: str = None) -> dict:
    """One pass of cosim runs with the policy host as mailbox agent.

    Simulated totals are machine-independent and must be identical in
    every engine (the host is a citizen of all three) — the ``--smoke``
    path asserts exactly that.
    """
    from repro.system.addresses import AddressMap

    addresses = AddressMap()
    cycles = host_instructions = checks = 0
    for _name, builder, policy_factory, variant in POLICYHOST_WORKLOADS:
        outcome = run_attack_scenario(
            builder(addresses),
            firmware_variant=variant,
            sim_mode=mode,
            policy_backend="host",
            policy=policy_factory(),
        )
        cycles += outcome.report.cycles
        host_instructions += outcome.report.host_instructions
        checks += outcome.report.cfi.get("checks_completed", 0)
    return {
        "cycles": cycles,
        "host_instructions": host_instructions,
        "checks": checks,
    }


#: Saturation sweep shape: hart counts and per-point seeds.  The attack
#: always runs on hart 0; every peer hart runs the chatty
#: ``deep-recursion`` victim so monitor load scales with N.
SATURATION_NS = (1, 2, 4, 8)
SATURATION_SEEDS = (1234, 2345, 3456, 4567, 5678)


def _build_multihart_soc(n: int, victims, seed: int, lossy: bool = False):
    topo = Topology(n_harts=n)
    config = TitanCfiConfig(raise_on_violation=False, lossy=lossy)
    soc = build_soc(cfi_config=config, topology=topo)
    for hart_id in range(n):
        amap = topo.address_map(hart_id, soc.addresses)
        program = VICTIMS[victims[hart_id]].builder(
            amap, random.Random(seed + hart_id)
        )
        soc.load_host_program(program, hart_id=hart_id)
    mount_policy_host(soc, ShadowStackPolicy())
    return soc


def run_multihart_mix(mode: str = None) -> dict:
    """A small multi-hart mix: N=2 attack+benign and a staggered N=4
    attack amid chatty peers, one shared monitor each.  Simulated
    totals must be identical in every engine — the ``--smoke`` path
    asserts exactly that.
    """
    cases = (
        (2, ("rop", "benign"), None),
        (4, ("rop", "deep-recursion", "deep-recursion", "deep-recursion"),
         [0, 700, 1400, 2100]),
    )
    cycles = host_instructions = checks = 0
    latencies = []
    for n, victims, delays in cases:
        soc = _build_multihart_soc(n, victims, 1234)
        report = SystemSimulator(soc, mode=mode, start_delays=delays).run()
        cycles += report.cycles
        host_instructions += report.host_instructions
        checks += report.cfi.get("checks_completed", 0)
        latencies.append(report.detection_latency)
    return {
        "cycles": cycles,
        "host_instructions": host_instructions,
        "checks": checks,
        "detection_latencies": latencies,
    }


def _percentile(sorted_values, q: float):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return None
    rank = max(1, -(-int(q * len(sorted_values) * 100) // 100))
    index = min(len(sorted_values) - 1, rank - 1)
    return sorted_values[index]


def run_saturation_point(n: int, seed: int, lossy: bool = False,
                         mode: str = None) -> dict:
    """One saturation run: rop attack on hart 0, N-1 deep-recursion
    peers hammering the shared monitor.  Returns simulated numbers
    only (machine-independent).  ``lossy=True`` swaps back-pressure
    stalls for drop-oldest queues (graceful degradation mode)."""
    victims = ("rop",) + ("deep-recursion",) * (n - 1)
    soc = _build_multihart_soc(n, victims, seed, lossy=lossy)
    report = SystemSimulator(soc, mode=mode).run()
    cfi = report.cfi
    check_latencies = []
    for stage in soc.cfi_stages:
        if stage is not None:
            check_latencies.extend(stage.writer.stats.check_latencies)
    return {
        "cycles": report.cycles,
        "detection_latency": report.detection_latency,
        "checks_completed": cfi.get("checks_completed", 0),
        "check_latencies": check_latencies,
        "queue_high_water": cfi.get("queue_high_water", 0),
        "full_stalls": cfi.get("full_stalls", 0),
        "dropped": cfi.get("dropped", 0),
    }


def run_saturation_sweep(ns=SATURATION_NS, seeds=SATURATION_SEEDS,
                         lossy: bool = False) -> list:
    """The saturation benchmark: sweep the hart count and record how
    detection latency and queue back-pressure respond as one monitor
    absorbs N harts' event streams.

    With ``lossy=True`` the same sweep runs in drop-oldest mode:
    back-pressure stalls collapse to ~0 and the pressure shows up in
    the drop counter instead (cores never stall, the monitor sheds
    load).  A shed event can carry the verdict, so lossy detection is
    best-effort — the sweep records how many runs still detected
    rather than asserting all of them do."""
    points = []
    for n in ns:
        latencies = []
        check_latencies = []
        cycles = checks = full_stalls = high_water = dropped = 0
        t0 = time.perf_counter()
        for seed in seeds:
            run = run_saturation_point(n, seed, lossy=lossy)
            if not lossy:
                assert run["detection_latency"] is not None, (n, seed)
                assert run["dropped"] == 0, (n, seed)
            if run["detection_latency"] is not None:
                latencies.append(run["detection_latency"])
            check_latencies.extend(run["check_latencies"])
            cycles += run["cycles"]
            checks += run["checks_completed"]
            full_stalls += run["full_stalls"]
            dropped += run["dropped"]
            high_water = max(high_water, run["queue_high_water"])
        seconds = time.perf_counter() - t0
        latencies.sort()
        check_latencies.sort()
        point = {
            "n_harts": n,
            "runs": len(seeds),
            "detection_latency_p50": _percentile(latencies, 0.50),
            "detection_latency_p90": _percentile(latencies, 0.90),
            "detection_latency_max": latencies[-1] if latencies else None,
            "check_latency_p50": _percentile(check_latencies, 0.50),
            "check_latency_p90": _percentile(check_latencies, 0.90),
            "check_latency_max": check_latencies[-1] if check_latencies else None,
            "checks_completed": checks,
            "queue_high_water": high_water,
            "full_stalls": full_stalls,
            "simulated_cycles": cycles,
            "seconds_per_sweep": round(seconds, 6),
            "cycles_per_sec": round(cycles / seconds),
        }
        if lossy:
            point["dropped"] = dropped
            point["detections"] = len(latencies)
        points.append(point)
    return points


def run_campaign_pass(sim_mode: str = None) -> dict:
    """One serial pass of the campaign smoke matrix (both backends).

    Runs in-process (``jobs=1``) so the numbers measure scenario
    execution itself, not worker-pool spawn cost; the simulated totals
    are machine-independent and must match any sharded run (and any
    ``sim_mode``).
    """
    payload = run_campaign(smoke_matrix(), jobs=1, sim_mode=sim_mode)
    return {
        "scenarios": payload["scenario_count"],
        "cycles": payload["timing"]["simulated_cycles"],
        "results": payload["scenarios"],
    }


def run_synth_pass(sim_mode: str = None) -> dict:
    """One serial pass of the full synth matrix (235 generated
    scenarios: generation + assembly are shard-cached, so the pass
    measures steady-state synthesis-campaign throughput).  Every
    scenario's expectation comes from the static oracle; the pass
    asserts all of them hold — a disagreement is a bug, not a number.
    """
    payload = run_campaign(synth_matrix(), jobs=1, sim_mode=sim_mode)
    missed = sum(
        not result["expectation_met"] for result in payload["scenarios"]
    )
    assert missed == 0, f"{missed} synth scenarios disagree with the oracle"
    return {
        "scenarios": payload["scenario_count"],
        "cycles": payload["timing"]["simulated_cycles"],
        "results": payload["scenarios"],
    }


def run_incremental_sweep() -> dict:
    """Cold vs warm store on the smoke matrix through the sweep service.

    Submits the smoke matrix twice against a fresh service root: the
    cold sweep executes every cell into the content-addressed store,
    the warm sweep must resolve 100 % from it (0 cells executed) and
    produce a byte-identical ``campaign.json``.  Wall-clock columns are
    machine-dependent; the hit/executed accounting and the byte
    identity are invariants the ``--smoke`` path asserts.
    """
    import tempfile

    from repro.service import SweepService

    with tempfile.TemporaryDirectory(prefix="bench-service-") as root:
        service = SweepService(root, code_version="bench")
        service.submit("smoke")
        t0 = time.perf_counter()
        (cold,) = service.serve_once()
        cold_seconds = time.perf_counter() - t0
        service.submit("smoke")
        t0 = time.perf_counter()
        (warm,) = service.serve_once()
        warm_seconds = time.perf_counter() - t0
        identical = (
            (service.job_dir("job-0001") / "campaign.json").read_bytes()
            == (service.job_dir("job-0002") / "campaign.json").read_bytes()
        )
    return {
        "matrix": "smoke",
        "cells": cold["cells"],
        "cold_executed": cold["executed"],
        "warm_executed": warm["executed"],
        "warm_hits": warm["hits"],
        "warm_hit_rate": round(warm["hits"] / warm["cells"], 4),
        "artifacts_identical": identical,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "cold_scenarios_per_sec": round(cold["cells"] / cold_seconds, 1),
        "warm_scenarios_per_sec": round(warm["cells"] / warm_seconds, 1),
        "warm_speedup": round(cold_seconds / warm_seconds, 1),
    }


def run_coverage_pass(iters: int = 60, seed: int = 3) -> dict:
    """Coverage-guided fuzz loop vs blind generation at DOUBLE the budget.

    Runs one bounded guided loop (``iters`` candidates, serial) and the
    uniform seed sweep with ``2 * iters`` candidates through the same
    measurement pipeline, then compares distinct coverage points and
    CPU seconds.  The point counts are functions of the simulation
    alone — machine-independent, identical on every run — so the
    guided > uniform margin is an invariant the ``--smoke`` path
    asserts; only the seconds columns may move.  Also measures the
    frontier-draw overhead: the per-candidate steering cost the loop
    pays on top of plain generation.
    """
    import tempfile

    from repro.coverage import CoverageCorpus, CoverageMap, FuzzConfig, fuzz
    from repro.coverage import uniform_baseline
    from repro.coverage.fuzz import (
        CORPUS_DIR,
        MAP_NAME,
        _draw_parent,
        candidate_seed,
    )

    with tempfile.TemporaryDirectory(prefix="bench-coverage-") as root:
        cpu0, t0 = time.process_time(), time.perf_counter()
        guided = fuzz(root, FuzzConfig(iterations=iters, seed=seed))
        guided_cpu = time.process_time() - cpu0
        guided_seconds = time.perf_counter() - t0
        # Frontier-draw overhead on the final state (what steering adds
        # per candidate beyond generate + simulate).
        coverage = CoverageMap.from_json(
            json.loads((Path(root) / MAP_NAME).read_text())
        )
        corpus = CoverageCorpus(Path(root) / CORPUS_DIR)
        draws = 256
        t0 = time.perf_counter()
        for index in range(draws):
            _draw_parent(candidate_seed(seed, index, salt="parent"),
                         coverage, corpus)
        draw_seconds = time.perf_counter() - t0
    cpu0, t0 = time.process_time(), time.perf_counter()
    uniform = uniform_baseline(iters * 2, seed=seed)
    uniform_cpu = time.process_time() - cpu0
    uniform_seconds = time.perf_counter() - t0
    return {
        "guided_iterations": iters,
        "uniform_iterations": iters * 2,
        "guided_points": guided["distinct_points"],
        "uniform_points": uniform["distinct_points"],
        "guided_corpus_size": guided["corpus_size"],
        "oracle_disagreements": (guided["oracle_disagreements"]
                                 + uniform["oracle_disagreements"]),
        "guided_seconds": round(guided_seconds, 6),
        "uniform_seconds": round(uniform_seconds, 6),
        "guided_cpu_seconds": round(guided_cpu, 6),
        "uniform_cpu_seconds": round(uniform_cpu, 6),
        "guided_points_per_cpu_sec": round(
            guided["distinct_points"] / guided_cpu, 1
        ),
        "uniform_points_per_cpu_sec": round(
            uniform["distinct_points"] / uniform_cpu, 1
        ),
        "frontier_draw_us": round(draw_seconds / draws * 1e6, 1),
    }


def _timed(fn, min_seconds: float = 0.3, min_rounds: int = 3):
    """Repeat ``fn`` until ``min_seconds`` of samples exist; return
    (best-round seconds, last result)."""
    rounds = []
    result = None
    while len(rounds) < min_rounds or sum(rounds) < min_seconds:
        t0 = time.perf_counter()
        result = fn()
        rounds.append(time.perf_counter() - t0)
    return min(rounds), result


def measure() -> dict:
    """Measure both engines; returns the snapshot payload."""
    # Warm every cache first (decode, assembly, page allocations, the
    # policy host's calibrated response models) so the numbers reflect
    # steady-state throughput, as table sweeps see it.
    run_cosim_mix()
    run_firmware_path()
    run_campaign_pass()
    run_policyhost_mix()
    run_synth_pass()

    cosim_seconds, cosim_totals = _timed(run_cosim_mix)
    firmware_seconds, _ = _timed(run_firmware_path)
    campaign_seconds, campaign_totals = _timed(run_campaign_pass)
    policyhost_seconds, policyhost_totals = _timed(run_policyhost_mix)
    synth_seconds, synth_totals = _timed(run_synth_pass)
    # Per-engine co-sim comparison (default above is the batched mode).
    busy_seconds, _ = _timed(lambda: run_cosim_mix(mode="busy"))
    event_seconds, _ = _timed(lambda: run_cosim_mix(mode="event-driven"))
    # The host instruction throughput counts both cores' retired
    # instructions: that is the work the interpreter actually performs.
    executed = cosim_totals["host_instructions"] + cosim_totals["ibex_instructions"]
    return {
        "cosim": {
            "workloads": [name for name, _, _ in COSIM_WORKLOADS],
            "seconds_per_pass": round(cosim_seconds, 6),
            "simulated_cycles": cosim_totals["cycles"],
            "simulated_instructions": executed,
            "cycles_per_sec": round(cosim_totals["cycles"] / cosim_seconds),
            "instructions_per_sec": round(executed / cosim_seconds),
        },
        "firmware": {
            "seconds_per_pass": round(firmware_seconds, 6),
        },
        "policyhost": {
            "workloads": [name for name, _, _, _ in POLICYHOST_WORKLOADS],
            "seconds_per_pass": round(policyhost_seconds, 6),
            "simulated_cycles": policyhost_totals["cycles"],
            "checks": policyhost_totals["checks"],
            "cycles_per_sec": round(
                policyhost_totals["cycles"] / policyhost_seconds
            ),
        },
        "campaign": {
            "matrix": "smoke",
            "scenarios": campaign_totals["scenarios"],
            "seconds_per_pass": round(campaign_seconds, 6),
            "simulated_cycles": campaign_totals["cycles"],
            "scenarios_per_sec": round(
                campaign_totals["scenarios"] / campaign_seconds, 1
            ),
            "cycles_per_sec": round(campaign_totals["cycles"] / campaign_seconds),
        },
        "synth": {
            "matrix": "synth",
            "scenarios": synth_totals["scenarios"],
            "seconds_per_pass": round(synth_seconds, 6),
            "simulated_cycles": synth_totals["cycles"],
            "scenarios_per_sec": round(
                synth_totals["scenarios"] / synth_seconds, 1
            ),
            "cycles_per_sec": round(synth_totals["cycles"] / synth_seconds),
        },
        # Incremental sweeps: smoke matrix through the sweep service,
        # cold (empty store) vs warm (100 % store hits).
        "incremental": run_incremental_sweep(),
        # Coverage-guided synthesis vs blind generation at double the
        # iteration budget (point counts are machine-independent).
        "coverage": run_coverage_pass(),
        # Saturation: one RoT monitor absorbing N harts' event streams.
        # Simulated numbers (latencies, stalls, high-water) are
        # machine-independent; only the seconds columns may move.
        "saturation": run_saturation_sweep(),
        # The same sweep with drop-oldest queues: stalls collapse to
        # ~0, drops and latency tails absorb the pressure instead.
        "saturation_lossy": run_saturation_sweep(lossy=True),
        # Trajectory of the three execution engines on the same mix —
        # the batched column is what the headline "cosim" section runs.
        "batched": {
            "cosim_seconds_busy": round(busy_seconds, 6),
            "cosim_seconds_event_driven": round(event_seconds, 6),
            "cosim_seconds_batched": round(cosim_seconds, 6),
            "speedup_vs_busy": round(busy_seconds / cosim_seconds, 2),
            "speedup_vs_event_driven": round(event_seconds / cosim_seconds, 2),
        },
    }


def render(payload: dict) -> str:
    cosim = payload["cosim"]
    lines = [
        "Simulator throughput (bench_speed)",
        f"  co-sim mix ({', '.join(cosim['workloads'])}):",
        f"    {cosim['simulated_cycles']} cycles / pass in "
        f"{cosim['seconds_per_pass'] * 1000:.1f} ms",
        f"    {cosim['cycles_per_sec']:,} simulated cycles/sec",
        f"    {cosim['instructions_per_sec']:,} simulated instructions/sec",
        "  firmware measured-latency path (Table I):",
        f"    {payload['firmware']['seconds_per_pass'] * 1000:.2f} ms / pass",
    ]
    policyhost = payload.get("policyhost")
    if policyhost:
        lines += [
            f"  policy-host mix ({', '.join(policyhost['workloads'])}):",
            f"    {policyhost['simulated_cycles']} cycles "
            f"({policyhost['checks']} checks) / pass in "
            f"{policyhost['seconds_per_pass'] * 1000:.1f} ms — "
            f"{policyhost['cycles_per_sec']:,} simulated cycles/sec",
        ]
    campaign = payload.get("campaign")
    if campaign:
        lines += [
            f"  campaign smoke matrix ({campaign['scenarios']} scenarios, serial):",
            f"    {campaign['seconds_per_pass'] * 1000:.1f} ms / pass, "
            f"{campaign['scenarios_per_sec']} scenarios/sec",
            f"    {campaign['cycles_per_sec']:,} simulated cycles/sec",
        ]
    synth = payload.get("synth")
    if synth:
        lines += [
            f"  synth matrix ({synth['scenarios']} generated scenarios, serial):",
            f"    {synth['seconds_per_pass'] * 1000:.1f} ms / pass, "
            f"{synth['scenarios_per_sec']} scenarios/sec "
            f"(oracle-checked), {synth['cycles_per_sec']:,} simulated cycles/sec",
        ]
    incremental = payload.get("incremental")
    if incremental:
        lines += [
            f"  incremental sweep (service store, {incremental['cells']} "
            "smoke cells):",
            f"    cold: {incremental['cold_seconds'] * 1000:.1f} ms "
            f"({incremental['cold_scenarios_per_sec']} scenarios/sec, "
            f"{incremental['cold_executed']} executed)",
            f"    warm: {incremental['warm_seconds'] * 1000:.1f} ms "
            f"({incremental['warm_scenarios_per_sec']} scenarios/sec, "
            f"hit rate {incremental['warm_hit_rate']:.0%}, "
            f"{incremental['warm_speedup']}x) — artifacts "
            + ("byte-identical" if incremental["artifacts_identical"]
               else "DIVERGED"),
        ]
    coverage = payload.get("coverage")
    if coverage:
        lines += [
            f"  coverage-guided synthesis (guided "
            f"{coverage['guided_iterations']} iters vs uniform "
            f"{coverage['uniform_iterations']}):",
            f"    guided:  {coverage['guided_points']} distinct points in "
            f"{coverage['guided_cpu_seconds'] * 1000:.1f} ms CPU "
            f"({coverage['guided_points_per_cpu_sec']} points/cpu-sec, "
            f"corpus {coverage['guided_corpus_size']})",
            f"    uniform: {coverage['uniform_points']} distinct points in "
            f"{coverage['uniform_cpu_seconds'] * 1000:.1f} ms CPU "
            f"({coverage['uniform_points_per_cpu_sec']} points/cpu-sec) "
            "at 2x the budget",
            f"    frontier draw: {coverage['frontier_draw_us']} us/draw, "
            f"oracle disagreements: {coverage['oracle_disagreements']}",
        ]
    saturation = payload.get("saturation")
    if saturation:
        lines += [
            "  saturation (rop on hart 0, N-1 deep-recursion peers, "
            "one shared monitor):",
            "    N  det-lat p50/p90/max  check-lat p50/p90/max  "
            "queue-hw  full-stalls  cycles/sec",
        ]
        for point in saturation:
            lines.append(
                f"    {point['n_harts']}  "
                f"{point['detection_latency_p50']}/"
                f"{point['detection_latency_p90']}/"
                f"{point['detection_latency_max']:<12} "
                f"{point['check_latency_p50']}/"
                f"{point['check_latency_p90']}/"
                f"{point['check_latency_max']:<12} "
                f"{point['queue_high_water']:<9} "
                f"{point['full_stalls']:<11} "
                f"{point['cycles_per_sec']:,}"
            )
    lossy = payload.get("saturation_lossy")
    if lossy:
        lines += [
            "  saturation, lossy queues (drop-oldest, cores never stall):",
            "    N  det-lat p50/p90  detections  dropped  "
            "queue-hw  full-stalls  cycles/sec",
        ]
        for point in lossy:
            lines.append(
                f"    {point['n_harts']}  "
                f"{point['detection_latency_p50']}/"
                f"{point['detection_latency_p90']:<12} "
                f"{point['detections']}/{point['runs']:<7} "
                f"{point['dropped']:<8} "
                f"{point['queue_high_water']:<9} "
                f"{point['full_stalls']:<11} "
                f"{point['cycles_per_sec']:,}"
            )
    batched = payload.get("batched")
    if batched:
        lines += [
            "  execution engines (co-sim mix, ms/pass): "
            f"busy {batched['cosim_seconds_busy'] * 1000:.1f}, "
            f"event-driven {batched['cosim_seconds_event_driven'] * 1000:.1f}, "
            f"batched {batched['cosim_seconds_batched'] * 1000:.1f} "
            f"({batched['speedup_vs_busy']}x vs busy)",
        ]
    return "\n".join(lines)


# -- pytest-benchmark entry points -------------------------------------------------


def test_cosim_mix_throughput(benchmark):
    run_cosim_mix()  # warm caches
    totals = benchmark(run_cosim_mix)
    assert totals["cycles"] > 0


def test_firmware_path_throughput(benchmark):
    run_firmware_path()
    benchmark(run_firmware_path)


def test_event_driven_totals_match_busy_loop():
    """No fast path may change a single simulated number."""
    busy = run_cosim_mix(mode="busy")
    assert run_cosim_mix(mode="event-driven") == busy
    assert run_cosim_mix(mode="batched") == busy


def test_policyhost_totals_match_across_engines():
    """The policy host must be cycle-exact in every engine too."""
    busy = run_policyhost_mix(mode="busy")
    assert busy["cycles"] > 0 and busy["checks"] > 0
    assert run_policyhost_mix(mode="event-driven") == busy
    assert run_policyhost_mix(mode="batched") == busy


def test_multihart_totals_match_across_engines():
    """One shared monitor over N harts must be cycle-exact everywhere."""
    busy = run_multihart_mix(mode="busy")
    assert busy["cycles"] > 0 and busy["checks"] > 0
    assert run_multihart_mix(mode="event-driven") == busy
    assert run_multihart_mix(mode="batched") == busy


def test_campaign_throughput(benchmark):
    run_campaign_pass()  # warm caches
    totals = benchmark.pedantic(run_campaign_pass, rounds=1, iterations=1)
    assert totals["scenarios"] > 0 and totals["cycles"] > 0


# -- standalone CLI -----------------------------------------------------------------


def main(argv) -> int:
    if "--smoke" in argv:
        # CI smoke: one pass of each engine, assert only invariants that
        # hold on any machine.
        totals = run_cosim_mix()  # default engine (batched)
        assert totals["cycles"] > 0 and totals["host_instructions"] > 0
        assert run_cosim_mix(mode="busy") == totals
        assert run_cosim_mix(mode="event-driven") == totals
        # Fault-layer invariance: with every fault hook attached but no
        # event armed, not a single simulated number may move.
        assert run_cosim_mix_empty_faults() == totals
        run_firmware_path()
        # Policy-host cross-engine invariance: any Python policy as a
        # mailbox agent must not move a single simulated cycle between
        # the three engines.
        phost = run_policyhost_mix()
        assert phost["cycles"] > 0 and phost["checks"] > 0
        assert run_policyhost_mix(mode="busy") == phost
        assert run_policyhost_mix(mode="event-driven") == phost
        # Multi-hart invariance: one monitor serving N harts (including
        # a staggered start) must not move a single simulated number
        # between the three engines.
        multi = run_multihart_mix()
        assert multi["cycles"] > 0 and multi["checks"] > 0
        assert multi["detection_latencies"][0] is not None
        assert run_multihart_mix(mode="busy") == multi
        assert run_multihart_mix(mode="event-driven") == multi
        # Lossy-queue invariance: while the queue never fills (N=1)
        # drop-oldest mode must be cycle-identical to blocking mode
        # with a zero drop counter — lossiness may only act at the
        # full-queue edge.  A saturated lossy run (N=2) must trade
        # every stall for drops and stay identical in every engine.
        strict_point = run_saturation_point(1, 1234)
        lossy_point = run_saturation_point(1, 1234, lossy=True)
        assert lossy_point == strict_point
        assert lossy_point["dropped"] == 0
        saturated = run_saturation_point(2, 1234, lossy=True)
        assert saturated["full_stalls"] == 0 and saturated["dropped"] > 0
        assert run_saturation_point(2, 1234, lossy=True,
                                    mode="busy") == saturated
        assert run_saturation_point(2, 1234, lossy=True,
                                    mode="event-driven") == saturated
        # Campaign-matrix invariance: the batched engine must not move a
        # single simulated cycle (or any per-scenario field) anywhere in
        # the smoke matrix versus the busy loop — a batching regression
        # fails CI here even if the co-sim mix happens not to hit it.
        campaign = run_campaign_pass()
        assert campaign["scenarios"] > 0 and campaign["cycles"] > 0
        campaign_busy = run_campaign_pass(sim_mode="busy")
        assert campaign["cycles"] == campaign_busy["cycles"]
        assert campaign["results"] == campaign_busy["results"]
        # Synth-matrix invariance: every generated scenario's verdict
        # matches the static oracle (asserted inside the pass) and no
        # simulated number moves between engines.
        synth = run_synth_pass()
        assert synth["scenarios"] >= 200 and synth["cycles"] > 0
        synth_busy = run_synth_pass(sim_mode="busy")
        assert synth["cycles"] == synth_busy["cycles"]
        assert synth["results"] == synth_busy["results"]
        # Incremental-sweep invariants: the warm service pass executes
        # nothing (100 % store hits) and reproduces the cold run's
        # campaign.json byte for byte.
        incremental = run_incremental_sweep()
        assert incremental["cold_executed"] == incremental["cells"]
        assert incremental["warm_executed"] == 0
        assert incremental["warm_hit_rate"] == 1.0
        assert incremental["artifacts_identical"]
        # Coverage-guided synthesis invariants: the point counts are
        # machine-independent, so the guided loop must beat blind
        # generation given DOUBLE the iteration budget, and every
        # simulated verdict must agree with the static oracle.
        coverage = run_coverage_pass()
        assert coverage["guided_points"] > coverage["uniform_points"], (
            f"guided loop ({coverage['guided_points']} points) failed to "
            f"dominate uniform generation at 2x budget "
            f"({coverage['uniform_points']} points)"
        )
        assert coverage["oracle_disagreements"] == 0
        assert coverage["guided_corpus_size"] > 0
        summary = {k: campaign[k] for k in ("scenarios", "cycles")}
        print("bench_speed smoke ok:", totals, summary,
              {"policyhost_cycles": phost["cycles"],
               "synth_scenarios": synth["scenarios"]})
        return 0
    payload = measure()
    print(render(payload))
    if "--update" in argv:
        SNAPSHOT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"snapshot written to {SNAPSHOT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
