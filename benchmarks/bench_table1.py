"""Regenerates Table I: firmware cost breakdown on the Ibex ISS."""

import pytest

from repro.eval import table1
from repro.eval.firmware_analysis import FirmwareAnalyzer, analyze_all, check_latency


@pytest.mark.table("I")
def test_table1_regeneration(benchmark):
    """Full Table I: all variants, calls and returns, printed report."""
    results = benchmark.pedantic(analyze_all, rounds=1, iterations=1)
    # Paper headline: IRQ check costs 258-276 cycles per CF operation.
    assert 230 <= results["irq"]["call"].total_cycles <= 290
    assert 240 <= results["irq"]["return"].total_cycles <= 300
    print()
    print(table1.render({"results": results, "derived": {
        "latencies": {v: check_latency(results, v) for v in results},
        "polling_saving_percent": 100.0 * (1 - check_latency(results, "polling")
                                           / check_latency(results, "irq")),
        "optimized_saving_percent": 100.0 * (1 - check_latency(results, "optimized")
                                             / check_latency(results, "irq")),
    }}))


@pytest.mark.table("I")
def test_single_irq_check_latency(benchmark):
    """Microbenchmark: one IRQ-variant call check end to end."""
    analyzer = FirmwareAnalyzer("irq")

    def one_check():
        return analyzer.measure("call").total_cycles

    cycles = benchmark(one_check)
    assert 230 <= cycles <= 290


@pytest.mark.table("I")
def test_single_polling_check_latency(benchmark):
    analyzer = FirmwareAnalyzer("polling")
    cycles = benchmark(lambda: analyzer.measure("call").total_cycles)
    assert 80 <= cycles <= 120
