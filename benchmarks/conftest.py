"""Benchmark-harness configuration.

Every ``bench_table*.py`` regenerates one table of the paper; the
pytest-benchmark timings measure the harness itself, while the printed
output (run with ``-s``) is the paper-versus-measured table.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table(name): marks which paper table a bench regenerates"
    )
