"""Full-system integration: real firmware on Ibex, real programs on CVA6.

These are the tests that prove §IV works end to end: the co-simulated
handshake (filter → queue → log writer → AXI → mailbox → doorbell →
PLIC → Ibex ISR → verdict → completion) on clean runs, attacks, and the
spill path.
"""

import pytest

from repro.attacks.programs import (
    CLEAN_MARKER,
    GADGET_MARKER,
    benign_program,
    deep_recursion_program,
    rop_program,
)
from repro.attacks.rop import run_attack_scenario
from repro.core.config import TitanCfiConfig
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.addresses import AddressMap
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc


@pytest.fixture(scope="module")
def addresses():
    return AddressMap()


def build_protected(variant="irq", queue_depth=8, blocking=False,
                    fabric="standard", layout=None):
    soc = build_soc(
        cfi_config=TitanCfiConfig(queue_depth=queue_depth, blocking=blocking),
        fabric=fabric,
    )
    fw_variant = "irq" if variant == "irq" else "polling"
    firmware = shadow_stack_firmware(
        fw_variant, layout or FirmwareLayout(soc.addresses)
    )
    soc.load_firmware(firmware.data)
    return soc


class TestCleanRuns:
    def test_benign_program_passes_irq_firmware(self, addresses):
        soc = build_protected("irq")
        soc.load_host_program(benign_program(soc.addresses))
        report = SystemSimulator(soc).run()
        assert not report.detected
        assert soc.cva6.regs.read(10) == CLEAN_MARKER
        assert report.cfi["checks_completed"] == report.cfi["selected"]
        assert report.cfi["checks_completed"] > 10

    def test_benign_program_passes_polling_firmware(self, addresses):
        soc = build_protected("polling")
        soc.load_host_program(benign_program(soc.addresses))
        report = SystemSimulator(soc).run()
        assert not report.detected
        assert soc.cva6.regs.read(10) == CLEAN_MARKER

    def test_polling_faster_than_irq(self, addresses):
        """The paper's headline optimisation: polling cuts check latency."""
        results = {}
        for variant in ("irq", "polling"):
            soc = build_protected(variant, queue_depth=1, blocking=True)
            soc.load_host_program(benign_program(soc.addresses))
            results[variant] = SystemSimulator(soc).run().cycles
        assert results["polling"] < results["irq"]

    def test_optimized_fabric_fastest(self, addresses):
        results = {}
        for name, fabric, variant in (
            ("polling", "standard", "polling"),
            ("optimized", "optimized", "polling"),
        ):
            soc = build_protected(variant, queue_depth=1, blocking=True,
                                  fabric=fabric)
            soc.load_host_program(benign_program(soc.addresses))
            results[name] = SystemSimulator(soc).run().cycles
        assert results["optimized"] < results["polling"]

    def test_unprotected_baseline_has_no_cfi_stats(self, addresses):
        soc = build_soc(with_cfi=False)
        soc.load_host_program(benign_program(soc.addresses))
        report = SystemSimulator(soc).run()
        assert report.cfi == {}
        assert soc.cva6.regs.read(10) == CLEAN_MARKER

    def test_protection_overhead_is_bounded(self, addresses):
        """Deep queue + sparse CF ops: overhead should be small."""
        baseline = build_soc(with_cfi=False)
        baseline.load_host_program(benign_program(baseline.addresses))
        base_cycles = SystemSimulator(baseline).run().cycles

        protected = build_protected("irq", queue_depth=8)
        protected.load_host_program(benign_program(protected.addresses))
        protected_cycles = SystemSimulator(protected).run().cycles
        assert protected_cycles >= base_cycles


class TestAttackDetection:
    def test_rop_detected_irq(self, addresses):
        outcome = run_attack_scenario(rop_program(addresses), "irq")
        assert outcome.detected
        assert outcome.violation.kind == "return"

    def test_rop_detected_polling(self, addresses):
        outcome = run_attack_scenario(rop_program(addresses), "polling")
        assert outcome.detected

    def test_benign_not_flagged(self, addresses):
        outcome = run_attack_scenario(benign_program(addresses), "irq")
        assert not outcome.detected

    def test_async_detection_lets_gadget_start(self, addresses):
        """Queue depth 8: detection is asynchronous; the gadget's side
        effects are visible by the time the verdict lands."""
        outcome = run_attack_scenario(rop_program(addresses), "irq",
                                      queue_depth=8, blocking=False)
        assert outcome.detected
        assert outcome.gadget_executed

    def test_blocking_mode_stops_gadget(self, addresses):
        """Depth-1 blocking (Table II config): the violating return
        cannot be outrun — the gadget never executes."""
        outcome = run_attack_scenario(rop_program(addresses), "irq",
                                      queue_depth=1, blocking=True)
        assert outcome.detected
        assert not outcome.gadget_executed


class TestSpillPath:
    def test_deep_recursion_with_tiny_stack_spills_and_passes(self, addresses):
        """Recursion deeper than the resident stack must spill to DRAM
        (HMAC-authenticated) and still verify every return."""
        amap = AddressMap()
        layout = FirmwareLayout(amap, ss_capacity=16, spill_entries=8)
        soc = build_protected("irq", layout=layout)
        soc.load_host_program(deep_recursion_program(soc.addresses, depth=40))
        report = SystemSimulator(soc).run(max_cycles=20_000_000)
        assert not report.detected
        assert soc.cva6.regs.read(10) == CLEAN_MARKER
        assert soc.rot.hmac.operations >= 2  # spill + restore MACs

    def test_shallow_recursion_no_spill(self, addresses):
        soc = build_protected("irq")
        soc.load_host_program(deep_recursion_program(soc.addresses, depth=8))
        report = SystemSimulator(soc).run()
        assert not report.detected
        assert soc.rot.hmac.operations == 0


class TestMailboxProtection:
    def test_rogue_master_cannot_touch_mailbox(self, addresses):
        """§VI: PMP-style guard faults any non-authorised master."""
        from repro.errors import AccessFault

        soc = build_soc()
        with pytest.raises(AccessFault, match="denied"):
            soc.axi.write("accelerator", soc.addresses.cfi_mailbox_base, b"\x01")
        assert soc.pmp.faults == 1

    def test_cfi_stage_and_rot_allowed(self, addresses):
        soc = build_soc()
        soc.axi.read("cfi-stage", soc.addresses.cfi_mailbox_base, 8)
        soc.axi.read("opentitan", soc.addresses.cfi_mailbox_base, 8)
