"""Batched hart stepping must be invisible in every statistic.

The batched engine (``SystemSimulator(mode="batched")``) runs whole
instruction windows inside :meth:`repro.hart.core.Hart.run_n` between
synchronisation points.  This suite drives every registered campaign
victim under both firmware variants through all three execution modes
and asserts the resulting :class:`SimulationReport` is field-for-field
identical — cycles, stall counts, instret, CFI statistics (including
check latencies, queue high-water and detection latency).
"""

import random

import pytest

from repro.attacks.programs import benign_program
from repro.campaign.spec import VICTIMS
from repro.errors import SimulationError
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)


def _run(victim, mode, fw_variant="irq", seed=1234, **soc_kwargs):
    soc = build_soc(**soc_kwargs)
    if soc.cfi_stage is not None or soc_kwargs.get("with_cfi", True):
        firmware = shadow_stack_firmware(fw_variant, FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
    program = VICTIMS[victim].builder(soc.addresses, random.Random(seed))
    soc.load_host_program(program)
    report = SystemSimulator(soc, mode=mode).run()
    return report, soc


def _report_key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.ibex_instructions,
        report.detected,
        report.detection_latency,
        report.cfi,
    )


class TestEveryVictimEveryFirmware:
    """The full victim registry × firmware variants, all three modes."""

    @pytest.mark.parametrize("fw_variant", ["irq", "polling"])
    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_reports_identical_across_modes(self, victim, fw_variant):
        reference = None
        for mode in MODES:
            report, _ = _run(victim, mode, fw_variant=fw_variant)
            key = _report_key(report)
            if reference is None:
                reference = key
            else:
                assert key == reference, (victim, fw_variant, mode)

    @pytest.mark.parametrize("victim", ["benign", "rop", "deep-recursion"])
    def test_architectural_state_identical(self, victim):
        """Not just the report: the final register file must match."""
        snapshots = []
        for mode in MODES:
            _, soc = _run(victim, mode)
            snapshots.append(
                (soc.cva6.regs.snapshot(), soc.rot.ibex.regs.snapshot(),
                 soc.cva6.cycle, soc.rot.ibex.cycle)
            )
        assert snapshots[0] == snapshots[1] == snapshots[2]


class TestBackPressureConfigurations:
    """The paths that bypass batching (CFI back-pressure, blocking)."""

    @pytest.mark.parametrize("victim", ["benign", "rop", "deep-recursion"])
    def test_depth1_blocking_identical(self, victim):
        from repro.core.config import TitanCfiConfig

        keys = []
        for mode in MODES:
            config = TitanCfiConfig(queue_depth=1, blocking=True)
            report, _ = _run(victim, mode, cfi_config=config)
            keys.append(_report_key(report))
        assert keys[0] == keys[1] == keys[2]

    def test_depth1_nonblocking_identical(self):
        from repro.core.config import TitanCfiConfig

        keys = []
        for mode in MODES:
            config = TitanCfiConfig(queue_depth=1)
            report, _ = _run("deep-recursion", mode, cfi_config=config)
            keys.append(_report_key(report))
        assert keys[0] == keys[1] == keys[2]


class TestPlatformVariants:
    def test_optimized_fabric_identical(self):
        keys = [
            _report_key(_run("benign", mode, fabric="optimized")[0])
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_baseline_without_cfi_identical(self):
        keys = [
            _report_key(_run("benign", mode, with_cfi=False)[0])
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_latched_violations_identical(self):
        """raise_on_violation=False: runs continue past the violation;
        the batched engine must latch on the same cycle."""
        from repro.core.config import TitanCfiConfig

        keys = []
        for mode in MODES:
            config = TitanCfiConfig(raise_on_violation=False)
            report, _ = _run("ret-to-callsite", mode, cfi_config=config)
            keys.append(_report_key(report))
        assert keys[0] == keys[1] == keys[2]
        assert keys[0][4], "violation must still be detected"


class TestBatchingActuallyBatches:
    def test_batched_mode_reduces_tick_count(self):
        """Same cycles, far fewer scheduler iterations."""
        soc = build_soc()
        firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
        soc.load_host_program(benign_program(soc.addresses))
        sim = SystemSimulator(soc, mode=MODE_BATCHED)
        ticks = 0
        original_tick = sim.tick

        def counting_tick():
            nonlocal ticks
            ticks += 1
            original_tick()

        sim.tick = counting_tick
        report = sim.run()
        assert ticks < report.cycles // 10, "batched run barely batched"

    def test_cycle_budget_exhaustion_matches_busy_loop(self):
        """The max_cycles exhaustion path fires on the same cycle."""
        for mode in MODES:
            soc = build_soc()
            firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
            soc.load_firmware(firmware.data)
            soc.load_host_program(benign_program(soc.addresses))
            sim = SystemSimulator(soc, run_rot=False, mode=mode)
            with pytest.raises(SimulationError, match="exceeded"):
                sim.run(max_cycles=50_000)
            assert sim.now == 50_000, mode

    def test_unknown_mode_rejected(self):
        soc = build_soc()
        with pytest.raises(ValueError, match="unknown execution mode"):
            SystemSimulator(soc, mode="warp")
