"""Event-driven cycle skipping must be invisible in every statistic.

Runs bench_table2-style workloads (victim programs under the IRQ and
polling firmware, plus attack and baseline configurations) with the
event-driven fast path on and off and asserts the resulting
:class:`SimulationReport` is field-for-field identical — cycles, stall
counts, instret, CFI statistics, queue high-water, check latencies.
"""

import pytest

from repro.attacks.programs import (
    benign_program,
    deep_recursion_program,
    rop_program,
)
from repro.errors import SimulationError
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc


def _run(program_builder, event_driven, fw_variant="irq", **soc_kwargs):
    soc = build_soc(**soc_kwargs)
    if soc.cfi_stage is not None or soc_kwargs.get("with_cfi", True):
        firmware = shadow_stack_firmware(fw_variant, FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
    soc.load_host_program(program_builder(soc.addresses))
    return SystemSimulator(soc, event_driven=event_driven).run()


def _report_key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.ibex_instructions,
        report.detected,
        report.cfi,
    )


@pytest.mark.parametrize("fw_variant", ["irq", "polling"])
@pytest.mark.parametrize(
    "builder", [benign_program, deep_recursion_program, rop_program],
    ids=["benign", "deep-recursion", "rop"],
)
def test_reports_identical_with_and_without_skipping(builder, fw_variant):
    busy = _run(builder, event_driven=False, fw_variant=fw_variant)
    fast = _run(builder, event_driven=True, fw_variant=fw_variant)
    assert _report_key(busy) == _report_key(fast)


def test_optimized_fabric_identical():
    busy = _run(benign_program, event_driven=False, fabric="optimized")
    fast = _run(benign_program, event_driven=True, fabric="optimized")
    assert _report_key(busy) == _report_key(fast)


def test_baseline_without_cfi_identical():
    busy = _run(benign_program, event_driven=False, with_cfi=False)
    fast = _run(benign_program, event_driven=True, with_cfi=False)
    assert _report_key(busy) == _report_key(fast)


def test_skipping_reduces_tick_count():
    """The fast path must actually skip (same cycles, fewer ticks)."""
    soc = build_soc()
    firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    soc.load_host_program(benign_program(soc.addresses))
    sim = SystemSimulator(soc, event_driven=True)
    ticks = 0
    original_tick = sim.tick

    def counting_tick():
        nonlocal ticks
        ticks += 1
        original_tick()

    sim.tick = counting_tick
    report = sim.run()
    assert ticks < report.cycles // 2, "event-driven run barely skipped"


def test_cycle_budget_exhaustion_matches_busy_loop():
    """The max_cycles exhaustion path fires on the same cycle."""
    for event_driven in (False, True):
        soc = build_soc()
        firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
        soc.load_host_program(benign_program(soc.addresses))
        sim = SystemSimulator(soc, run_rot=False, event_driven=event_driven)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_cycles=50_000)
        assert sim.now == 50_000
