"""N-hart topologies must be cycle-exact in every engine — and the
single-hart topology must be cycle-identical to the historic SoC.

Mirrors ``tests/system/test_batched.py`` for the multi-hart subsystem:
every report field (including the per-hart breakdown and aggregated CFI
statistics) must be identical across the busy, event-driven and batched
engines, and a ``Topology()`` SoC must be indistinguishable from one
built without a topology at all.
"""

import random

import pytest

from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.errors import ConfigError
from repro.firmware.policies import (
    CompositePolicy,
    CryptoReturnPolicy,
    ShadowStackPolicy,
)
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.policyhost import mount_policy_host
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc
from repro.system.topology import Topology

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)

#: Hand-written (non-synthetic) victims usable on any hart.
CORPUS = sorted(name for name, spec in VICTIMS.items() if not spec.synthetic)


def _report_key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.ibex_instructions,
        report.detected,
        report.detection_latency,
        report.cfi,
        report.per_hart,
    )


def _build_multihart(victims, policy_factory=ShadowStackPolicy, seed=1234):
    topo = Topology(n_harts=len(victims))
    soc = build_soc(
        cfi_config=TitanCfiConfig(raise_on_violation=False), topology=topo
    )
    for hart_id, victim in enumerate(victims):
        amap = topo.address_map(hart_id, soc.addresses)
        program = VICTIMS[victim].builder(amap, random.Random(seed + hart_id))
        soc.load_host_program(program, hart_id=hart_id)
    mount_policy_host(soc, policy_factory())
    return soc


def _run_multihart(victims, mode, policy_factory=ShadowStackPolicy,
                   seed=1234, start_delays=None):
    soc = _build_multihart(victims, policy_factory=policy_factory, seed=seed)
    report = SystemSimulator(soc, mode=mode, start_delays=start_delays).run()
    return report, soc


class TestSingleHartIdentity:
    """``Topology()`` must be invisible: same SoC, same timeline."""

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_firmware_reports_identical_to_legacy(self, victim):
        keys = []
        for topology in (None, Topology()):
            soc = build_soc(topology=topology)
            firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
            soc.load_firmware(firmware.data)
            program = VICTIMS[victim].builder(soc.addresses, random.Random(1234))
            soc.load_host_program(program)
            keys.append(_report_key(SystemSimulator(soc).run()))
        assert keys[0] == keys[1]

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("victim", ["benign", "rop", "deep-recursion"])
    def test_every_engine_matches_legacy(self, victim, mode):
        keys = []
        for topology in (None, Topology()):
            soc = build_soc(topology=topology)
            firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
            soc.load_firmware(firmware.data)
            program = VICTIMS[victim].builder(soc.addresses, random.Random(1234))
            soc.load_host_program(program)
            keys.append(_report_key(SystemSimulator(soc, mode=mode).run()))
        assert keys[0] == keys[1]

    @pytest.mark.parametrize(
        "policy_factory", [ShadowStackPolicy, CryptoReturnPolicy]
    )
    def test_policy_host_matches_legacy(self, policy_factory):
        keys = []
        for topology in (None, Topology()):
            soc = build_soc(
                cfi_config=TitanCfiConfig(raise_on_violation=False),
                topology=topology,
            )
            program = VICTIMS["rop"].builder(soc.addresses, random.Random(1234))
            soc.load_host_program(program)
            mount_policy_host(soc, policy_factory())
            keys.append(_report_key(SystemSimulator(soc).run()))
        assert keys[0] == keys[1]

    def test_single_hart_report_has_no_per_hart_breakdown(self):
        soc = build_soc(topology=Topology())
        firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
        program = VICTIMS["benign"].builder(soc.addresses, random.Random(1234))
        soc.load_host_program(program)
        assert SystemSimulator(soc).run().per_hart is None


class TestMultiHartEngineEquivalence:
    """All three engines, field-for-field, per-hart included."""

    @pytest.mark.parametrize("victims", [
        ("rop", "benign"),
        ("benign", "rop"),
        ("jop", "deep-recursion", "indirect-clean"),
        ("rop", "deep-recursion", "deep-recursion", "deep-recursion"),
    ])
    def test_reports_identical_across_modes(self, victims):
        reference = None
        for mode in MODES:
            report, _ = _run_multihart(victims, mode)
            key = _report_key(report)
            if reference is None:
                reference = key
            else:
                assert key == reference, (victims, mode)

    @pytest.mark.parametrize("policy_factory", [CryptoReturnPolicy,
                                                ShadowStackPolicy])
    def test_policies_identical_across_modes(self, policy_factory):
        keys = [
            _report_key(_run_multihart(("rop", "deep-recursion"), mode,
                                       policy_factory=policy_factory)[0])
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_architectural_state_identical(self):
        snapshots = []
        for mode in MODES:
            _, soc = _run_multihart(("rop", "benign", "deep-recursion"), mode)
            snapshots.append(tuple(
                (hart.regs.snapshot(), hart.cycle) for hart in soc.harts
            ))
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_staggered_start_identical_across_modes(self):
        keys = [
            _report_key(_run_multihart(
                ("rop", "deep-recursion", "benign", "deep-recursion"), mode,
                start_delays=[0, 700, 1400, 2100])[0])
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]


class TestPerHartReport:
    def test_attack_hart_flagged_peers_clean(self):
        report, _ = _run_multihart(("rop", "benign"), MODE_BATCHED)
        assert report.detected
        assert report.per_hart is not None and len(report.per_hart) == 2
        attacker, peer = report.per_hart
        assert attacker["hart"] == 0 and attacker["detected"]
        assert attacker["violation_kind"] is not None
        assert attacker["detection_latency"] == report.detection_latency
        assert peer["hart"] == 1 and not peer["detected"]
        assert peer["detection_latency"] is None

    def test_attack_on_peer_hart_attributed_correctly(self):
        report, _ = _run_multihart(("benign", "benign", "rop"), MODE_BATCHED)
        assert report.detected
        flagged = [h for h in report.per_hart if h["detected"]]
        assert [h["hart"] for h in flagged] == [2]
        assert report.detection_latency == flagged[0]["detection_latency"]

    def test_aggregate_cfi_sums_per_hart_stages(self):
        report, _ = _run_multihart(("rop", "deep-recursion"), MODE_BATCHED)
        for counter in ("examined", "selected", "logs_sent",
                        "checks_completed", "full_stalls"):
            assert report.cfi[counter] == sum(
                h["cfi"].get(counter, 0) for h in report.per_hart
            )
        assert report.cfi["queue_high_water"] == max(
            h["cfi"].get("queue_high_water", 0) for h in report.per_hart
        )
        assert report.host_instructions == sum(
            h["instructions"] for h in report.per_hart
        )

    def test_policy_host_demultiplexes_per_hart_stats(self):
        _, soc = _run_multihart(("rop", "benign"), MODE_BATCHED)
        summary = soc.policy_host.stats_summary()
        per_hart = summary["per_hart"]
        assert len(per_hart) == 2
        assert all(entry["checks"] > 0 for entry in per_hart)


class TestStartDelayValidation:
    def test_wrong_length_rejected(self):
        soc = _build_multihart(("benign", "benign"))
        with pytest.raises(ConfigError):
            SystemSimulator(soc, start_delays=[0])

    @pytest.mark.parametrize("delay", [-1, 1.5, "0"])
    def test_bad_delay_rejected(self, delay):
        soc = _build_multihart(("benign", "benign"))
        with pytest.raises(ConfigError):
            SystemSimulator(soc, start_delays=[0, delay])

    def test_stagger_defers_peer_work(self):
        prompt, _ = _run_multihart(("benign", "benign"), MODE_BATCHED)
        delayed, _ = _run_multihart(("benign", "benign"), MODE_BATCHED,
                                    start_delays=[0, 5000])
        assert delayed.cycles > prompt.cycles
        assert (delayed.host_instructions == prompt.host_instructions)


class TestPerHartPolicyContexts:
    def test_context_zero_is_the_policy_itself(self):
        policy = ShadowStackPolicy()
        assert policy.context(0) is policy

    def test_contexts_spawn_lazily_and_cache(self):
        policy = ShadowStackPolicy(capacity=7)
        ctx = policy.context(3)
        assert ctx is not policy
        assert isinstance(ctx, ShadowStackPolicy)
        assert ctx.capacity == 7
        assert policy.context(3) is ctx

    def test_composite_spawns_member_contexts(self):
        policy = CompositePolicy([ShadowStackPolicy(), CryptoReturnPolicy()])
        ctx = policy.context(1)
        assert isinstance(ctx, CompositePolicy)
        assert ctx is not policy

    def test_install_context_rejects_hart_zero(self):
        policy = ShadowStackPolicy()
        with pytest.raises(ConfigError):
            policy.install_context(0, ShadowStackPolicy())

    def test_install_context_overrides_spawn(self):
        policy = ShadowStackPolicy()
        provisioned = ShadowStackPolicy(capacity=3)
        policy.install_context(1, provisioned)
        assert policy.context(1) is provisioned

    def test_reset_resets_every_context(self):
        policy = ShadowStackPolicy()
        ctx = policy.context(1)
        ctx.stack.append(0xDEADBEEF)
        policy.reset()
        assert ctx.stack == []
