"""Declarative multi-hart topology: validation, placement, rebasing.

Bad hart counts, overlapping memory placements and unknown hart ids
must be rejected with *typed* errors (never silently clamped), and the
default single-hart topology must reproduce the historic address map
exactly.
"""

import pytest

from repro.errors import (
    ConfigError,
    HartCountError,
    MemoryOverlapError,
    TopologyError,
    UnknownHartError,
)
from repro.system.addresses import AddressMap
from repro.system.soc import build_soc
from repro.system.topology import HART_DRAM_STRIDE, MAX_HARTS, Topology


class TestHartCountValidation:
    @pytest.mark.parametrize("n", [0, -1, MAX_HARTS + 1, 100])
    def test_out_of_range_counts_rejected(self, n):
        with pytest.raises(HartCountError) as excinfo:
            Topology(n_harts=n)
        assert excinfo.value.n_harts == n
        assert excinfo.value.max_harts == MAX_HARTS

    @pytest.mark.parametrize("n", [True, 2.0, "2", None])
    def test_non_int_counts_rejected(self, n):
        with pytest.raises(HartCountError):
            Topology(n_harts=n)

    def test_typed_errors_are_config_errors(self):
        """The whole topology family funnels into ConfigError."""
        assert issubclass(HartCountError, TopologyError)
        assert issubclass(MemoryOverlapError, TopologyError)
        assert issubclass(UnknownHartError, TopologyError)
        assert issubclass(TopologyError, ConfigError)

    @pytest.mark.parametrize("n", range(1, MAX_HARTS + 1))
    def test_supported_counts_accepted(self, n):
        assert Topology(n_harts=n).n_harts == n


class TestStrideAndBases:
    def test_bad_stride_rejected(self):
        with pytest.raises(TopologyError):
            Topology(n_harts=2, stride=0)
        with pytest.raises(TopologyError):
            Topology(n_harts=2, stride=-4096)

    def test_unaligned_stride_rejected(self):
        with pytest.raises(TopologyError):
            Topology(n_harts=2, stride=0x1234)

    def test_bases_length_must_match_harts(self):
        with pytest.raises(TopologyError):
            Topology(n_harts=2, bases=(0x8000_0000,))

    def test_bad_base_rejected(self):
        with pytest.raises(TopologyError):
            Topology(n_harts=1, bases=(-1,))


class TestPlacements:
    def test_single_hart_default_is_legacy_map(self):
        amap = AddressMap()
        (placement,) = Topology().placements(amap)
        assert placement.hart_id == 0
        assert placement.dram_base == amap.dram_base
        assert placement.dram_size == amap.dram_size

    def test_default_layout_strides_disjoint_segments(self):
        amap = AddressMap()
        placed = Topology(n_harts=4).placements(amap)
        assert [p.hart_id for p in placed] == [0, 1, 2, 3]
        for hart, p in enumerate(placed):
            assert p.dram_base == amap.dram_base + hart * HART_DRAM_STRIDE
            assert p.dram_size == HART_DRAM_STRIDE
        for prev, cur in zip(placed, placed[1:]):
            assert prev.dram_end <= cur.dram_base

    def test_overlapping_explicit_bases_rejected(self):
        amap = AddressMap()
        topo = Topology(
            n_harts=2,
            bases=(amap.dram_base, amap.dram_base + HART_DRAM_STRIDE // 2),
        )
        with pytest.raises(MemoryOverlapError):
            topo.placements(amap)

    def test_segment_escaping_dram_window_rejected(self):
        amap = AddressMap()
        topo = Topology(n_harts=2, bases=(amap.dram_base, amap.cfi_mailbox_base))
        with pytest.raises(MemoryOverlapError):
            topo.placements(amap)

    def test_segment_below_dram_rejected(self):
        amap = AddressMap()
        topo = Topology(n_harts=1, bases=(amap.dram_base - 0x1000,))
        with pytest.raises(MemoryOverlapError):
            topo.placements(amap)

    def test_max_harts_fit_below_mailbox(self):
        amap = AddressMap()
        placed = Topology(n_harts=MAX_HARTS).placements(amap)
        assert max(p.dram_end for p in placed) <= amap.cfi_mailbox_base


class TestAddressMapRebasing:
    def test_hart0_default_map_is_identity(self):
        amap = AddressMap()
        assert Topology(n_harts=4).address_map(0, amap) is amap
        assert Topology().address_map(0, amap) is amap

    def test_peer_hart_map_rebases_dram_only(self):
        amap = AddressMap()
        rebased = Topology(n_harts=4).address_map(2, amap)
        assert rebased.dram_base == amap.dram_base + 2 * HART_DRAM_STRIDE
        assert rebased.dram_size == HART_DRAM_STRIDE
        assert rebased.cfi_mailbox_base == amap.cfi_mailbox_base

    @pytest.mark.parametrize("hart_id", [-1, 4, True, "0"])
    def test_unknown_hart_id_rejected(self, hart_id):
        with pytest.raises(UnknownHartError):
            Topology(n_harts=4).address_map(hart_id)

    def test_unknown_hart_error_carries_context(self):
        with pytest.raises(UnknownHartError) as excinfo:
            Topology(n_harts=2).validate_hart_id(5)
        assert excinfo.value.hart_id == 5
        assert excinfo.value.n_harts == 2

    def test_dram_extent_covers_every_placement(self):
        amap = AddressMap()
        base, end = Topology(n_harts=3).dram_extent(amap)
        assert base == amap.dram_base
        assert end == amap.dram_base + 3 * HART_DRAM_STRIDE


class TestSocIntegration:
    def test_build_soc_instantiates_n_harts(self):
        soc = build_soc(topology=Topology(n_harts=4))
        assert soc.n_harts == 4
        assert len(soc.harts) == 4
        assert len(soc.cfi_stages) == 4
        assert len(soc.commits) == 4
        assert soc.doorbell_arbiter is not None
        assert soc.doorbell_arbiter.n_ports == 4

    def test_single_hart_soc_has_no_arbiter(self):
        assert build_soc().doorbell_arbiter is None
        assert build_soc(topology=Topology()).doorbell_arbiter is None

    def test_harts_boot_at_their_segment(self):
        topo = Topology(n_harts=2)
        soc = build_soc(topology=topo)
        placed = topo.placements(soc.addresses)
        for hart, placement in zip(soc.harts, placed):
            assert hart.pc == placement.dram_base

    def test_load_host_program_rejects_unknown_hart(self):
        soc = build_soc(topology=Topology(n_harts=2))
        with pytest.raises(UnknownHartError):
            soc.load_host_program(b"\x13\x00\x00\x00", hart_id=2)
