"""Co-simulator unit tests: interleaving, quiescence, reporting."""

import pytest

from repro.attacks.programs import CLEAN_MARKER, benign_program
from repro.errors import SimulationError
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc


def protected_soc():
    soc = build_soc()
    firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    return soc


class TestRunSemantics:
    def test_cycle_budget_enforced(self):
        soc = protected_soc()
        soc.load_host_program(benign_program(soc.addresses))
        with pytest.raises(SimulationError, match="exceeded"):
            SystemSimulator(soc).run(max_cycles=10)

    def test_run_drains_cfi_pipeline(self):
        soc = protected_soc()
        soc.load_host_program(benign_program(soc.addresses))
        report = SystemSimulator(soc).run()
        assert soc.cfi_stage.quiescent
        assert report.cfi["checks_completed"] == report.cfi["logs_sent"]

    def test_report_fields_consistent(self):
        soc = protected_soc()
        soc.load_host_program(benign_program(soc.addresses))
        report = SystemSimulator(soc).run()
        assert report.cycles > 0
        assert report.host_instructions > 0
        assert report.ibex_instructions > 0
        assert not report.detected

    def test_harts_interleave(self):
        """Ibex must make progress while CVA6 still runs (true co-sim)."""
        soc = protected_soc()
        soc.load_host_program(benign_program(soc.addresses))
        simulator = SystemSimulator(soc)
        saw_both_active = False
        for _ in range(50_000):
            simulator.tick()
            if soc.cva6.halted:
                break
            if soc.rot.ibex.instret > 0 and not soc.cva6.halted:
                saw_both_active = True
                break
        assert saw_both_active

    def test_run_rot_disabled_hangs_checks(self):
        """Without the RoT running, checks never complete (sanity that the
        verdicts really come from Ibex, not from a model shortcut)."""
        soc = protected_soc()
        soc.load_host_program(benign_program(soc.addresses))
        simulator = SystemSimulator(soc, run_rot=False)
        with pytest.raises(SimulationError):
            simulator.run(max_cycles=100_000)


class TestBaselineComparison:
    def test_cfi_overhead_visible_in_cycles(self):
        baseline = build_soc(with_cfi=False)
        baseline.load_host_program(benign_program(baseline.addresses))
        base = SystemSimulator(baseline).run()

        protected = protected_soc()
        protected.load_host_program(benign_program(protected.addresses))
        prot = SystemSimulator(protected).run()

        assert base.host_instructions == prot.host_instructions
        assert prot.cycles >= base.cycles
        assert protected.cva6.regs.read(10) == CLEAN_MARKER
