"""Queue back-pressure and blocking paths, identical in every engine.

ISSUE satellite: the mailbox/log-writer blocking and latched-overflow
paths must behave identically across the busy, event-driven and batched
engines at queue depths 1, 2 and full (8).  Back-pressure is where the
engines' skippable-cycle reasoning is most fragile — a writer stalled
on a full queue, a blocking CFI stage stalling the host, a violation
latched while later checks keep draining — so every such path gets a
three-way cross-engine assertion here.
"""

import random

import pytest

from repro.attacks.rop import run_attack_scenario
from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.faults.plan import build_plan
from repro.firmware.policies import ShadowStackPolicy
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.addresses import AddressMap
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)
DEPTHS = (1, 2, 8)


def _run(victim, mode, depth, blocking, raise_on_violation=True):
    config = TitanCfiConfig(queue_depth=depth, blocking=blocking,
                            raise_on_violation=raise_on_violation)
    soc = build_soc(cfi_config=config)
    firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    soc.load_host_program(
        VICTIMS[victim].builder(soc.addresses, random.Random(1234))
    )
    return SystemSimulator(soc, mode=mode).run()


def _key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.ibex_instructions,
        report.detected,
        report.detection_latency,
        report.cfi,
    )


class TestDepthSweepAcrossEngines:
    """Every (depth × blocking × victim) cell: three identical reports."""

    @pytest.mark.parametrize("blocking", [False, True])
    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("victim", ["benign", "deep-recursion", "rop"])
    def test_reports_identical_across_modes(self, victim, depth, blocking):
        reference = None
        for mode in MODES:
            key = _key(_run(victim, mode, depth, blocking))
            if reference is None:
                reference = key
            else:
                assert key == reference, (victim, depth, blocking, mode)

    def test_depth_one_actually_exercises_full_queue_stalls(self):
        """The sweep above is only meaningful if the shallow queue
        really backs up: the writer must spend cycles stalled on a
        full queue for the bursty victim."""
        report = _run("deep-recursion", MODE_BUSY, depth=1, blocking=False)
        assert report.cfi["full_stalls"] > 0
        assert report.cfi["queue_high_water"] == 1

    def test_blocking_depth_one_is_the_table2_configuration(self):
        report = _run("rop", MODE_BUSY, depth=1, blocking=True)
        assert report.detected
        assert report.host_stall_cycles > 0


class TestLatchedViolation:
    """raise_on_violation=False: the violation is latched, the run and
    the queue keep draining — identically in every engine."""

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_latched_runs_identical_across_modes(self, depth):
        reference = None
        for mode in MODES:
            report = _run("ret-to-callsite", mode, depth, blocking=False,
                          raise_on_violation=False)
            assert report.detected
            assert report.cfi["violations"] >= 1
            assert (report.detection_latency
                    == report.cfi["first_violation_latency"])
            key = _key(report)
            if reference is None:
                reference = key
            else:
                assert key == reference, (depth, mode)


class TestFaultInducedBackPressure:
    """stall-burst slows the monitor until the writer queue overflows;
    the overflow accounting must agree across all three engines."""

    def _run_stalled(self, mode, depth, plan):
        outcome = run_attack_scenario(
            VICTIMS["deep-recursion"].builder(
                AddressMap(), random.Random(1234)
            ),
            queue_depth=depth,
            sim_mode=mode,
            policy_backend="host",
            policy=ShadowStackPolicy(),
            fault_plan=plan,
        )
        return outcome.report

    @pytest.mark.parametrize("depth", [1, 2])
    def test_stall_burst_overflow_identical_across_engines(self, depth):
        plan = build_plan("stall-burst", 77)
        baseline_stalls = self._run_stalled(MODE_BUSY, depth, None)
        reference = None
        for mode in MODES:
            report = self._run_stalled(mode, depth, plan)
            assert report.cfi["full_stalls"] > baseline_stalls.cfi["full_stalls"]
            key = _key(report)
            if reference is None:
                reference = key
            else:
                assert key == reference, (depth, mode)
