"""Experiment-harness tests: every table reproduces the paper's shape.

These are the reproduction's acceptance tests: they encode how close
each regenerated number must be to the published one (see
EXPERIMENTS.md for the recorded values).
"""

import pytest

from repro.eval import figure1, table2, table3, table4
from repro.eval.firmware_analysis import analyze_all, check_latency


@pytest.fixture(scope="module")
def firmware_results():
    return analyze_all()


class TestTable1Shape:
    """Firmware analysis against the published Table I."""

    def test_irq_call_total_cycles(self, firmware_results):
        total = firmware_results["irq"]["call"].total_cycles
        assert total == pytest.approx(258, rel=0.10)  # paper: 258

    def test_irq_return_total_cycles(self, firmware_results):
        total = firmware_results["irq"]["return"].total_cycles
        assert total == pytest.approx(276, rel=0.10)

    def test_polling_cheaper_than_irq(self, firmware_results):
        assert (
            firmware_results["polling"]["call"].total_cycles
            < firmware_results["irq"]["call"].total_cycles
        )

    def test_optimized_cheapest(self, firmware_results):
        assert (
            firmware_results["optimized"]["call"].total_cycles
            < firmware_results["polling"]["call"].total_cycles
        )

    def test_latencies_near_paper(self, firmware_results):
        assert check_latency(firmware_results, "irq") == pytest.approx(267, rel=0.10)
        assert check_latency(firmware_results, "polling") == pytest.approx(112, rel=0.12)
        assert check_latency(firmware_results, "optimized") == pytest.approx(73, rel=0.12)

    def test_soc_access_counts_match_paper_exactly(self, firmware_results):
        """Table I: 4 SoC accesses per check, every variant."""
        for variant in ("irq", "polling", "optimized"):
            for kind in ("call", "return"):
                cell = firmware_results[variant][kind].cell("cfi", "mem_soc")
                assert cell.instructions == 4

    def test_rot_access_counts_match_paper_exactly(self, firmware_results):
        """Table I: 5 RoT scratchpad accesses in the CFI section."""
        for kind in ("call", "return"):
            cell = firmware_results["irq"][kind].cell("cfi", "mem_rot")
            assert cell.instructions == 5

    def test_irq_spill_restore_cost(self, firmware_results):
        """Table I: 14 RoT accesses in the IRQ section (6+6 spill/restore
        + PLIC claim/complete)."""
        cell = firmware_results["irq"]["call"].cell("irq", "mem_rot")
        assert cell.instructions == 14

    def test_polling_has_no_irq_section(self, firmware_results):
        for kind in ("call", "return"):
            assert firmware_results["polling"][kind].section_total("irq").cycles == 0

    def test_polling_saving_near_58_percent(self, firmware_results):
        irq_latency = check_latency(firmware_results, "irq")
        poll_latency = check_latency(firmware_results, "polling")
        saving = 100.0 * (1 - poll_latency / irq_latency)
        assert saving == pytest.approx(58, abs=8)  # paper: ~58%

    def test_optimized_saving_over_70_percent(self, firmware_results):
        irq_latency = check_latency(firmware_results, "irq")
        optimized = check_latency(firmware_results, "optimized")
        assert 100.0 * (1 - optimized / irq_latency) >= 70

    def test_wake_cycles_dominate_irq_logic(self, firmware_results):
        """§V-B: 45 of the IRQ logic cycles are the doorbell→wake latency."""
        cell = firmware_results["irq"]["call"].cell("irq", "logic")
        assert cell.cycles >= 45


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row["benchmark"]: row for row in table2.compute(latencies="paper")}

    def test_every_published_cell_within_one_point(self, rows):
        for name, row in rows.items():
            for variant in ("optimized", "polling", "irq"):
                paper = row["paper"][variant]
                model = row["model"][variant]
                if paper is None:
                    assert model < 1.0, f"{name}/{variant}"
                else:
                    assert model == pytest.approx(paper, abs=max(1.0, 0.01 * paper)), (
                        f"{name}/{variant}"
                    )

    def test_titancfi_beats_dexie_on_3_of_4(self, rows):
        """§V-C: lower overhead than DExIE in 3 of 4 shared benchmarks."""
        wins = sum(
            1
            for name in ("aha-mont64", "edn", "matmult-int", "ud")
            if rows[name]["model"]["irq"] < rows[name]["dexie"]
        )
        assert wins >= 3

    def test_dhrystone_is_the_outlier(self, rows):
        assert rows["dhrystone"]["model"]["irq"] > 1000

    def test_default_latencies_are_measured(self):
        """Regression: the module docstring promises measured-by-default;
        the code once defaulted to ``latencies="paper"``."""
        import inspect

        for fn in (table2.compute, table2.render, table2.resolve_latencies):
            default = inspect.signature(fn).parameters["latencies"].default
            assert default == "measured", fn.__qualname__

    def test_default_matches_explicit_measured(self):
        assert table2.compute() == table2.compute(latencies="measured")


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row["benchmark"]: row for row in table3.compute(latencies="paper")}

    def test_row_count(self, rows):
        assert len(rows) == 32

    def test_irq_column_matches_calibration_targets(self, rows):
        for name, row in rows.items():
            paper = row["paper"]["irq"]
            model = row["model"]["irq"]
            if paper is None:
                assert model < 3.0, name
            else:
                assert model == pytest.approx(paper, abs=0.12 * paper + 3), name

    def test_majority_under_10_percent(self, rows):
        """The paper's headline: <10% overhead for most kernels (IRQ)."""
        low = sum(1 for row in rows.values() if row["model"]["irq"] < 10)
        assert low >= len(rows) // 2

    def test_validation_columns_track_paper(self, rows):
        """Poll/Opt (predictions, not fits) stay within 2x-ish everywhere
        the paper reports a value; spot-check the big ones tightly."""
        for name in ("dhrystone", "mm", "nbody", "slre"):
            row = rows[name]
            for variant in ("optimized", "polling"):
                assert row["model"][variant] == pytest.approx(
                    row["paper"][variant], rel=0.15
                ), f"{name}/{variant}"

    def test_saturated_ordering_preserved(self, rows):
        """mm is the worst case, dhrystone second, as in the paper."""
        irq = {name: row["model"]["irq"] for name, row in rows.items()}
        worst = sorted(irq, key=irq.get, reverse=True)[:2]
        assert worst[0] == "mm"
        assert worst[1] == "dhrystone"


class TestTable4:
    @pytest.fixture(scope="class")
    def data(self):
        return table4.compute()

    def test_host_deltas_within_15_percent(self, data):
        host = data["host"]
        assert host["delta"].luts == pytest.approx(host["paper_delta"]["lut"], rel=0.15)
        assert host["delta"].registers == pytest.approx(host["paper_delta"]["reg"], rel=0.15)

    def test_soc_deltas_within_15_percent(self, data):
        soc = data["soc"]
        assert soc["delta"].luts == pytest.approx(soc["paper_delta"]["lut"], rel=0.15)
        assert soc["delta"].registers == pytest.approx(soc["paper_delta"]["reg"], rel=0.15)

    def test_no_bram_needed(self, data):
        assert data["host"]["delta"].brams == 0

    def test_soc_overhead_under_1_percent(self, data):
        """The paper's headline: ~1% additional area on the SoC."""
        assert data["soc"]["overhead_percent"]["lut"] < 1.0
        assert data["soc"]["overhead_percent"]["reg"] < 1.0

    def test_host_overhead_under_6_percent(self, data):
        assert data["host"]["overhead_percent"]["lut"] < 6.0
        assert data["host"]["overhead_percent"]["reg"] < 7.0

    def test_uses_less_than_dexie(self, data):
        dexie_lut_delta = data["dexie"]["lut_with_cfi"] - data["dexie"]["lut_base"]
        assert data["host"]["delta"].luts < dexie_lut_delta

    def test_queue_depth_scales_registers(self):
        shallow = table4.compute(queue_depth=1)
        deep = table4.compute(queue_depth=16)
        assert deep["host"]["delta"].registers > shallow["host"]["delta"].registers


class TestFigure1:
    def test_architecture_verifies(self):
        assert figure1.compute()["problems"] == []

    def test_dot_export_contains_domains(self):
        dot = figure1.compute()["dot"]
        for cluster in ("cluster_cva6", "cluster_cfi-stage", "cluster_host", "cluster_rot"):
            assert cluster in dot

    def test_check_round_trip_nodes_exist(self):
        graph = figure1.build_graph()
        for node in figure1.CHECK_ROUND_TRIP:
            assert node in graph

    def test_broken_wire_detected(self):
        graph = figure1.build_graph()
        graph.remove_edge("cfi-mailbox", "log-writer")
        assert figure1.verify(graph)
