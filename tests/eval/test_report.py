"""Report-rendering helpers."""

from repro.eval.report import paper_vs_measured, render_table, scientific


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_underlined(self):
        text = render_table(["x"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_none_renders_as_dash(self):
        text = render_table(["x"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_float_formatting_tiers(self):
        text = render_table(["x"], [[123.456], [12.34], [1.234], [0.0]])
        rows = [line.strip() for line in text.splitlines()[2:]]
        assert rows == ["123", "12.3", "1.23", "-"]


class TestCells:
    def test_paper_vs_measured_both(self):
        assert paper_vs_measured(12, 11.6) == "12/12"

    def test_paper_missing(self):
        assert paper_vs_measured(None, 0.1) == "-/-"

    def test_measured_zeroish(self):
        assert paper_vs_measured(3, 0.2) == "3/-"

    def test_scientific(self):
        assert scientific(2.51e6) == "2.51E+06"
