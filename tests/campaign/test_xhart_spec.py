"""Scenario axes for cross-hart adversarial cells: ``fault_hart``
scoping, the ``defense``/``lossy`` knobs, grid-expansion rules, name
stability, and the registered xhart matrices."""

import pytest

from repro.campaign.spec import (
    ADVERSARIAL_FAULT_PLANS,
    MONITOR_FAULT_PLANS,
    TRANSPORT_FAULT_PLANS,
    Scenario,
    expand_grid,
    resolve_matrix,
)
from repro.errors import ConfigError, UnknownHartError


class TestScenarioValidation:
    def test_plan_families_partition_the_registry(self):
        assert set(ADVERSARIAL_FAULT_PLANS) == {
            "xhart-flood", "xhart-hold", "xhart-spoof"
        }
        assert not set(ADVERSARIAL_FAULT_PLANS) & set(MONITOR_FAULT_PLANS)
        assert not set(ADVERSARIAL_FAULT_PLANS) & set(TRANSPORT_FAULT_PLANS)

    def test_multihart_fault_needs_fault_hart(self):
        with pytest.raises(ConfigError, match="silently fault hart 0"):
            Scenario(victim="rop", backend="cosim", n_harts=2,
                     fault_plan="drop-first")

    def test_fault_hart_needs_a_plan(self):
        with pytest.raises(ConfigError, match="needs a fault_plan"):
            Scenario(victim="rop", backend="cosim", n_harts=2, fault_hart=1)

    def test_fault_hart_out_of_range_is_typed(self):
        with pytest.raises(UnknownHartError):
            Scenario(victim="rop", backend="cosim", n_harts=2,
                     fault_plan="xhart-spoof", fault_hart=2, defense=True)

    def test_adversarial_plan_needs_multihart(self):
        with pytest.raises(ConfigError, match="multi-hart"):
            Scenario(victim="rop", backend="cosim", policy_backend="host",
                     fault_plan="xhart-spoof")

    def test_adversarial_plan_needs_defense(self):
        with pytest.raises(ConfigError, match="defense"):
            Scenario(victim="rop", backend="cosim", n_harts=2,
                     fault_plan="xhart-spoof", fault_hart=1)

    def test_defense_needs_multihart_cosim(self):
        with pytest.raises(ConfigError, match="multi-hart"):
            Scenario(victim="rop", backend="cosim", defense=True)

    def test_lossy_needs_cosim(self):
        with pytest.raises(ConfigError, match="cosim"):
            Scenario(victim="rop", lossy=True)

    def test_lossy_excludes_blocking(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            Scenario(victim="rop", backend="cosim", lossy=True,
                     blocking=True)

    def test_xhart_name_parts(self):
        cell = Scenario(victim="rop", backend="cosim", n_harts=2,
                        hart_victims=("deep-recursion",),
                        fault_plan="xhart-spoof", fault_hart=1,
                        defense=True)
        for part in ("fault-xhart-spoof", "fh1", "guard"):
            assert part in cell.name.split("/")

    def test_lossy_name_part(self):
        cell = Scenario(victim="rop", backend="cosim", lossy=True)
        assert "lossy" in cell.name.split("/")

    def test_pre_existing_names_are_stable(self):
        """The new axes must not rename existing cells (artifact and
        seed-derivation stability across PRs)."""
        assert Scenario(victim="rop", backend="cosim").name \
            == "cosim/rop/shadow-stack/irq/q8"
        assert Scenario(victim="rop", backend="cosim", n_harts=2).name \
            == "cosim/rop/shadow-stack/host/irq/q8/n2/benign"


class TestGridExpansion:
    def test_mixed_sweep_drops_incompatible_cells(self):
        cells = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            n_harts=[1, 2],
            fault_plan=[None, "drop-first", "xhart-spoof"],
            fault_hart=[None, 1],
            defense=[False, True],
        )
        assert cells  # something survived
        names = [c.name for c in cells]
        assert len(set(names)) == len(names)
        for cell in cells:
            if cell.fault_plan == "xhart-spoof":
                assert cell.n_harts == 2 and cell.defense \
                    and cell.fault_hart == 1
            if cell.n_harts == 2 and cell.fault_plan is not None:
                assert cell.fault_hart is not None

    def test_lossy_blocking_combinations_drop(self):
        cells = expand_grid(
            victim="rop",
            backend="cosim",
            lossy=[False, True],
            blocking=[False, True],
        )
        assert len(cells) == 3
        assert not any(c.lossy and c.blocking for c in cells)


class TestXhartMatrices:
    def test_xhart_matrix_shape(self):
        cells = resolve_matrix("xhart")
        names = [c.name for c in cells]
        assert len(set(names)) == len(names)
        adversarial = [c for c in cells if c.fault_plan is not None]
        baselines = [c for c in cells if c.fault_plan is None]
        assert len(adversarial) == 18 and len(baselines) == 4
        assert {c.fault_plan for c in adversarial} \
            == set(ADVERSARIAL_FAULT_PLANS)
        for cell in cells:
            assert cell.defense and not cell.lossy
            assert cell.n_harts in (2, 4)
        # The fault-hart sweep moves the compromised hart around.
        assert {c.fault_hart for c in adversarial} == {1, 2, 3}

    def test_xhart_smoke_matrix_shape(self):
        cells = resolve_matrix("xhart-smoke")
        assert len(cells) == 4
        assert {c.fault_plan for c in cells} \
            == {None, "xhart-flood", "xhart-hold", "xhart-spoof"}
        assert all(c.n_harts == 2 and c.defense for c in cells)
