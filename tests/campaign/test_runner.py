"""Campaign runner: marker invariants, per-policy verdicts, sharding.

The two registry-wide invariant suites here are the campaign's ground
truth (ISSUE satellite): every attack victim's unprotected run must
leave ``GADGET_MARKER`` in a0, every benign victim ``CLEAN_MARKER``,
and every (victim × policy) reference scenario must produce exactly the
verdict the :data:`~repro.campaign.spec.POLICY_DETECTS` table predicts.
"""

import random

import pytest

from repro.attacks.programs import CLEAN_MARKER, GADGET_MARKER
from repro.campaign.aggregate import finalize, summarize
from repro.campaign.runner import capture_commit_logs, run_campaign, run_scenario
from repro.campaign.spec import (
    REFERENCE_POLICIES,
    VICTIMS,
    Scenario,
    expand_grid,
    smoke_matrix,
)
from repro.system.addresses import AddressMap


@pytest.fixture(scope="module")
def addresses():
    return AddressMap()


class TestMarkerInvariants:
    """Semantic ground truth for every registered victim."""

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_unprotected_run_leaves_the_right_marker(self, victim, addresses):
        spec = VICTIMS[victim]
        program = spec.builder(addresses, random.Random(1234))
        _logs, hart = capture_commit_logs(program, addresses)
        marker = hart.regs.read(10)
        if spec.attack is None:
            assert marker == CLEAN_MARKER, victim
        else:
            assert marker == GADGET_MARKER, victim

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_every_victim_emits_cf_events(self, victim, addresses):
        program = VICTIMS[victim].builder(addresses, random.Random(1234))
        logs, _hart = capture_commit_logs(program, addresses)
        assert logs, f"{victim} produced no CFI-relevant events"


class TestExpectedVerdicts:
    """Every registered (victim × policy) cell matches the ground truth."""

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    @pytest.mark.parametrize("policy", REFERENCE_POLICIES)
    def test_reference_verdict_matches_spec(self, victim, policy):
        scenario = Scenario(victim=victim, policy=policy)
        result = run_scenario(scenario)
        assert result["detected"] == scenario.expected_detected, result
        assert result["expectation_met"]

    def test_no_policy_flags_any_benign_victim(self):
        scenarios = expand_grid(
            victim=[v for v, s in VICTIMS.items() if s.attack is None],
            policy=list(REFERENCE_POLICIES),
        )
        for scenario in scenarios:
            assert not run_scenario(scenario)["detected"], scenario.name


class TestCosimBackend:
    def test_rop_detected_with_latency(self):
        result = run_scenario(Scenario(victim="rop", backend="cosim"))
        assert result["detected"]
        assert result["violation_kind"] == "return"
        assert result["detection_latency"] > 0
        assert result["cycles"] > 0

    def test_benign_clean_with_overhead(self):
        result = run_scenario(Scenario(victim="benign", backend="cosim"))
        assert not result["detected"]
        assert not result["gadget_executed"]
        assert result["overhead_percent"] > 0

    def test_blocking_depth1_stops_the_gadget(self):
        """Table II configuration: detection is synchronous, the gadget
        never becomes architecturally visible."""
        result = run_scenario(
            Scenario(victim="rop", backend="cosim", queue_depth=1, blocking=True)
        )
        assert result["detected"]
        assert not result["gadget_executed"]

    def test_latched_violation_reports_the_violating_checks_latency(self):
        """With raise_on_violation=False later benign checks keep
        running; detection_latency must still be the violating check's."""
        from repro.core.config import TitanCfiConfig
        from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
        from repro.system.sim import SystemSimulator
        from repro.system.soc import build_soc
        from repro.campaign.spec import VICTIMS

        config = TitanCfiConfig(raise_on_violation=False)
        soc = build_soc(cfi_config=config)
        firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
        soc.load_host_program(
            VICTIMS["ret-to-callsite"].builder(soc.addresses, random.Random(0))
        )
        report = SystemSimulator(soc).run()
        assert report.detected
        assert report.detection_latency is not None
        assert report.detection_latency == report.cfi["first_violation_latency"]
        # The run continued past the violation: more checks completed
        # after it, so "last check" would have been the wrong answer.
        assert report.cfi["violations"] >= 1

    def test_runaway_victim_raises_not_truncates(self, addresses):
        """The reference backend must not score a non-halting victim as
        a clean complete trace — Hart.run raises on step exhaustion."""
        from repro.errors import SimulationError
        from repro.isa.asm import Assembler

        spin = Assembler(xlen=64).assemble(
            "main:\n    j main\n", base=addresses.dram_base
        )
        with pytest.raises(SimulationError):
            capture_commit_logs(spin, addresses, max_steps=1000)

    def test_jop_evades_the_shadow_stack_firmware(self):
        """The firmware's policy is return-edge only — the JOP chain
        must slip through (the campaign's motivating blind spot)."""
        result = run_scenario(Scenario(victim="jop", backend="cosim"))
        assert not result["detected"]
        assert result["gadget_executed"]
        assert result["expectation_met"]


class TestSeededScenarios:
    def test_seed_sweeps_program_shape(self):
        a = run_scenario(Scenario(victim="deep-recursion"), campaign_seed=1)
        b = run_scenario(Scenario(victim="deep-recursion"), campaign_seed=2)
        assert a["host_instructions"] != b["host_instructions"]

    def test_same_seed_reproduces_exactly(self):
        a = run_scenario(Scenario(victim="deep-recursion"), campaign_seed=5)
        b = run_scenario(Scenario(victim="deep-recursion"), campaign_seed=5)
        assert a == b


class TestShardedCampaign:
    @pytest.fixture(scope="class")
    def matrix(self):
        # Small but mixed: both backends, attacks and benign victims.
        return expand_grid(
            victim=["benign", "rop", "jop", "ret-to-callsite"],
            policy=["shadow-stack", "coarse", "composite"],
        ) + expand_grid(victim=["benign", "rop"], backend="cosim")

    def test_parallel_equals_serial(self, matrix):
        serial = run_campaign(matrix, jobs=1, campaign_seed=3)
        parallel = run_campaign(matrix, jobs=2, campaign_seed=3)
        for payload in (serial, parallel):
            payload.pop("timing")
            payload.pop("jobs")
        assert serial == parallel

    def test_streaming_sees_every_result(self, matrix):
        seen = []
        payload = run_campaign(matrix, jobs=2, campaign_seed=3,
                               stream=seen.append)
        assert len(seen) == payload["scenario_count"] == len(matrix)
        assert sorted(r["name"] for r in seen) == [
            r["name"] for r in payload["scenarios"]
        ]

    def test_summary_has_zero_false_positives(self, matrix):
        payload = finalize(run_campaign(matrix, jobs=2))
        counts = payload["summary"]["counts"]
        assert counts["false_positives"] == 0
        assert counts["expectations_missed"] == 0

    def test_results_sorted_by_name(self, matrix):
        payload = run_campaign(matrix, jobs=2)
        names = [r["name"] for r in payload["scenarios"]]
        assert names == sorted(names)

    def test_duplicate_scenarios_rejected_before_execution(self):
        from repro.errors import ConfigError

        duplicated = [Scenario(victim="rop"), Scenario(victim="rop")]
        seen = []
        with pytest.raises(ConfigError, match="duplicate"):
            run_campaign(duplicated, jobs=1, stream=seen.append)
        assert seen == []  # rejected up front, nothing executed


class TestSmokeMatrixEndToEnd:
    def test_smoke_matrix_all_expectations_met(self):
        payload = finalize(run_campaign(smoke_matrix(), jobs=2))
        counts = payload["summary"]["counts"]
        assert counts["expectations_missed"] == 0
        assert counts["false_positives"] == 0
        assert counts["true_positives"] >= 3

    def test_summarize_is_pure(self):
        payload = run_campaign(smoke_matrix()[:4], jobs=1)
        assert summarize(payload["scenarios"]) == summarize(payload["scenarios"])


class TestXhartMatrixEndToEnd:
    def test_every_cell_meets_the_per_hart_contract(self):
        from repro.campaign.spec import resolve_matrix

        payload = run_campaign(resolve_matrix("xhart-smoke"), jobs=1)
        rows = payload["scenarios"]
        assert all(r["status"] == "ok" and r["expectation_met"]
                   for r in rows)
        guarded = [r for r in rows if r["fault_plan"] is None]
        attacked = [r for r in rows if r["fault_plan"] is not None]
        assert len(guarded) == 1 and len(attacked) == 3
        base_rows = guarded[0]["per_hart"]
        assert guarded[0]["quarantined_harts"] == []
        for r in attacked:
            assert r["contract_ok"] is True
            assert r["degradation"] == "fail-safe-quarantine"
            assert r["quarantined_harts"] == [r["fault_hart"]]
            for hart_id, row in enumerate(r["per_hart"]):
                if hart_id == r["fault_hart"]:
                    assert row["role"] == "attacker" and row["quarantined"]
                else:
                    assert row["role"] == "benign"
                    # The hard contract: benign rows bit-identical to
                    # the guarded no-adversary baseline.
                    for field in ("detected", "violation_kind",
                                  "detection_latency"):
                        assert row[field] == base_rows[hart_id][field]
