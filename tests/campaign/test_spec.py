"""Scenario spec, registries, grid expansion and seed derivation."""

import pytest

from repro.campaign.spec import (
    BACKEND_COSIM,
    BACKEND_REFERENCE,
    MATRICES,
    POLICY_DETECTS,
    REFERENCE_POLICIES,
    VICTIMS,
    Scenario,
    default_matrix,
    derive_seed,
    expand_grid,
    expected_detection,
    resolve_matrix,
    smoke_matrix,
)
from repro.errors import ConfigError


class TestScenario:
    def test_defaults_valid(self):
        scenario = Scenario(victim="rop")
        assert scenario.backend == BACKEND_REFERENCE
        assert scenario.expected_detected

    def test_unknown_victim_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="nonexistent")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="rop", policy="magic")

    def test_cosim_accepts_any_enforcing_policy(self):
        """The policy host lifts the old firmware-only restriction:
        every registered enforcing policy resolves on the cosim
        backend (shadow-stack to the firmware, the rest to the host)."""
        for policy in REFERENCE_POLICIES:
            if policy == "none":
                continue
            scenario = Scenario(victim="rop", backend=BACKEND_COSIM,
                                policy=policy)
            expected = "firmware" if policy == "shadow-stack" else "host"
            assert scenario.resolved_policy_backend == expected, policy

    def test_cosim_policy_none_still_rejected(self):
        with pytest.raises(ConfigError, match="enforcing policy"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="none")

    def test_cosim_firmware_backend_rejects_foreign_policy(self):
        """Explicitly pinning the firmware backend to a policy the RV32
        firmware does not implement must fail loudly."""
        with pytest.raises(ConfigError, match="shadow stack"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="coarse",
                     policy_backend="firmware")

    def test_unknown_policy_rejected_on_cosim_too(self):
        """Lifting the restriction must not weaken name validation: a
        genuinely unknown policy still raises, on either backend."""
        with pytest.raises(ConfigError, match="unknown policy"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="magic")

    def test_unknown_policy_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy backend"):
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy_backend="hardware")

    def test_host_backend_names_distinct_from_firmware(self):
        firmware = Scenario(victim="rop", backend=BACKEND_COSIM)
        host = Scenario(victim="rop", backend=BACKEND_COSIM,
                        policy_backend="host")
        assert firmware.name == "cosim/rop/shadow-stack/irq/q8"
        assert host.name == "cosim/rop/shadow-stack/host/irq/q8"

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="rop", queue_depth=0)

    def test_name_is_stable_and_parameter_bearing(self):
        a = Scenario(victim="rop", backend=BACKEND_COSIM, queue_depth=1,
                     blocking=True)
        assert a.name == "cosim/rop/shadow-stack/irq/q1/blocking"
        assert Scenario(victim="rop").name == "reference/rop/shadow-stack"


class TestRegistry:
    def test_every_victim_has_symbols_resolvable(self):
        """Entry-point metadata must name real labels in the program."""
        import random
        from repro.system.addresses import AddressMap

        addresses = AddressMap()
        for spec in VICTIMS.values():
            program = spec.builder(addresses, random.Random(1))
            for symbol in spec.entry_points + spec.function_entries:
                assert symbol in program.symbols, (spec.name, symbol)

    def test_attack_classes_all_covered_by_some_policy(self):
        attacks = {spec.attack for spec in VICTIMS.values() if spec.attack}
        caught = set().union(*POLICY_DETECTS.values())
        assert attacks == caught

    def test_composite_dominates_all_policies(self):
        for policy, detects in POLICY_DETECTS.items():
            assert detects <= POLICY_DETECTS["composite"]

    def test_expected_detection_benign_always_false(self):
        for victim, spec in VICTIMS.items():
            if spec.attack is None:
                for policy in REFERENCE_POLICIES:
                    assert not expected_detection(victim, policy)


class TestGridExpansion:
    def test_cartesian_product(self):
        scenarios = expand_grid(victim=["rop", "benign"],
                                policy=["shadow-stack", "coarse"])
        assert len(scenarios) == 4

    def test_scalars_promoted(self):
        scenarios = expand_grid(victim="rop", backend="cosim",
                                queue_depth=[1, 8])
        assert len(scenarios) == 2

    def test_backend_ignored_axis_collapses(self):
        """queue_depth is cosim-only: sweeping it on the reference
        backend yields one scenario, not redundant copies."""
        assert len(expand_grid(victim="rop", queue_depth=[1, 8])) == 1

    def test_invalid_combinations_dropped(self):
        scenarios = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            policy=["shadow-stack", "coarse", "none"],
        )
        # cosim×none is invalid and silently dropped; cosim×coarse now
        # resolves to the policy host and stays.
        assert len(scenarios) == 5
        assert sum(s.backend == "cosim" for s in scenarios) == 2

    def test_firmware_pinned_sweep_drops_foreign_policies(self):
        scenarios = expand_grid(
            victim="rop",
            backend="cosim",
            policy=["shadow-stack", "coarse"],
            policy_backend="firmware",
        )
        assert [s.policy for s in scenarios] == ["shadow-stack"]

    def test_policy_backend_sweep(self):
        """Sweeping the agent axis yields one firmware and one host
        cell for the shadow stack (distinct names)."""
        scenarios = expand_grid(
            victim="rop",
            backend="cosim",
            policy_backend=["firmware", "host"],
        )
        assert len(scenarios) == 2
        assert {s.resolved_policy_backend for s in scenarios} == {"firmware", "host"}

    def test_mixed_backend_sweep_deduplicates_reference_cells(self):
        """Cosim-only axes must not duplicate (or explode) reference
        scenarios — equivalent cells collapse to one."""
        scenarios = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            firmware=["irq", "polling"],
        )
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        assert sum(s.backend == "reference" for s in scenarios) == 1
        assert sum(s.backend == "cosim" for s in scenarios) == 2

    def test_typoed_field_value_raises(self):
        """Only the known cross-field incompatibility may be dropped; a
        bad name must not silently shrink the matrix."""
        with pytest.raises(ConfigError):
            expand_grid(victim=["rop", "jopp"], policy="shadow-stack")
        with pytest.raises(ConfigError):
            expand_grid(victim="rop", policy=["shadow-stack", "shdw"])

    def test_max_cycles_distinguishes_names(self):
        a = Scenario(victim="rop", backend=BACKEND_COSIM)
        b = Scenario(victim="rop", backend=BACKEND_COSIM, max_cycles=100_000)
        assert a.name != b.name


class TestSeeds:
    def test_derivation_deterministic(self):
        scenario = Scenario(victim="deep-recursion")
        assert derive_seed(7, scenario) == derive_seed(7, scenario)

    def test_campaign_seed_changes_scenario_seed(self):
        scenario = Scenario(victim="deep-recursion")
        assert derive_seed(1, scenario) != derive_seed(2, scenario)

    def test_distinct_scenarios_get_distinct_seeds(self):
        a = Scenario(victim="rop")
        b = Scenario(victim="benign")
        assert derive_seed(0, a) != derive_seed(0, b)

    def test_explicit_seed_wins(self):
        scenario = Scenario(victim="rop", seed=99)
        assert derive_seed(0, scenario) == 99


class TestMatrices:
    def test_default_matrix_size_and_diversity(self):
        scenarios = default_matrix()
        assert len(scenarios) >= 24
        assert {s.backend for s in scenarios} == {"reference", "cosim"}
        assert sum(s.expected_detected for s in scenarios) >= 5
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)

    def test_smoke_matrix_small_but_covering(self):
        scenarios = smoke_matrix()
        assert 5 <= len(scenarios) <= len(default_matrix())
        assert any(s.backend == "cosim" for s in scenarios)
        assert any(s.attack for s in scenarios)
        assert any(s.attack is None for s in scenarios)

    def test_full_matrix_sweeps_the_scaleout_axes(self):
        scenarios = resolve_matrix("full")
        assert len(scenarios) > len(default_matrix())
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        cosim = [s for s in scenarios if s.backend == "cosim"]
        # queue depths × firmware variants actually sweep…
        assert {s.queue_depth for s in cosim} >= {1, 4, 8}
        assert {s.firmware for s in cosim} == {"irq", "polling"}
        assert any(s.blocking for s in cosim)
        assert any(s.fabric == "optimized" for s in cosim)
        # …and seed-swept attack placement covers every seeded victim
        # on both backends.
        seeded = {name for name, spec in VICTIMS.items() if spec.seeded}
        assert seeded, "registry must keep at least one seeded victim"
        for backend in ("reference", "cosim"):
            swept = {
                s.victim for s in scenarios
                if s.backend == backend and s.seed and s.victim in seeded
            }
            assert swept == seeded, backend

    def test_resolve_unknown_matrix(self):
        with pytest.raises(ConfigError):
            resolve_matrix("nope")

    def test_registry_names_resolvable(self):
        for name in MATRICES:
            assert resolve_matrix(name)
