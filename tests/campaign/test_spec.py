"""Scenario spec, registries, grid expansion and seed derivation."""

import pytest

from repro.campaign.spec import (
    BACKEND_COSIM,
    BACKEND_REFERENCE,
    MATRICES,
    POLICY_DETECTS,
    REFERENCE_POLICIES,
    VICTIMS,
    Scenario,
    default_matrix,
    derive_seed,
    expand_grid,
    expected_detection,
    resolve_matrix,
    smoke_matrix,
    spec_key,
)
from repro.errors import ConfigError


class TestScenario:
    def test_defaults_valid(self):
        scenario = Scenario(victim="rop")
        assert scenario.backend == BACKEND_REFERENCE
        assert scenario.expected_detected

    def test_unknown_victim_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="nonexistent")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="rop", policy="magic")

    def test_cosim_accepts_any_enforcing_policy(self):
        """The policy host lifts the old firmware-only restriction:
        every registered enforcing policy resolves on the cosim
        backend (shadow-stack to the firmware, the rest to the host)."""
        for policy in REFERENCE_POLICIES:
            if policy == "none":
                continue
            scenario = Scenario(victim="rop", backend=BACKEND_COSIM,
                                policy=policy)
            expected = "firmware" if policy == "shadow-stack" else "host"
            assert scenario.resolved_policy_backend == expected, policy

    def test_cosim_policy_none_still_rejected(self):
        with pytest.raises(ConfigError, match="enforcing policy"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="none")

    def test_cosim_firmware_backend_rejects_foreign_policy(self):
        """Explicitly pinning the firmware backend to a policy the RV32
        firmware does not implement must fail loudly."""
        with pytest.raises(ConfigError, match="shadow stack"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="coarse",
                     policy_backend="firmware")

    def test_unknown_policy_rejected_on_cosim_too(self):
        """Lifting the restriction must not weaken name validation: a
        genuinely unknown policy still raises, on either backend."""
        with pytest.raises(ConfigError, match="unknown policy"):
            Scenario(victim="rop", backend=BACKEND_COSIM, policy="magic")

    def test_unknown_policy_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy backend"):
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy_backend="hardware")

    def test_host_backend_names_distinct_from_firmware(self):
        firmware = Scenario(victim="rop", backend=BACKEND_COSIM)
        host = Scenario(victim="rop", backend=BACKEND_COSIM,
                        policy_backend="host")
        assert firmware.name == "cosim/rop/shadow-stack/irq/q8"
        assert host.name == "cosim/rop/shadow-stack/host/irq/q8"

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ConfigError):
            Scenario(victim="rop", queue_depth=0)

    def test_name_is_stable_and_parameter_bearing(self):
        a = Scenario(victim="rop", backend=BACKEND_COSIM, queue_depth=1,
                     blocking=True)
        assert a.name == "cosim/rop/shadow-stack/irq/q1/blocking"
        assert Scenario(victim="rop").name == "reference/rop/shadow-stack"


class TestRegistry:
    def test_every_victim_has_symbols_resolvable(self):
        """Entry-point metadata must name real labels in the program."""
        import random
        from repro.system.addresses import AddressMap

        addresses = AddressMap()
        for spec in VICTIMS.values():
            program = spec.builder(addresses, random.Random(1))
            for symbol in spec.entry_points + spec.function_entries:
                assert symbol in program.symbols, (spec.name, symbol)

    def test_attack_classes_all_covered_by_some_policy(self):
        attacks = {spec.attack for spec in VICTIMS.values() if spec.attack}
        caught = set().union(*POLICY_DETECTS.values())
        assert attacks == caught

    def test_composite_dominates_all_policies(self):
        for policy, detects in POLICY_DETECTS.items():
            assert detects <= POLICY_DETECTS["composite"]

    def test_expected_detection_benign_always_false(self):
        for victim, spec in VICTIMS.items():
            if spec.attack is None:
                for policy in REFERENCE_POLICIES:
                    assert not expected_detection(victim, policy)


class TestGridExpansion:
    def test_cartesian_product(self):
        scenarios = expand_grid(victim=["rop", "benign"],
                                policy=["shadow-stack", "coarse"])
        assert len(scenarios) == 4

    def test_scalars_promoted(self):
        scenarios = expand_grid(victim="rop", backend="cosim",
                                queue_depth=[1, 8])
        assert len(scenarios) == 2

    def test_backend_ignored_axis_collapses(self):
        """queue_depth is cosim-only: sweeping it on the reference
        backend yields one scenario, not redundant copies."""
        assert len(expand_grid(victim="rop", queue_depth=[1, 8])) == 1

    def test_invalid_combinations_dropped(self):
        scenarios = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            policy=["shadow-stack", "coarse", "none"],
        )
        # cosim×none is invalid and silently dropped; cosim×coarse now
        # resolves to the policy host and stays.
        assert len(scenarios) == 5
        assert sum(s.backend == "cosim" for s in scenarios) == 2

    def test_firmware_pinned_sweep_drops_foreign_policies(self):
        scenarios = expand_grid(
            victim="rop",
            backend="cosim",
            policy=["shadow-stack", "coarse"],
            policy_backend="firmware",
        )
        assert [s.policy for s in scenarios] == ["shadow-stack"]

    def test_policy_backend_sweep(self):
        """Sweeping the agent axis yields one firmware and one host
        cell for the shadow stack (distinct names)."""
        scenarios = expand_grid(
            victim="rop",
            backend="cosim",
            policy_backend=["firmware", "host"],
        )
        assert len(scenarios) == 2
        assert {s.resolved_policy_backend for s in scenarios} == {"firmware", "host"}

    def test_mixed_backend_sweep_deduplicates_reference_cells(self):
        """Cosim-only axes must not duplicate (or explode) reference
        scenarios — equivalent cells collapse to one."""
        scenarios = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            firmware=["irq", "polling"],
        )
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        assert sum(s.backend == "reference" for s in scenarios) == 1
        assert sum(s.backend == "cosim" for s in scenarios) == 2

    def test_typoed_field_value_raises(self):
        """Only the known cross-field incompatibility may be dropped; a
        bad name must not silently shrink the matrix."""
        with pytest.raises(ConfigError):
            expand_grid(victim=["rop", "jopp"], policy="shadow-stack")
        with pytest.raises(ConfigError):
            expand_grid(victim="rop", policy=["shadow-stack", "shdw"])

    def test_max_cycles_distinguishes_names(self):
        a = Scenario(victim="rop", backend=BACKEND_COSIM)
        b = Scenario(victim="rop", backend=BACKEND_COSIM, max_cycles=100_000)
        assert a.name != b.name


class TestSeeds:
    def test_derivation_deterministic(self):
        scenario = Scenario(victim="deep-recursion")
        assert derive_seed(7, scenario) == derive_seed(7, scenario)

    def test_campaign_seed_changes_scenario_seed(self):
        scenario = Scenario(victim="deep-recursion")
        assert derive_seed(1, scenario) != derive_seed(2, scenario)

    def test_distinct_scenarios_get_distinct_seeds(self):
        a = Scenario(victim="rop")
        b = Scenario(victim="benign")
        assert derive_seed(0, a) != derive_seed(0, b)

    def test_explicit_seed_wins(self):
        scenario = Scenario(victim="rop", seed=99)
        assert derive_seed(0, scenario) == 99


class TestMatrices:
    def test_default_matrix_size_and_diversity(self):
        scenarios = default_matrix()
        assert len(scenarios) >= 24
        assert {s.backend for s in scenarios} == {"reference", "cosim"}
        assert sum(s.expected_detected for s in scenarios) >= 5
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)

    def test_smoke_matrix_small_but_covering(self):
        scenarios = smoke_matrix()
        assert 5 <= len(scenarios) <= len(default_matrix())
        assert any(s.backend == "cosim" for s in scenarios)
        assert any(s.attack for s in scenarios)
        assert any(s.attack is None for s in scenarios)

    def test_full_matrix_sweeps_the_scaleout_axes(self):
        scenarios = resolve_matrix("full")
        assert len(scenarios) > len(default_matrix())
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)
        cosim = [s for s in scenarios if s.backend == "cosim"]
        # queue depths × firmware variants actually sweep…
        assert {s.queue_depth for s in cosim} >= {1, 4, 8}
        assert {s.firmware for s in cosim} == {"irq", "polling"}
        assert any(s.blocking for s in cosim)
        assert any(s.fabric == "optimized" for s in cosim)
        # …and seed-swept attack placement covers every seeded victim
        # on both backends.
        seeded = {name for name, spec in VICTIMS.items() if spec.seeded}
        assert seeded, "registry must keep at least one seeded victim"
        for backend in ("reference", "cosim"):
            swept = {
                s.victim for s in scenarios
                if s.backend == backend and s.seed and s.victim in seeded
            }
            assert swept == seeded, backend

    def test_resolve_unknown_matrix(self):
        with pytest.raises(ConfigError):
            resolve_matrix("nope")

    def test_registry_names_resolvable(self):
        for name in MATRICES:
            assert resolve_matrix(name)


class TestSpecHash:
    """Stability contract of the store key (``spec_key``): invariant
    under equivalent-spec round-trips, sensitive to every axis."""

    def test_deterministic(self):
        scenario = Scenario(victim="rop", backend=BACKEND_COSIM)
        assert spec_key(scenario) == spec_key(scenario)
        assert len(spec_key(scenario)) == 64

    def test_canonical_is_json_round_trip_stable(self):
        """Dict ordering must not matter: the canonical spec survives a
        serialize/parse cycle and a key-shuffled rebuild unchanged."""
        import json as json_mod

        scenario = Scenario(victim="rop", backend=BACKEND_COSIM,
                            policy="composite", queue_depth=4)
        canonical = scenario.canonical()
        round_trip = json_mod.loads(json_mod.dumps(canonical))
        assert round_trip == canonical
        shuffled = dict(reversed(list(canonical.items())))
        assert (json_mod.dumps(shuffled, sort_keys=True)
                == json_mod.dumps(canonical, sort_keys=True))

    def test_equivalent_specs_hash_equal(self):
        """Axes the cell does not consume are canonicalised away:
        an explicit policy backend equal to the auto-resolution, and
        cosim-only knobs on a reference cell, must not split the key."""
        auto = Scenario(victim="rop", backend=BACKEND_COSIM,
                        policy="composite", policy_backend="auto")
        host = Scenario(victim="rop", backend=BACKEND_COSIM,
                        policy="composite", policy_backend="host")
        assert spec_key(auto) == spec_key(host)

        irq = Scenario(victim="rop", firmware="irq")
        polling = Scenario(victim="rop", firmware="polling")
        assert irq.backend == BACKEND_REFERENCE
        assert spec_key(irq) == spec_key(polling)

    def test_every_axis_flip_changes_the_hash(self):
        base = Scenario(victim="rop", backend=BACKEND_COSIM,
                        policy="composite")
        key = spec_key(base)
        flipped = [
            Scenario(victim="jop", backend=BACKEND_COSIM,
                     policy="composite"),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="shadow-stack"),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", queue_depth=4),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", lossy=True),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", fault_plan="drop-first"),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", seed=7),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", n_harts=2),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", n_harts=2, defense=True),
            Scenario(victim="rop", backend=BACKEND_COSIM,
                     policy="composite", n_harts=2,
                     hart_victims=("jop",)),
        ]
        keys = [spec_key(s) for s in flipped]
        assert key not in keys
        assert len(set(keys)) == len(keys)

    def test_campaign_seed_is_part_of_the_key(self):
        scenario = Scenario(victim="rop", backend=BACKEND_COSIM)
        assert spec_key(scenario, 0) != spec_key(scenario, 1)

    def test_matrix_keys_injective(self):
        """Every registered matrix maps to pairwise-distinct keys."""
        for name in MATRICES:
            scenarios = resolve_matrix(name)
            keys = {spec_key(s) for s in scenarios}
            assert len(keys) == len(scenarios), name


class TestNameCollisions:
    """``expand_grid`` must never silently drop a *semantically
    distinct* cell that happens to share a scenario name."""

    def test_equivalent_cells_still_collapse(self):
        scenarios = expand_grid(
            victim="rop",
            backend=["reference", "cosim"],
            firmware=["irq", "polling"],
        )
        assert sum(s.backend == "reference" for s in scenarios) == 1

    def test_distinct_specs_sharing_a_name_raise(self, monkeypatch):
        """Victims whose names join ambiguously with the multi-hart
        '+'-separator produce equal scenario names from different
        resolved specs — that must raise, listing the duplicates."""
        import dataclasses

        monkeypatch.setitem(
            VICTIMS, "rop+rop",
            dataclasses.replace(VICTIMS["rop"], name="rop+rop"))
        monkeypatch.setitem(
            VICTIMS, "rop+benign",
            dataclasses.replace(VICTIMS["benign"], name="rop+benign"))
        with pytest.raises(ConfigError) as err:
            expand_grid(
                victim="rop",
                backend=BACKEND_COSIM,
                n_harts=3,
                hart_victims=[("rop+rop", "benign"), ("rop", "rop+benign")],
            )
        assert "collision" in str(err.value)
        assert "n3/rop+rop+benign" in str(err.value)
