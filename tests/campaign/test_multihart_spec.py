"""Multi-hart campaign cells: validation, naming, grids and execution.

The scenario layer must reject every inconsistent multi-hart cell with
a *typed* error (never silently fix it up), produce stable names for
the consistent ones, and the grid expander must drop — not raise on —
cross-field combinations that cannot exist (multi-hart on the reference
backend, firmware agents, unscoped fault plans).  A small N=2 run through the
real runner closes the loop: per-hart rows, aggregate verdict, and
engine invariance.
"""

import pytest

from repro.campaign.runner import run_scenario
from repro.campaign.spec import (
    Scenario,
    expand_grid,
    multihart_matrix,
    multihart_smoke_matrix,
    resolve_matrix,
)
from repro.errors import ConfigError, HartCountError, UnknownHartError
from repro.system.topology import MAX_HARTS


def _cell(**overrides):
    """A valid baseline multi-hart cell, tweaked per test."""
    kwargs = dict(victim="rop", backend="cosim", n_harts=2)
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestMultiHartValidation:
    @pytest.mark.parametrize("n", [0, -1, MAX_HARTS + 1, True, "2"])
    def test_bad_hart_count_rejected(self, n):
        with pytest.raises(HartCountError):
            _cell(n_harts=n)

    @pytest.mark.parametrize("attack_hart", [-1, 2, 7])
    def test_attack_hart_out_of_range(self, attack_hart):
        with pytest.raises(UnknownHartError) as excinfo:
            _cell(attack_hart=attack_hart)
        assert excinfo.value.hart_id == attack_hart
        assert excinfo.value.n_harts == 2

    def test_negative_stagger_rejected(self):
        with pytest.raises(ConfigError, match="stagger"):
            _cell(stagger=-1)

    def test_single_hart_rejects_multihart_knobs(self):
        with pytest.raises(ConfigError, match="hart_victims"):
            Scenario(victim="rop", backend="cosim", hart_victims=("benign",))
        with pytest.raises(ConfigError, match="stagger"):
            Scenario(victim="rop", backend="cosim", stagger=500)

    def test_reference_backend_rejected(self):
        with pytest.raises(ConfigError, match="cosim"):
            Scenario(victim="rop", backend="reference", n_harts=2)

    def test_firmware_agent_rejected(self):
        with pytest.raises(ConfigError, match="shadow context"):
            _cell(policy_backend="firmware")

    def test_unscoped_fault_plan_rejected(self):
        # Fault plans are allowed on multi-hart cells since the
        # cross-hart PR, but only hart-scoped: an unscoped plan would
        # silently fault hart 0.
        with pytest.raises(ConfigError, match="silently fault hart 0"):
            _cell(fault_plan="drop-first")
        assert _cell(fault_plan="drop-first", fault_hart=1).fault_hart == 1

    def test_hart_victims_length_must_be_n_minus_one(self):
        with pytest.raises(ConfigError, match="hart_victims"):
            _cell(n_harts=4, hart_victims=("benign",))

    def test_synthetic_victims_rejected(self):
        with pytest.raises(ConfigError, match="synthesized"):
            _cell(victim="synth-rop")
        with pytest.raises(ConfigError, match="synthesized"):
            _cell(hart_victims=("synth-benign",))

    def test_unknown_peer_victim_rejected(self):
        with pytest.raises(ConfigError, match="unknown victim"):
            _cell(hart_victims=("nope",))

    def test_valid_cells_accepted(self):
        assert _cell().multihart
        assert _cell(n_harts=MAX_HARTS).n_harts == MAX_HARTS
        assert _cell(n_harts=4, attack_hart=3, stagger=750,
                     hart_victims=("jop", "benign", "deep-recursion"))


class TestResolution:
    def test_auto_backend_resolves_to_host(self):
        assert _cell().resolved_policy_backend == "host"
        assert _cell(policy="composite").resolved_policy_backend == "host"

    def test_single_hart_auto_still_prefers_firmware(self):
        single = Scenario(victim="rop", backend="cosim")
        assert single.resolved_policy_backend == "firmware"

    def test_resolved_hart_victims_default_to_benign(self):
        assert _cell(n_harts=4).resolved_hart_victims == ("benign",) * 3
        assert _cell(hart_victims=("jop",)).resolved_hart_victims == ("jop",)
        assert Scenario(victim="rop").resolved_hart_victims == ()

    def test_victim_for_hart_maps_around_attack_hart(self):
        cell = _cell(n_harts=4, attack_hart=2,
                     hart_victims=("benign", "jop", "deep-recursion"))
        assert [cell.victim_for_hart(h) for h in range(4)] == [
            "benign", "jop", "rop", "deep-recursion"
        ]
        with pytest.raises(UnknownHartError):
            cell.victim_for_hart(4)

    def test_single_hart_victim_for_hart_is_the_victim(self):
        cell = Scenario(victim="rop")
        assert cell.victim_for_hart(0) == "rop"


class TestNaming:
    def test_name_carries_multihart_axes(self):
        name = _cell(n_harts=4, attack_hart=2, stagger=750,
                     hart_victims=("jop", "benign", "deep-recursion")).name
        assert "n4" in name
        assert "jop+benign+deep-recursion" in name
        assert "ah2" in name
        assert "g750" in name

    def test_name_omits_default_axes(self):
        name = _cell().name
        assert "n2" in name and "benign" in name
        assert "ah" not in name and "/g" not in name

    def test_single_hart_names_are_stable(self):
        """Legacy cells must keep their historic names (artifact and
        seed-derivation compatibility)."""
        cell = Scenario(victim="rop", backend="cosim")
        assert cell.name == "cosim/rop/shadow-stack/irq/q8"

    def test_names_are_unique_across_matrix(self):
        names = [s.name for s in multihart_matrix()]
        assert len(names) == len(set(names))


class TestGridExpansion:
    def test_hart_victims_single_tuple_is_one_axis_value(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=2, hart_victims=("jop",)
        )
        assert len(cells) == 1
        assert cells[0].hart_victims == ("jop",)

    def test_hart_victims_list_of_tuples_sweeps(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=2,
            hart_victims=[("jop",), ("benign",)],
        )
        assert [c.hart_victims for c in cells] == [("jop",), ("benign",)]

    def test_hart_victims_axis_rejects_scalars(self):
        with pytest.raises(ConfigError, match="hart_victims"):
            expand_grid(victim="rop", backend="cosim", n_harts=2,
                        hart_victims="jop")

    def test_mixed_backend_sweep_drops_reference_multihart(self):
        cells = expand_grid(
            victim="rop", backend=["reference", "cosim"], n_harts=[1, 2]
        )
        multi = [c for c in cells if c.multihart]
        assert multi and all(c.backend == "cosim" for c in multi)
        assert any(c.backend == "reference" and not c.multihart for c in cells)

    def test_firmware_agent_cells_dropped(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=2,
            policy_backend=["firmware", "host"],
        )
        assert [c.policy_backend for c in cells] == ["host"]

    def test_fault_plan_cells_dropped(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=[1, 2],
            fault_plan=[None, "drop-first"],
        )
        assert all(c.fault_plan is None or not c.multihart for c in cells)
        assert any(c.multihart for c in cells)

    def test_mismatched_hart_victims_cells_dropped(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=[2, 4],
            hart_victims=("jop",),
        )
        assert [c.n_harts for c in cells] == [2]

    def test_out_of_range_attack_hart_cells_dropped(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=[2, 4], attack_hart=[0, 2]
        )
        assert all(c.attack_hart < c.n_harts for c in cells)
        assert {(c.n_harts, c.attack_hart) for c in cells} == {
            (2, 0), (4, 0), (4, 2)
        }

    def test_multihart_knobs_drop_single_hart_cells(self):
        cells = expand_grid(
            victim="rop", backend="cosim", n_harts=[1, 2], stagger=[0, 750]
        )
        assert all(not c.stagger or c.multihart for c in cells)


class TestNamedMatrices:
    @pytest.mark.parametrize("name", ["multihart", "multihart-smoke"])
    def test_matrices_resolve(self, name):
        cells = resolve_matrix(name)
        assert cells
        assert all(c.multihart for c in cells)
        assert all(c.backend == "cosim" for c in cells)
        assert all(c.resolved_policy_backend == "host" for c in cells)

    def test_full_matrix_covers_the_axes(self):
        cells = multihart_matrix()
        assert {c.n_harts for c in cells} == {2, 4, 8}
        assert any(c.stagger for c in cells)
        assert any(c.attack_hart for c in cells)
        assert any(c.hart_victims for c in cells)

    def test_smoke_matrix_is_small(self):
        smoke = multihart_smoke_matrix()
        assert 0 < len(smoke) <= 8
        assert {c.n_harts for c in smoke} == {2, 4}


class TestRunScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(_cell(), campaign_seed=7)

    def test_result_carries_multihart_columns(self, result):
        assert result["n_harts"] == 2
        assert result["attack_hart"] == 0
        assert result["hart_victims"] == ["benign"]
        assert result["stagger"] == 0

    def test_per_hart_rows_and_aggregate_verdict(self, result):
        rows = result["per_hart"]
        assert [row["hart"] for row in rows] == [0, 1]
        assert rows[0]["victim"] == "rop" and rows[0]["detected"]
        assert rows[1]["victim"] == "benign" and not rows[1]["detected"]
        assert result["detected"] and result["expectation_met"]
        assert all(row["expectation_met"] for row in rows)

    def test_engines_agree_through_the_runner(self, result):
        batched = run_scenario(_cell(), campaign_seed=7, sim_mode="batched")
        stable = {k: v for k, v in result.items() if k != "wall_time_sec"}
        assert stable == {
            k: v for k, v in batched.items() if k != "wall_time_sec"
        }

    def test_single_hart_rows_are_null(self):
        single = Scenario(victim="benign", backend="cosim")
        result = run_scenario(single, campaign_seed=7)
        assert result["n_harts"] == 1
        assert result["per_hart"] is None
        assert result["attack_hart"] is None
        assert result["hart_victims"] is None
