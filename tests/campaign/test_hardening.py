"""Hardened campaign runner: crashes, timeouts, retries, resume.

Failure injection uses the runner's environment test hooks (the only
way to make a *real* worker process die mid-sweep without mocking), so
these tests exercise exactly the code paths a production campaign hits
when a worker segfaults, hangs or flakes.
"""

import json

import pytest

from repro.campaign.checkpoint import (
    ResultLog,
    check_manifest,
    load_results,
    manifest_payload,
    write_manifest,
)
from repro.campaign.cli import main
from repro.campaign.runner import (
    ENV_CRASH_SCENARIO,
    ENV_FLAKY_DIR,
    ENV_FLAKY_SCENARIO,
    ENV_HANG_SCENARIO,
    run_campaign,
)
from repro.campaign.spec import expand_grid
from repro.errors import ConfigError, ScenarioTimeout, WorkerCrash


@pytest.fixture
def matrix():
    # Reference-backend scenarios: fast enough to run dozens of times.
    return expand_grid(
        victim=["benign", "rop", "jop"],
        policy=["shadow-stack"],
    )


class TestErrorTypes:
    def test_scenario_timeout_carries_context(self):
        err = ScenarioTimeout("ref/rop", 2.5)
        assert err.scenario_name == "ref/rop"
        assert err.seconds == 2.5
        assert "2.5" in str(err)

    def test_worker_crash_carries_exitcode(self):
        err = WorkerCrash("ref/rop", exitcode=-9)
        assert err.scenario_name == "ref/rop"
        assert err.exitcode == -9
        assert "ref/rop" in str(err)


class TestArgumentValidation:
    def test_jobs_below_one_rejected(self, matrix):
        with pytest.raises(ConfigError, match="jobs"):
            run_campaign(matrix, jobs=0)

    def test_negative_retries_rejected(self, matrix):
        with pytest.raises(ConfigError, match="retries"):
            run_campaign(matrix, retries=-1)

    def test_negative_backoff_rejected(self, matrix):
        with pytest.raises(ConfigError, match="backoff"):
            run_campaign(matrix, backoff=-0.1)

    def test_cli_rejects_jobs_zero(self):
        with pytest.raises(SystemExit):
            main(["run", "--matrix", "smoke", "--jobs", "0"])

    def test_cli_rejects_non_integer_jobs(self):
        with pytest.raises(SystemExit):
            main(["run", "--matrix", "smoke", "--jobs", "two"])

    def test_cli_resume_conflicts_with_no_artifacts(self, tmp_path, capsys):
        code = main(["run", "--matrix", "smoke", "--resume", str(tmp_path),
                     "--no-artifacts"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "no-artifacts" in captured.err


class TestWorkerCrashQuarantine:
    def test_crashed_scenario_recorded_sweep_survives(self, matrix,
                                                      monkeypatch):
        victim_name = matrix[1].name
        monkeypatch.setenv(ENV_CRASH_SCENARIO, victim_name)
        payload = run_campaign(matrix, jobs=2, campaign_seed=3)
        by_name = {r["name"]: r for r in payload["scenarios"]}
        assert payload["scenario_count"] == len(matrix)
        crashed = by_name[victim_name]
        assert crashed["status"] == "crashed"
        assert crashed["detected"] is None
        assert crashed["expectation_met"] is None
        assert "WorkerCrash" in crashed["error"] or victim_name in crashed["error"]
        for name, result in by_name.items():
            if name != victim_name:
                assert result["status"] == "ok"
                assert result["expectation_met"]

    def test_crashed_rows_excluded_from_detection_counts(self, matrix,
                                                         monkeypatch):
        from repro.campaign.aggregate import finalize

        monkeypatch.setenv(ENV_CRASH_SCENARIO, matrix[0].name)
        payload = finalize(run_campaign(matrix, jobs=2, campaign_seed=3))
        summary = payload["summary"]
        assert summary["incomplete"] == {"crashed": 1}
        total_classified = sum(
            summary["counts"][k] for k in
            ("true_positives", "false_positives",
             "true_negatives", "false_negatives")
        )
        assert total_classified == len(matrix) - 1


class TestScenarioTimeout:
    def test_hung_worker_killed_and_recorded(self, matrix, monkeypatch):
        hung_name = matrix[0].name
        monkeypatch.setenv(ENV_HANG_SCENARIO, hung_name)
        payload = run_campaign(matrix, jobs=2, campaign_seed=3, timeout=1.0)
        by_name = {r["name"]: r for r in payload["scenarios"]}
        assert by_name[hung_name]["status"] == "timeout"
        assert "1.0" in by_name[hung_name]["error"]
        ok = [r for r in payload["scenarios"] if r["status"] == "ok"]
        assert len(ok) == len(matrix) - 1


class TestRetries:
    def _flaky_env(self, monkeypatch, tmp_path, name):
        marker_dir = tmp_path / "flaky"
        marker_dir.mkdir()
        monkeypatch.setenv(ENV_FLAKY_SCENARIO, name)
        monkeypatch.setenv(ENV_FLAKY_DIR, str(marker_dir))
        return marker_dir

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_flaky_scenario_recovers_with_retry(self, matrix, monkeypatch,
                                                tmp_path, jobs):
        marker_dir = self._flaky_env(monkeypatch, tmp_path, matrix[2].name)
        payload = run_campaign(matrix, jobs=jobs, campaign_seed=3,
                               retries=1, backoff=0.01)
        assert all(r["status"] == "ok" for r in payload["scenarios"])
        assert all(r["expectation_met"] for r in payload["scenarios"])
        # First attempt failed, second succeeded.
        assert len(list(marker_dir.iterdir())) == 2

    def test_exhausted_retries_record_error_status(self, matrix, monkeypatch,
                                                   tmp_path):
        self._flaky_env(monkeypatch, tmp_path, matrix[2].name)
        payload = run_campaign(matrix, jobs=1, campaign_seed=3, retries=0)
        by_name = {r["name"]: r for r in payload["scenarios"]}
        failed = by_name[matrix[2].name]
        assert failed["status"] == "error"
        assert "SimulationError" in failed["error"]
        assert sum(r["status"] == "ok" for r in payload["scenarios"]) == 2

    def test_parallel_equals_serial_with_failures(self, matrix, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv(ENV_FLAKY_SCENARIO, matrix[1].name)
        monkeypatch.setenv(ENV_FLAKY_DIR, str(tmp_path))
        serial = run_campaign(matrix, jobs=1, campaign_seed=3, retries=0)
        for path in tmp_path.iterdir():
            path.unlink()
        parallel = run_campaign(matrix, jobs=2, campaign_seed=3, retries=0)
        for payload in (serial, parallel):
            payload.pop("timing")
            payload.pop("jobs")
        assert serial == parallel


class TestCheckpoint:
    def test_result_log_round_trips(self, tmp_path):
        path = tmp_path / "results.jsonl"
        rows = [{"name": f"s{i}", "status": "ok", "detected": bool(i % 2)}
                for i in range(5)]
        with ResultLog(str(path)) as log:
            for row in rows:
                log.append(row)
        assert load_results(str(path)) == rows

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultLog(str(path)) as log:
            log.append({"name": "a", "status": "ok"})
            log.append({"name": "b", "status": "ok"})
        with open(path, "a") as fh:
            fh.write('{"name": "c", "stat')  # killed mid-write
        assert [r["name"] for r in load_results(str(path))] == ["a", "b"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"name": "a"}\nnot json\n{"name": "b"}\n')
        with pytest.raises(ConfigError, match="corrupt checkpoint"):
            load_results(str(path))

    def test_missing_file_is_empty(self, tmp_path):
        assert load_results(str(tmp_path / "absent.jsonl")) == []

    def test_manifest_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        write_manifest(path, manifest_payload("smoke", 0, None, 10))
        check_manifest(path, manifest_payload("smoke", 0, None, 10))
        with pytest.raises(ConfigError, match="resume mismatch"):
            check_manifest(path, manifest_payload("smoke", 1, None, 10))
        with pytest.raises(ConfigError, match="resume mismatch"):
            check_manifest(path, manifest_payload("faults", 0, None, 10))

    def test_missing_manifest_refused(self, tmp_path):
        with pytest.raises(ConfigError, match="no manifest"):
            check_manifest(str(tmp_path / "manifest.json"),
                           manifest_payload("smoke", 0, None, 1))


class TestResumeEndToEnd:
    """Kill a campaign halfway, resume, compare with the straight run."""

    def _strip(self, payload):
        return {k: v for k, v in payload.items() if k not in ("timing", "jobs")}

    def test_resume_completes_to_identical_aggregate(self, tmp_path, capsys):
        straight_dir = tmp_path / "straight"
        resumed_dir = tmp_path / "resumed"

        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--out", str(straight_dir)]) == 0
        straight = json.loads((straight_dir / "campaign.json").read_text())

        # Re-run into a second directory, then simulate a crash: keep
        # only half the checkpoint, drop the final artifacts.
        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--out", str(resumed_dir)]) == 0
        lines = (resumed_dir / "results.jsonl").read_text().splitlines()
        keep = len(lines) // 2
        (resumed_dir / "results.jsonl").write_text(
            "\n".join(lines[:keep]) + "\n"
        )
        (resumed_dir / "campaign.json").unlink()

        capsys.readouterr()
        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--resume", str(resumed_dir)]) == 0
        out = capsys.readouterr().out
        assert f"resuming: {keep} scenario(s) checkpointed" in out

        resumed = json.loads((resumed_dir / "campaign.json").read_text())
        assert self._strip(resumed) == self._strip(straight)
        # The compacted checkpoint holds every scenario exactly once.
        names = [r["name"]
                 for r in load_results(str(resumed_dir / "results.jsonl"))]
        assert sorted(names) == [r["name"] for r in straight["scenarios"]]

    def test_forced_crash_resume_keeps_per_hart_rows_exact(
            self, tmp_path, monkeypatch):
        """A worker crash on a multi-hart adversarial cell, then a
        resume, must reproduce the straight run's per-hart rows exactly:
        every scenario present once, every hart's row present once, no
        duplicated or lost rows, contracts intact."""
        crash_name = ("cosim/rop/shadow-stack/host/irq/q8/"
                      "fault-xhart-spoof/fh1/guard/n2/deep-recursion")
        straight_dir = tmp_path / "straight"
        crashed_dir = tmp_path / "crashed"

        assert main(["run", "--matrix", "xhart-smoke", "--jobs", "1",
                     "--out", str(straight_dir)]) == 0
        straight = json.loads((straight_dir / "campaign.json").read_text())
        assert crash_name in [r["name"] for r in straight["scenarios"]]

        monkeypatch.setenv(ENV_CRASH_SCENARIO, crash_name)
        # Exit 1: the crashed row leaves the campaign incomplete.
        assert main(["run", "--matrix", "xhart-smoke", "--jobs", "2",
                     "--out", str(crashed_dir)]) == 1
        rows = load_results(str(crashed_dir / "results.jsonl"))
        assert [r["name"] for r in rows if r["status"] == "crashed"] \
            == [crash_name]

        monkeypatch.delenv(ENV_CRASH_SCENARIO)
        (crashed_dir / "campaign.json").unlink()
        assert main(["run", "--matrix", "xhart-smoke", "--jobs", "1",
                     "--resume", str(crashed_dir)]) == 0

        resumed = json.loads((crashed_dir / "campaign.json").read_text())
        by_name = {r["name"]: r for r in resumed["scenarios"]}
        assert len(by_name) == len(resumed["scenarios"])
        for ref in straight["scenarios"]:
            row = by_name[ref["name"]]
            assert row["status"] == "ok"
            assert [h["hart"] for h in row["per_hart"]] \
                == list(range(ref["n_harts"]))
            assert row["per_hart"] == ref["per_hart"]
            assert row["contract_ok"] == ref["contract_ok"]
        # The compacted checkpoint too: one row per scenario, each with
        # a full complement of per-hart rows.
        final_rows = load_results(str(crashed_dir / "results.jsonl"))
        assert sorted(r["name"] for r in final_rows) \
            == sorted(by_name)

    def test_resume_against_other_matrix_refused(self, tmp_path, capsys):
        out = tmp_path / "campaign"
        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--out", str(out)]) == 0
        code = main(["run", "--matrix", "synth-smoke", "--jobs", "1",
                     "--resume", str(out)])
        captured = capsys.readouterr()
        assert code == 2
        assert "error: resume mismatch" in captured.err
