"""The synth campaign tier: matrix shape, oracle-driven expectations,
serial-vs-sharded determinism and three-engine verdict agreement —
the ISSUE's acceptance criteria, as tests."""

import pytest

from repro.campaign.runner import run_campaign, run_scenario
from repro.campaign.spec import (
    SYNTH_SEEDS,
    SYNTH_VICTIMS,
    VICTIMS,
    Scenario,
    resolve_matrix,
    synth_smoke_matrix,
)
from repro.synth import bundle_for_seed
from repro.system.addresses import AddressMap

BASE = AddressMap().dram_base


class TestMatrixShape:
    def test_synth_matrix_reaches_the_scale_floor(self):
        scenarios = resolve_matrix("synth")
        assert len(scenarios) >= 200
        names = [s.name for s in scenarios]
        assert len(set(names)) == len(names)

    def test_synth_matrix_is_seed_swept_and_multi_backend(self):
        scenarios = resolve_matrix("synth")
        assert {s.victim for s in scenarios} == set(SYNTH_VICTIMS)
        assert {s.seed for s in scenarios} >= set(SYNTH_SEEDS)
        backends = {s.backend for s in scenarios}
        assert backends == {"reference", "cosim"}
        cosim_agents = {
            s.resolved_policy_backend for s in scenarios
            if s.backend == "cosim"
        }
        assert cosim_agents == {"firmware", "host"}

    def test_synth_smoke_is_a_small_subset(self):
        smoke = synth_smoke_matrix()
        assert 20 <= len(smoke) < len(resolve_matrix("synth"))
        assert any(s.backend == "cosim" for s in smoke)

    def test_registry_entries_are_first_class(self):
        for name in SYNTH_VICTIMS:
            spec = VICTIMS[name]
            assert spec.synthetic and spec.seeded
            assert spec.synth_family is not None


class TestOracleDrivenExpectations:
    def test_expected_source_is_the_oracle(self):
        result = run_scenario(Scenario(victim="synth-rop", seed=1))
        assert result["expected_source"] == "oracle"
        assert result["seeded"] is True

    def test_hand_written_victims_keep_the_table(self):
        result = run_scenario(Scenario(victim="rop"))
        assert result["expected_source"] == "table"

    def test_expectation_uses_the_per_program_verdict(self):
        """The recorded expectation equals the bundle's oracle verdict
        for the scenario's derived seed — not a class-level constant."""
        scenario = Scenario(victim="synth-jop", policy="coarse", seed=4)
        result = run_scenario(scenario)
        found = bundle_for_seed("jop", result["seed"], BASE)
        assert result["expected_detected"] == found.expected["coarse"]
        assert result["expectation_met"]


class TestAcceptance:
    """The ISSUE's acceptance bullet, executed."""

    @pytest.fixture(scope="class")
    def smoke_payload(self):
        return run_campaign(synth_smoke_matrix(), jobs=1, campaign_seed=0)

    def test_every_oracle_verdict_matches_simulation(self, smoke_payload):
        for result in smoke_payload["scenarios"]:
            assert result["expectation_met"], result["name"]

    def test_serial_equals_sharded(self):
        matrix = synth_smoke_matrix()
        serial = run_campaign(matrix, jobs=1, campaign_seed=9)
        sharded = run_campaign(matrix, jobs=2, campaign_seed=9)
        for payload in (serial, sharded):
            payload.pop("timing")
            payload.pop("jobs")
        assert serial == sharded

    @pytest.mark.parametrize("victim,policy,policy_backend", [
        ("synth-rop", "shadow-stack", "auto"),          # firmware agent
        ("synth-ret-to-callsite", "composite", "host"),  # policy host
        ("synth-benign", "crypto-return", "host"),
        ("synth-call-hijack", "forward-edge", "host"),
    ])
    def test_cosim_verdict_engine_independent_and_oracle_true(
        self, victim, policy, policy_backend
    ):
        """All three engines must produce the oracle's verdict (and the
        same cycle totals) on generated programs."""
        results = [
            run_scenario(
                Scenario(victim=victim, policy=policy, backend="cosim",
                         policy_backend=policy_backend, seed=2),
                sim_mode=mode,
            )
            for mode in ("busy", "event-driven", "batched")
        ]
        assert results[0] == results[1] == results[2]
        assert results[0]["expectation_met"]
