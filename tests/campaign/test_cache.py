"""Shard-level build cache: memoisation must never change a result.

The runner memoises assembled victim programs (keyed on victim × seed)
and firmware images (keyed on variant) per worker process.  These tests
assert the cache is purely an amortisation: cold, warm and disabled
runs produce identical artifacts and per-scenario seeds, and serial vs
sharded campaigns still agree.  They also pin the batched
``capture_commit_logs`` against a plain per-step reference loop.
"""

import random

import pytest

from repro.campaign import runner as runner_mod
from repro.campaign.runner import (
    SHARD_CACHE,
    capture_commit_logs,
    configure_shard_cache,
    run_campaign,
    run_scenario,
)
from repro.campaign.spec import VICTIMS, Scenario, expand_grid
from repro.core.filter import CfiFilter
from repro.cva6.scoreboard import ScoreboardEntry
from repro.errors import SimulationError
from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.system.addresses import AddressMap


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts cold and leaves the cache enabled."""
    configure_shard_cache(True)
    yield
    configure_shard_cache(True)


MIXED = [
    Scenario(victim="deep-recursion", policy="shadow-stack"),
    Scenario(victim="rop", policy="composite"),
    Scenario(victim="benign", backend="cosim"),
    Scenario(victim="rop", backend="cosim"),
]


class TestColdWarmDisabledEquivalence:
    def test_cold_equals_warm(self):
        cold = [run_scenario(s, campaign_seed=7) for s in MIXED]
        assert SHARD_CACHE.misses > 0
        warm = [run_scenario(s, campaign_seed=7) for s in MIXED]
        assert SHARD_CACHE.hits > 0
        assert cold == warm

    def test_disabled_equals_enabled(self):
        enabled = [run_scenario(s, campaign_seed=7) for s in MIXED]
        configure_shard_cache(False)
        disabled = [run_scenario(s, campaign_seed=7) for s in MIXED]
        assert SHARD_CACHE.hits == SHARD_CACHE.misses == 0
        assert enabled == disabled

    def test_per_scenario_seeds_unchanged_by_cache_state(self):
        seeds_enabled = [run_scenario(s)["seed"] for s in MIXED]
        configure_shard_cache(False)
        seeds_disabled = [run_scenario(s)["seed"] for s in MIXED]
        assert seeds_enabled == seeds_disabled


class TestCacheMechanics:
    def test_program_cache_is_seed_keyed(self):
        a = SHARD_CACHE.program("deep-recursion", 1)
        b = SHARD_CACHE.program("deep-recursion", 2)
        again = SHARD_CACHE.program("deep-recursion", 1)
        assert a is again, "warm hit must reuse the assembled image"
        assert a.data != b.data, "seeded victims vary with the seed"

    def test_cached_program_matches_fresh_build(self):
        cached = SHARD_CACHE.program("rop", 42)
        fresh = VICTIMS["rop"].builder(AddressMap(), random.Random(42))
        assert cached.data == fresh.data
        assert cached.symbols == fresh.symbols

    def test_firmware_cache_matches_fresh_build(self):
        from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware

        for variant in ("irq", "polling"):
            cached = SHARD_CACHE.firmware(variant)
            fresh = shadow_stack_firmware(
                variant, FirmwareLayout(AddressMap())
            ).data
            assert cached == fresh, variant

    def test_clear_resets_counters_and_entries(self):
        SHARD_CACHE.program("benign", 5)
        SHARD_CACHE.program("benign", 5)
        assert SHARD_CACHE.hits == 1 and SHARD_CACHE.misses == 1
        SHARD_CACHE.clear()
        assert SHARD_CACHE.hits == SHARD_CACHE.misses == 0
        SHARD_CACHE.program("benign", 5)
        assert SHARD_CACHE.misses == 1


class TestShardedDeterminismWithCache:
    def test_serial_equals_parallel_with_warm_shards(self):
        # Duplicate victims across the matrix so worker-local caches hit.
        matrix = expand_grid(
            victim=["benign", "rop", "deep-recursion"],
            policy=["shadow-stack", "coarse"],
        ) + expand_grid(victim=["benign", "rop"], backend="cosim")
        serial = run_campaign(matrix, jobs=1, campaign_seed=3)
        parallel = run_campaign(matrix, jobs=2, campaign_seed=3)
        for payload in (serial, parallel):
            payload.pop("timing")
            payload.pop("jobs")
        assert serial == parallel

    def test_sim_mode_does_not_change_results(self):
        matrix = expand_grid(victim=["benign", "rop"], backend="cosim")
        default = run_campaign(matrix, jobs=1)
        busy = run_campaign(matrix, jobs=1, sim_mode="busy")
        assert default["scenarios"] == busy["scenarios"]


class TestBatchedCaptureEquivalence:
    """capture_commit_logs free-runs through run_n windows; it must
    match a plain per-step loop bit for bit."""

    def _reference_capture(self, program, addresses, max_steps=400_000):
        bus = MemoryMap("host")
        bus.add(addresses.dram_base, Ram(addresses.dram_size), name="dram")
        bus.write_bytes(program.base, program.data)
        hart = Hart(MapPort(bus), Cva6Timing(), xlen=64, reset_pc=program.base)
        cfi_filter = CfiFilter()
        logs = []

        def observe(result) -> bool:
            entry = ScoreboardEntry.from_step(result)
            log = cfi_filter.examine(entry)
            if log is not None:
                logs.append(log)
            return False

        hart.run(max_steps=max_steps, until=observe)
        return logs, hart

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_matches_per_step_reference(self, victim):
        addresses = AddressMap()
        program = VICTIMS[victim].builder(addresses, random.Random(99))
        fast_logs, fast_hart = capture_commit_logs(program, addresses)
        ref_logs, ref_hart = self._reference_capture(program, addresses)
        assert fast_logs == ref_logs
        assert (fast_hart.cycle, fast_hart.instret, fast_hart.pc) == (
            ref_hart.cycle, ref_hart.instret, ref_hart.pc
        )
        assert fast_hart.regs.snapshot() == ref_hart.regs.snapshot()

    def test_runaway_program_still_raises(self):
        from repro.isa.asm import Assembler

        addresses = AddressMap()
        spin = Assembler(xlen=64).assemble(
            "main:\n    j main\n", base=addresses.dram_base
        )
        with pytest.raises(SimulationError):
            capture_commit_logs(spin, addresses, max_steps=1000)
