"""CLI and artifact-schema tests for ``python -m repro.campaign``."""

import csv
import json

import pytest

from repro.campaign.aggregate import CSV_FIELDS, render_report, to_csv, write_artifacts
from repro.campaign.cli import main
from repro.campaign.runner import RESULT_SCHEMA, run_campaign
from repro.campaign.spec import expand_grid


@pytest.fixture(scope="module")
def payload():
    from repro.campaign.aggregate import finalize

    matrix = expand_grid(
        victim=["benign", "rop", "jop"],
        policy=["shadow-stack", "composite"],
    )
    return finalize(run_campaign(matrix, jobs=1, campaign_seed=11))


class TestArtifacts:
    def test_json_schema(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        data = json.loads(paths["json"].read_text())
        assert data["schema"] == RESULT_SCHEMA
        assert data["scenario_count"] == len(data["scenarios"])
        for result in data["scenarios"]:
            for key in ("name", "victim", "policy", "backend", "detected",
                        "expected_detected", "expectation_met", "cycles"):
                assert key in result
        assert "counts" in data["summary"]
        assert "detection_matrix" in data["summary"]

    def test_csv_round_trip(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        with paths["csv"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == payload["scenario_count"]
        assert set(rows[0]) == set(CSV_FIELDS)

    def test_csv_text_has_header(self, payload):
        text = to_csv(payload["scenarios"])
        assert text.splitlines()[0].startswith("name,backend,victim")


class TestReport:
    def test_report_mentions_policies_and_totals(self, payload):
        report = render_report(payload)
        assert "shadow-stack" in report
        assert "composite" in report
        assert "FP=0" in report

    def test_report_renders_from_saved_artifact(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        saved = json.loads(paths["json"].read_text())
        assert render_report(saved) == render_report(payload)


class TestCli:
    def test_list(self, capsys):
        assert main(["list", "--matrix", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenarios in matrix 'smoke'" in out
        assert "expected=DETECT" in out

    def test_run_smoke_writes_artifacts(self, tmp_path, capsys):
        code = main(["run", "--matrix", "smoke", "--jobs", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "campaign.json").exists()
        assert (tmp_path / "campaign.csv").exists()
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        data = json.loads((tmp_path / "campaign.json").read_text())
        assert len(lines) == data["scenario_count"]
        assert data["summary"]["counts"]["false_positives"] == 0
        assert "detection matrix" in capsys.readouterr().out.lower()

    def test_report_command(self, tmp_path, capsys):
        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--artifact", str(tmp_path / "campaign.json")]) == 0
        assert "Campaign detection matrix" in capsys.readouterr().out
