"""CLI and artifact-schema tests for ``python -m repro.campaign``."""

import csv
import json

import pytest

from repro.campaign.aggregate import CSV_FIELDS, render_report, to_csv, write_artifacts
from repro.campaign.cli import main
from repro.campaign.runner import RESULT_SCHEMA, run_campaign
from repro.campaign.spec import expand_grid


@pytest.fixture(scope="module")
def payload():
    from repro.campaign.aggregate import finalize

    matrix = expand_grid(
        victim=["benign", "rop", "jop"],
        policy=["shadow-stack", "composite"],
    )
    return finalize(run_campaign(matrix, jobs=1, campaign_seed=11))


class TestArtifacts:
    def test_json_schema(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        data = json.loads(paths["json"].read_text())
        assert data["schema"] == RESULT_SCHEMA
        assert data["scenario_count"] == len(data["scenarios"])
        for result in data["scenarios"]:
            for key in ("name", "victim", "policy", "backend", "detected",
                        "expected_detected", "expectation_met", "cycles"):
                assert key in result
        assert "counts" in data["summary"]
        assert "detection_matrix" in data["summary"]

    def test_csv_round_trip(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        with paths["csv"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == payload["scenario_count"]
        assert set(rows[0]) == set(CSV_FIELDS)

    def test_csv_text_has_header(self, payload):
        text = to_csv(payload["scenarios"])
        assert text.splitlines()[0].startswith("name,backend,victim")


class TestReport:
    def test_report_mentions_policies_and_totals(self, payload):
        report = render_report(payload)
        assert "shadow-stack" in report
        assert "composite" in report
        assert "FP=0" in report

    def test_report_renders_from_saved_artifact(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        saved = json.loads(paths["json"].read_text())
        assert render_report(saved) == render_report(payload)


class TestSchemaStamp:
    def test_schema_version_stamped(self, payload):
        from repro.campaign.aggregate import SCHEMA_VERSION

        assert payload["schema_version"] == SCHEMA_VERSION == 1

    def test_stamp_survives_artifacts(self, payload, tmp_path):
        paths = write_artifacts(payload, tmp_path)
        data = json.loads(paths["json"].read_text())
        assert data["schema_version"] == 1


class TestCompare:
    @pytest.fixture(scope="class")
    def payload_b(self):
        from repro.campaign.aggregate import finalize

        matrix = expand_grid(
            victim=["benign", "rop", "jop", "call-hijack"],
            policy=["shadow-stack", "composite"],
        )
        return finalize(run_campaign(matrix, jobs=1, campaign_seed=11))

    def test_self_comparison_is_quiet(self, payload):
        from repro.campaign.aggregate import compare_payloads

        comparison = compare_payloads(payload, payload)
        assert comparison["verdict_flips"] == []
        assert comparison["detection_rate_delta"] == {}
        assert comparison["scenarios"]["added"] == []
        assert comparison["scenarios"]["removed"] == []

    def test_matrix_growth_reported_as_added(self, payload, payload_b):
        from repro.campaign.aggregate import compare_payloads

        comparison = compare_payloads(payload, payload_b)
        assert any("call-hijack" in name
                   for name in comparison["scenarios"]["added"])
        assert comparison["verdict_flips"] == []

    def test_verdict_flip_detected_and_rendered(self, payload):
        import copy

        from repro.campaign.aggregate import compare_payloads, render_comparison

        mutated = copy.deepcopy(payload)
        flipped = mutated["scenarios"][0]
        flipped["detected"] = not flipped["detected"]
        comparison = compare_payloads(payload, mutated)
        assert len(comparison["verdict_flips"]) == 1
        text = render_comparison(comparison)
        assert flipped["name"] in text
        assert "REGRESSION" in text or "ok" in text

    def test_schema_version_mismatch_refused(self, payload):
        import copy

        from repro.campaign.aggregate import compare_payloads

        stale = copy.deepcopy(payload)
        stale["schema_version"] = 0
        with pytest.raises(ValueError, match="schema_version"):
            compare_payloads(stale, payload)

    def test_cli_compare_command(self, payload, tmp_path, capsys):
        paths_a = write_artifacts(payload, tmp_path / "a")
        paths_b = write_artifacts(payload, tmp_path / "b")
        code = main(["report", "--compare", str(paths_a["json"]),
                     str(paths_b["json"])])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign comparison" in out
        assert "verdict flips: none" in out


class TestCompareDisjointSets:
    """``report --compare`` across campaigns whose scenario sets only
    partially overlap — or not at all.  Comparison pairs by name, so
    unmatched cells must land in added/removed (never crash, never
    count as flips)."""

    @pytest.fixture(scope="class")
    def payload_disjoint(self):
        from repro.campaign.aggregate import finalize

        matrix = expand_grid(
            victim=["fwd-jump", "indirect-clean"],
            policy=["forward-edge"],
        )
        return finalize(run_campaign(matrix, jobs=1, campaign_seed=11))

    def test_fully_disjoint_sets_compare_cleanly(self, payload,
                                                 payload_disjoint):
        from repro.campaign.aggregate import compare_payloads

        comparison = compare_payloads(payload, payload_disjoint)
        assert comparison["scenarios"]["common"] == 0
        assert len(comparison["scenarios"]["removed"]) == len(
            payload["scenarios"]
        )
        assert len(comparison["scenarios"]["added"]) == len(
            payload_disjoint["scenarios"]
        )
        assert comparison["verdict_flips"] == []
        assert comparison["latency"]["per_scenario_changes"] == []
        # No policy exists on both sides: no rate deltas, not a crash.
        assert comparison["detection_rate_delta"] == {}

    def test_fully_disjoint_sets_render(self, payload, payload_disjoint):
        from repro.campaign.aggregate import compare_payloads, render_comparison

        text = render_comparison(compare_payloads(payload, payload_disjoint))
        assert "0 common" in text
        assert "verdict flips: none" in text

    def test_shrunk_matrix_reported_as_removed(self, payload):
        from repro.campaign.aggregate import compare_payloads, finalize

        matrix = expand_grid(victim=["benign", "rop"],
                             policy=["shadow-stack"])
        subset = finalize(run_campaign(matrix, jobs=1, campaign_seed=11))
        comparison = compare_payloads(payload, subset)
        assert comparison["scenarios"]["common"] == len(subset["scenarios"])
        assert comparison["scenarios"]["added"] == []
        assert len(comparison["scenarios"]["removed"]) == (
            len(payload["scenarios"]) - len(subset["scenarios"])
        )
        assert comparison["verdict_flips"] == []

    def test_cli_compare_tolerates_disjoint_artifacts(
            self, payload, payload_disjoint, tmp_path, capsys):
        paths_a = write_artifacts(payload, tmp_path / "a")
        paths_b = write_artifacts(payload_disjoint, tmp_path / "b")
        code = main(["report", "--compare", str(paths_a["json"]),
                     str(paths_b["json"])])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 common" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list", "--matrix", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenarios in matrix 'smoke'" in out
        assert "expected=DETECT" in out

    def test_list_json(self, capsys):
        """Machine-readable listing: canonical spec, derived seed and
        stable spec hash per cell, so external tooling can enumerate
        the matrix without importing internals."""
        from repro.campaign.spec import derive_seed, resolve_matrix, spec_key

        assert main(["list", "--matrix", "smoke", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        scenarios = {s.name: s for s in resolve_matrix("smoke")}
        assert {entry["name"] for entry in listing} == set(scenarios)
        for entry in listing:
            scenario = scenarios[entry["name"]]
            assert entry["matrix"] == "smoke"
            assert entry["spec"] == json.loads(
                json.dumps(scenario.canonical()))
            assert entry["seed"] == derive_seed(0, scenario)
            assert entry["spec_hash"] == spec_key(scenario, 0)

    def test_list_json_seed_changes_hashes(self, capsys):
        main(["list", "--matrix", "smoke", "--json"])
        base = json.loads(capsys.readouterr().out)
        main(["list", "--matrix", "smoke", "--json", "--seed", "7"])
        seeded = json.loads(capsys.readouterr().out)
        assert all(a["spec_hash"] != b["spec_hash"]
                   for a, b in zip(base, seeded))

    def test_run_synth_smoke(self, tmp_path, capsys):
        """The synth tier end-to-end through the CLI: every generated
        scenario's simulated verdict matches the oracle (exit 0, no
        reproducers written)."""
        code = main(["run", "--matrix", "synth-smoke", "--jobs", "1",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "disagreed with the static oracle" not in out
        assert not (tmp_path / "reproducers").exists()
        data = json.loads((tmp_path / "campaign.json").read_text())
        assert data["summary"]["counts"]["expectations_missed"] == 0
        sources = {r["expected_source"] for r in data["scenarios"]}
        assert sources == {"oracle"}

    def test_run_smoke_writes_artifacts(self, tmp_path, capsys):
        code = main(["run", "--matrix", "smoke", "--jobs", "2",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "campaign.json").exists()
        assert (tmp_path / "campaign.csv").exists()
        lines = (tmp_path / "results.jsonl").read_text().splitlines()
        data = json.loads((tmp_path / "campaign.json").read_text())
        assert len(lines) == data["scenario_count"]
        assert data["summary"]["counts"]["false_positives"] == 0
        assert "detection matrix" in capsys.readouterr().out.lower()

    def test_report_command(self, tmp_path, capsys):
        assert main(["run", "--matrix", "smoke", "--jobs", "1",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--artifact", str(tmp_path / "campaign.json")]) == 0
        assert "Campaign detection matrix" in capsys.readouterr().out
