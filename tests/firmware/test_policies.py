"""Reference-policy tests: shadow stack (incl. authenticated spill),
forward-edge policy, composites, and hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commit_log import CommitLog
from repro.errors import ConfigError
from repro.firmware.policies import (
    CheckResult,
    CoarseGrainedPolicy,
    CompositePolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def call_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_j(op.OP_JAL, 1, 0x40),
                     next_address=pc + 4, target=target)


def indirect_call_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 1, 10, 0),
                     next_address=pc + 4, target=target)


def return_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 0, 1, 0),
                     next_address=pc + 4, target=target)


def jump_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 0, 10, 0),
                     next_address=pc + 4, target=target)


class TestShadowStackBasics:
    def test_matched_call_return_ok(self):
        policy = ShadowStackPolicy()
        assert policy.check(call_log(0x1000, 0x2000)) is CheckResult.OK
        assert policy.check(return_log(0x2010, 0x1004)) is CheckResult.OK
        assert policy.stats.violations == 0

    def test_mismatched_return_violates(self):
        policy = ShadowStackPolicy()
        policy.check(call_log(0x1000, 0x2000))
        assert policy.check(return_log(0x2010, 0xDEAD)) is CheckResult.VIOLATION

    def test_underflow_violates(self):
        policy = ShadowStackPolicy()
        assert policy.check(return_log(0x2010, 0x1004)) is CheckResult.VIOLATION

    def test_nested_calls_lifo(self):
        policy = ShadowStackPolicy()
        policy.check(call_log(0x1000, 0x2000))
        policy.check(call_log(0x2000, 0x3000))
        assert policy.check(return_log(0x3010, 0x2004)) is CheckResult.OK
        assert policy.check(return_log(0x2010, 0x1004)) is CheckResult.OK

    def test_out_of_order_return_violates(self):
        policy = ShadowStackPolicy()
        policy.check(call_log(0x1000, 0x2000))
        policy.check(call_log(0x2000, 0x3000))
        assert policy.check(return_log(0x3010, 0x1004)) is CheckResult.VIOLATION

    def test_indirect_jump_unconstrained(self):
        policy = ShadowStackPolicy()
        assert policy.check(jump_log(0x1000, 0x9999)) is CheckResult.OK

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            ShadowStackPolicy(capacity=1)


class TestAuthenticatedSpill:
    def test_spill_and_restore_roundtrip(self):
        policy = ShadowStackPolicy(capacity=4, spill_entries=2)
        for i in range(6):  # overflows twice
            policy.check(call_log(0x1000 + i * 0x10, 0x5000))
        assert policy.stats.spills >= 1
        for i in reversed(range(6)):
            verdict = policy.check(return_log(0x5000, 0x1004 + i * 0x10))
            assert verdict is CheckResult.OK, f"return {i} failed"
        assert policy.stats.restores >= 1
        assert policy.stats.violations == 0

    def test_depth_counts_spilled(self):
        policy = ShadowStackPolicy(capacity=4, spill_entries=2)
        for i in range(6):
            policy.check(call_log(0x1000 + i * 0x10, 0x5000))
        assert policy.depth == 6

    def test_tampered_spill_detected(self):
        policy = ShadowStackPolicy(capacity=4, spill_entries=2)
        for i in range(6):
            policy.check(call_log(0x1000 + i * 0x10, 0x5000))
        policy.tamper_spill(byte=3)
        # Drain resident entries, then the tampered block must fail.
        outcomes = [
            policy.check(return_log(0x5000, 0x1004 + i * 0x10))
            for i in reversed(range(6))
        ]
        assert CheckResult.VIOLATION in outcomes

    def test_accelerator_charged(self):
        policy = ShadowStackPolicy(capacity=4, spill_entries=2)
        for i in range(6):
            policy.check(call_log(0x1000 + i * 0x10, 0x5000))
        assert policy.accel.busy_cycles > 0

    @given(depth=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_lifo_invariant_across_spills(self, depth):
        """Any clean call/return sequence passes, regardless of spills."""
        policy = ShadowStackPolicy(capacity=8, spill_entries=4)
        for i in range(depth):
            policy.check(call_log(0x1000 + i * 4, 0x8000))
        for i in reversed(range(depth)):
            assert policy.check(return_log(0x8000, 0x1004 + i * 4)) is CheckResult.OK
        assert policy.stats.violations == 0


class TestForwardEdgePolicy:
    def test_registered_target_ok(self):
        policy = ForwardEdgePolicy({0x2000})
        assert policy.check(jump_log(0x1000, 0x2000)) is CheckResult.OK

    def test_unregistered_target_violates(self):
        policy = ForwardEdgePolicy({0x2000})
        assert policy.check(jump_log(0x1000, 0x2Fa0)) is CheckResult.VIOLATION

    def test_indirect_call_constrained(self):
        policy = ForwardEdgePolicy({0x2000})
        assert policy.check(indirect_call_log(0x1000, 0x3000)) is CheckResult.VIOLATION
        assert policy.check(indirect_call_log(0x1000, 0x2000)) is CheckResult.OK

    def test_direct_call_unconstrained(self):
        policy = ForwardEdgePolicy(set())
        assert policy.check(call_log(0x1000, 0x7777)) is CheckResult.OK

    def test_returns_ignored(self):
        policy = ForwardEdgePolicy(set())
        assert policy.check(return_log(0x1000, 0x7777)) is CheckResult.OK

    def test_allow_registers_target(self):
        policy = ForwardEdgePolicy()
        policy.allow(0x4000)
        assert policy.check(jump_log(0, 0x4000)) is CheckResult.OK


class TestCoarseGrainedPolicy:
    def test_return_to_any_call_preceded_site_ok(self):
        """The precision gap: a return to *another* call's site passes."""
        policy = CoarseGrainedPolicy()
        policy.check(call_log(0x1000, 0x2000))   # site A = 0x1004
        policy.check(call_log(0x3000, 0x2000))   # site B = 0x3004
        assert policy.check(return_log(0x2010, 0x1004)) is CheckResult.OK
        assert policy.check(return_log(0x2010, 0x3004)) is CheckResult.OK

    def test_return_to_gadget_violates(self):
        policy = CoarseGrainedPolicy()
        policy.check(call_log(0x1000, 0x2000))
        assert policy.check(return_log(0x2010, 0xDEAD0)) is CheckResult.VIOLATION

    def test_jump_to_function_entry_ok(self):
        policy = CoarseGrainedPolicy(valid_entries={0x2000})
        assert policy.check(jump_log(0x1000, 0x2000)) is CheckResult.OK

    def test_jump_to_fragment_violates(self):
        policy = CoarseGrainedPolicy(valid_entries={0x2000})
        assert policy.check(jump_log(0x1000, 0x2008)) is CheckResult.VIOLATION

    def test_indirect_call_to_any_entry_ok(self):
        """Coarse blind spot: any function entry is a legal call target."""
        policy = CoarseGrainedPolicy(valid_entries={0x2000, 0x6000})
        assert policy.check(indirect_call_log(0x1000, 0x6000)) is CheckResult.OK

    def test_direct_call_registers_return_site(self):
        policy = CoarseGrainedPolicy()
        policy.check(call_log(0x1000, 0x2000))
        assert 0x1004 in policy.valid_return_sites

    def test_allow_hooks(self):
        policy = CoarseGrainedPolicy()
        policy.allow_return_site(0x5004)
        policy.allow_entry(0x7000)
        assert policy.check(return_log(0x2010, 0x5004)) is CheckResult.OK
        assert policy.check(jump_log(0x2010, 0x7000)) is CheckResult.OK


class TestCompositePolicy:
    def test_any_violation_wins(self):
        shadow = ShadowStackPolicy()
        forward = ForwardEdgePolicy({0x2000})
        composite = CompositePolicy([shadow, forward])
        assert composite.check(jump_log(0x1000, 0x9999)) is CheckResult.VIOLATION

    def test_all_ok(self):
        composite = CompositePolicy([ShadowStackPolicy(), ForwardEdgePolicy({0x2000})])
        assert composite.check(call_log(0x1000, 0x2000)) is CheckResult.OK

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            CompositePolicy([])
