"""Differential test: assembly firmware vs. the Python reference policy.

The RV32 firmware executing on the Ibex ISS and the
:class:`ShadowStackPolicy` reference model receive the *same* stream of
commit logs; their verdicts must agree event by event.  This is the
strongest correctness evidence for the firmware: any divergence in
encoding parsing, link-register rules or stack handling shows up here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commit_log import CommitLog
from repro.firmware.policies import CheckResult, ShadowStackPolicy
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.hart.core import StepEvent
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op
from repro.soc.mailbox import VERDICT_OK
from repro.system.soc import build_soc


class FirmwareOracle:
    """Feeds commit logs to the polling firmware on the Ibex ISS."""

    def __init__(self):
        self.soc = build_soc(with_cfi=False)
        firmware = shadow_stack_firmware("polling", FirmwareLayout(self.soc.addresses))
        self.soc.load_firmware(firmware.data)
        self._run_until_polling()

    def _run_until_polling(self):
        ibex = self.soc.rot.ibex
        for _ in range(10_000):
            ibex.step()
            if ibex.pc >= self.soc.addresses.ot_rom_base:
                # crude but sufficient: wait for the boot region to settle
                from repro.firmware.shadow_stack import shadow_stack_firmware  # noqa
                break
        # Let the poll loop actually start (status reads begin).
        for _ in range(200):
            ibex.step()

    def verdict(self, log: CommitLog) -> CheckResult:
        mailbox = self.soc.cfi_mailbox
        mailbox.deposit(log.pack())
        ibex = self.soc.rot.ibex
        for _ in range(100_000):
            ibex.step()
            if mailbox.completion_pending:
                break
        else:
            raise AssertionError("firmware never completed the check")
        mailbox.completion_pending = False
        value = mailbox.result()
        return CheckResult.OK if value == VERDICT_OK else CheckResult.VIOLATION


def call_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_j(op.OP_JAL, 1, 0x40),
                     next_address=pc + 4, target=target)


def t0_call_log(pc, target):
    """Call through the alternate link register (jalr t0)."""
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 5, 10, 0),
                     next_address=pc + 4, target=target)


def return_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 0, 1, 0),
                     next_address=pc + 4, target=target)


def jump_log(pc, target):
    return CommitLog(pc=pc, encoding=encode_i(op.OP_JALR, 0, 0, 10, 0),
                     next_address=pc + 4, target=target)


@pytest.fixture(scope="module")
def oracle():
    return FirmwareOracle()


class TestAgreement:
    def test_clean_nest_agrees(self, oracle):
        reference = ShadowStackPolicy()
        stream = [
            call_log(0x1000, 0x2000),
            call_log(0x2000, 0x3000),
            return_log(0x3010, 0x2004),
            return_log(0x2010, 0x1004),
        ]
        for log in stream:
            assert oracle.verdict(log) == reference.check(log), str(log)

    def test_mismatch_agrees(self, oracle):
        reference = ShadowStackPolicy()
        stream = [call_log(0x1000, 0x2000), return_log(0x2010, 0xBAD0)]
        verdicts = [(oracle.verdict(log), reference.check(log)) for log in stream]
        assert verdicts[-1] == (CheckResult.VIOLATION, CheckResult.VIOLATION)

    def test_alternate_link_register_agrees(self, oracle):
        reference = ShadowStackPolicy()
        stream = [t0_call_log(0x4000, 0x5000), return_log(0x5010, 0x4004)]
        for log in stream:
            assert oracle.verdict(log) == reference.check(log), str(log)

    def test_indirect_jumps_agree(self, oracle):
        reference = ShadowStackPolicy()
        log = jump_log(0x6000, 0x7000)
        assert oracle.verdict(log) == reference.check(log) == CheckResult.OK

    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["call", "return-good", "return-bad"]),
                st.integers(min_value=0x1000, max_value=0xF000),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_random_streams_agree(self, script):
        # Fresh oracle per example: the shadow stacks must start aligned.
        oracle = FirmwareOracle()
        reference = ShadowStackPolicy()
        expected_stack = []
        for action, pc in script:
            pc &= ~0x3
            if action == "call":
                log = call_log(pc, pc + 0x100)
                expected_stack.append(pc + 4)
            elif action == "return-good" and expected_stack:
                log = return_log(pc, expected_stack.pop())
            else:
                log = return_log(pc, 0xDEAD0)
                expected_stack.clear()  # violation desyncs; stop comparing after
            fw = oracle.verdict(log)
            ref = reference.check(log)
            assert fw == ref, f"{action}@{pc:#x}: firmware={fw} reference={ref}"
            if ref is CheckResult.VIOLATION:
                break  # states may legitimately diverge after a violation
