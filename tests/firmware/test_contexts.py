"""Per-thread CFI context tests (the paper's future-work extension)."""

import pytest

from repro.core.commit_log import CommitLog
from repro.errors import CfiViolation, ConfigError
from repro.firmware.contexts import CfiContextManager
from repro.firmware.policies import CheckResult
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def call_log(pc, target=0x9000):
    return CommitLog(pc=pc, encoding=encode_j(op.OP_JAL, 1, 0x40),
                     next_address=pc + 4, target=target)


def return_log(target):
    return CommitLog(pc=0x9000, encoding=encode_i(op.OP_JALR, 0, 0, 1, 0),
                     next_address=0x9004, target=target)


class TestRegistrationAndSwitching:
    def test_switch_requires_registration(self):
        manager = CfiContextManager()
        with pytest.raises(ConfigError):
            manager.switch_to(1)

    def test_duplicate_registration_rejected(self):
        manager = CfiContextManager()
        manager.register(1)
        with pytest.raises(ConfigError):
            manager.register(1)

    def test_check_requires_scheduled_thread(self):
        manager = CfiContextManager()
        manager.register(1)
        with pytest.raises(ConfigError):
            manager.check(call_log(0x1000))

    def test_resident_limit_validation(self):
        with pytest.raises(ConfigError):
            CfiContextManager(resident_limit=0)


class TestPerThreadIsolation:
    def test_threads_have_independent_stacks(self):
        manager = CfiContextManager()
        manager.register(1)
        manager.register(2)
        manager.switch_to(1)
        manager.check(call_log(0x1000))
        manager.switch_to(2)
        manager.check(call_log(0x2000))
        # Thread 2 returning to thread 1's return address must violate.
        assert manager.check(return_log(0x1004)) is CheckResult.VIOLATION
        # Thread 1's own return is still fine.
        manager.switch_to(1)
        assert manager.check(return_log(0x1004)) is CheckResult.OK

    def test_interleaved_schedule_clean(self):
        manager = CfiContextManager()
        for tid in (1, 2, 3):
            manager.register(tid)
        for tid in (1, 2, 3):
            manager.switch_to(tid)
            manager.check(call_log(0x1000 * tid))
        for tid in (3, 1, 2):
            manager.switch_to(tid)
            assert manager.check(return_log(0x1000 * tid + 4)) is CheckResult.OK
        assert manager.stats.violations == 0


class TestSelectiveProtection:
    def test_unprotected_thread_skipped(self):
        manager = CfiContextManager()
        manager.register(1, protected=False)
        manager.switch_to(1)
        # Even a wild return is not checked: the thread opted out.
        assert manager.check(return_log(0xDEAD)) is CheckResult.OK
        assert manager.stats.skipped_unprotected == 1
        assert manager.stats.checks == 0

    def test_unprotected_thread_costs_no_context(self):
        manager = CfiContextManager(resident_limit=1)
        manager.register(1, protected=False)
        manager.switch_to(1)
        assert manager.resident_threads == []


class TestEvictionAndRestore:
    def test_lru_eviction_beyond_resident_limit(self):
        manager = CfiContextManager(resident_limit=2)
        for tid in (1, 2, 3):
            manager.register(tid)
            manager.switch_to(tid)
            manager.check(call_log(0x1000 * tid))
        assert manager.stats.evictions == 1
        assert 1 not in manager.resident_threads  # LRU victim

    def test_restored_context_preserves_stack(self):
        manager = CfiContextManager(resident_limit=2)
        for tid in (1, 2, 3):
            manager.register(tid)
            manager.switch_to(tid)
            manager.check(call_log(0x1000 * tid))
        manager.switch_to(1)  # restore from authenticated storage
        assert manager.check(return_log(0x1004)) is CheckResult.OK
        assert manager.stats.violations == 0

    def test_depth_tracked_through_eviction(self):
        manager = CfiContextManager(resident_limit=1)
        manager.register(1)
        manager.register(2)
        manager.switch_to(1)
        manager.check(call_log(0x1000))
        manager.check(call_log(0x1010))
        manager.switch_to(2)  # evicts thread 1
        assert manager.depth_of(1) == 2

    def test_tampered_context_detected_on_restore(self):
        manager = CfiContextManager(resident_limit=1)
        manager.register(1)
        manager.register(2)
        manager.switch_to(1)
        manager.check(call_log(0x1000))
        manager.switch_to(2)  # evict thread 1
        manager.tamper_evicted(1)
        with pytest.raises(CfiViolation, match="context-tamper"):
            manager.switch_to(1)

    def test_hmac_cycles_charged(self):
        manager = CfiContextManager(resident_limit=1)
        manager.register(1)
        manager.register(2)
        manager.switch_to(1)
        manager.check(call_log(0x1000))
        manager.switch_to(2)
        assert manager.accel.busy_cycles > 0


class TestStats:
    def test_switch_counting(self):
        manager = CfiContextManager()
        manager.register(1)
        for _ in range(5):
            manager.switch_to(1)
        assert manager.stats.switches == 5
