"""Tests for sparse memory and RAM/ROM devices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AccessFault
from repro.mem.memory import Ram, Rom, SparseMemory


class TestSparseMemory:
    def test_uninitialised_reads_zero(self):
        mem = SparseMemory()
        assert mem.read_bytes(0x1234, 8) == bytes(8)

    def test_write_read_roundtrip(self):
        mem = SparseMemory()
        mem.write_bytes(0x100, b"hello")
        assert mem.read_bytes(0x100, 5) == b"hello"

    def test_cross_page_access(self):
        mem = SparseMemory()
        boundary = SparseMemory.PAGE_SIZE - 2
        mem.write_bytes(boundary, b"abcd")
        assert mem.read_bytes(boundary, 4) == b"abcd"

    def test_int_roundtrip(self):
        mem = SparseMemory()
        mem.write_int(0x40, 4, 0xDEADBEEF)
        assert mem.read_int(0x40, 4) == 0xDEADBEEF

    def test_int_is_little_endian(self):
        mem = SparseMemory()
        mem.write_int(0, 4, 0x11223344)
        assert mem.read_bytes(0, 4) == bytes([0x44, 0x33, 0x22, 0x11])

    def test_int_masks_to_width(self):
        mem = SparseMemory()
        mem.write_int(0, 1, 0x1FF)
        assert mem.read_int(0, 1) == 0xFF

    def test_sparse_allocation(self):
        mem = SparseMemory()
        mem.write_bytes(1 << 30, b"x")
        assert mem.allocated_bytes == SparseMemory.PAGE_SIZE

    @given(
        address=st.integers(min_value=0, max_value=1 << 20),
        data=st.binary(min_size=1, max_size=64),
    )
    def test_roundtrip_property(self, address, data):
        mem = SparseMemory()
        mem.write_bytes(address, data)
        assert mem.read_bytes(address, len(data)) == data

    @given(
        address=st.integers(min_value=0, max_value=1 << 20),
        size=st.sampled_from([1, 2, 4, 8]),
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_int_fast_path_matches_bytes_path(self, address, size, value):
        """The single-page int fast path must agree with the generic
        byte-assembly path, including across page boundaries."""
        mem = SparseMemory()
        mem.write_int(address, size, value)
        expected = value & ((1 << (size * 8)) - 1)
        assert mem.read_int(address, size) == expected
        assert mem.read_bytes(address, size) == expected.to_bytes(size, "little")

    def test_int_fast_path_at_page_boundary(self):
        boundary = SparseMemory.PAGE_SIZE
        mem = SparseMemory()
        for offset in (boundary - 4, boundary - 3, boundary - 1, boundary):
            mem.write_int(offset, 4, 0xA1B2C3D4)
            assert mem.read_int(offset, 4) == 0xA1B2C3D4

    def test_small_read_of_unbacked_page_is_zero(self):
        mem = SparseMemory()
        assert mem.read_int(0x5000, 2) == 0
        assert mem.read_bytes(0x5000, 2) == b"\x00\x00"


class TestRam:
    def test_basic_rw(self):
        ram = Ram(0x1000)
        ram.write(0x10, 4, 0xCAFE)
        assert ram.read(0x10, 4) == 0xCAFE

    def test_out_of_bounds_read_faults(self):
        with pytest.raises(AccessFault):
            Ram(16).read(16, 1)

    def test_straddling_end_faults(self):
        with pytest.raises(AccessFault):
            Ram(16).read(14, 4)

    def test_negative_offset_faults(self):
        with pytest.raises(AccessFault):
            Ram(16).read(-1, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Ram(0)

    def test_load_dump(self):
        ram = Ram(64)
        ram.load(8, b"program")
        assert ram.dump(8, 7) == b"program"


class TestRom:
    def test_cpu_write_faults(self):
        rom = Rom(64)
        with pytest.raises(AccessFault, match="read-only"):
            rom.write(0, 4, 1)

    def test_image_load_allowed(self):
        rom = Rom(64)
        rom.load(0, b"\x13\x00\x00\x00")
        assert rom.read(0, 4) == 0x13
