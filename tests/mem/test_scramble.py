"""Scrambled-memory (OpenTitan flash model) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EccError
from repro.mem.scramble import ScrambledMemory


class TestFunctionalBehaviour:
    def test_roundtrip_word(self):
        flash = ScrambledMemory(1024)
        flash.write(0, 4, 0xDEADBEEF)
        assert flash.read(0, 4) == 0xDEADBEEF

    def test_roundtrip_bytes(self):
        flash = ScrambledMemory(1024)
        flash.write(5, 1, 0xAB)
        assert flash.read(5, 1) == 0xAB

    def test_unwritten_reads_zero(self):
        assert ScrambledMemory(1024).read(100, 4) == 0

    def test_load_bulk(self):
        flash = ScrambledMemory(1024)
        flash.load(16, b"firmware")
        assert bytes(flash.read(16 + i, 1) for i in range(8)) == b"firmware"

    @given(
        offset=st.integers(min_value=0, max_value=200),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    @settings(max_examples=30)
    def test_roundtrip_property(self, offset, value):
        flash = ScrambledMemory(1024)
        flash.write(offset, 4, value)
        assert flash.read(offset, 4) == value


class TestScrambling:
    def test_stored_cells_differ_from_plaintext(self):
        flash = ScrambledMemory(1024, key=0x1234)
        flash.write(0, 4, 0xDEADBEEF)
        cell = flash.physical_cell_of(0)
        assert flash.raw_cell(cell) != 0xDEADBEEF

    def test_different_keys_store_different_ciphertext(self):
        a = ScrambledMemory(1024, key=1)
        b = ScrambledMemory(1024, key=2)
        a.write(0, 4, 0xCAFEBABE)
        b.write(0, 4, 0xCAFEBABE)
        assert a.raw_cell(a.physical_cell_of(0)) != b.raw_cell(b.physical_cell_of(0))

    def test_address_permutation_is_injective(self):
        flash = ScrambledMemory(4096, key=99)
        words = flash.size // 4
        cells = {flash.physical_cell_of(i * 4) for i in range(words)}
        assert len(cells) == words

    def test_permutation_stays_in_range(self):
        flash = ScrambledMemory(4096, key=7)
        words = flash.size // 4
        for i in range(words):
            assert 0 <= flash.physical_cell_of(i * 4) < words


class TestEccIntegration:
    def test_single_bit_upset_corrected(self):
        flash = ScrambledMemory(1024)
        flash.write(0, 4, 0x12345678)
        flash.corrupt_cell(flash.physical_cell_of(0), 3)
        assert flash.read(0, 4) == 0x12345678
        assert flash.ecc_corrections == 1

    def test_double_bit_upset_detected(self):
        flash = ScrambledMemory(1024)
        flash.write(0, 4, 0x12345678)
        cell = flash.physical_cell_of(0)
        flash.corrupt_cell(cell, 3)
        flash.corrupt_cell(cell, 17)
        with pytest.raises(EccError):
            flash.read(0, 4)

    def test_corrupting_unwritten_cell_rejected(self):
        with pytest.raises(ValueError):
            ScrambledMemory(1024).corrupt_cell(0, 0)
