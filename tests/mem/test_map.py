"""Tests for the address map: routing, latency, tags, observers."""

import pytest

from repro.errors import AccessFault, ConfigError
from repro.mem.map import BusAccess, MemoryMap
from repro.mem.memory import Ram


def make_map():
    bus = MemoryMap("test-bus")
    bus.add(0x1000, Ram(0x100, "sram"), latency=5, tag="rot-sram", name="sram")
    bus.add(0x8000, Ram(0x100, "ddr"), latency=12, tag="soc", name="ddr")
    return bus


class TestRouting:
    def test_read_write_through_map(self):
        bus = make_map()
        bus.write(0x1010, 4, 0xABCD)
        assert bus.read(0x1010, 4) == 0xABCD

    def test_offsets_are_region_relative(self):
        bus = make_map()
        bus.write(0x1000, 4, 7)
        bus.write(0x8000, 4, 9)
        assert bus.read(0x1000, 4) == 7
        assert bus.read(0x8000, 4) == 9

    def test_unmapped_faults(self):
        with pytest.raises(AccessFault):
            make_map().read(0x4000, 4)

    def test_access_crossing_region_end_faults(self):
        with pytest.raises(AccessFault, match="crosses"):
            make_map().read(0x10FE, 4)

    def test_overlap_rejected(self):
        bus = make_map()
        with pytest.raises(ConfigError, match="overlaps"):
            bus.add(0x10F0, Ram(0x100), name="overlapping")

    def test_regions_sorted(self):
        bus = make_map()
        bases = [r.base for r in bus.regions]
        assert bases == sorted(bases)


class TestLatencyAndTags:
    def test_latency_lookup(self):
        bus = make_map()
        assert bus.latency(0x1000) == 5
        assert bus.latency(0x8000) == 12

    def test_tag_lookup(self):
        bus = make_map()
        assert bus.tag(0x1050) == "rot-sram"
        assert bus.tag(0x8050) == "soc"


class TestObservers:
    def test_observer_sees_accesses(self):
        bus = make_map()
        log = []
        bus.observe(log.append)
        bus.write(0x1000, 4, 42)
        bus.read(0x8000, 4)
        assert len(log) == 2
        first, second = log
        assert isinstance(first, BusAccess)
        assert first.kind == "write"
        assert first.tag == "rot-sram"
        assert first.latency == 5
        assert second.kind == "read"
        assert second.tag == "soc"

    def test_fetch_kind(self):
        bus = make_map()
        log = []
        bus.observe(log.append)
        bus.fetch(0x1000, 4)
        assert log[0].kind == "fetch"

    def test_remove_observer(self):
        bus = make_map()
        log = []
        bus.observe(log.append)
        bus.remove_observer(log.append)
        bus.read(0x1000, 4)
        assert not log


class TestBulkAccess:
    def test_write_bytes_uses_loader(self):
        bus = make_map()
        bus.write_bytes(0x1000, b"\x01\x02\x03\x04")
        assert bus.read(0x1000, 4) == 0x04030201

    def test_read_bytes(self):
        bus = make_map()
        bus.write_bytes(0x1000, b"abcd")
        assert bus.read_bytes(0x1000, 4) == b"abcd"
