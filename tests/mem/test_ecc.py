"""SECDED codec tests, including exhaustive single-bit fault injection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EccError
from repro.mem.ecc import SecdedCodec

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestCleanPath:
    def test_roundtrip_zero(self):
        codec = SecdedCodec()
        assert codec.decode(codec.encode(0)).data == 0

    def test_roundtrip_ones(self):
        codec = SecdedCodec()
        assert codec.decode(codec.encode(0xFFFFFFFF)).data == 0xFFFFFFFF

    @given(words)
    def test_roundtrip_property(self, word):
        codec = SecdedCodec()
        result = codec.decode(codec.encode(word))
        assert result.data == word
        assert not result.corrected


class TestSingleBitErrors:
    @given(words, st.integers(min_value=0, max_value=SecdedCodec.codeword_bits() - 1))
    def test_any_single_flip_corrected(self, word, position):
        codec = SecdedCodec()
        damaged = SecdedCodec.flip_bit(codec.encode(word), position)
        result = codec.decode(damaged)
        assert result.data == word
        assert result.corrected

    def test_exhaustive_positions_for_one_word(self):
        codec = SecdedCodec()
        word = 0xA5A5_5A5A
        clean = codec.encode(word)
        for position in range(SecdedCodec.codeword_bits()):
            assert codec.decode(SecdedCodec.flip_bit(clean, position)).data == word

    def test_correction_counter(self):
        codec = SecdedCodec()
        codec.decode(SecdedCodec.flip_bit(codec.encode(1), 0))
        assert codec.corrections == 1


class TestDoubleBitErrors:
    @given(
        words,
        st.tuples(
            st.integers(min_value=0, max_value=SecdedCodec.codeword_bits() - 1),
            st.integers(min_value=0, max_value=SecdedCodec.codeword_bits() - 1),
        ).filter(lambda pair: pair[0] != pair[1]),
    )
    def test_any_double_flip_detected(self, word, positions):
        codec = SecdedCodec()
        damaged = codec.encode(word)
        for position in positions:
            damaged = SecdedCodec.flip_bit(damaged, position)
        with pytest.raises(EccError):
            codec.decode(damaged)

    def test_detection_counter(self):
        codec = SecdedCodec()
        damaged = SecdedCodec.flip_bit(SecdedCodec.flip_bit(codec.encode(7), 1), 5)
        with pytest.raises(EccError):
            codec.decode(damaged)
        assert codec.detections == 1


class TestHelpers:
    def test_flip_bit_out_of_range(self):
        with pytest.raises(ValueError):
            SecdedCodec.flip_bit(0, SecdedCodec.codeword_bits())
