"""Policy-host behaviour: back-pressure, blocking, latched violations,
the crypto-return policy, and the calibration machinery itself.

The back-pressure/blocking classes mirror
``tests/system/test_batched.py``'s firmware-path configurations: the
host must keep all three engines cycle-exact under CFI queue
back-pressure (depth 1), blocking commit mode and latched (non-raising)
violations — and, for the shadow-stack policy, match the firmware
exactly in those configurations too.
"""

import random

import pytest

from repro.attacks.rop import run_attack_scenario
from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.errors import ConfigError
from repro.firmware.policies import (
    CheckResult,
    CryptoReturnPolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.policyhost.calibration import ResponseCurve, calibrate
from repro.policyhost.host import firmware_path, mount_policy_host, resolve_path_key
from repro.system.addresses import AddressMap
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)

_ADDRESSES = AddressMap()


def _program(victim, seed=1234):
    return VICTIMS[victim].builder(_ADDRESSES, random.Random(seed))


def _key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.detected,
        report.detection_latency,
        report.cfi,
    )


def _run_config(victim, mode, backend, policy_factory=ShadowStackPolicy,
                **config_kwargs):
    """One cosim run under an explicit TitanCfiConfig."""
    config = TitanCfiConfig(**config_kwargs)
    soc = build_soc(cfi_config=config)
    if backend == "firmware":
        firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
        soc.load_firmware(firmware.data)
    else:
        mount_policy_host(soc, policy_factory(), variant="irq")
    soc.load_host_program(_program(victim))
    report = SystemSimulator(soc, mode=mode).run()
    return report, soc


class TestBackPressureConfigurations:
    """Queue-full stalls and blocking mode (the firmware-path mirror)."""

    @pytest.mark.parametrize("victim", ["benign", "rop", "deep-recursion"])
    def test_depth1_blocking_matches_firmware_all_engines(self, victim):
        reference = _key(_run_config(victim, MODE_BUSY, "firmware",
                                     queue_depth=1, blocking=True)[0])
        for mode in MODES:
            report, _ = _run_config(victim, mode, "host",
                                    queue_depth=1, blocking=True)
            assert _key(report) == reference, (victim, mode)

    def test_depth1_nonblocking_matches_firmware_all_engines(self):
        reference = _key(_run_config("deep-recursion", MODE_BUSY, "firmware",
                                     queue_depth=1)[0])
        for mode in MODES:
            report, _ = _run_config("deep-recursion", mode, "host",
                                    queue_depth=1)
            assert _key(report) == reference, mode

    def test_blocking_depth1_stops_the_gadget(self):
        """Table II configuration through the host: detection is
        synchronous, so the gadget never becomes architecturally
        visible — same as the firmware path."""
        from repro.attacks.programs import GADGET_MARKER

        report, soc = _run_config("rop", MODE_BATCHED, "host",
                                  queue_depth=1, blocking=True)
        assert report.detected
        assert soc.cva6.regs.read(10) != GADGET_MARKER

    def test_latched_violations_match_firmware_all_engines(self):
        """raise_on_violation=False: the run continues past the
        violation and the host keeps servicing checks — the latched
        fault, later check latencies and totals must all match."""
        reference = _key(_run_config("ret-to-callsite", MODE_BUSY, "firmware",
                                     raise_on_violation=False)[0])
        for mode in MODES:
            report, _ = _run_config("ret-to-callsite", mode, "host",
                                    raise_on_violation=False)
            assert _key(report) == reference, mode
        assert reference[3], "violation must still be detected"


class TestHostAgentProperties:
    def test_rot_core_stays_frozen(self):
        report, soc = _run_config("benign", MODE_BATCHED, "host")
        assert report.ibex_instructions == 0
        assert soc.rot.ibex.instret == 0
        assert soc.policy_host.stats.checks == report.cfi["checks_completed"]

    def test_host_stats_track_paths_and_latencies(self):
        report, soc = _run_config("benign", MODE_BUSY, "host")
        stats = soc.policy_host.stats_summary()
        assert stats["checks"] > 0
        assert stats["violations"] == 0
        assert stats["mean_service_latency"] > 0
        assert all(count > 0 for count in stats["by_path"].values())

    def test_double_mount_rejected(self):
        soc = build_soc()
        mount_policy_host(soc, ShadowStackPolicy())
        with pytest.raises(ConfigError, match="already has a policy host"):
            mount_policy_host(soc, ShadowStackPolicy())

    def test_policy_without_check_rejected(self):
        soc = build_soc()
        with pytest.raises(ConfigError, match="no check"):
            mount_policy_host(soc, object())

    def test_host_needs_policy_instance(self):
        with pytest.raises(ConfigError, match="needs a policy"):
            run_attack_scenario(_program("benign"), policy_backend="host")

    def test_unknown_policy_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy backend"):
            run_attack_scenario(_program("benign"), policy_backend="hardware")

    def test_prebuilt_soc_rejects_inconsistent_policy_arguments(self):
        """A prebuilt soc must not silently ignore the policy axis."""
        soc = build_soc()
        with pytest.raises(ConfigError, match="already mounted"):
            run_attack_scenario(_program("benign"), soc=soc,
                                policy_backend="host",
                                policy=ShadowStackPolicy())
        with pytest.raises(ConfigError, match="no policy host mounted"):
            run_attack_scenario(_program("benign"), soc=soc,
                                policy_backend="host")
        mount_policy_host(soc, ShadowStackPolicy())
        with pytest.raises(ConfigError, match="has policy host mounted"):
            run_attack_scenario(_program("benign"), soc=soc)

    def test_prebuilt_soc_with_mounted_host_runs(self):
        soc = build_soc()
        mount_policy_host(soc, ShadowStackPolicy())
        outcome = run_attack_scenario(_program("rop"), soc=soc,
                                      policy_backend="host")
        assert outcome.detected

    def test_spill_beyond_calibrated_depth_fails_loudly(self):
        """The response model does not cover spill/restore: in curve
        mode those path keys must raise, not silently charge the plain
        push/pop cost and drift from firmware timing.  (Inside a
        boot-epoch shadow session spills are serviced exactly by
        replay, so only the curve-mode query is guarded.)"""
        from repro.errors import SimulationError
        from repro.firmware.policies import EVENT_RESTORE, EVENT_SPILL

        model = calibrate("irq")
        spill_key = resolve_path_key(0x000000ef, False, EVENT_SPILL)
        restore_key = resolve_path_key(0x00008067, False, EVENT_RESTORE)
        assert spill_key == ("call-jal-ra", "spill")
        assert restore_key == ("ret-ra", "restore")
        for key in (spill_key, restore_key):
            with pytest.raises(SimulationError, match="spill/restore"):
                model.service_delta(key)


class TestCryptoReturnPolicy:
    """The host-only policy: MAC-tagged return addresses (CCFI-style)."""

    def test_detects_rop_with_engine_invariance(self):
        program = _program("rop")
        reference = None
        for mode in MODES:
            outcome = run_attack_scenario(
                program, sim_mode=mode,
                policy_backend="host", policy=CryptoReturnPolicy(),
            )
            key = _key(outcome.report)
            assert outcome.detected and outcome.violation.kind == "return"
            if reference is None:
                reference = key
            else:
                assert key == reference, mode

    def test_costs_more_than_shadow_stack(self):
        """The modelled MAC surcharge must be visible in the measured
        detection latency (same victim, same handshake cadence)."""
        program = _program("rop")
        shadow = run_attack_scenario(
            program, policy_backend="host", policy=ShadowStackPolicy())
        crypto = run_attack_scenario(
            program, policy_backend="host", policy=CryptoReturnPolicy())
        assert crypto.report.detection_latency > shadow.report.detection_latency

    def test_benign_run_clean(self):
        outcome = run_attack_scenario(
            _program("benign"), policy_backend="host",
            policy=CryptoReturnPolicy())
        assert not outcome.detected

    def test_tamper_is_detected_on_return(self):
        """Corrupting a stored frame breaks its MAC: the next return
        through it is flagged even though the attacker aims at the
        original address (the trace-level analogue of a spill-area
        tamper on the firmware path)."""
        from repro.campaign.runner import capture_commit_logs

        policy = CryptoReturnPolicy()
        logs, _hart = capture_commit_logs(_program("benign"), _ADDRESSES)
        verdicts = []
        tampered = False
        for log in logs:
            if policy.depth and not tampered:
                policy.tamper()
                tampered = True
            verdicts.append(policy.check(log))
        assert tampered
        assert CheckResult.VIOLATION in verdicts

    def test_forward_edge_policy_runs_as_agent(self):
        """A policy with label sets resolved from the victim symbols
        (the campaign's host path) detects the JOP chain in cosim."""
        program = _program("jop")
        spec = VICTIMS["jop"]
        targets = {program.symbols[name] for name in spec.entry_points}
        outcome = run_attack_scenario(
            program, policy_backend="host",
            policy=ForwardEdgePolicy(targets))
        assert outcome.detected and outcome.violation.kind == "indirect-jump"


class TestTable2Variants:
    def test_shadow_stack_host_reproduces_measured_table2(self):
        """Zero surcharge: the shadow stack's policy-host latency set is
        the Table I measured set, so its Table II rows are identical to
        the firmware's measured rows."""
        from repro.eval import table2

        assert (table2.compute(policy=ShadowStackPolicy())
                == table2.compute(latencies="measured"))

    def test_crypto_return_rows_are_strictly_slower(self):
        from repro.eval import table2

        base = table2.compute(latencies="measured")
        crypto = table2.compute(policy=CryptoReturnPolicy())
        for row_base, row_crypto in zip(base, crypto):
            for variant in ("optimized", "polling", "irq"):
                assert (row_crypto["model"][variant]
                        > row_base["model"][variant]), row_base["benchmark"]

    def test_paper_latencies_reject_policy_variant(self):
        from repro.eval import table2

        with pytest.raises(ValueError, match="measured-only"):
            table2.resolve_latencies("paper", policy=ShadowStackPolicy())


class TestCalibration:
    def test_models_are_memoised(self):
        assert calibrate("irq") is calibrate("irq")
        assert calibrate("irq") is not calibrate("polling")

    def test_response_curve_periodic_extrapolation(self):
        curve = ResponseCurve(start=0, values=(9, 8, 7, 5, 6, 5, 6), period=2)
        assert [curve.latency(d) for d in range(3, 11)] == [5, 6, 5, 6, 5, 6, 5, 6]
        with pytest.raises(Exception):
            ResponseCurve(start=4, values=(1,), period=1).latency(3)

    def test_irq_tail_is_constant_polling_is_loop_periodic(self):
        irq = calibrate("irq")
        polling = calibrate("polling")
        assert irq.busy_curve("ok").period == 1
        assert polling.busy_curve("ok").period > 1

    def test_service_deltas_cover_every_firmware_path(self):
        model = calibrate("irq")
        for encoding, violation, hint in [
            (0x000080e7, False, None),   # jalr ra → call
            (0x00008067, False, None),   # jalr x0,(ra) → return
            (0x00008067, True, None),    # mismatched return
            (0x00008067, True, "underflow"),
            (0x00050067, False, None),   # jalr x0,(a0) → indirect jump
            (0x00050067, True, None),    # host-only: flagged jump (bias)
            (0x0000006f, False, None),   # jal x0 → direct jump
            (0x00000013, False, None),   # non-transfer
        ]:
            key = resolve_path_key(encoding, violation, hint)
            assert isinstance(model.service_delta(key), int), key

    def test_firmware_path_mirrors_cflow_classification(self):
        """The path parser must agree with the shared classifier on
        call/return/jump structure for every probe encoding."""
        from repro.isa.cflow import CfKind, classify_word

        cases = {
            "call-jal-ra": 0x000000ef, "call-jalr-ra": 0x000080e7,
            "ret-ra": 0x00008067, "ret-t0": 0x00028067,
            "jump-rs": 0x00050067, "jal-jump": 0x0000006f,
        }
        kinds = {
            "call-jal-ra": CfKind.CALL, "call-jalr-ra": CfKind.CALL,
            "ret-ra": CfKind.RETURN, "ret-t0": CfKind.RETURN,
            "jump-rs": CfKind.INDIRECT_JUMP, "jal-jump": CfKind.DIRECT_JUMP,
        }
        for path, encoding in cases.items():
            assert firmware_path(encoding) == path
            assert classify_word(encoding) is kinds[path]
