"""Differential suite: firmware shadow stack vs PolicyHost(ShadowStackPolicy).

The policy host's cycle model is calibrated from the firmware itself,
so a shadow stack running as a Python mailbox agent must be
*indistinguishable* from the RV32 firmware in every host-side
observable: verdict, detection latency, and the SimulationReport cycle
totals (global cycles, host instret, stall cycles, and the complete
CFI-stage statistics, check latencies included).  This suite asserts
that across every registered campaign victim, both firmware variants'
timing models, and all three execution engines.
"""

import random

import pytest

from repro.attacks.rop import run_attack_scenario
from repro.campaign.spec import VICTIMS
from repro.firmware.policies import ShadowStackPolicy
from repro.system.addresses import AddressMap
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)

_ADDRESSES = AddressMap()
_PROGRAMS = {}


def _program(victim, seed=1234):
    key = (victim, seed)
    if key not in _PROGRAMS:
        _PROGRAMS[key] = VICTIMS[victim].builder(_ADDRESSES, random.Random(seed))
    return _PROGRAMS[key]


def _key(report):
    """The comparison set: everything the host side can observe.

    ``ibex_instructions`` is deliberately excluded — with a policy host
    mounted the RoT core is frozen, which is the one *intended*
    difference between the two agents.
    """
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.detected,
        report.violation.kind if report.violation else None,
        report.detection_latency,
        report.cfi,
    )


def _run(victim, variant, mode, backend, **kwargs):
    if backend == "host":
        kwargs.update(policy_backend="host", policy=ShadowStackPolicy())
    outcome = run_attack_scenario(
        _program(victim), firmware_variant=variant, sim_mode=mode, **kwargs
    )
    return _key(outcome.report)


class TestEveryVictimEveryEngine:
    """Firmware vs host over the complete victim registry (IRQ model)."""

    @pytest.mark.parametrize("victim", sorted(VICTIMS))
    def test_host_matches_firmware_in_all_engines(self, victim):
        reference = _run(victim, "irq", MODE_BUSY, "firmware")
        for mode in MODES:
            assert _run(victim, "irq", mode, "firmware") == reference, (
                victim, "firmware", mode)
            assert _run(victim, "irq", mode, "host") == reference, (
                victim, "host", mode)


class TestPollingVariant:
    """The polling firmware's poll-loop-periodic timing model."""

    @pytest.mark.parametrize("victim", ["benign", "rop", "deep-recursion",
                                        "ret-to-callsite"])
    def test_host_matches_firmware_in_all_engines(self, victim):
        reference = _run(victim, "polling", MODE_BUSY, "firmware")
        for mode in MODES:
            assert _run(victim, "polling", mode, "host") == reference, (
                victim, mode)


class TestPlatformKnobs:
    """Cosim knobs that perturb the handshake cadence."""

    @pytest.mark.parametrize("queue_depth", [1, 2, 8])
    def test_queue_depths(self, queue_depth):
        reference = _run("deep-recursion", "irq", MODE_BUSY, "firmware",
                         queue_depth=queue_depth)
        for mode in MODES:
            assert _run("deep-recursion", "irq", mode, "host",
                        queue_depth=queue_depth) == reference, mode

    def test_optimized_fabric(self):
        reference = _run("rop", "polling", MODE_BUSY, "firmware",
                         fabric="optimized")
        for mode in MODES:
            assert _run("rop", "polling", mode, "host",
                        fabric="optimized") == reference, mode

    def test_seed_swept_victims(self):
        """The seeded victim builder (varying recursion depth) across a
        few seeds — different doorbell cadences each time."""
        for seed in (7, 42, 99):
            program = VICTIMS["deep-recursion"].builder(
                _ADDRESSES, random.Random(seed))
            reference = _key(run_attack_scenario(program, sim_mode=MODE_BUSY).report)
            got = _key(run_attack_scenario(
                program, sim_mode=MODE_BATCHED,
                policy_backend="host", policy=ShadowStackPolicy(),
            ).report)
            assert got == reference, seed
