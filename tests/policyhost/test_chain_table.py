"""The calibrated boot-chain table: cycle-exactness and rig retirement.

A policy-host run whose doorbells stay back-to-back lives in the
boot-epoch shadow session for its whole life; before the chain table,
that meant an Ibex-speed replay rig per run.  The table memoises every
(ring chain → completion) answer per calibrated model, so repeated
chains are served without building a rig at all — and the differential
tests here prove the table changes *nothing* about simulated time.
"""

import random

import pytest

from repro.attacks.rop import run_attack_scenario
from repro.campaign.spec import VICTIMS
from repro.firmware.policies import (
    CompositePolicy,
    CryptoReturnPolicy,
    ShadowStackPolicy,
)
from repro.policyhost import calibrate, configure_chain_table
from repro.system.addresses import AddressMap

ADDRESSES = AddressMap()


@pytest.fixture(autouse=True)
def chain_table_reset():
    """Each test starts with an empty, enabled table and leaves it so."""
    configure_chain_table(True)
    yield
    configure_chain_table(True)


def _run(victim, policy_factory, seed=1, sim_mode=None, variant="irq"):
    program = VICTIMS[victim].builder(ADDRESSES, random.Random(seed))
    outcome = run_attack_scenario(
        program, firmware_variant=variant, sim_mode=sim_mode,
        policy_backend="host", policy=policy_factory(),
    )
    report = outcome.report
    return {
        "cycles": report.cycles,
        "detected": outcome.detected,
        "latency": report.detection_latency,
        "checks": report.cfi.get("checks_completed"),
        "stalls": report.host_stall_cycles,
    }


class TestCycleExactness:
    """cold == warm == disabled, for every simulated number."""

    @pytest.mark.parametrize("victim,policy", [
        ("deep-recursion", ShadowStackPolicy),   # back-to-back doorbells
        ("rop", ShadowStackPolicy),
        ("benign", CryptoReturnPolicy),          # surcharge → drift path
    ])
    def test_differential_cold_warm_disabled(self, victim, policy):
        cold = _run(victim, policy)
        warm = _run(victim, policy)
        configure_chain_table(False)
        disabled = _run(victim, policy)
        assert cold == warm == disabled

    def test_differential_across_engines(self):
        """The table must be invisible to all three engines alike."""
        runs = {
            mode: _run("deep-recursion", ShadowStackPolicy, sim_mode=mode)
            for mode in ("busy", "event-driven", "batched")
        }
        assert runs["busy"] == runs["event-driven"] == runs["batched"]
        configure_chain_table(False)
        assert _run("deep-recursion", ShadowStackPolicy,
                    sim_mode="busy") == runs["busy"]

    def test_differential_polling_variant(self):
        cold = _run("benign", ShadowStackPolicy, variant="polling")
        warm = _run("benign", ShadowStackPolicy, variant="polling")
        configure_chain_table(False)
        assert cold == warm == _run("benign", ShadowStackPolicy,
                                    variant="polling")


class TestRigRetirement:
    def test_warm_run_builds_no_rig(self):
        """The headroom claim itself: a repeated back-to-back-doorbell
        run is answered entirely from the table — the replay rig is
        never constructed."""
        model = calibrate()
        before = model.shadow_rig_builds
        _run("deep-recursion", ShadowStackPolicy)
        assert model.shadow_rig_builds == before + 1  # cold: one rig
        _run("deep-recursion", ShadowStackPolicy)
        assert model.shadow_rig_builds == before + 1  # warm: none

    def test_disabled_table_always_builds_the_rig(self):
        configure_chain_table(False)
        model = calibrate()
        before = model.shadow_rig_builds
        _run("deep-recursion", ShadowStackPolicy)
        _run("deep-recursion", ShadowStackPolicy)
        assert model.shadow_rig_builds == before + 2

    def test_prefix_sharing_across_policies(self):
        """Two policies whose early rings coincide share the chain
        prefix; the second run only needs a rig if it diverges."""
        model = calibrate()
        _run("benign", ShadowStackPolicy)
        before = model.shadow_rig_builds
        # The composite policy rings the identical chain (the forward
        # edge member adds no surcharge), so the table answers it all.
        _run("benign", lambda: CompositePolicy(
            [ShadowStackPolicy()]))
        assert model.shadow_rig_builds == before
