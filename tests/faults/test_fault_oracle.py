"""Fault oracle: the delivered stream and static verdict prediction."""

import random

import pytest

from repro.campaign.runner import capture_commit_logs
from repro.campaign.spec import VICTIMS
from repro.faults.oracle import delivered_stream, predict_verdict
from repro.faults.plan import (
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_EVENT_CORRUPT,
    FAULT_MONITOR_RESET,
    FaultEvent,
    FaultPlan,
)
from repro.firmware.policies import CheckResult, ShadowStackPolicy
from repro.system.addresses import AddressMap


@pytest.fixture(scope="module")
def rop_logs():
    program = VICTIMS["rop"].builder(AddressMap(), random.Random(1234))
    logs, _hart = capture_commit_logs(program, AddressMap())
    return logs


@pytest.fixture(scope="module")
def benign_logs():
    program = VICTIMS["benign"].builder(AddressMap(), random.Random(1234))
    logs, _hart = capture_commit_logs(program, AddressMap())
    return logs


class TestDeliveredStream:
    def test_empty_plan_delivers_verbatim(self, rop_logs):
        assert delivered_stream(rop_logs, FaultPlan()) == list(rop_logs)

    def test_drop_removes_exactly_the_indexed_events(self, rop_logs):
        plan = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=1, count=2),))
        stream = delivered_stream(rop_logs, plan)
        expected = [log for n, log in enumerate(rop_logs) if n not in (1, 2)]
        assert stream == expected

    def test_dup_delivers_back_to_back(self, rop_logs):
        plan = FaultPlan((FaultEvent(FAULT_DOORBELL_DUP, index=0),))
        stream = delivered_stream(rop_logs, plan)
        assert len(stream) == len(rop_logs) + 1
        assert stream[0] == stream[1] == rop_logs[0]
        assert stream[2:] == list(rop_logs[1:])

    def test_corrupt_flips_target_only(self, rop_logs):
        mask = 0xA5A5
        plan = FaultPlan((FaultEvent(FAULT_EVENT_CORRUPT, index=0, param=mask),))
        stream = delivered_stream(rop_logs, plan)
        original = rop_logs[0]
        assert stream[0].target == original.target ^ mask
        assert stream[0].pc == original.pc
        assert stream[0].encoding == original.encoding
        assert stream[0].kind == original.kind  # encoding untouched
        assert stream[1:] == list(rop_logs[1:])


class TestPredictVerdict:
    def test_fault_free_prediction_matches_direct_replay(self, rop_logs):
        policy = ShadowStackPolicy()
        direct = None
        for i, log in enumerate(rop_logs):
            if policy.check(log) is CheckResult.VIOLATION:
                direct = i + 1
                break
        prediction = predict_verdict(rop_logs, FaultPlan(),
                                     ShadowStackPolicy())
        assert prediction.detected
        assert prediction.checks_until_detection == direct

    def test_dropping_every_event_means_no_detection(self, rop_logs):
        plan = FaultPlan((
            FaultEvent(FAULT_DOORBELL_DROP, index=0, count=len(rop_logs)),
        ))
        prediction = predict_verdict(rop_logs, plan, ShadowStackPolicy())
        assert not prediction.detected
        assert prediction.delivered_checks == 0

    def test_benign_stream_stays_clean(self, benign_logs):
        prediction = predict_verdict(benign_logs, FaultPlan(),
                                     ShadowStackPolicy())
        assert not prediction.detected
        assert prediction.delivered_checks == len(benign_logs)

    def test_dropped_call_fails_safe_on_benign_run(self, benign_logs):
        # Losing a call event desynchronises the shadow stack: the
        # matching return then mismatches — the monitor fails closed.
        plan = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=0),))
        prediction = predict_verdict(benign_logs, plan, ShadowStackPolicy())
        assert prediction.detected

    def test_reset_consumes_fresh_policy_state(self, benign_logs):
        # Reset mid-stream wipes the pushed return addresses; the next
        # return underflows or mismatches, so a benign run turns into a
        # fail-safe detection (unless the reset lands after the last
        # call/return pair — index 1 is safely inside this program).
        plan = FaultPlan((FaultEvent(FAULT_MONITOR_RESET, index=1),))
        prediction = predict_verdict(benign_logs, plan, ShadowStackPolicy())
        assert prediction.detected

    def test_prediction_is_deterministic(self, rop_logs):
        plan = FaultPlan((FaultEvent(FAULT_EVENT_CORRUPT, index=1,
                                     param=0x1F00),))
        first = predict_verdict(rop_logs, plan, ShadowStackPolicy())
        second = predict_verdict(rop_logs, plan, ShadowStackPolicy())
        assert first == second
