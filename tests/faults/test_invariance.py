"""Faulted runs must be engine-invariant and fault-free runs unchanged.

The acceptance criteria of the fault subsystem:

* with the fault layer compiled in but detached (or attached with an
  empty plan), not a single simulated number moves;
* every fault scenario is seed-deterministic and produces identical
  verdicts AND detection latencies on the busy, event-driven and
  batched engines (faults index event occurrences, never cycles).
"""

import pytest

from repro.campaign.runner import run_scenario
from repro.campaign.spec import Scenario
from repro.faults import FaultPlan, attach_faults
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.system.addresses import AddressMap
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)

#: (fault plan, victim, policy backend) cells covering every fault
#: family on both mailbox agents that support it.
CELLS = [
    ("drop-first", "rop", "firmware"),
    ("drop-window", "benign", "firmware"),
    ("dup-first", "benign", "firmware"),
    ("dup-window", "rop", "firmware"),
    ("corrupt-target", "rop", "firmware"),
    ("stall-late", "rop", "host"),
    ("stall-burst", "deep-recursion", "host"),
    ("reset-early", "rop", "host"),
    ("reset-early", "benign", "host"),
]


def _scenario(plan, victim, policy_backend):
    return Scenario(
        victim=victim,
        backend="cosim",
        policy="shadow-stack",
        policy_backend=policy_backend,
        fault_plan=plan,
    )


def _report_key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.ibex_instructions,
        report.detected,
        report.detection_latency,
        report.cfi,
    )


class TestFaultFreeIdentity:
    """An attached-but-empty fault layer is cycle-invisible."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("victim", ["benign", "rop"])
    def test_empty_plan_changes_nothing(self, victim, mode):
        from repro.campaign.spec import VICTIMS
        import random

        keys = []
        for plan in (None, FaultPlan()):
            soc = build_soc()
            firmware = shadow_stack_firmware(
                "irq", FirmwareLayout(soc.addresses)
            )
            soc.load_firmware(firmware.data)
            soc.load_host_program(
                VICTIMS[victim].builder(soc.addresses, random.Random(7))
            )
            if plan is not None:
                attach_faults(soc, plan)
            keys.append(_report_key(SystemSimulator(soc, mode=mode).run()))
        assert keys[0] == keys[1]


class TestEngineInvariance:
    """Same faulted scenario, three engines, identical result dicts."""

    @pytest.mark.parametrize("plan,victim,policy_backend", CELLS)
    def test_faulted_results_identical_across_engines(
        self, plan, victim, policy_backend
    ):
        reference = None
        for mode in MODES:
            result = run_scenario(_scenario(plan, victim, policy_backend),
                                  campaign_seed=0, sim_mode=mode)
            assert result["expectation_met"], (
                f"{result['name']} [{mode}]: simulated verdict "
                f"{result['detected']} disagrees with the fault oracle "
                f"{result['expected_detected']}"
            )
            assert result["contract_ok"], (
                f"{result['name']} [{mode}]: degradation "
                f"{result['degradation']} outside the policy's contract"
            )
            if reference is None:
                reference = result
            else:
                assert result == reference, f"{result['name']} [{mode}]"

    def test_fault_scenarios_are_seed_deterministic(self):
        scenario = _scenario("corrupt-target", "rop", "firmware")
        a = run_scenario(scenario, campaign_seed=9)
        b = run_scenario(scenario, campaign_seed=9)
        assert a == b

    def test_campaign_seed_perturbs_the_plan(self):
        # drop-window draws its index from the derived seed; across a
        # few campaign seeds at least two schedules must differ, and
        # each must still satisfy its contract.
        scenario = _scenario("drop-window", "rop", "firmware")
        stats = set()
        for campaign_seed in range(4):
            result = run_scenario(scenario, campaign_seed=campaign_seed)
            assert result["contract_ok"]
            stats.add(str(result["fault_stats"]["fired"]) +
                      str(result["detection_latency"]))
        assert len(stats) > 1

    def test_stall_burst_backs_up_the_queue(self):
        """The queue-overflow stress plan must actually cause writer
        back-pressure: full-queue stall cycles appear that the
        fault-free baseline lacks."""
        scenario = Scenario(
            victim="deep-recursion",
            backend="cosim",
            policy="shadow-stack",
            policy_backend="host",
            queue_depth=2,
            fault_plan="stall-burst",
        )
        result = run_scenario(scenario, campaign_seed=0)
        assert result["contract_ok"]
        assert result["fault_stats"]["stall_cycles_injected"] > 0
        # The verdict must survive the back-pressure unchanged: stalls
        # delay, they never flip (the contract's core invariant).
        assert result["detected"] == result["baseline_detected"]
