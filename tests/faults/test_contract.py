"""Degradation contracts: allowed labels per (monitor state, fault kind)."""

import pytest

from repro.faults.contract import (
    DEGRADATION_DETECT,
    DEGRADATION_DETECT_LATE,
    DEGRADATION_FAIL_SAFE,
    DEGRADATION_MISS,
    DEGRADATION_TRANSPARENT,
    allowed_degradations,
    classify_degradation,
    evaluate_contract,
)
from repro.faults.plan import (
    FAULT_DOORBELL_DROP,
    FAULT_MONITOR_STALL,
    FaultEvent,
    FaultPlan,
)
from repro.firmware.policies import (
    CompositePolicy,
    CoarseGrainedPolicy,
    CryptoReturnPolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)

DROP_PLAN = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=0),))
STALL_PLAN = FaultPlan((FaultEvent(FAULT_MONITOR_STALL, index=0, param=100),))


class TestPolicyAnnotations:
    """Every policy declares its monitor state and supports reset()."""

    @pytest.mark.parametrize("factory,state", [
        (ShadowStackPolicy, "stateful"),
        (CryptoReturnPolicy, "stateful"),
        (CoarseGrainedPolicy, "stateful"),
        (lambda: ForwardEdgePolicy(frozenset({0x1000})), "stateless"),
    ])
    def test_monitor_state_attribute(self, factory, state):
        policy = factory()
        assert policy.monitor_state == state
        policy.reset()  # must exist and not raise on a fresh instance

    def test_composite_state_is_stateful_when_any_member_is(self):
        composite = CompositePolicy([
            ForwardEdgePolicy(frozenset({0x1000})),
            ShadowStackPolicy(),
        ])
        assert composite.monitor_state == "stateful"
        composite.reset()


class TestAllowedDegradations:
    def test_stall_never_licenses_a_verdict_change(self):
        # The contract's teeth: a stall delays, it must not flip.
        for state in ("stateful", "stateless"):
            allowed = allowed_degradations(state, STALL_PLAN)
            assert DEGRADATION_MISS not in allowed
            assert DEGRADATION_FAIL_SAFE not in allowed
            assert DEGRADATION_DETECT_LATE in allowed

    def test_drop_licenses_a_documented_miss(self):
        for state in ("stateful", "stateless"):
            assert DEGRADATION_MISS in allowed_degradations(state, DROP_PLAN)

    def test_empty_plan_allows_only_identity_labels(self):
        allowed = allowed_degradations("stateful", FaultPlan())
        assert allowed == frozenset(
            {DEGRADATION_TRANSPARENT, DEGRADATION_DETECT}
        )


class TestClassify:
    def test_detect_when_both_runs_detect_without_stalls(self):
        label = classify_degradation(DROP_PLAN, True, True, 100, 100)
        assert label == DEGRADATION_DETECT

    def test_detect_late_needs_stalls_and_grown_latency(self):
        assert classify_degradation(
            STALL_PLAN, True, True, 100, 150
        ) == DEGRADATION_DETECT_LATE
        # Same latencies: not late, just detect.
        assert classify_degradation(
            STALL_PLAN, True, True, 100, 100
        ) == DEGRADATION_DETECT

    def test_fail_safe_is_detection_the_baseline_lacked(self):
        assert classify_degradation(
            DROP_PLAN, False, True, None, 50
        ) == DEGRADATION_FAIL_SAFE

    def test_miss_is_suppressed_detection(self):
        assert classify_degradation(
            DROP_PLAN, True, False, 80, None
        ) == DEGRADATION_MISS

    def test_transparent_when_neither_detects(self):
        assert classify_degradation(
            DROP_PLAN, False, False, None, None
        ) == DEGRADATION_TRANSPARENT


class TestEvaluate:
    def test_detect_late_within_injected_budget_passes(self):
        label, ok = evaluate_contract("stateful", STALL_PLAN,
                                      True, True, 100, 190)
        assert label == DEGRADATION_DETECT_LATE
        assert ok

    def test_detect_late_overshooting_budget_fails(self):
        label, ok = evaluate_contract("stateful", STALL_PLAN,
                                      True, True, 100, 201)
        assert label == DEGRADATION_DETECT_LATE
        assert not ok

    def test_stall_induced_miss_breaks_the_contract(self):
        label, ok = evaluate_contract("stateful", STALL_PLAN,
                                      True, False, 100, None)
        assert label == DEGRADATION_MISS
        assert not ok

    def test_drop_induced_miss_is_documented(self):
        label, ok = evaluate_contract("stateless", DROP_PLAN,
                                      True, False, 80, None)
        assert label == DEGRADATION_MISS
        assert ok
