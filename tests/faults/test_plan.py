"""Fault plans: validation, JSON round-trips, seed determinism."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    ADVERSARIAL_FAULTS,
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_EVENT_CORRUPT,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FAULT_PLANS,
    MONITOR_FAULTS,
    TRANSPORT_FAULTS,
    FaultEvent,
    FaultPlan,
    build_plan,
)


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent("doorbell-steal", index=0)

    def test_negative_index_rejected(self):
        with pytest.raises(FaultPlanError, match="index"):
            FaultEvent(FAULT_DOORBELL_DROP, index=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(FaultPlanError, match="count"):
            FaultEvent(FAULT_DOORBELL_DROP, index=0, count=0)

    def test_corrupt_needs_nonzero_mask(self):
        with pytest.raises(FaultPlanError, match="XOR mask"):
            FaultEvent(FAULT_EVENT_CORRUPT, index=0, param=0)

    def test_corrupt_mask_must_fit_64_bits(self):
        with pytest.raises(FaultPlanError, match="XOR mask"):
            FaultEvent(FAULT_EVENT_CORRUPT, index=0, param=1 << 64)

    def test_stall_needs_positive_delay(self):
        with pytest.raises(FaultPlanError, match="cycle delay"):
            FaultEvent(FAULT_MONITOR_STALL, index=0, param=0)

    def test_parameterless_kinds_reject_params(self):
        for kind in (FAULT_DOORBELL_DROP, FAULT_DOORBELL_DUP,
                     FAULT_MONITOR_RESET):
            with pytest.raises(FaultPlanError, match="no parameter"):
                FaultEvent(kind, index=0, param=7)


class TestPlanProperties:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.kinds == frozenset()
        assert not plan.needs_monitor
        assert plan.total_stall_cycles == 0

    def test_needs_monitor_tracks_kinds(self):
        transport = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=0),))
        monitor = FaultPlan((FaultEvent(FAULT_MONITOR_RESET, index=1),))
        assert not transport.needs_monitor
        assert monitor.needs_monitor

    def test_total_stall_cycles_sums_windows(self):
        plan = FaultPlan((
            FaultEvent(FAULT_MONITOR_STALL, index=0, count=3, param=100),
            FaultEvent(FAULT_MONITOR_STALL, index=5, param=50),
        ))
        assert plan.total_stall_cycles == 350


class TestJsonRoundTrip:
    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("seed", [0, 1, 99])
    def test_named_plans_round_trip(self, name, seed):
        plan = build_plan(name, seed)
        assert FaultPlan.loads(plan.dumps()) == plan

    def test_malformed_json_raises_fault_plan_error(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.loads("{nope")

    def test_malformed_event_raises_fault_plan_error(self):
        with pytest.raises(FaultPlanError, match="malformed fault event"):
            FaultPlan.from_json({"events": [{"index": 3}]})

    def test_events_must_be_a_list(self):
        with pytest.raises(FaultPlanError, match="must be a list"):
            FaultPlan.from_json({"events": "drop-first"})


class TestRegistry:
    def test_unknown_plan_name_raises(self):
        with pytest.raises(FaultPlanError, match="unknown fault plan"):
            build_plan("drop-everything", 0)

    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_build_plan_is_deterministic(self, name):
        assert build_plan(name, 42) == build_plan(name, 42)

    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_spec_needs_monitor_matches_plan(self, name):
        spec = FAULT_PLANS[name]
        plan = build_plan(name, 7)
        assert plan.needs_monitor == spec.needs_monitor

    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_plan_kinds_stay_in_one_family_set(self, name):
        plan = build_plan(name, 3)
        assert plan.kinds <= (
            TRANSPORT_FAULTS | MONITOR_FAULTS | ADVERSARIAL_FAULTS
        )

    def test_seed_perturbs_windowed_plans(self):
        # The windowed plans draw their index from the seeded RNG, so
        # some pair of seeds must disagree.
        plans = {build_plan("drop-window", seed).events for seed in range(8)}
        assert len(plans) > 1
