"""Cross-hart adversarial faults and the monitor's quarantine defense.

Covers the hart-scoping rules (the unscoped-plan-on-N>1 bugfix, typed
``UnknownHartError`` on bad scopes), the three adversarial kinds
(``hart-spoof`` / ``doorbell-flood`` / ``arbiter-hold``) end to end
against the defense layer, the quarantine-lossy graceful-degradation
coupling, the no-reset-escape rule, and the per-hart contract / oracle
units.  The hard contract throughout: benign peers' verdicts and
detection latencies stay bit-identical to the adversary-free baseline.
"""

import random

import pytest

from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.errors import ConfigError, FaultPlanError, UnknownHartError
from repro.faults import (
    FAULT_DOORBELL_DROP,
    FaultEvent,
    FaultPlan,
    attach_faults,
    build_plan,
    predict_adversarial,
)
from repro.faults.contract import (
    DEGRADATION_MISS,
    DEGRADATION_QUARANTINE,
    DEGRADATION_TRANSPARENT,
    ROLE_ATTACKER,
    ROLE_BENIGN,
    evaluate_hart_contract,
)
from repro.firmware.policies import ShadowStackPolicy
from repro.policyhost import MonitorDefense, mount_policy_host
from repro.soc.mailbox import DoorbellArbiter
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc
from repro.system.topology import Topology

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)
SEED = 1234
ADVERSARIAL_PLANS = ("xhart-spoof", "xhart-flood", "xhart-hold")


def _build(n=2, plan=None, defense=True, lossy=False):
    """N-hart SoC: rop on hart 0 (the benign-contract probe), chatty
    deep-recursion peers, shadow-stack monitor on the policy host."""
    victims = ["rop"] + ["deep-recursion"] * (n - 1)
    topo = Topology(n_harts=n)
    soc = build_soc(
        cfi_config=TitanCfiConfig(raise_on_violation=False, lossy=lossy),
        topology=topo,
    )
    for hart_id, victim in enumerate(victims):
        amap = topo.address_map(hart_id, soc.addresses)
        program = VICTIMS[victim].builder(amap, random.Random(SEED + hart_id))
        soc.load_host_program(program, hart_id=hart_id)
    mount_policy_host(soc, ShadowStackPolicy(), defense=defense)
    if plan is not None:
        attach_faults(soc, plan)
    return soc


def _run(plan_name=None, n=2, mode=None):
    plan = None
    if plan_name is not None:
        plan = build_plan(plan_name, SEED).scoped(1)
    soc = _build(n=n, plan=plan)
    report = SystemSimulator(soc, mode=mode).run()
    return soc, report


def _hart_row(report, hart_id):
    entry = report.per_hart[hart_id]
    return (entry["detected"], entry["violation_kind"],
            entry["detection_latency"])


@pytest.fixture(scope="module")
def baseline():
    """The adversary-free (but defense-mounted) N=2 reference run."""
    _soc, report = _run(None)
    return report


class TestPlanScoping:
    def test_unscoped_plan_on_multihart_rejected(self):
        """Regression: an unscoped plan used to silently fault hart 0
        of an N>1 topology; it must now be a typed rejection."""
        plan = FaultPlan(
            events=(FaultEvent(kind=FAULT_DOORBELL_DROP, index=0),)
        )
        soc = _build(defense=False)
        with pytest.raises(FaultPlanError, match="silently fault hart 0"):
            attach_faults(soc, plan)

    def test_out_of_range_scope_rejected(self):
        plan = build_plan("drop-first", SEED).scoped(5)
        soc = _build(defense=False)
        with pytest.raises(UnknownHartError):
            attach_faults(soc, plan)

    def test_single_hart_plans_unchanged(self):
        """N=1 keeps accepting unscoped plans (the historic contract)."""
        soc = build_soc(cfi_config=TitanCfiConfig(raise_on_violation=False))
        program = VICTIMS["rop"].builder(soc.addresses, random.Random(SEED))
        soc.load_host_program(program)
        mount_policy_host(soc, ShadowStackPolicy())
        attach_faults(soc, build_plan("drop-first", SEED))
        assert soc.faults is not None

    def test_adversarial_plan_needs_multihart(self):
        soc = build_soc(cfi_config=TitanCfiConfig(raise_on_violation=False))
        program = VICTIMS["rop"].builder(soc.addresses, random.Random(SEED))
        soc.load_host_program(program)
        mount_policy_host(soc, ShadowStackPolicy())
        with pytest.raises(FaultPlanError):
            attach_faults(soc, build_plan("xhart-spoof", SEED))

    def test_scoped_helpers(self):
        plan = build_plan("xhart-flood", SEED)
        assert not plan.hart_scoped
        scoped = plan.scoped(1)
        assert scoped.hart_scoped and scoped.harts == (1,)
        assert scoped.adversarial


class TestQuarantineDefense:
    @pytest.mark.parametrize("plan_name", ADVERSARIAL_PLANS)
    def test_attacker_is_quarantined(self, plan_name):
        soc, report = _run(plan_name)
        assert soc.doorbell_arbiter.quarantined(1)
        assert report.per_hart[1]["quarantined"]
        assert not report.per_hart[0]["quarantined"]

    @pytest.mark.parametrize("plan_name", ADVERSARIAL_PLANS)
    def test_benign_hart_rows_bit_identical(self, plan_name, baseline):
        """The hard contract: the rop hart's verdict, kind and latency
        must not move by one cycle while a peer attacks the monitor."""
        _soc, report = _run(plan_name)
        assert _hart_row(report, 0) == _hart_row(baseline, 0)

    def test_spoof_is_failsafed_against_the_owner(self):
        soc, report = _run("xhart-spoof")
        summary = soc.policy_host.defense.summary()
        assert summary["spoofs_detected"] == 1
        assert summary["failsafe_responses"] == 1
        assert report.faults["fired"]["hart-spoof"] == 1
        # The fail-safe verdict is charged to the spoofing owner hart.
        assert report.per_hart[1]["detected"]

    def test_flood_strikes_out_the_flooder(self):
        soc, report = _run("xhart-flood")
        summary = soc.policy_host.defense.summary()
        assert summary["floods_quarantined"] == 1
        assert summary["strikes"][1] >= 3
        assert report.faults["fired"]["doorbell-flood"] == 1

    def test_hold_is_watchdog_released(self):
        soc, report = _run("xhart-hold")
        summary = soc.policy_host.defense.summary()
        assert summary["holds_released"] == 1
        assert report.faults["fired"]["arbiter-hold"] == 1

    @pytest.mark.parametrize("plan_name", ADVERSARIAL_PLANS)
    def test_defense_is_engine_invariant(self, plan_name):
        keys = []
        for mode in MODES:
            soc, report = _run(plan_name, mode=mode)
            keys.append((
                report.cycles,
                report.detected,
                report.detection_latency,
                tuple((h["detected"], h["violation_kind"],
                       h["detection_latency"], h["quarantined"],
                       h["cfi"]["dropped"]) for h in report.per_hart),
                soc.policy_host.defense.summary(),
            ))
        assert keys[0] == keys[1] == keys[2]

    def test_quarantined_hart_sheds_instead_of_wedging(self):
        """Quarantine flips only the sealed hart's queue to lossy: its
        core keeps committing (drops counted), the run terminates, and
        the benign peer's queue stays verdict-exact (no drops)."""
        _soc, report = _run("xhart-spoof")
        assert report.per_hart[1]["cfi"]["dropped"] > 0
        assert report.per_hart[0]["cfi"]["dropped"] == 0

    def test_reset_does_not_lift_quarantine(self):
        """Anti reset-to-escape: a monitor reboot clears strike
        accounting but never the quarantine latch."""
        arbiter = DoorbellArbiter(2)
        defense = MonitorDefense(arbiter, 2, ShadowStackPolicy())
        for _ in range(3):
            defense.strike(1)
        assert arbiter.quarantined(1)
        defense.reset()
        assert arbiter.quarantined(1)
        assert defense.strikes == [0, 0]

    def test_defense_mount_requires_multihart(self):
        soc = build_soc(cfi_config=TitanCfiConfig(raise_on_violation=False))
        program = VICTIMS["rop"].builder(soc.addresses, random.Random(SEED))
        soc.load_host_program(program)
        with pytest.raises(ConfigError):
            mount_policy_host(soc, ShadowStackPolicy(), defense=True)


class TestLossyQueue:
    def test_lossy_excludes_blocking(self):
        with pytest.raises(ConfigError):
            TitanCfiConfig(lossy=True, blocking=True)

    def test_lossy_queue_sheds_instead_of_stalling(self):
        """Global lossy mode at depth 1: the writer outpaces the
        monitor, the queue sheds oldest-first, and commit never sees a
        full-queue stall."""
        config = TitanCfiConfig(queue_depth=1, lossy=True,
                                raise_on_violation=False)
        soc = build_soc(cfi_config=config)
        program = VICTIMS["deep-recursion"].builder(
            soc.addresses, random.Random(SEED)
        )
        soc.load_host_program(program)
        mount_policy_host(soc, ShadowStackPolicy())
        report = SystemSimulator(soc).run()
        assert report.cfi["dropped"] > 0
        assert report.cfi["full_stalls"] == 0

    def test_lossy_run_is_engine_invariant(self):
        keys = []
        for mode in MODES:
            config = TitanCfiConfig(queue_depth=1, lossy=True,
                                    raise_on_violation=False)
            soc = build_soc(cfi_config=config)
            program = VICTIMS["deep-recursion"].builder(
                soc.addresses, random.Random(SEED)
            )
            soc.load_host_program(program)
            mount_policy_host(soc, ShadowStackPolicy())
            report = SystemSimulator(soc, mode=mode).run()
            keys.append((report.cycles, report.detected,
                         report.detection_latency, report.cfi))
        assert keys[0] == keys[1] == keys[2]


class TestHartContract:
    PLAN = build_plan("xhart-spoof", SEED).scoped(1)
    ROW = {"detected": True, "violation_kind": "return",
           "detection_latency": 220}

    def test_quarantined_attacker_meets_contract(self):
        label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_ATTACKER, {}, {}, quarantined=True
        )
        assert (label, ok) == (DEGRADATION_QUARANTINE, True)

    def test_unquarantined_attacker_is_a_miss(self):
        label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_ATTACKER, {}, {}, quarantined=False
        )
        assert (label, ok) == (DEGRADATION_MISS, False)

    def test_benign_identical_row_passes(self):
        label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_BENIGN, dict(self.ROW), dict(self.ROW),
            quarantined=False,
        )
        assert ok and label != DEGRADATION_MISS

    def test_benign_latency_shift_fails(self):
        moved = dict(self.ROW, detection_latency=221)
        _label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_BENIGN, dict(self.ROW), moved, quarantined=False
        )
        assert not ok

    def test_benign_quarantine_fails_even_if_identical(self):
        label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_BENIGN, dict(self.ROW), dict(self.ROW),
            quarantined=True,
        )
        assert (label, ok) == (DEGRADATION_QUARANTINE, False)

    def test_transparent_benign_idle_hart(self):
        idle = {"detected": False, "violation_kind": None,
                "detection_latency": None}
        label, ok = evaluate_hart_contract(
            self.PLAN, ROLE_BENIGN, dict(idle), dict(idle), quarantined=False
        )
        assert (label, ok) == (DEGRADATION_TRANSPARENT, True)

    def test_non_adversarial_plan_rejected(self):
        with pytest.raises(ValueError):
            evaluate_hart_contract(
                build_plan("drop-first", SEED), ROLE_ATTACKER, {}, {}, True
            )

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            evaluate_hart_contract(self.PLAN, "bystander", {}, {}, False)


class TestAdversarialOracle:
    def test_spoof_and_flood_always_surface(self):
        for name in ("xhart-spoof", "xhart-flood"):
            plan = build_plan(name, SEED)
            assert predict_adversarial(plan, baseline_detected=False)
            assert predict_adversarial(plan, baseline_detected=True)

    def test_hold_fabricates_nothing(self):
        plan = build_plan("xhart-hold", SEED)
        assert not predict_adversarial(plan, baseline_detected=False)
        assert predict_adversarial(plan, baseline_detected=True)

    def test_non_adversarial_plan_rejected(self):
        with pytest.raises(ValueError):
            predict_adversarial(build_plan("drop-first", SEED), False)
