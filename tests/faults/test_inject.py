"""Fault controller semantics and SoC attachment rules."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.inject import FaultController, attach_faults
from repro.faults.plan import (
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_EVENT_CORRUPT,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FaultEvent,
    FaultPlan,
)
from repro.firmware.policies import ShadowStackPolicy
from repro.policyhost.host import mount_policy_host
from repro.system.soc import build_soc


class TestControllerExpansion:
    def test_count_windows_expand_to_consecutive_indices(self):
        plan = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=2, count=3),))
        ctrl = FaultController(plan)
        hits = [ctrl.transport_actions(n)[0] for n in range(7)]
        assert hits == [False, False, True, True, True, False, False]

    def test_empty_plan_is_identity(self):
        ctrl = FaultController(FaultPlan())
        for n in range(10):
            assert ctrl.transport_actions(n) == (False, False, 0)
            assert ctrl.stall_cycles(n) == 0
            assert not ctrl.reset_before(n)
        assert ctrl.fired == {kind: 0 for kind in ctrl.fired}

    def test_drop_wins_over_dup_and_corrupt(self):
        plan = FaultPlan((
            FaultEvent(FAULT_DOORBELL_DROP, index=1),
            FaultEvent(FAULT_DOORBELL_DUP, index=1),
            FaultEvent(FAULT_EVENT_CORRUPT, index=1, param=0xFF),
        ))
        ctrl = FaultController(plan)
        assert ctrl.transport_actions(1) == (True, False, 0)
        assert ctrl.fired[FAULT_DOORBELL_DROP] == 1
        assert ctrl.fired[FAULT_DOORBELL_DUP] == 0
        assert ctrl.fired[FAULT_EVENT_CORRUPT] == 0

    def test_dup_and_corrupt_compose_on_one_index(self):
        plan = FaultPlan((
            FaultEvent(FAULT_DOORBELL_DUP, index=0),
            FaultEvent(FAULT_EVENT_CORRUPT, index=0, param=0xF0),
        ))
        assert FaultController(plan).transport_actions(0) == (False, True, 0xF0)

    def test_stall_and_reset_tracked_separately(self):
        plan = FaultPlan((
            FaultEvent(FAULT_MONITOR_STALL, index=0, count=2, param=25),
            FaultEvent(FAULT_MONITOR_RESET, index=1),
        ))
        ctrl = FaultController(plan)
        assert ctrl.stall_cycles(0) == 25
        assert ctrl.stall_cycles(1) == 25
        assert ctrl.stall_cycles(2) == 0
        assert not ctrl.reset_before(0)
        assert ctrl.reset_before(1)
        assert ctrl.stall_cycles_injected == 50
        assert ctrl.fired[FAULT_MONITOR_STALL] == 2
        assert ctrl.fired[FAULT_MONITOR_RESET] == 1

    def test_stats_summary_filters_zero_families(self):
        ctrl = FaultController(
            FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=0),))
        )
        ctrl.transport_actions(0)
        summary = ctrl.stats_summary()
        assert summary["armed"] == {FAULT_DOORBELL_DROP: 1}
        assert summary["fired"] == {FAULT_DOORBELL_DROP: 1}
        assert summary["stall_cycles_injected"] == 0


class TestAttachment:
    def test_none_plan_attaches_nothing(self):
        soc = build_soc()
        assert attach_faults(soc, None) is None
        assert soc.faults is None
        assert soc.cfi_stage.writer.faults is None

    def test_transport_plan_wires_writer_mailbox_and_soc(self):
        soc = build_soc()
        plan = FaultPlan((FaultEvent(FAULT_DOORBELL_DROP, index=0),))
        ctrl = attach_faults(soc, plan)
        assert soc.faults is ctrl
        assert soc.cfi_stage.writer.faults is ctrl
        assert soc.cfi_mailbox.faults is ctrl

    def test_monitor_plan_requires_policy_host(self):
        soc = build_soc()  # firmware agent: no policy host mounted
        plan = FaultPlan((FaultEvent(FAULT_MONITOR_RESET, index=0),))
        with pytest.raises(FaultPlanError, match="policy-host agent"):
            attach_faults(soc, plan)

    def test_monitor_plan_attaches_to_mounted_host(self):
        soc = build_soc()
        mount_policy_host(soc, ShadowStackPolicy(), variant="irq")
        plan = FaultPlan((FaultEvent(FAULT_MONITOR_STALL, index=0, param=10),))
        ctrl = attach_faults(soc, plan)
        assert soc.policy_host.faults is ctrl

    def test_cfi_less_soc_rejected(self):
        soc = build_soc(with_cfi=False)
        with pytest.raises(FaultPlanError, match="without a CFI stage"):
            attach_faults(soc, FaultPlan())
