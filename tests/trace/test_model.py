"""Trace-model tests: closed forms, queue semantics, hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.trace.analytic import (
    blocking_slowdown_percent,
    is_saturated,
    mean_cf_gap,
    saturation_slowdown_percent,
)
from repro.trace.generator import burst_trace, uniform_trace
from repro.trace.model import simulate_trace


class TestAnalyticForms:
    def test_blocking_matches_paper_dhrystone(self):
        """Table II dhrystone IRQ: 2.25e4 * 267 / 4.57e5 = 1315%."""
        value = blocking_slowdown_percent(4.57e5, 2.25e4, 267)
        assert value == pytest.approx(1314.66, abs=0.5)

    def test_blocking_matches_paper_ud(self):
        assert blocking_slowdown_percent(1.87e6, 2.98e3, 267) == pytest.approx(42.5, abs=0.5)

    def test_saturation_matches_paper_mm(self):
        """Table III mm IRQ: 2.33e5*267/1.41e6 - 1 = 43.1x."""
        value = saturation_slowdown_percent(1.41e6, 2.33e5, 267)
        assert value == pytest.approx(4312, abs=2)

    def test_saturation_zero_when_checker_keeps_up(self):
        assert saturation_slowdown_percent(1e6, 100, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            blocking_slowdown_percent(0, 1, 1)
        with pytest.raises(ConfigError):
            saturation_slowdown_percent(1, -1, 1)

    def test_gap_helpers(self):
        assert mean_cf_gap(1000, 10) == 100
        assert mean_cf_gap(1000, 0) == float("inf")
        assert is_saturated(1000, 100, 50)
        assert not is_saturated(1000, 10, 50)


class TestDiscreteEventModel:
    def test_no_events_no_slowdown(self):
        result = simulate_trace([], 1000, 267)
        assert result.slowdown_percent == 0.0

    def test_sparse_events_absorbed_by_queue(self):
        arrivals = uniform_trace(100_000, 10)  # gap 10k >> L
        result = simulate_trace(arrivals, 100_000, 267, queue_depth=8)
        assert result.stall_cycles == 0

    def test_blocking_equals_closed_form(self):
        """The DES in blocking mode must reproduce the analytic form."""
        cycles, count, latency = 100_000, 50, 267
        arrivals = uniform_trace(cycles, count)
        result = simulate_trace(arrivals, cycles, latency, queue_depth=1, blocking=True)
        expected = blocking_slowdown_percent(cycles, count, latency)
        assert result.slowdown_percent == pytest.approx(expected, rel=0.01)

    def test_saturated_uniform_approaches_closed_form(self):
        cycles, count, latency = 100_000, 5_000, 267  # gap 20 << 267
        arrivals = uniform_trace(cycles, count)
        result = simulate_trace(arrivals, cycles, latency, queue_depth=8)
        expected = saturation_slowdown_percent(cycles, count, latency)
        assert result.slowdown_percent == pytest.approx(expected, rel=0.02)

    def test_deeper_queue_never_slower(self):
        arrivals = burst_trace(100_000, 2_000, 0.8, 16)
        shallow = simulate_trace(arrivals, 100_000, 267, queue_depth=1)
        deep = simulate_trace(arrivals, 100_000, 267, queue_depth=16)
        assert deep.protected_cycles <= shallow.protected_cycles

    def test_lower_latency_never_slower(self):
        arrivals = burst_trace(100_000, 2_000, 0.8, 16)
        slow = simulate_trace(arrivals, 100_000, 267, queue_depth=8)
        fast = simulate_trace(arrivals, 100_000, 73, queue_depth=8)
        assert fast.protected_cycles <= slow.protected_cycles

    def test_outstanding_bounded_by_depth(self):
        arrivals = burst_trace(50_000, 3_000, 1.0, 4)
        result = simulate_trace(arrivals, 50_000, 100, queue_depth=4)
        assert result.max_outstanding <= 4

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            simulate_trace([], 100, 10, queue_depth=0)

    @given(
        count=st.integers(min_value=1, max_value=300),
        latency=st.integers(min_value=1, max_value=400),
        depth=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_protected_never_faster(self, count, latency, depth):
        cycles = 50_000
        arrivals = uniform_trace(cycles, count)
        result = simulate_trace(arrivals, cycles, latency, queue_depth=depth)
        assert result.protected_cycles >= cycles
        assert result.stall_cycles >= 0

    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        gap=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_blocking_upper_bounds_queued(self, fraction, gap):
        """Depth-1 blocking is the worst case for any arrival process."""
        arrivals = burst_trace(50_000, 500, fraction, gap)
        blocking = simulate_trace(arrivals, 50_000, 150, queue_depth=1, blocking=True)
        queued = simulate_trace(arrivals, 50_000, 150, queue_depth=8)
        assert queued.protected_cycles <= blocking.protected_cycles


class TestGenerators:
    def test_uniform_count(self):
        assert len(uniform_trace(1000, 10)) == 10

    def test_uniform_sorted_within_range(self):
        arrivals = uniform_trace(10_000, 100)
        assert arrivals == sorted(arrivals)
        assert 0 <= arrivals[0] and arrivals[-1] < 10_000

    def test_uniform_zero_events(self):
        assert uniform_trace(1000, 0) == []

    def test_burst_count_exact(self):
        arrivals = burst_trace(100_000, 777, 0.5, 16)
        assert len(arrivals) == 777

    def test_burst_deterministic(self):
        a = burst_trace(100_000, 500, 0.7, 8, seed=1)
        b = burst_trace(100_000, 500, 0.7, 8, seed=1)
        assert a == b

    def test_burst_seed_changes_layout(self):
        a = burst_trace(100_000, 500, 0.7, 8, seed=1)
        b = burst_trace(100_000, 500, 0.7, 8, seed=2)
        assert a != b

    def test_burst_fraction_zero_is_uniform(self):
        assert burst_trace(1000, 10, 0.0, 8) == uniform_trace(1000, 10)

    def test_burst_validation(self):
        with pytest.raises(ConfigError):
            burst_trace(1000, 10, 1.5, 8)
        with pytest.raises(ConfigError):
            burst_trace(1000, 10, 0.5, 0)

    @given(
        count=st.integers(min_value=1, max_value=500),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30)
    def test_property_burst_count_preserved(self, count, fraction):
        arrivals = burst_trace(100_000, count, fraction, 16)
        assert len(arrivals) == count
        assert arrivals == sorted(arrivals)
