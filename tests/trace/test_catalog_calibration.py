"""Catalog integrity and calibration quality tests."""

import pytest

from repro.bench_catalog.calibration import calibrate
from repro.bench_catalog.catalog import (
    ALL_BENCHMARKS,
    EMBENCH,
    RISCV_TESTS,
    TABLE2_BENCHMARKS,
    benchmark,
)
from repro.trace.model import simulate_trace


class TestCatalogIntegrity:
    def test_counts_match_paper(self):
        assert len(EMBENCH) == 19
        assert len(RISCV_TESTS) == 13
        assert len(ALL_BENCHMARKS) == 32

    def test_table2_rows(self):
        names = {b.name for b in TABLE2_BENCHMARKS}
        assert names == {
            "aha-mont64", "edn", "matmult-int", "ud",
            "rsort", "median", "qsort", "multiply", "dhrystone",
        }

    def test_lookup(self):
        assert benchmark("dhrystone").cf_count == 22_500

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            benchmark("doom")

    def test_statistics_positive(self):
        for bench in ALL_BENCHMARKS:
            assert bench.cycles > 0
            assert bench.cf_count > 0

    def test_dexie_rows_are_embench(self):
        for bench in ALL_BENCHMARKS:
            if bench.dexie_slowdown is not None:
                assert bench.suite == "embench"

    def test_fixer_rows_are_riscv_tests(self):
        for bench in ALL_BENCHMARKS:
            if bench.fixer_slowdown is not None:
                assert bench.suite == "riscv-tests"


class TestCalibrationQuality:
    @pytest.mark.parametrize("name", ["dhrystone", "mm", "slre", "statemate"])
    def test_saturated_benchmarks_need_no_fit(self, name):
        cal = calibrate(benchmark(name))
        assert not cal.fitted

    @pytest.mark.parametrize("name", ["aha-mont64", "qrduino", "towers"])
    def test_idle_benchmarks_need_no_fit(self, name):
        cal = calibrate(benchmark(name))
        assert not cal.fitted
        assert cal.irq_error is not None and cal.irq_error <= 1.5

    @pytest.mark.parametrize(
        "name", ["huffbench", "picojpeg", "wikisort", "mt-matmul", "nbody"]
    )
    def test_bursty_benchmarks_fit_within_tolerance(self, name):
        bench = benchmark(name)
        cal = calibrate(bench)
        assert cal.fitted
        model = simulate_trace(
            cal.arrivals(), bench.cycles, 267, queue_depth=8
        ).slowdown_percent
        assert model == pytest.approx(bench.paper_irq, abs=0.15 * bench.paper_irq + 2)

    def test_calibration_validates_on_unfitted_columns(self):
        """The polling column (never fitted) must land near the paper."""
        bench = benchmark("nbody")
        cal = calibrate(bench)
        poll = simulate_trace(
            cal.arrivals(), bench.cycles, 112, queue_depth=8
        ).slowdown_percent
        assert poll == pytest.approx(bench.paper_poll, rel=0.25)

    def test_arrivals_match_catalog_statistics(self):
        bench = benchmark("picojpeg")
        arrivals = calibrate(bench).arrivals()
        assert len(arrivals) == bench.cf_count
        assert max(arrivals) <= bench.cycles
