"""Kill-and-restart convergence: the acceptance criterion, for real.

A serving process is killed mid-job via the ``os._exit`` crash hook
(the closest deterministic stand-in for ``kill -9`` — no atexit
handlers, no flushes), then a fresh ``serve --once`` resumes from the
journal + store.  The converged service tree must be *bit-identical*
to an uninterrupted run: every store object, ``campaign.json`` and
``campaign.csv``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.service.queue import ENV_CRASH_AFTER_PUTS

REPO = Path(__file__).resolve().parents[2]


def _run_service(root, *argv, extra_env=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop(ENV_CRASH_AFTER_PUTS, None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", "--root", str(root), *argv],
        env=env, capture_output=True, text=True, timeout=300,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"service {argv} exited {proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc


def _store_snapshot(root):
    objects = Path(root) / "store" / "objects"
    return {
        path.relative_to(objects).as_posix(): path.read_bytes()
        for path in sorted(objects.rglob("*.json"))
    }


def test_kill_mid_job_then_restart_converges(tmp_path):
    interrupted = tmp_path / "interrupted"
    reference = tmp_path / "reference"

    # Reference: one uninterrupted cold run of the smoke matrix.
    _run_service(reference, "submit", "--matrix", "smoke",
                 "--batch-size", "4")
    _run_service(reference, "serve", "--once")

    # Interrupted: the server dies after 5 stored cells (mid-batch 2).
    _run_service(interrupted, "submit", "--matrix", "smoke",
                 "--batch-size", "4")
    crash = _run_service(interrupted, "serve", "--once",
                         extra_env={ENV_CRASH_AFTER_PUTS: "5"},
                         check=False)
    assert crash.returncode == 13, crash.stdout + crash.stderr

    # The journal must say 'running' (orphaned), and the store must
    # hold exactly the cells that were durably written before death.
    status = _run_service(interrupted, "status", "--json")
    (job,) = json.loads(status.stdout)
    assert job["state"] == "running"
    partial = _store_snapshot(interrupted)
    assert len(partial) == 5

    # Restart: the orphaned job resumes and completes.
    _run_service(interrupted, "serve", "--once")
    status = _run_service(interrupted, "status", "--json")
    (job,) = json.loads(status.stdout)
    assert job["state"] == "done"
    # Resumed accounting: the 5 stored cells hit, the rest executed.
    assert job["stats"]["hits"] == 5
    assert job["stats"]["executed"] == job["stats"]["cells"] - 5

    # Bit-identical convergence: store objects and campaign artifacts.
    assert _store_snapshot(interrupted) == _store_snapshot(reference)
    for name in ("campaign.json", "campaign.csv"):
        a = (interrupted / "jobs" / "job-0001" / name).read_bytes()
        b = (reference / "jobs" / "job-0001" / name).read_bytes()
        assert a == b, name

    # The partially-written cells were never rewritten differently.
    converged = _store_snapshot(interrupted)
    for key, blob in partial.items():
        assert converged[key] == blob
