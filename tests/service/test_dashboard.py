"""Dashboard rendering: pure function of on-disk service state."""

import dataclasses

import pytest

from repro.campaign.spec import MATRICES, expand_grid
from repro.service.dashboard import render_dashboard, write_dashboard
from repro.service.queue import SweepService


@pytest.fixture()
def tiny_matrix(monkeypatch):
    monkeypatch.setitem(
        MATRICES, "dash-tiny",
        lambda: expand_grid(victim=["rop", "benign"],
                            policy="shadow-stack",
                            backend=["reference", "cosim"]),
    )
    return "dash-tiny"


def _served(tmp_path, tiny_matrix, version="v1"):
    service = SweepService(tmp_path / "svc", code_version=version)
    service.submit(tiny_matrix)
    service.serve_once()
    return service


class TestRender:
    def test_empty_service_renders(self, tmp_path):
        html = render_dashboard(SweepService(tmp_path / "svc",
                                             code_version="v1"))
        assert "<html" in html
        assert "store is empty" in html
        assert "no jobs submitted" in html

    def test_sections_present_after_a_job(self, tmp_path, tiny_matrix):
        service = _served(tmp_path, tiny_matrix)
        html = render_dashboard(service)
        assert "Result store" in html
        assert "v1 (current)" in html
        assert "job-0001" in html
        assert 'class="state-done"' in html
        assert "Latest results per matrix" in html
        assert "shadow-stack" in html
        assert "campaign.json" in html
        assert "Trends across code versions" in html
        assert "<svg" in html and "detection rate" in html

    def test_detection_matrix_table(self, tmp_path, tiny_matrix):
        html = render_dashboard(_served(tmp_path, tiny_matrix))
        # rop is detected by the shadow stack on both backends: 2/2.
        assert "2/2" in html
        assert "benign (FP)" in html

    def test_delta_section_between_jobs(self, tmp_path, tiny_matrix):
        service = _served(tmp_path, tiny_matrix)
        service.submit(tiny_matrix)
        service.serve_once()
        html = render_dashboard(service)
        assert "Deltas between runs" in html
        assert "job-0001" in html and "job-0002" in html
        assert "no verdict, rate or latency changes" in html

    def test_trends_across_two_code_versions(self, tmp_path, tiny_matrix):
        _served(tmp_path, tiny_matrix, version="v1")
        service = SweepService(tmp_path / "svc", code_version="v2")
        service.submit(tiny_matrix)
        service.serve_once()
        html = render_dashboard(service)
        assert "v1" in html and "v2 (current)" in html
        assert "2 code versions" in html
        assert "<polyline" in html

    def test_quarantine_and_degradation_columns(self, tmp_path,
                                                monkeypatch):
        from repro.campaign.spec import Scenario

        monkeypatch.setitem(
            MATRICES, "dash-xhart",
            lambda: [Scenario(
                victim="rop", backend="cosim", n_harts=2,
                defense=True, fault_plan="xhart-spoof", fault_hart=1,
                hart_victims=("benign",),
            )],
        )
        service = SweepService(tmp_path / "svc", code_version="v1")
        service.submit("dash-xhart")
        service.serve_once()
        html = render_dashboard(service)
        assert "quarantined harts" in html
        assert "degradation" in html

    def test_html_is_escaped(self, tmp_path, tiny_matrix):
        service = _served(tmp_path, tiny_matrix)
        evil = dataclasses.replace(service.jobs()["job-0001"],
                                   matrix="<script>alert(1)</script>")
        service.journal.submit(evil)
        html = render_dashboard(service)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestWrite:
    def test_write_default_location(self, tmp_path, tiny_matrix):
        service = _served(tmp_path, tiny_matrix)
        path = write_dashboard(service)
        assert path == service.root / "dashboard.html"
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_write_custom_location(self, tmp_path, tiny_matrix):
        service = _served(tmp_path, tiny_matrix)
        out = tmp_path / "deep" / "dir" / "dash.html"
        assert write_dashboard(service, out) == out
        assert out.exists()
