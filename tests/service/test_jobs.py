"""Job journal: durable events, crash-tolerant replay, state rules."""

import json

import pytest

from repro.errors import JobStateError, StoreCorruptError
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobJournal,
)


def _journal(tmp_path):
    return JobJournal(tmp_path / "journal.jsonl")


class TestReplay:
    def test_submit_then_transitions(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        journal.transition("job-0001", RUNNING)
        journal.transition("job-0001", DONE, cells=21, hits=0, executed=21)
        jobs = journal.replay()
        job = jobs["job-0001"]
        assert job.state == DONE
        assert job.stats == {"cells": 21, "hits": 0, "executed": 21}

    def test_submission_order_preserved(self, tmp_path):
        journal = _journal(tmp_path)
        for n in (1, 2, 3):
            journal.submit(Job(job_id=f"job-{n:04d}", matrix="smoke"))
        assert list(journal.replay()) == ["job-0001", "job-0002", "job-0003"]
        assert journal.submit_count() == 3

    def test_fresh_job_is_queued(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        assert journal.replay()["job-0001"].state == QUEUED

    def test_torn_tail_is_ignored(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        journal.transition("job-0001", RUNNING)
        with open(journal.path, "a") as fh:
            fh.write('{"event": "state", "job_id": "job-0001", "sta')
        assert journal.replay()["job-0001"].state == RUNNING

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        with open(journal.path, "a") as fh:
            fh.write("GARBAGE\n")
        journal.transition("job-0001", RUNNING)
        with pytest.raises(StoreCorruptError):
            journal.replay()

    def test_state_for_unknown_job_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.transition("job-9999", RUNNING)
        with pytest.raises(JobStateError) as err:
            journal.replay()
        assert err.value.job_id == "job-9999"

    def test_terminal_state_wins(self, tmp_path):
        """A cancel recorded while an orphaned job sat 'running' must
        not be undone by the dead server's stale completion event."""
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        journal.transition("job-0001", RUNNING)
        journal.transition("job-0001", CANCELLED)
        journal.transition("job-0001", DONE)
        assert journal.replay()["job-0001"].state == CANCELLED

    def test_unknown_state_name_rejected(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        with pytest.raises(JobStateError):
            journal.transition("job-0001", "paused")

    def test_batch_events_are_progress_only(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke"))
        journal.batch("job-0001", 0, 16)
        job = journal.replay()["job-0001"]
        assert job.state == QUEUED
        assert job.stats == {}


class TestDurability:
    def test_events_are_one_json_line_each(self, tmp_path):
        journal = _journal(tmp_path)
        journal.submit(Job(job_id="job-0001", matrix="smoke",
                           campaign_seed=7, workers=2, batch_size=4))
        journal.transition("job-0001", FAILED, failed=3)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        submit = json.loads(lines[0])
        assert submit["event"] == "submit"
        assert submit["job"]["campaign_seed"] == 7
        assert submit["job"]["batch_size"] == 4
        assert "time" in submit

    def test_describe_is_json_ready(self, tmp_path):
        job = Job(job_id="job-0001", matrix="smoke", state=DONE,
                  stats={"cells": 2})
        snapshot = json.loads(json.dumps(job.describe()))
        assert snapshot["state"] == DONE
        assert snapshot["stats"] == {"cells": 2}
