"""SweepService end to end: incremental execution, resume, artifacts.

Small private matrices are registered in :data:`MATRICES` per test
(reference-backend cells — fast), so the incremental claims are
checked cell-exactly; one test runs the real ``smoke`` matrix to pin
the acceptance criterion on a registered matrix.
"""

import json

import pytest

from repro.campaign.runner import ENV_CRASH_SCENARIO
from repro.campaign.spec import MATRICES, expand_grid
from repro.errors import ConfigError, JobStateError
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING
from repro.service.queue import SWEEP_NAME, SweepService


@pytest.fixture()
def tiny_matrix(monkeypatch):
    """A two-cell reference matrix registered as 'svc-tiny'."""
    monkeypatch.setitem(
        MATRICES, "svc-tiny",
        lambda: expand_grid(victim=["rop", "benign"],
                            policy="shadow-stack"),
    )
    return "svc-tiny"


def _service(tmp_path, version="v-test"):
    return SweepService(tmp_path / "svc", code_version=version)


class TestSubmit:
    def test_unknown_matrix_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            _service(tmp_path).submit("no-such-matrix")

    def test_job_ids_are_sequential_and_durable(self, tmp_path,
                                                tiny_matrix):
        service = _service(tmp_path)
        assert service.submit(tiny_matrix).job_id == "job-0001"
        assert service.submit(tiny_matrix).job_id == "job-0002"
        # A fresh facade over the same root continues the sequence.
        rebuilt = _service(tmp_path)
        assert rebuilt.submit(tiny_matrix).job_id == "job-0003"
        assert list(rebuilt.jobs()) == ["job-0001", "job-0002", "job-0003"]

    def test_bad_knobs_rejected(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        with pytest.raises(ConfigError):
            service.submit(tiny_matrix, workers=0)
        with pytest.raises(ConfigError):
            service.submit(tiny_matrix, batch_size=0)


class TestIncremental:
    def test_cold_run_executes_everything(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        service.submit(tiny_matrix)
        (sweep,) = service.serve_once()
        assert sweep["state"] == DONE
        assert sweep["cells"] == 2
        assert sweep["hits"] == 0
        assert sweep["executed"] == 2

    def test_warm_rerun_executes_nothing_and_artifacts_match(
            self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        service.submit(tiny_matrix)
        service.serve_once()
        service.submit(tiny_matrix)
        (sweep,) = service.serve_once()
        assert sweep["executed"] == 0
        assert sweep["hits"] == sweep["cells"]
        cold = (service.job_dir("job-0001") / "campaign.json").read_bytes()
        warm = (service.job_dir("job-0002") / "campaign.json").read_bytes()
        assert cold == warm
        cold_csv = (service.job_dir("job-0001") / "campaign.csv").read_bytes()
        warm_csv = (service.job_dir("job-0002") / "campaign.csv").read_bytes()
        assert cold_csv == warm_csv

    def test_axis_flip_reexecutes_only_affected_cells(self, tmp_path,
                                                      monkeypatch):
        grown = {"cells": expand_grid(victim=["rop"],
                                      policy="shadow-stack")}
        monkeypatch.setitem(MATRICES, "svc-grow",
                            lambda: list(grown["cells"]))
        service = _service(tmp_path)
        service.submit("svc-grow")
        (first,) = service.serve_once()
        assert first["executed"] == 1

        # Flip one axis into a sweep: the old cell hits, only the two
        # genuinely new cells (policy=composite) execute.
        grown["cells"] = expand_grid(
            victim=["rop"], policy=["shadow-stack", "composite"],
            backend=["reference", "cosim"],
        )
        service.submit("svc-grow")
        (second,) = service.serve_once()
        assert second["cells"] == len(grown["cells"])
        assert second["hits"] == 1
        assert second["executed"] == second["cells"] - 1

    def test_code_version_change_invalidates(self, tmp_path, tiny_matrix):
        old = _service(tmp_path, version="v-old")
        old.submit(tiny_matrix)
        old.serve_once()
        new = _service(tmp_path, version="v-new")
        new.submit(tiny_matrix)
        (sweep,) = new.serve_once()
        assert sweep["hits"] == 0
        assert sweep["executed"] == 2
        assert sweep["invalidated"] == 2
        # gc drops the superseded version's objects.
        report = new.gc()
        assert report["removed_versions"] == ["v-old"]
        assert new.store.count() == 2

    def test_seed_scopes_the_store(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        service.submit(tiny_matrix, campaign_seed=0)
        service.serve_once()
        service.submit(tiny_matrix, campaign_seed=1)
        (sweep,) = service.serve_once()
        assert sweep["hits"] == 0 and sweep["executed"] == 2


class TestArtifacts:
    def test_payload_shape(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        service.serve_once()
        payload = json.loads(
            (service.job_dir(job.job_id) / "campaign.json").read_text())
        assert payload["schema"] == "repro.campaign/v1"
        assert payload["schema_version"] == 1
        assert payload["matrix"] == tiny_matrix
        assert payload["scenario_count"] == 2
        assert "summary" in payload
        # Run-specific fields must not leak into the payload: they
        # would break cold-vs-warm byte identity.
        assert "timing" not in payload
        assert "jobs" not in payload

    def test_sweep_accounting_artifact(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        service.serve_once()
        sweep = json.loads(
            (service.job_dir(job.job_id) / SWEEP_NAME).read_text())
        assert sweep["code_version"] == "v-test"
        assert sweep["cells"] == 2
        assert sweep["executed"] == 2

    def test_smoke_matrix_round_trip(self, tmp_path):
        """Acceptance criterion, on the real registered smoke matrix."""
        service = _service(tmp_path)
        service.submit("smoke", workers=2)
        (cold,) = service.serve_once()
        service.submit("smoke", workers=2)
        (warm,) = service.serve_once()
        assert cold["executed"] == cold["cells"]
        assert warm["executed"] == 0
        assert warm["hits"] == warm["cells"]
        a = (service.job_dir("job-0001") / "campaign.json").read_bytes()
        b = (service.job_dir("job-0002") / "campaign.json").read_bytes()
        assert a == b


class TestLifecycle:
    def test_cancel_queued_job_skips_execution(self, tmp_path,
                                               tiny_matrix):
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        service.cancel(job.job_id)
        assert service.serve_once() == []
        assert service.jobs()[job.job_id].state == CANCELLED

    def test_cancel_done_job_raises(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        service.serve_once()
        with pytest.raises(JobStateError) as err:
            service.cancel(job.job_id)
        assert err.value.state == DONE

    def test_cancel_unknown_job_raises(self, tmp_path):
        with pytest.raises(JobStateError):
            _service(tmp_path).cancel("job-9999")

    def test_orphaned_running_job_is_resumed(self, tmp_path, tiny_matrix):
        """A job left 'running' by a dead server re-runs to completion
        (completed cells hit the store, the rest execute)."""
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        # Simulate the dead server: journal says running, one of the
        # two cells already made it into the store.
        service.journal.transition(job.job_id, RUNNING)
        scenarios = MATRICES[tiny_matrix]()
        from repro.campaign.runner import run_scenario

        done = scenarios[0]
        service.store.put(done, 0, run_scenario(done, 0))

        restarted = _service(tmp_path)
        (sweep,) = restarted.serve_once()
        assert sweep["state"] == DONE
        assert sweep["hits"] == 1
        assert sweep["executed"] == 1

    def test_worker_crash_marks_job_failed(self, tmp_path, tiny_matrix,
                                           monkeypatch):
        """A scenario that kills its worker is quarantined by the pool;
        the job completes as 'failed' with the crash row in artifacts."""
        scenarios = MATRICES[tiny_matrix]()
        monkeypatch.setenv(ENV_CRASH_SCENARIO, scenarios[0].name)
        service = _service(tmp_path)
        job = service.submit(tiny_matrix, workers=2)
        (sweep,) = service.serve_once()
        assert sweep["state"] == FAILED
        assert sweep["failed"] == 1
        assert sweep["executed"] == 1
        payload = json.loads(
            (service.job_dir(job.job_id) / "campaign.json").read_text())
        statuses = {row["name"]: row["status"]
                    for row in payload["scenarios"]}
        assert statuses[scenarios[0].name] == "crashed"
        # The failure was NOT stored: a re-submit retries the cell.
        monkeypatch.delenv(ENV_CRASH_SCENARIO)
        service.submit(tiny_matrix, workers=2)
        sweeps = service.serve_once()
        (retry,) = [s for s in sweeps if s["job_id"] == "job-0002"]
        assert retry["state"] == DONE
        assert retry["executed"] == 1 and retry["hits"] == 1

    def test_serve_forever_bounded_by_idle_polls(self, tmp_path,
                                                 tiny_matrix):
        service = _service(tmp_path)
        service.submit(tiny_matrix)
        service.serve_forever(poll=0.01, max_idle_polls=2)
        assert service.jobs()["job-0001"].state == DONE

    def test_queued_job_waits_for_serve(self, tmp_path, tiny_matrix):
        service = _service(tmp_path)
        job = service.submit(tiny_matrix)
        assert service.jobs()[job.job_id].state == QUEUED
        assert not service.job_dir(job.job_id).exists()
