"""``python -m repro.service`` CLI: submit/serve/status/cancel/gc/dashboard."""

import json

import pytest

from repro.campaign.spec import MATRICES, expand_grid
from repro.errors import JobStateError
from repro.service.cli import main


@pytest.fixture()
def tiny_matrix(monkeypatch):
    monkeypatch.setitem(
        MATRICES, "cli-tiny",
        lambda: expand_grid(victim=["rop", "benign"],
                            policy="shadow-stack"),
    )
    return "cli-tiny"


def _root(tmp_path):
    return str(tmp_path / "svc")


class TestSubmitServe:
    def test_submit_then_serve_once(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        assert main(["--root", root, "submit", "--matrix", tiny_matrix]) == 0
        out = capsys.readouterr().out
        assert "queued job-0001" in out

        assert main(["--root", root, "serve", "--once"]) == 0
        out = capsys.readouterr().out
        assert "job-0001 [done]" in out
        assert "executed=2" in out

    def test_serve_with_nothing_queued(self, tmp_path, capsys):
        assert main(["--root", _root(tmp_path), "serve"]) == 0
        assert "no runnable jobs" in capsys.readouterr().out

    def test_warm_serve_reports_full_hits(self, tmp_path, tiny_matrix,
                                          capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        main(["--root", root, "serve"])
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        capsys.readouterr()
        main(["--root", root, "serve"])
        out = capsys.readouterr().out
        assert "hits=2" in out and "executed=0" in out

    def test_unknown_matrix_rejected_at_parse(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["--root", _root(tmp_path), "submit", "--matrix", "nope"])


class TestStatus:
    def test_status_json(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        main(["--root", root, "serve"])
        capsys.readouterr()
        assert main(["--root", root, "status", "--json"]) == 0
        (job,) = json.loads(capsys.readouterr().out)
        assert job["job_id"] == "job-0001"
        assert job["state"] == "done"
        assert job["stats"]["cells"] == 2

    def test_status_text_and_filter(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        capsys.readouterr()
        main(["--root", root, "status"])
        out = capsys.readouterr().out
        assert "job-0001" in out and "job-0002" in out
        main(["--root", root, "status", "job-0002"])
        out = capsys.readouterr().out
        assert "job-0002" in out and "job-0001" not in out

    def test_status_empty(self, tmp_path, capsys):
        assert main(["--root", _root(tmp_path), "status"]) == 0
        assert "no jobs" in capsys.readouterr().out


class TestCancelGcDashboard:
    def test_cancel_queued_job(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        assert main(["--root", root, "cancel", "job-0001"]) == 0
        assert "cancelled job-0001" in capsys.readouterr().out
        main(["--root", root, "serve"])
        assert "no runnable jobs" in capsys.readouterr().out

    def test_cancel_unknown_job_raises_typed(self, tmp_path):
        with pytest.raises(JobStateError):
            main(["--root", _root(tmp_path), "cancel", "job-0042"])

    def test_gc_reports_removals(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        main(["--root", root, "serve"])
        capsys.readouterr()
        assert main(["--root", root, "gc"]) == 0
        assert "removed 0 object(s)" in capsys.readouterr().out

    def test_dashboard_renders(self, tmp_path, tiny_matrix, capsys):
        root = _root(tmp_path)
        main(["--root", root, "submit", "--matrix", tiny_matrix])
        main(["--root", root, "serve"])
        capsys.readouterr()
        assert main(["--root", root, "dashboard"]) == 0
        out = capsys.readouterr().out.strip()
        path = out.split("dashboard: ", 1)[1]
        html = open(path).read()
        assert "job-0001" in html and "<svg" in html
