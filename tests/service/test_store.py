"""Content-addressed result store: keys, atomicity, invalidation, gc."""

import json

import pytest

from repro.campaign.spec import Scenario
from repro.errors import StoreCorruptError
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    code_fingerprint,
)


def _scenario(**overrides):
    defaults = {"victim": "rop", "backend": "cosim"}
    defaults.update(overrides)
    return Scenario(**defaults)


def _result(scenario, detected=True):
    return {"status": "ok", "name": scenario.name, "detected": detected,
            "policy": scenario.policy, "attack": "rop",
            "detection_latency": 42, "cycles": 1000}


class TestObjects:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        store.put(scenario, 0, _result(scenario))
        record = store.get(store.key(scenario, 0))
        assert record["schema_version"] == STORE_SCHEMA_VERSION
        assert record["name"] == scenario.name
        assert record["spec"] == scenario.canonical()
        assert record["result"]["detected"] is True

    def test_get_is_scoped_to_campaign_seed(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        store.put(scenario, 0, _result(scenario))
        assert store.get(store.key(scenario, 1)) is None

    def test_put_is_byte_idempotent(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        path = store.put(scenario, 0, _result(scenario))
        first = path.read_bytes()
        store.put(scenario, 0, _result(scenario))
        assert path.read_bytes() == first

    def test_no_wall_clock_in_objects(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        path = store.put(scenario, 0, _result(scenario))
        text = path.read_text()
        for field in ("time", "timestamp", "wall"):
            assert f'"{field}"' not in text

    def test_corrupt_object_raises(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        path = store.put(scenario, 0, _result(scenario))
        path.write_text("{not json")
        with pytest.raises(StoreCorruptError):
            store.get(store.key(scenario, 0))

    def test_missing_field_raises(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        scenario = _scenario()
        path = store.put(scenario, 0, _result(scenario))
        record = json.loads(path.read_text())
        del record["result"]
        path.write_text(json.dumps(record))
        with pytest.raises(StoreCorruptError):
            store.get(store.key(scenario, 0))


class TestResolve:
    def test_hit_miss_accounting(self, tmp_path):
        store = ResultStore(tmp_path, code_version="v1")
        cached = _scenario()
        fresh = _scenario(victim="jop")
        store.put(cached, 0, _result(cached))
        hits, missing, stats = store.resolve([cached, fresh], 0)
        assert set(hits) == {cached.name}
        assert [s.name for s in missing] == [fresh.name]
        assert stats == {"cells": 2, "hits": 1, "misses": 1,
                         "invalidated": 0}

    def test_code_version_invalidates(self, tmp_path):
        scenario = _scenario()
        old = ResultStore(tmp_path, code_version="v1")
        old.put(scenario, 0, _result(scenario))
        new = ResultStore(tmp_path, code_version="v2")
        hits, missing, stats = new.resolve([scenario], 0)
        assert not hits and len(missing) == 1
        assert stats["invalidated"] == 1

    def test_versions_in_first_seen_order(self, tmp_path):
        scenario = _scenario()
        for version in ("v1", "v2", "v3"):
            ResultStore(tmp_path, code_version=version).put(
                scenario, 0, _result(scenario))
        assert ResultStore(tmp_path, code_version="v3").versions() == \
            ["v1", "v2", "v3"]


class TestGc:
    def test_gc_drops_superseded_versions(self, tmp_path):
        scenario = _scenario()
        for version in ("v1", "v2"):
            ResultStore(tmp_path, code_version=version).put(
                scenario, 0, _result(scenario))
        current = ResultStore(tmp_path, code_version="v2")
        report = current.gc()
        assert report["removed_objects"] == 1
        assert report["removed_versions"] == ["v1"]
        assert current.versions() == ["v2"]
        assert current.count() == 1
        # Idempotent.
        assert current.gc()["removed_objects"] == 0


class TestFingerprint:
    def test_stable_and_content_sensitive(self, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        (tree / "a.py").write_text("x = 1\n")
        first = code_fingerprint(tree)
        assert first == code_fingerprint(tree)

        other = tmp_path / "pkg2"
        other.mkdir()
        (other / "a.py").write_text("x = 2\n")
        assert code_fingerprint(other) != first

        renamed = tmp_path / "pkg3"
        renamed.mkdir()
        (renamed / "b.py").write_text("x = 1\n")
        assert code_fingerprint(renamed) != first

    def test_default_fingerprint_covers_repro(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 16
        assert fingerprint == code_fingerprint()
