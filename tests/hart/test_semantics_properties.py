"""Property tests: ISS arithmetic against Python reference semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import IbexTiming
from repro.isa.encode import encode_r, encode_i, encode_shift
from repro.isa import opcodes as op
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.utils.bits import mask, sext

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def run_binop(word, a, b, xlen):
    """Execute one R-type op with rs1=a, rs2=b; return rd."""
    bus = MemoryMap("t")
    ram = Ram(0x100)
    bus.add(0, ram, name="ram")
    ram.load(0, word.to_bytes(4, "little"))
    hart = Hart(MapPort(bus), IbexTiming(), xlen=xlen)
    hart.regs.write(1, a)
    hart.regs.write(2, b)
    hart.step()
    return hart.regs.read(3)


def binop_word(mnemonic_key):
    table = {
        "add": (op.F3_ADD_SUB, op.F7_BASE),
        "sub": (op.F3_ADD_SUB, op.F7_SUB_SRA),
        "xor": (op.F3_XOR, op.F7_BASE),
        "and": (op.F3_AND, op.F7_BASE),
        "or": (op.F3_OR, op.F7_BASE),
        "sltu": (op.F3_SLTU, op.F7_BASE),
        "slt": (op.F3_SLT, op.F7_BASE),
        "mul": (op.F3_MUL, op.F7_MULDIV),
        "divu": (op.F3_DIVU, op.F7_MULDIV),
        "remu": (op.F3_REMU, op.F7_MULDIV),
        "div": (op.F3_DIV, op.F7_MULDIV),
        "rem": (op.F3_REM, op.F7_MULDIV),
    }
    f3, f7 = table[mnemonic_key]
    return encode_r(op.OP_REG, f3, f7, 3, 1, 2)


class TestRv32Properties:
    @given(a=u32, b=u32)
    @settings(max_examples=60, deadline=None)
    def test_add_wraps(self, a, b):
        assert run_binop(binop_word("add"), a, b, 32) == (a + b) & mask(32)

    @given(a=u32, b=u32)
    @settings(max_examples=60, deadline=None)
    def test_sub_wraps(self, a, b):
        assert run_binop(binop_word("sub"), a, b, 32) == (a - b) & mask(32)

    @given(a=u32, b=u32)
    @settings(max_examples=40, deadline=None)
    def test_logic_ops(self, a, b):
        assert run_binop(binop_word("xor"), a, b, 32) == a ^ b
        assert run_binop(binop_word("and"), a, b, 32) == a & b
        assert run_binop(binop_word("or"), a, b, 32) == a | b

    @given(a=u32, b=u32)
    @settings(max_examples=40, deadline=None)
    def test_compares(self, a, b):
        assert run_binop(binop_word("sltu"), a, b, 32) == int(a < b)
        assert run_binop(binop_word("slt"), a, b, 32) == int(sext(a, 32) < sext(b, 32))

    @given(a=u32, b=u32)
    @settings(max_examples=40, deadline=None)
    def test_mul_low_half(self, a, b):
        assert run_binop(binop_word("mul"), a, b, 32) == (a * b) & mask(32)

    @given(a=u32, b=u32)
    @settings(max_examples=40, deadline=None)
    def test_divu_remu_euclid(self, a, b):
        q = run_binop(binop_word("divu"), a, b, 32)
        r = run_binop(binop_word("remu"), a, b, 32)
        if b == 0:
            assert q == mask(32) and r == a
        else:
            assert q == a // b and r == a % b
            assert (q * b + r) & mask(32) == a

    @given(a=u32, b=u32)
    @settings(max_examples=40, deadline=None)
    def test_div_rem_signed_identity(self, a, b):
        """RISC-V: rounding toward zero, div*b + rem == dividend."""
        q = sext(run_binop(binop_word("div"), a, b, 32), 32)
        r = sext(run_binop(binop_word("rem"), a, b, 32), 32)
        sa, sb = sext(a, 32), sext(b, 32)
        if sb == 0:
            assert q == -1 and r == sa
        else:
            assert (q * sb + r) == sa
            assert abs(r) < abs(sb) or r == 0


class TestRv64Properties:
    @given(a=u64, b=u64)
    @settings(max_examples=40, deadline=None)
    def test_add_wraps_64(self, a, b):
        assert run_binop(binop_word("add"), a, b, 64) == (a + b) & mask(64)

    @given(a=u64, shamt=st.integers(min_value=0, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_srai_64(self, a, shamt):
        word = encode_shift(op.OP_IMM, op.F3_SRL_SRA, op.F7_SUB_SRA, 3, 1, shamt, 64)
        result = run_binop_imm(word, a, 64)
        assert result == (sext(a, 64) >> shamt) & mask(64)

    @given(a=u64, imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=40, deadline=None)
    def test_addiw_sign_extends(self, a, imm):
        word = encode_i(op.OP_IMM_32, op.F3_ADD_SUB, 3, 1, imm)
        result = run_binop_imm(word, a, 64)
        assert result == sext((a + imm) & mask(32), 32) & mask(64)


def run_binop_imm(word, a, xlen):
    bus = MemoryMap("t")
    ram = Ram(0x100)
    bus.add(0, ram, name="ram")
    ram.load(0, word.to_bytes(4, "little"))
    hart = Hart(MapPort(bus), IbexTiming(), xlen=xlen)
    hart.regs.write(1, a)
    hart.step()
    return hart.regs.read(3)
