"""Hart execution tests: programs assembled from source and run to halt."""

import pytest

from repro.errors import SimulationError
from repro.isa.registers import reg_index
from tests.hart.conftest import build_hart


def reg(hart, name):
    return hart.regs.read(reg_index(name))


class TestArithmetic:
    def test_addition_chain(self, run_program):
        hart = run_program(
            """
            li a0, 10
            li a1, 32
            add a2, a0, a1
            ebreak
            """
        )
        assert reg(hart, "a2") == 42

    def test_subtraction_wraps(self, run_program):
        hart = run_program(
            """
            li a0, 0
            li a1, 1
            sub a2, a0, a1
            ebreak
            """
        )
        assert reg(hart, "a2") == 0xFFFFFFFF

    def test_logic_ops(self, run_program):
        hart = run_program(
            """
            li a0, 0xF0
            li a1, 0x0F
            or a2, a0, a1
            and a3, a0, a1
            xor a4, a0, a1
            ebreak
            """
        )
        assert reg(hart, "a2") == 0xFF
        assert reg(hart, "a3") == 0
        assert reg(hart, "a4") == 0xFF

    def test_shifts(self, run_program):
        hart = run_program(
            """
            li a0, 1
            slli a1, a0, 31
            srli a2, a1, 31
            srai a3, a1, 31
            ebreak
            """
        )
        assert reg(hart, "a1") == 0x8000_0000
        assert reg(hart, "a2") == 1
        assert reg(hart, "a3") == 0xFFFF_FFFF

    def test_slt_signed_unsigned(self, run_program):
        hart = run_program(
            """
            li a0, -1
            li a1, 1
            slt a2, a0, a1
            sltu a3, a0, a1
            ebreak
            """
        )
        assert reg(hart, "a2") == 1   # -1 < 1 signed
        assert reg(hart, "a3") == 0   # 0xffffffff > 1 unsigned

    def test_x0_stays_zero(self, run_program):
        hart = run_program(
            """
            li a0, 7
            add zero, a0, a0
            mv a1, zero
            ebreak
            """
        )
        assert reg(hart, "a1") == 0


class TestMultiplyDivide:
    def test_mul(self, run_program):
        hart = run_program("li a0, 7\nli a1, 6\nmul a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 42

    def test_mulh_signed(self, run_program):
        hart = run_program("li a0, -1\nli a1, -1\nmulh a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0  # (-1 * -1) >> 32 == 0

    def test_mulhu(self, run_program):
        hart = run_program("li a0, -1\nli a1, -1\nmulhu a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0xFFFF_FFFE

    def test_div(self, run_program):
        hart = run_program("li a0, -7\nli a1, 2\ndiv a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0xFFFF_FFFD  # -3 (round toward zero)

    def test_div_by_zero_gives_minus_one(self, run_program):
        hart = run_program("li a0, 5\nli a1, 0\ndiv a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0xFFFF_FFFF

    def test_rem(self, run_program):
        hart = run_program("li a0, -7\nli a1, 2\nrem a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0xFFFF_FFFF  # -1

    def test_rem_by_zero_gives_dividend(self, run_program):
        hart = run_program("li a0, 5\nli a1, 0\nrem a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 5

    def test_divu_by_zero(self, run_program):
        hart = run_program("li a0, 5\nli a1, 0\ndivu a2, a0, a1\nebreak")
        assert reg(hart, "a2") == 0xFFFF_FFFF


class TestMemory:
    def test_store_load_roundtrip(self, run_program):
        hart = run_program(
            """
            li sp, 0x8000
            li a0, 0x12345678
            sw a0, -4(sp)
            lw a1, -4(sp)
            ebreak
            """
        )
        assert reg(hart, "a1") == 0x12345678

    def test_byte_sign_extension(self, run_program):
        hart = run_program(
            """
            li sp, 0x8000
            li a0, 0x80
            sb a0, 0(sp)
            lb a1, 0(sp)
            lbu a2, 0(sp)
            ebreak
            """
        )
        assert reg(hart, "a1") == 0xFFFF_FF80
        assert reg(hart, "a2") == 0x80

    def test_halfword(self, run_program):
        hart = run_program(
            """
            li sp, 0x8000
            li a0, 0x8001
            sh a0, 0(sp)
            lh a1, 0(sp)
            lhu a2, 0(sp)
            ebreak
            """
        )
        assert reg(hart, "a1") == 0xFFFF_8001
        assert reg(hart, "a2") == 0x8001


class TestControlFlow:
    def test_loop_sums(self, run_program):
        hart = run_program(
            """
            li a0, 0      # sum
            li a1, 10     # counter
            loop:
            add a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
            ebreak
            """
        )
        assert reg(hart, "a0") == 55

    def test_call_return(self, run_program):
        hart = run_program(
            """
            li a0, 5
            call double
            ebreak
            double:
            add a0, a0, a0
            ret
            """
        )
        assert reg(hart, "a0") == 10

    def test_nested_calls(self, run_program):
        hart = run_program(
            """
            li sp, 0x8000
            li a0, 3
            call f
            ebreak
            f:
            addi sp, sp, -8
            sw ra, 0(sp)
            call g
            lw ra, 0(sp)
            addi sp, sp, 8
            addi a0, a0, 1
            ret
            g:
            add a0, a0, a0
            ret
            """
        )
        assert reg(hart, "a0") == 7

    def test_indirect_jump(self, run_program):
        hart = run_program(
            """
            la t1, target
            jr t1
            li a0, 1      # skipped
            ebreak
            target:
            li a0, 99
            ebreak
            """
        )
        assert reg(hart, "a0") == 99

    def test_jalr_clears_lsb(self, run_program):
        hart = run_program(
            """
            la t1, target+1
            jalr zero, 0(t1)
            ebreak
            target:
            li a0, 77
            ebreak
            """
        )
        assert reg(hart, "a0") == 77


class TestRv64Execution:
    def test_64bit_arithmetic(self, run_program):
        hart = run_program(
            """
            li a0, 0x7fffffff
            addi a0, a0, 1
            ebreak
            """,
            xlen=64,
        )
        assert reg(hart, "a0") == 0x8000_0000  # no wrap on RV64

    def test_addw_sign_extends(self, run_program):
        hart = run_program(
            """
            li a0, 0x7fffffff
            li a1, 1
            addw a2, a0, a1
            ebreak
            """,
            xlen=64,
        )
        assert reg(hart, "a2") == 0xFFFF_FFFF_8000_0000

    def test_ld_sd(self, run_program):
        hart = run_program(
            """
            li sp, 0x8000
            li a0, 0x12345678
            slli a0, a0, 16
            sd a0, 0(sp)
            ld a1, 0(sp)
            ebreak
            """,
            xlen=64,
        )
        assert reg(hart, "a1") == 0x1234_5678_0000

    def test_sraiw(self, run_program):
        hart = run_program(
            """
            li a0, 0x80000000
            sraiw a1, a0, 4
            ebreak
            """,
            xlen=64,
        )
        assert reg(hart, "a1") == 0xFFFF_FFFF_F800_0000


class TestCounters:
    def test_instret_counts_retired(self, run_program):
        hart = run_program("nop\nnop\nnop\nebreak")
        assert hart.instret == 3  # ebreak halts without retiring

    def test_cycles_accumulate(self, run_program):
        hart = run_program("nop\nnop\nebreak")
        assert hart.cycle >= 2

    def test_mcycle_readable(self, run_program):
        hart = run_program("csrr a0, mcycle\nebreak")
        assert reg(hart, "a0") >= 0


class TestRunGuards:
    def test_runaway_raises(self):
        hart, _, _ = build_hart("loop: j loop")
        with pytest.raises(SimulationError, match="exceeded"):
            hart.run(max_steps=100)

    def test_step_after_halt_raises(self):
        hart, _, _ = build_hart("ebreak")
        hart.run()
        with pytest.raises(SimulationError):
            hart.step()
