"""Self-modifying code: the per-pc decode cache must stay coherent.

These tests guard the fast-path invariant that a store landing in a
page the hart has executed from flushes its cached decodes — both for
the hart's own stores and for foreign masters writing through the same
memory map.
"""

from repro.isa.asm import assemble
from repro.isa.encode import encode_i
from repro.isa import opcodes as op

from tests.hart.conftest import build_hart


def test_store_over_executed_instruction_takes_effect():
    """Execute an instruction, overwrite it, re-execute: the hart must
    run the *new* encoding (decode-cache invalidation on store)."""
    # Pass 1 runs `target: addi a0, zero, 1`; the program then rewrites
    # that instruction to `addi a0, zero, 2` and jumps back to it.
    new_word = encode_i(op.OP_IMM, op.F3_ADD_SUB, 10, 0, 2)  # addi a0, x0, 2
    hart, _, program = build_hart(
        f"""
        main:
            li   s1, 0          # pass counter
        target:
            addi a0, zero, 1    # patched to `addi a0, zero, 2` by pass 1
            addi s1, s1, 1
            li   t1, 2
            beq  s1, t1, done   # second pass: stop with patched result
            # patch the executed instruction in place
            la   t2, target
            li   t3, {new_word:#x}
            sw   t3, 0(t2)
            j    target
        done:
            ebreak
        """
    )
    hart.run(max_steps=100)
    assert hart.regs.read(10) == 2, "hart executed a stale cached decode"


def test_foreign_writer_invalidates_decode_cache():
    """A different bus master rewriting code must also be observed."""
    new_word = encode_i(op.OP_IMM, op.F3_ADD_SUB, 10, 0, 7)  # addi a0, x0, 7
    hart, bus, program = build_hart(
        """
        loop:
            addi a0, zero, 1
            ebreak
        """
    )
    # First execution caches the decode at `loop`.
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 1
    # A foreign master (e.g. a DMA or the RoT through a bridge) rewrites
    # the instruction directly through the memory map.
    bus.write(program.symbols["loop"], 4, new_word)
    hart.halted = False
    hart.pc = program.symbols["loop"]
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 7


def test_interior_page_of_bulk_write_invalidates():
    """A multi-page bulk write whose *interior* page holds cached code
    must flush the decode cache (endpoints-only checking misses it)."""
    new_word = encode_i(op.OP_IMM, op.F3_ADD_SUB, 10, 0, 7)  # addi a0, x0, 7
    hart, bus, program = build_hart(
        """
        main:
            addi a0, zero, 1
            ebreak
        """
    )
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 1
    # Rewrite a 3-page span [page -1, page 0, page 1]; the cached code
    # lives entirely in the interior page 0... the bus starts at 0, so
    # shift the cached page instead: re-execute code cached at page 1.
    hart.flush_fetch_cache()
    patch = assemble(
        """
        target:
            addi a0, zero, 1
            ebreak
        """,
        base=0x1000,
    )
    bus.write_bytes(patch.base, patch.data)
    hart.halted = False
    hart.pc = 0x1000
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 1           # page 1 is now cached
    # Foreign bulk write spanning pages 0..2: page 1 is interior.
    image = bytearray(bus.read_bytes(0x0000, 0x3000))
    image[0x1000:0x1004] = new_word.to_bytes(4, "little")
    bus.write_bytes(0x0000, bytes(image))
    hart.halted = False
    hart.pc = 0x1000
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 7           # stale decode was dropped


def test_fence_i_flushes_fetch_cache():
    """fence.i is the architectural sync point; flushing must not
    disturb execution and must drop every cached pc."""
    hart, _, _ = build_hart(
        """
        main:
            addi a0, zero, 5
            fence.i
            addi a0, a0, 1
            ebreak
        """
    )
    hart.run(max_steps=10)
    assert hart.regs.read(10) == 6
    # The flush happened mid-run: everything fetched before (and
    # including) the fence.i was dropped; only the two instructions
    # executed afterwards are cached.
    assert set(hart._pc_cache) == {8, 12}
