"""Shared fixtures: a minimal RV32 hart over a flat RAM."""

import pytest

from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import IbexTiming
from repro.isa.asm import assemble
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram


RAM_BASE = 0x0000_0000
RAM_SIZE = 0x10000


def build_hart(source, xlen=32, base=0, timing=None, external_irq=None):
    """Assemble ``source``, load it at ``base`` and wrap a hart around it."""
    bus = MemoryMap("test")
    bus.add(RAM_BASE, Ram(RAM_SIZE, "ram"), latency=1, tag="ram", name="ram")
    program = assemble(source, base=base, xlen=xlen)
    bus.write_bytes(program.base, program.data)
    hart = Hart(
        MapPort(bus),
        timing or IbexTiming(),
        xlen=xlen,
        reset_pc=base,
        external_irq=external_irq,
    )
    return hart, bus, program


@pytest.fixture
def run_program():
    """Run a program to completion and return the hart."""

    def runner(source, xlen=32, max_steps=100_000, timing=None):
        hart, _, _ = build_hart(source, xlen=xlen, timing=timing)
        hart.run(max_steps=max_steps)
        return hart

    return runner
