"""Trap, interrupt and WFI tests — the machinery the CFI firmware rides on."""

import pytest

from repro.hart.core import StepEvent
from repro.hart.timing import IbexTiming
from repro.isa.registers import reg_index
from tests.hart.conftest import build_hart


def reg(hart, name):
    return hart.regs.read(reg_index(name))


TRAP_PROGRAM = """
    # Install the handler, enable external interrupts, spin.
    la t0, handler
    csrw mtvec, t0
    li t0, 0x800          # mie.MEIE
    csrw mie, t0
    csrsi mstatus, 8      # mstatus.MIE
    li a0, 0
    spin:
    addi a1, a1, 1
    bnez zero, spin       # never taken
    j spin

    .align 4
    handler:
    li a0, 0xAA
    csrr a2, mcause
    mret
"""


class TestExternalInterrupt:
    def test_line_wired_after_construction(self):
        """Assigning ``hart.external_irq`` post-construction must arm the
        awake-interrupt gate, not just the WFI wake path."""
        line = {"level": False}
        hart, _, program = build_hart(TRAP_PROGRAM)
        hart.external_irq = lambda: line["level"]
        for _ in range(12):
            hart.step()
        line["level"] = True
        result = hart.step()
        assert result.event is StepEvent.INTERRUPT
        assert result.next_pc == program.symbols["handler"]

    def test_interrupt_taken_and_returns(self):
        line = {"level": False}
        hart, _, program = build_hart(
            TRAP_PROGRAM, external_irq=lambda: line["level"]
        )
        # Run setup + a few spin iterations.
        for _ in range(12):
            hart.step()
        assert reg(hart, "a0") == 0
        line["level"] = True
        result = hart.step()
        assert result.event is StepEvent.INTERRUPT
        assert result.next_pc == program.symbols["handler"]
        # Execute the handler body.
        line["level"] = False
        events = [hart.step().event for _ in range(4)]
        assert StepEvent.MRET in events
        assert reg(hart, "a0") == 0xAA

    def test_mcause_interrupt_bit(self):
        line = {"level": True}
        hart, _, _ = build_hart(TRAP_PROGRAM, external_irq=lambda: line["level"])
        for _ in range(12):
            hart.step()
        line["level"] = False
        for _ in range(4):
            hart.step()
        assert reg(hart, "a2") == (1 << 31) | 11

    def test_masked_when_mie_clear(self):
        line = {"level": True}
        hart, _, _ = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            li t0, 0x800
            csrw mie, t0
            # mstatus.MIE deliberately left clear
            li a0, 1
            li a0, 2
            li a0, 3
            ebreak
            handler:
            li a0, 0xAA
            mret
            """,
            external_irq=lambda: line["level"],
        )
        hart.run()
        assert reg(hart, "a0") == 3  # never vectored

    def test_masked_when_meie_clear(self):
        line = {"level": True}
        hart, _, _ = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            csrsi mstatus, 8
            li a0, 1
            li a0, 2
            ebreak
            handler:
            li a0, 0xAA
            mret
            """,
            external_irq=lambda: line["level"],
        )
        hart.run()
        assert reg(hart, "a0") == 2

    def test_mstatus_stacking(self):
        """MIE is cleared on entry and restored by mret (MPIE dance)."""
        line = {"level": False}
        hart, _, _ = build_hart(TRAP_PROGRAM, external_irq=lambda: line["level"])
        for _ in range(12):
            hart.step()
        line["level"] = True
        result = hart.step()
        assert result.event is StepEvent.INTERRUPT
        assert not hart.csrs.mie_enabled  # masked inside handler
        line["level"] = False
        for _ in range(4):
            hart.step()
        assert hart.csrs.mie_enabled  # restored by mret


class TestWfi:
    WFI_PROGRAM = """
        la t0, handler
        csrw mtvec, t0
        li t0, 0x800
        csrw mie, t0
        csrsi mstatus, 8
        wfi
        li a0, 7          # runs after wake + handler
        ebreak
        .align 4
        handler:
        li a1, 1
        mret
    """

    def test_wfi_sleeps_until_interrupt(self):
        line = {"level": False}
        hart, _, _ = build_hart(self.WFI_PROGRAM, external_irq=lambda: line["level"])
        events = []
        for _ in range(10):
            events.append(hart.step().event)
            if events[-1] is StepEvent.WFI_SLEEP:
                break
        assert events[-1] is StepEvent.WFI_SLEEP
        # Idle while the line is low.
        assert hart.step().event is StepEvent.SLEEPING
        assert hart.step().event is StepEvent.SLEEPING

    def test_wake_consumes_wake_cycles(self):
        line = {"level": False}
        timing = IbexTiming(wake_cycles=45)
        hart, _, _ = build_hart(
            self.WFI_PROGRAM, timing=timing, external_irq=lambda: line["level"]
        )
        while hart.step().event is not StepEvent.WFI_SLEEP:
            pass
        line["level"] = True
        result = hart.step()
        assert result.event is StepEvent.WAKE
        assert result.cycles == 45

    def test_full_wake_handler_resume(self):
        line = {"level": False}
        hart, _, _ = build_hart(self.WFI_PROGRAM, external_irq=lambda: line["level"])
        while hart.step().event is not StepEvent.WFI_SLEEP:
            pass
        line["level"] = True
        assert hart.step().event is StepEvent.WAKE
        result = hart.step()
        assert result.event is StepEvent.INTERRUPT
        line["level"] = False
        hart.run()
        assert reg(hart, "a0") == 7
        assert reg(hart, "a1") == 1


class TestSynchronousTraps:
    def test_illegal_instruction_vectors(self):
        hart, bus, program = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            .word 0x0000007b   # illegal opcode
            ebreak
            handler:
            li a0, 0xE
            csrr a1, mcause
            ebreak
            """
        )
        hart.run()
        assert reg(hart, "a0") == 0xE
        assert reg(hart, "a1") == 2  # illegal instruction

    def test_load_fault_vectors(self):
        hart, _, _ = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            li t1, 0x40000000   # unmapped
            lw a0, 0(t1)
            ebreak
            handler:
            csrr a1, mcause
            ebreak
            """
        )
        hart.run()
        assert reg(hart, "a1") == 5  # load access fault

    def test_store_fault_cause(self):
        hart, _, _ = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            li t1, 0x40000000
            sw a0, 0(t1)
            ebreak
            handler:
            csrr a1, mcause
            ebreak
            """
        )
        hart.run()
        assert reg(hart, "a1") == 7  # store access fault

    def test_mepc_points_at_faulting_instruction(self):
        hart, _, program = build_hart(
            """
            la t0, handler
            csrw mtvec, t0
            fault_here: .word 0x0000007b
            ebreak
            handler:
            csrr a1, mepc
            ebreak
            """
        )
        hart.run()
        assert reg(hart, "a1") == program.symbols["fault_here"]

    def test_halt_without_handler(self):
        hart, _, _ = build_hart("li a0, 1\necall")
        result = hart.run()
        assert hart.halted
        assert reg(hart, "a0") == 1
