"""Unit and property tests for the bounded FIFO used by the CFI queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.utils.fifo import BoundedFifo


class TestBasics:
    def test_capacity_one_is_legal(self):
        fifo = BoundedFifo(1)
        assert fifo.capacity == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)

    def test_starts_empty(self):
        fifo = BoundedFifo(4)
        assert fifo.empty
        assert not fifo.full
        assert fifo.occupancy == 0

    def test_fifo_order(self):
        fifo = BoundedFifo(3)
        for value in (1, 2, 3):
            fifo.push(value)
        assert [fifo.pop() for _ in range(3)] == [1, 2, 3]

    def test_push_full_raises(self):
        fifo = BoundedFifo(1)
        fifo.push("x")
        with pytest.raises(ProtocolError):
            fifo.push("y")

    def test_pop_empty_raises(self):
        with pytest.raises(ProtocolError):
            BoundedFifo(1).pop()

    def test_peek_does_not_remove(self):
        fifo = BoundedFifo(2)
        fifo.push(10)
        assert fifo.peek() == 10
        assert fifo.occupancy == 1

    def test_try_push_pop(self):
        fifo = BoundedFifo(1)
        assert fifo.try_push(1)
        assert not fifo.try_push(2)
        assert fifo.try_pop() == 1
        assert fifo.try_pop() is None

    def test_clear_preserves_statistics(self):
        fifo = BoundedFifo(2)
        fifo.push(1)
        fifo.push(2)
        fifo.clear()
        assert fifo.empty
        assert fifo.pushes == 2
        assert fifo.high_water == 2

    def test_snapshot_oldest_first(self):
        fifo = BoundedFifo(3)
        fifo.push("a")
        fifo.push("b")
        assert fifo.snapshot() == ["a", "b"]


class TestStatistics:
    def test_high_water_tracks_max(self):
        fifo = BoundedFifo(8)
        for i in range(5):
            fifo.push(i)
        for _ in range(3):
            fifo.pop()
        fifo.push(99)
        assert fifo.high_water == 5

    def test_push_pop_counters(self):
        fifo = BoundedFifo(4)
        for i in range(4):
            fifo.push(i)
        for _ in range(2):
            fifo.pop()
        assert fifo.pushes == 4
        assert fifo.pops == 2


@given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=8))
def test_property_order_preserved_within_capacity(items, capacity):
    """Items popped always come out in push order (FIFO invariant)."""
    fifo = BoundedFifo(capacity)
    pushed = []
    popped = []
    for item in items:
        if fifo.try_push(item):
            pushed.append(item)
        else:
            popped.append(fifo.pop())
            fifo.push(item)
            pushed.append(item)
    while not fifo.empty:
        popped.append(fifo.pop())
    assert popped == pushed


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=100))
def test_property_occupancy_bounds(operations):
    """Occupancy stays within [0, capacity] under any operation sequence."""
    fifo = BoundedFifo(4)
    counter = 0
    for operation in operations:
        if operation == "push":
            fifo.try_push(counter)
            counter += 1
        else:
            fifo.try_pop()
        assert 0 <= fifo.occupancy <= fifo.capacity
        assert fifo.full == (fifo.occupancy == fifo.capacity)
        assert fifo.empty == (fifo.occupancy == 0)
