"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodeError
from repro.utils.bits import (
    align_down,
    align_up,
    bit,
    bits,
    is_aligned,
    mask,
    pack_fields,
    sext,
    to_unsigned,
    unpack_fields,
    zext,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_wide(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitSlicing:
    def test_single_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_slice_matches_spec_convention(self):
        word = 0xDEADBEEF
        assert bits(word, 31, 28) == 0xD
        assert bits(word, 7, 0) == 0xEF
        assert bits(word, 31, 0) == word

    def test_invalid_slice_raises(self):
        with pytest.raises(ValueError):
            bits(0, 0, 1)


class TestSignExtension:
    def test_positive_unchanged(self):
        assert sext(0x7F, 8) == 127

    def test_negative(self):
        assert sext(0xFF, 8) == -1
        assert sext(0x80, 8) == -128

    def test_roundtrip_with_to_unsigned(self):
        assert to_unsigned(sext(0xFFF, 12), 12) == 0xFFF

    def test_zext_truncates(self):
        assert zext(0x1FF, 8) == 0xFF

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_sext_identity_on_width(self, value):
        assert to_unsigned(sext(value, 16), 16) == value

    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    def test_roundtrip_signed(self, value):
        assert sext(to_unsigned(value, 16), 16) == value


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1003, 4) == 0x1000
        assert align_down(0x1000, 4) == 0x1000

    def test_align_up(self):
        assert align_up(0x1001, 8) == 0x1008
        assert align_up(0x1000, 8) == 0x1000

    def test_is_aligned(self):
        assert is_aligned(0x1000, 16)
        assert not is_aligned(0x1001, 2)


class TestPackedFields:
    LAYOUT = [("a", 4), ("b", 8), ("c", 4)]

    def test_pack_places_first_field_at_lsb(self):
        packed = pack_fields(self.LAYOUT, {"a": 0xF, "b": 0x00, "c": 0x0})
        assert packed == 0xF

    def test_roundtrip(self):
        values = {"a": 0x5, "b": 0xAB, "c": 0x9}
        assert unpack_fields(self.LAYOUT, pack_fields(self.LAYOUT, values)) == values

    def test_overflow_raises(self):
        with pytest.raises(EncodeError):
            pack_fields(self.LAYOUT, {"a": 0x10, "b": 0, "c": 0})

    def test_missing_field_raises(self):
        with pytest.raises(EncodeError):
            pack_fields(self.LAYOUT, {"a": 1, "b": 2})

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=15),
    )
    def test_roundtrip_property(self, a, b, c):
        values = {"a": a, "b": b, "c": c}
        assert unpack_fields(self.LAYOUT, pack_fields(self.LAYOUT, values)) == values
