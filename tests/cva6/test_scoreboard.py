"""Scoreboard-entry construction from ISS step results."""

from repro.cva6.scoreboard import ScoreboardEntry
from repro.hart.core import Hart, StepEvent
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.isa.asm import Assembler
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram


def step_results(source, count=20):
    bus = MemoryMap("t")
    bus.add(0, Ram(0x10000), name="ram")
    program = Assembler(xlen=64).assemble(source, base=0)
    bus.write_bytes(0, program.data)
    hart = Hart(MapPort(bus), Cva6Timing(), xlen=64)
    results = []
    for _ in range(count):
        if hart.halted:
            break
        results.append(hart.step())
    return results


class TestFromStep:
    def test_retired_instruction_becomes_entry(self):
        results = step_results("addi a0, zero, 1\nebreak")
        entry = ScoreboardEntry.from_step(results[0])
        assert entry is not None
        assert entry.pc == 0
        assert entry.insn.mnemonic == "addi"
        assert entry.fall_through == 4
        assert entry.target == 4
        assert not entry.taken
        assert entry.valid

    def test_call_entry_has_target_and_fallthrough(self):
        results = step_results("call f\nebreak\nf: ret")
        entry = ScoreboardEntry.from_step(results[0])
        assert entry.taken
        assert entry.fall_through == 4
        assert entry.target == 8  # symbol f

    def test_halt_produces_no_entry(self):
        results = step_results("ebreak")
        assert results[0].event is StepEvent.HALT
        assert ScoreboardEntry.from_step(results[0]) is None

    def test_taken_branch(self):
        results = step_results(
            """
            li a0, 1
            bnez a0, out
            nop
            out: ebreak
            """
        )
        branch = next(r for r in results if r.insn and r.insn.mnemonic == "bne")
        entry = ScoreboardEntry.from_step(branch)
        assert entry.taken
        assert entry.target != entry.fall_through

    def test_untaken_branch(self):
        results = step_results(
            """
            li a0, 0
            bnez a0, out
            nop
            out: ebreak
            """
        )
        branch = next(r for r in results if r.insn and r.insn.mnemonic == "bne")
        entry = ScoreboardEntry.from_step(branch)
        assert not entry.taken
        assert entry.target == entry.fall_through
