"""Campaign wiring of the coverage subsystem: feature-grown victims,
coverage columns on scenario rows, the typed unknown-matrix error, and
the feature-registry pin."""

import pytest

from repro.campaign.aggregate import CSV_FIELDS, finalize, render_report
from repro.campaign.cli import main as campaign_main
from repro.campaign.runner import run_campaign
from repro.campaign.spec import (
    COVERAGE_FEATURES,
    COVERAGE_VICTIMS,
    MATRICES,
    SYNTH_VICTIMS,
    VICTIMS,
    coverage_smoke_matrix,
    resolve_matrix,
)
from repro.errors import ConfigError
from repro.synth.generator import FEATURES


class TestRegistry:
    def test_coverage_features_pin_the_generator_registry(self):
        """The spec module keeps a literal copy (no synth import at
        module scope); it must track the generator's registry."""
        assert COVERAGE_FEATURES == FEATURES

    def test_coverage_victims_carry_features(self):
        assert COVERAGE_VICTIMS
        for name in COVERAGE_VICTIMS:
            spec = VICTIMS[name]
            assert spec.synthetic
            assert spec.synth_features == COVERAGE_FEATURES

    def test_plain_synth_victims_unchanged(self):
        """cov-* victims must not leak into the existing synth
        matrices: their scenario sets are frozen artifacts."""
        assert SYNTH_VICTIMS
        assert all(not VICTIMS[name].synth_features
                   for name in SYNTH_VICTIMS)

    def test_coverage_matrices_registered(self):
        assert {"coverage", "coverage-smoke"} <= set(MATRICES)
        assert len(resolve_matrix("coverage-smoke")) == 40
        assert len(resolve_matrix("coverage")) > 200

    def test_unknown_matrix_is_a_typed_error_listing_the_registry(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_matrix("no-such-matrix")
        message = str(excinfo.value)
        for name in MATRICES:
            assert name in message


class TestCli:
    def test_unknown_matrix_exits_2_with_one_line(self, capsys):
        code = campaign_main(["run", "--matrix", "no-such-matrix",
                             "--no-artifacts"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "coverage" in captured.err

    def test_list_rejects_unknown_matrix_the_same_way(self, capsys):
        assert campaign_main(["list", "--matrix", "bogus"]) == 2
        assert capsys.readouterr().err.startswith("error: ")


class TestRunnerCoverage:
    @pytest.fixture(scope="class")
    def payload(self):
        scenarios = [s for s in coverage_smoke_matrix()
                     if s.policy == "shadow-stack"][:4]
        assert scenarios
        return finalize(run_campaign(scenarios, jobs=1))

    def test_rows_carry_coverage_columns(self, payload):
        for row in payload["scenarios"]:
            assert row["expectation_met"], row["name"]
            assert row["coverage_digest"] is not None
            assert row["coverage_points"] == len(row["coverage"]["points"]) > 0

    def test_feature_growth_reaches_the_simulation(self, payload):
        """cov-* scenarios execute recursion/tailcall constructs: their
        shapes must include non-baseline points on those axes."""
        points = set()
        for row in payload["scenarios"]:
            points.update(row["coverage"]["points"])
        assert any(p.startswith("recursion:") and not p.endswith(":none")
                   for p in points), sorted(points)
        assert any(p.startswith("tailcall:") and p != "tailcall:0"
                   for p in points), sorted(points)

    def test_summary_and_report_fold_coverage(self, payload):
        coverage = payload["summary"]["coverage"]
        assert coverage["scenarios"] == len(payload["scenarios"])
        assert coverage["distinct_points"] > 0
        assert coverage["distinct_shapes"] > 0
        assert coverage["points_by_axis"].get("recursion")
        assert "coverage:" in render_report(payload)

    def test_csv_schema_has_coverage_columns(self):
        assert "coverage_points" in CSV_FIELDS
        assert "coverage_digest" in CSV_FIELDS
