"""Coverage-shape invariants: vectors are pure functions of the model,
identical across processes, and the map's feedback calculus is exact."""

import json
import subprocess
import sys

import pytest

from repro.coverage.shape import AXES, CoverageMap, ShapeVector, shape_vector
from repro.errors import ConfigError
from repro.synth import FAMILIES, bundle
from repro.synth.generator import generate
from repro.system.addresses import AddressMap

BASE = AddressMap().dram_base

SEEDS = range(4)


def vector_for(family: str, seed: int, features=()) -> ShapeVector:
    found = bundle(family, seed, BASE, features=tuple(features))
    return shape_vector(found.model, program=found.program)


class TestShapeVector:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_per_seed(self, family):
        for seed in SEEDS:
            assert vector_for(family, seed) == vector_for(family, seed)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_assembly_path_matches_bundle_path(self, family):
        """With and without a pre-assembled image, same vector."""
        model = generate(family, 3)
        found = bundle(family, 3, BASE)
        assert shape_vector(model, base=BASE) == shape_vector(
            found.model, program=found.program
        )

    def test_identical_across_process_restarts(self):
        """A fresh interpreter computes the same digests (no hash
        randomization, iteration order or id() leaks into vectors)."""
        code = (
            "from repro.coverage.shape import shape_vector\n"
            "from repro.synth import FAMILIES, bundle\n"
            "from repro.system.addresses import AddressMap\n"
            "base = AddressMap().dram_base\n"
            "for family in FAMILIES:\n"
            "    found = bundle(family, 2, base)\n"
            "    v = shape_vector(found.model, program=found.program)\n"
            "    print(family, v.digest)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True,
        ).stdout.splitlines()
        for line in out:
            family, digest = line.split()
            assert vector_for(family, 2).digest == digest, family

    def test_every_point_carries_a_known_axis(self):
        for family in FAMILIES:
            for point in vector_for(family, 1).points:
                assert point.split(":", 1)[0] in AXES, point

    def test_features_move_their_axes(self):
        base = vector_for("rop", 5)
        grown = vector_for("rop", 5, features=("recursion", "tailcall"))
        assert {"recursion", "tailcall"} <= set(base.differing_axes(grown))

    def test_points_sorted_and_deduplicated(self):
        vector = ShapeVector(points=("b:1", "a:1", "b:1"))
        assert vector.points == ("a:1", "b:1")

    def test_json_round_trip(self):
        vector = vector_for("jop", 0)
        clone = ShapeVector.from_json(json.loads(json.dumps(vector.to_json())))
        assert clone == vector and clone.digest == vector.digest

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigError, match="shape schema"):
            ShapeVector.from_json({"schema": 99, "points": []})


class TestCoverageMap:
    def test_merge_reports_exact_novelty(self):
        cov = CoverageMap()
        first = ShapeVector(points=("a:1", "b:1"))
        assert cov.merge(first) == ("a:1", "b:1")
        assert cov.merge(ShapeVector(points=("b:1", "c:1"))) == ("c:1",)
        assert not cov.is_novel(first)
        assert cov.observations == 2 and len(cov) == 3

    def test_novelty_does_not_mutate(self):
        cov = CoverageMap()
        vector = ShapeVector(points=("a:1",))
        assert cov.novelty(vector) == ("a:1",)
        assert len(cov) == 0 and cov.observations == 0

    def test_rarity_prefers_unseen_then_rare(self):
        cov = CoverageMap()
        common = ShapeVector(points=("a:1",))
        rare = ShapeVector(points=("b:1",))
        for _ in range(4):
            cov.merge(common)
        for _ in range(2):
            cov.merge(rare)
        novel = ShapeVector(points=("z:1",))
        assert cov.rarity(novel) > cov.rarity(rare) > cov.rarity(common)
        assert cov.rarity(ShapeVector(points=("z:1", "a:1"))) > cov.rarity(novel)

    def test_frontier_deterministic_tiebreak(self):
        cov = CoverageMap()
        cov.merge(ShapeVector(points=("a:1",)))
        twin = ShapeVector(points=("a:1",))
        ranked = cov.frontier([("k2", twin), ("k1", twin), ("k3", twin)], k=2)
        assert ranked == ["k1", "k2"]

    def test_by_axis_counts_distinct_points(self):
        cov = CoverageMap()
        cov.merge(ShapeVector(points=("a:1", "a:2", "b:1")))
        cov.merge(ShapeVector(points=("a:1",)))
        assert cov.by_axis() == {"a": 2, "b": 1}

    def test_json_round_trip_byte_stable(self):
        cov = CoverageMap()
        for family in FAMILIES:
            cov.merge(vector_for(family, 0))
        text = json.dumps(cov.to_json(), sort_keys=True)
        clone = CoverageMap.from_json(json.loads(text))
        assert clone == cov
        assert json.dumps(clone.to_json(), sort_keys=True) == text

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigError, match="coverage-map schema"):
            CoverageMap.from_json({"schema": 0, "points": {}})
