"""Mutator invariants: seeded determinism, contract-preserving output,
and a measurable coverage delta against the parent."""

import copy
import random

import pytest

from repro.coverage.mutate import MUTATORS, mutate
from repro.coverage.shape import shape_vector
from repro.synth import MAX_EVENTS, FAMILIES
from repro.synth.generator import generate
from repro.synth.ir import check_model, plan_events
from repro.system.addresses import AddressMap

BASE = AddressMap().dram_base

CASES = [(family, seed) for family in FAMILIES for seed in range(3)]


@pytest.mark.parametrize("family,seed", CASES)
def test_deterministic_per_rng_seed(family, seed):
    model = generate(family, seed)
    assert mutate(model, random.Random(99)) == mutate(model, random.Random(99))


@pytest.mark.parametrize("family,seed", CASES)
def test_input_model_never_modified(family, seed):
    model = generate(family, seed)
    pristine = copy.deepcopy(model)
    mutate(model, random.Random(7))
    assert model == pristine


@pytest.mark.parametrize("family,seed", CASES)
def test_mutants_stay_inside_the_ir_contract(family, seed):
    """Every produced mutant re-validates and fits the event budget —
    the oracle's ``plan_events`` walk stays its ground truth."""
    model = generate(family, seed)
    for rng_seed in range(6):
        found = mutate(model, random.Random(rng_seed))
        if found is None:
            continue
        name, mutant = found
        assert name in MUTATORS
        check_model(mutant)
        assert len(plan_events(mutant)) <= MAX_EVENTS


def test_mutants_move_coverage_axes():
    """Most mutants must differ from their parent on at least one
    coverage axis (identical-vector mutants are legal but the loop's
    novelty gate rejects them — they may not dominate the stream)."""
    produced = moved = 0
    for family, seed in CASES:
        model = generate(family, seed)
        parent = shape_vector(model, base=BASE)
        for rng_seed in range(4):
            found = mutate(model, random.Random(rng_seed))
            if found is None:
                continue
            produced += 1
            mutant_vector = shape_vector(found[1], base=BASE)
            if parent.differing_axes(mutant_vector):
                moved += 1
    assert produced > len(CASES), "mutators fired too rarely"
    assert moved / produced > 0.5, (moved, produced)


def test_feature_planting_mutators_reach_new_axes():
    """plant-recursion / plant-tailcall introduce points uniform
    generation never emits (non-baseline recursion and tailcall)."""
    model = generate("benign", 0)
    parent = shape_vector(model, base=BASE)
    rec = MUTATORS["plant-recursion"](random.Random(1), copy.deepcopy(model))
    tail = MUTATORS["plant-tailcall"](random.Random(1), copy.deepcopy(model))
    assert rec is not None and tail is not None
    check_model(rec)
    check_model(tail)
    assert "recursion" in parent.differing_axes(shape_vector(rec, base=BASE))
    assert "tailcall" in parent.differing_axes(shape_vector(tail, base=BASE))
