"""Fuzz-loop invariants: bit-exact determinism (serial, sharded,
resumed, crashed-and-resumed) and strict coverage dominance over blind
uniform generation at double the iteration budget."""

import json
import os
import subprocess
import sys

import pytest

from repro.coverage.fuzz import (
    ENV_CRASH_AFTER_ITER,
    FuzzConfig,
    fuzz,
    uniform_baseline,
)
from repro.errors import ConfigError

ITERS = 16
SEED = 11

ARTIFACTS = ("fuzz.jsonl", "coverage.json", "campaign.json",
             "campaign.csv", "corpus/index.json")


def run_bytes(root) -> dict:
    tracked = {name: (root / name).read_bytes() for name in ARTIFACTS}
    for path in sorted((root / "corpus" / "objects").iterdir()):
        tracked[f"corpus/objects/{path.name}"] = path.read_bytes()
    return tracked


def test_budget_must_cover_the_seed_phase(tmp_path):
    with pytest.raises(ConfigError, match="iteration budget"):
        fuzz(tmp_path, FuzzConfig(iterations=3))


def test_two_runs_are_byte_identical(tmp_path):
    config = FuzzConfig(iterations=ITERS, seed=SEED)
    a = fuzz(tmp_path / "a", config)
    b = fuzz(tmp_path / "b", config)
    assert a == b
    assert a["oracle_disagreements"] == 0
    assert a["accepted"] == a["corpus_size"] > 0
    assert run_bytes(tmp_path / "a") == run_bytes(tmp_path / "b")


def test_sharded_run_matches_serial(tmp_path):
    serial = fuzz(tmp_path / "serial", FuzzConfig(iterations=ITERS, seed=SEED))
    sharded = fuzz(tmp_path / "sharded",
                   FuzzConfig(iterations=ITERS, seed=SEED, jobs=2))
    assert serial == sharded
    assert run_bytes(tmp_path / "serial") == run_bytes(tmp_path / "sharded")


def test_resume_extends_to_an_uninterrupted_run(tmp_path):
    reference = fuzz(tmp_path / "ref", FuzzConfig(iterations=22, seed=SEED))
    fuzz(tmp_path / "ext", FuzzConfig(iterations=14, seed=SEED))
    extended = fuzz(tmp_path / "ext", FuzzConfig(iterations=22, seed=SEED),
                    resume=True)
    assert extended == reference
    assert run_bytes(tmp_path / "ext") == run_bytes(tmp_path / "ref")


def test_kill9_then_resume_matches_uninterrupted(tmp_path):
    """Hard-exit in the worst crash window (journal record durable,
    side effects unapplied); the resumed run must reconverge every
    artifact byte, corpus object tree included."""
    reference = fuzz(tmp_path / "ref", FuzzConfig(iterations=ITERS, seed=SEED))
    code = (
        "from repro.coverage.fuzz import FuzzConfig, fuzz\n"
        f"fuzz({str(tmp_path / 'crash')!r}, "
        f"FuzzConfig(iterations={ITERS}, seed={SEED}))\n"
    )
    env = dict(os.environ, **{ENV_CRASH_AFTER_ITER: "9"})
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True)
    assert proc.returncode == 7, proc.stderr.decode()
    resumed = fuzz(tmp_path / "crash", FuzzConfig(iterations=ITERS, seed=SEED),
                   resume=True)
    assert resumed == reference
    assert run_bytes(tmp_path / "crash") == run_bytes(tmp_path / "ref")


def test_resume_rejects_a_different_identity(tmp_path):
    fuzz(tmp_path, FuzzConfig(iterations=ITERS, seed=SEED))
    with pytest.raises(ConfigError):
        fuzz(tmp_path, FuzzConfig(iterations=ITERS, seed=SEED + 1),
             resume=True)


def test_campaign_artifact_is_schema_conformant(tmp_path):
    fuzz(tmp_path, FuzzConfig(iterations=ITERS, seed=SEED))
    payload = json.loads((tmp_path / "campaign.json").read_text())
    assert payload["schema"] == "repro.campaign/v1"
    assert payload["scenario_count"] == len(payload["scenarios"]) > 0
    counts = payload["summary"]["counts"]
    assert counts["expectations_missed"] == 0, counts
    coverage = payload["summary"]["coverage"]
    assert coverage["scenarios"] == payload["scenario_count"]
    assert coverage["distinct_points"] > 0
    header = (tmp_path / "campaign.csv").read_text().splitlines()[0]
    assert "coverage_points" in header and "coverage_digest" in header


def test_guided_loop_dominates_uniform_at_double_budget():
    """The committed comparison the tentpole is accountable to: the
    guided loop at N candidates reaches MORE distinct coverage than
    blind generation at 2N — with point counts pure functions of the
    simulation — and wins on coverage per CPU second.  Both sides run
    in fresh interpreters so neither inherits the other's warm caches.
    """
    guided_code = (
        "import json, tempfile, time\n"
        "from repro.coverage.fuzz import FuzzConfig, fuzz\n"
        "t0 = time.process_time()\n"
        "s = fuzz(tempfile.mkdtemp(), FuzzConfig(iterations=60, seed=3))\n"
        "print(json.dumps({'points': s['distinct_points'],\n"
        "                  'disagreements': s['oracle_disagreements'],\n"
        "                  'cpu': time.process_time() - t0}))\n"
    )
    uniform_code = (
        "import json, time\n"
        "from repro.coverage.fuzz import uniform_baseline\n"
        "t0 = time.process_time()\n"
        "s = uniform_baseline(120, seed=3)\n"
        "print(json.dumps({'points': s['distinct_points'],\n"
        "                  'disagreements': s['oracle_disagreements'],\n"
        "                  'cpu': time.process_time() - t0}))\n"
    )
    guided, uniform = (
        json.loads(subprocess.run([sys.executable, "-c", code],
                                  capture_output=True, text=True,
                                  check=True).stdout)
        for code in (guided_code, uniform_code)
    )
    assert guided["disagreements"] == uniform["disagreements"] == 0
    assert guided["points"] > uniform["points"], (guided, uniform)
    guided_rate = guided["points"] / guided["cpu"]
    uniform_rate = uniform["points"] / uniform["cpu"]
    assert guided_rate > uniform_rate, (guided, uniform)


def test_uniform_baseline_matches_the_loops_seed_phase(tmp_path):
    """The baseline IS the loop's seeding phase continued: over the
    seed-count prefix both accumulate the identical coverage map."""
    config = FuzzConfig(iterations=10, seed=5)
    fuzz(tmp_path, config)
    baseline = uniform_baseline(10, seed=5)
    journal = [json.loads(line)
               for line in (tmp_path / "fuzz.jsonl").read_text().splitlines()]
    assert len(journal) == 10
    seeded = journal[:config.seed_count]
    assert all(record["parent"] is None for record in seeded)
    loop_points = set()
    for record in journal:
        loop_points.update(record["vector"]["points"])
    assert loop_points == set(baseline["coverage"].to_json()["points"])
