"""Corpus invariants: content addressing, durable round-trips, and
deterministic eviction."""

import json

import pytest

from repro.coverage.corpus import CoverageCorpus, model_digest
from repro.coverage.shape import ShapeVector
from repro.errors import ConfigError, StoreCorruptError
from repro.synth.generator import generate


def corpus_bytes(root) -> dict:
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


class TestAddressing:
    def test_digest_is_content_addressed(self):
        model = generate("rop", 1)
        assert model_digest(model) == model_digest(json.loads(json.dumps(model)))
        assert model_digest(model) != model_digest(generate("rop", 2))

    def test_add_get_round_trip(self, tmp_path):
        corpus = CoverageCorpus(tmp_path)
        model = generate("jop", 3)
        vector = ShapeVector(points=("a:1", "b:2"))
        record = corpus.add(model, vector, family="jop", iteration=4,
                            lineage=("beef",), new_points=("b:2", "a:1"))
        assert record["digest"] == model_digest(model)
        assert record["new_points"] == ["a:1", "b:2"]
        got = corpus.get(record["digest"])
        assert got["model"] == model
        assert ShapeVector.from_json(got["vector"]) == vector

    def test_add_is_idempotent(self, tmp_path):
        corpus = CoverageCorpus(tmp_path)
        model = generate("benign", 0)
        vector = ShapeVector(points=("a:1",))
        first = corpus.add(model, vector, family="benign", iteration=0)
        again = corpus.add(model, vector, family="benign", iteration=9)
        assert first == again and len(corpus) == 1

    def test_fresh_instance_reloads_from_disk(self, tmp_path):
        corpus = CoverageCorpus(tmp_path)
        for seed in range(3):
            model = generate("rop", seed)
            corpus.add(model, ShapeVector(points=(f"s:{seed}",)),
                       family="rop", iteration=seed)
        reloaded = CoverageCorpus(tmp_path)
        assert reloaded.digests() == corpus.digests()
        assert list(reloaded.entries()) == list(corpus.entries())

    def test_unknown_entry_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown corpus entry"):
            CoverageCorpus(tmp_path).get("0" * 16)

    def test_torn_index_rejected(self, tmp_path):
        (tmp_path / "index.json").write_text("{not json")
        with pytest.raises(StoreCorruptError, match="index unreadable"):
            CoverageCorpus(tmp_path)


class TestEviction:
    def feed(self, root, max_entries=3):
        corpus = CoverageCorpus(root, max_entries=max_entries)
        vectors = [
            ShapeVector(points=("shared:1", "only:0")),
            ShapeVector(points=("shared:1",)),       # fully redundant
            ShapeVector(points=("shared:1", "only:2")),
            ShapeVector(points=("shared:1", "only:3")),
        ]
        for seed, vector in enumerate(vectors):
            corpus.add(generate("benign", seed), vector,
                       family="benign", iteration=seed)
        return corpus

    def test_redundant_entry_evicted_first(self, tmp_path):
        """Past the cap, the oldest entry whose every point is still
        held elsewhere drops — not plain FIFO."""
        corpus = self.feed(tmp_path)
        assert len(corpus) == 3
        evicted = model_digest(generate("benign", 1))
        assert evicted not in corpus
        assert model_digest(generate("benign", 0)) in corpus

    def test_fifo_when_every_entry_is_unique(self, tmp_path):
        corpus = CoverageCorpus(tmp_path, max_entries=2)
        for seed in range(3):
            corpus.add(generate("rop", seed),
                       ShapeVector(points=(f"only:{seed}",)),
                       family="rop", iteration=seed)
        assert model_digest(generate("rop", 0)) not in corpus
        assert len(corpus) == 2

    def test_eviction_is_bit_deterministic(self, tmp_path):
        a_root, b_root = tmp_path / "a", tmp_path / "b"
        self.feed(a_root)
        self.feed(b_root)
        assert corpus_bytes(a_root) == corpus_bytes(b_root)

    def test_evicted_objects_leave_the_disk(self, tmp_path):
        corpus = self.feed(tmp_path)
        resident = {f"{digest}.json" for digest in corpus.digests()}
        on_disk = {p.name for p in (tmp_path / "objects").iterdir()}
        assert on_disk == resident


class TestReplay:
    def test_begin_replay_clears_memory_and_disk_index(self, tmp_path):
        corpus = CoverageCorpus(tmp_path)
        corpus.add(generate("jop", 1), ShapeVector(points=("a:1",)),
                   family="jop", iteration=0)
        corpus.begin_replay()
        assert len(corpus) == 0
        assert CoverageCorpus(tmp_path).digests() == ()
