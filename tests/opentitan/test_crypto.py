"""Crypto tests: SHA-256/HMAC against independent vectors + accel device."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opentitan.crypto.accel import (
    CMD_HMAC,
    CMD_OFFSET,
    CMD_SHA256,
    DIGEST_OFFSET,
    KEY_OFFSET,
    MSG_LEN_OFFSET,
    MSG_OFFSET,
    STATUS_OFFSET,
    HmacAccelerator,
)
from repro.opentitan.crypto.hmac import constant_time_equal, hmac_sha256
from repro.opentitan.crypto.sha256 import sha256


class TestSha256Vectors:
    """FIPS 180-4 test vectors."""

    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(message).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_exactly_one_block(self):
        message = b"a" * 64
        assert sha256(message) == hashlib.sha256(message).digest()

    @given(st.binary(max_size=300))
    @settings(max_examples=50)
    def test_matches_hashlib(self, message):
        assert sha256(message) == hashlib.sha256(message).digest()


class TestHmacVectors:
    def test_rfc4231_case1(self):
        key = b"\x0b" * 20
        tag = hmac_sha256(key, b"Hi There")
        assert tag.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case2(self):
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_long_key_hashed(self):
        key = b"k" * 100  # > block size
        message = b"data"
        assert hmac_sha256(key, message) == stdlib_hmac.new(
            key, message, hashlib.sha256
        ).digest()

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=200))
    @settings(max_examples=50)
    def test_matches_stdlib(self, key, message):
        assert hmac_sha256(key, message) == stdlib_hmac.new(
            key, message, hashlib.sha256
        ).digest()


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_length_mismatch(self):
        assert not constant_time_equal(b"abc", b"abcd")


class TestAcceleratorDevice:
    def _stream(self, accel, message):
        accel.write(MSG_LEN_OFFSET, 4, len(message))
        padded = message + bytes(-len(message) % 4)
        for i in range(0, len(padded), 4):
            accel.write(MSG_OFFSET, 4, int.from_bytes(padded[i:i + 4], "little"))

    def _digest(self, accel):
        return b"".join(
            accel.read(DIGEST_OFFSET + i, 4).to_bytes(4, "little") for i in range(0, 32, 4)
        )

    def test_sha256_via_registers(self):
        accel = HmacAccelerator()
        self._stream(accel, b"abc")
        accel.write(CMD_OFFSET, 4, CMD_SHA256)
        assert accel.read(STATUS_OFFSET, 4) == 1
        assert self._digest(accel) == sha256(b"abc")

    def test_hmac_via_registers(self):
        accel = HmacAccelerator()
        key = bytes(range(32))
        for i in range(0, 32, 4):
            accel.write(KEY_OFFSET + i, 4, int.from_bytes(key[i:i + 4], "little"))
        self._stream(accel, b"msg!")
        accel.write(CMD_OFFSET, 4, CMD_HMAC)
        assert self._digest(accel) == hmac_sha256(key, b"msg!")

    def test_cycle_cost_scales_with_blocks(self):
        accel = HmacAccelerator(cycles_per_block=80)
        self._stream(accel, b"x" * 64)
        accel.write(CMD_OFFSET, 4, CMD_SHA256)
        one_block = accel.busy_cycles
        self._stream(accel, b"x" * 640)
        accel.write(CMD_OFFSET, 4, CMD_SHA256)
        assert accel.busy_cycles - one_block > one_block

    def test_operations_counter(self):
        accel = HmacAccelerator()
        accel.compute_hmac(b"key", b"message")
        assert accel.operations == 1
