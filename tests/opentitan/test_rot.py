"""OpenTitan top-level tests: fabric latencies, firmware boot, PLIC wiring."""

import pytest

from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.opentitan.plic_device import CLAIM_OFFSET, ENABLE_OFFSET, PlicDevice
from repro.opentitan.rot import OpenTitan, RotConfig
from repro.soc.axi import AxiXbar
from repro.soc.plic import Plic
from repro.system.addresses import AddressMap


def make_rot(fabric="standard"):
    amap = AddressMap()
    host = MemoryMap("host")
    host.add(amap.dram_base, Ram(amap.dram_size), name="dram")
    axi = AxiXbar(host)
    return OpenTitan(axi, addresses=amap, config=RotConfig(fabric=fabric))


class TestFabricLatencies:
    """The §V-B access-cost targets, derived from fabric composition."""

    def test_standard_scratchpad_is_5_cycles(self):
        assert make_rot("standard").scratchpad_access_cycles() == 5

    def test_standard_soc_access_is_12_cycles(self):
        assert make_rot("standard").soc_access_cycles() == 12

    def test_optimized_scratchpad_is_1_cycle(self):
        assert make_rot("optimized").scratchpad_access_cycles() == 1

    def test_optimized_soc_access_is_8_cycles(self):
        assert make_rot("optimized").soc_access_cycles() == 8

    def test_unknown_fabric_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            RotConfig(fabric="warp").tlul_timings()


class TestBridgeView:
    def test_ibex_reaches_host_dram_through_bridge(self):
        rot = make_rot()
        amap = rot.addresses
        alias = amap.ibex_alias(amap.dram_base + 0x100)
        rot.xbar.write("ibex", alias, 4, 0xBEEF)
        value, cycles = rot.xbar.read("ibex", alias, 4)
        assert value == 0xBEEF
        assert cycles == 12

    def test_bridge_window_tagged_soc(self):
        rot = make_rot()
        assert rot.tl_map.tag(rot.addresses.ot_bridge_base) == "soc"

    def test_private_regions_tagged_rot(self):
        rot = make_rot()
        assert rot.tl_map.tag(rot.addresses.ot_sram_base) == "rot-sram"
        assert rot.tl_map.tag(rot.addresses.ot_plic_base) == "rot-plic"


class TestFirmwareLoading:
    def test_load_points_ibex_at_rom(self):
        rot = make_rot()
        rot.load_firmware(b"\x13\x00\x00\x00" * 4)  # nops
        assert rot.ibex.pc == rot.addresses.ot_rom_base
        result = rot.ibex.step()
        assert result.insn.mnemonic == "addi"


class TestPlicDevice:
    def test_enable_bitmask(self):
        plic = Plic(4)
        device = PlicDevice(plic)
        device.write(ENABLE_OFFSET, 4, 0b0110)  # sources 1 and 2
        plic.set_level(1, True)
        assert plic.irq_line

    def test_claim_complete_via_registers(self):
        plic = Plic(4)
        device = PlicDevice(plic)
        device.write(ENABLE_OFFSET, 4, 0b0010)
        plic.set_level(1, True)
        claimed = device.read(CLAIM_OFFSET, 4)
        assert claimed == 1
        plic.set_level(1, False)
        device.write(CLAIM_OFFSET, 4, claimed)
        assert not plic.pending(1)

    def test_wake_latency_configured(self):
        rot = make_rot()
        assert rot.ibex.timing.wake_cycles == 45
