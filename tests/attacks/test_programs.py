"""Victim-program semantic tests (independent of CFI detection)."""

import pytest

from repro.attacks.programs import (
    CLEAN_MARKER,
    GADGET_MARKER,
    benign_program,
    call_hijack_program,
    deep_recursion_program,
    indirect_jump_program,
    jop_program,
    return_to_callsite_program,
    rop_program,
)
from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.system.addresses import AddressMap


@pytest.fixture(scope="module")
def addresses():
    return AddressMap()


def run_bare(program, addresses, max_steps=200_000):
    """Execute on an unprotected CVA6 ISS; return the hart."""
    bus = MemoryMap("host")
    bus.add(addresses.dram_base, Ram(addresses.dram_size), name="dram")
    bus.write_bytes(program.base, program.data)
    hart = Hart(MapPort(bus), Cva6Timing(), xlen=64, reset_pc=program.base)
    hart.run(max_steps=max_steps)
    return hart


class TestBenign:
    def test_completes_clean(self, addresses):
        hart = run_bare(benign_program(addresses), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER

    def test_accumulator_math(self, addresses):
        """sum of squares 5..1 = 55, left in a1 by finalize."""
        hart = run_bare(benign_program(addresses), addresses)
        assert hart.regs.read(11) == 55


class TestRop:
    def test_unprotected_run_is_hijacked(self, addresses):
        """Without CFI the diversion succeeds silently — the threat model."""
        hart = run_bare(rop_program(addresses), addresses)
        assert hart.regs.read(10) == GADGET_MARKER

    def test_gadget_address_differs_from_return_site(self, addresses):
        program = rop_program(addresses)
        assert program.symbols["gadget"] != program.symbols["main"] + 12


class TestRecursion:
    @pytest.mark.parametrize("depth", [1, 8, 33])
    def test_terminates_at_any_depth(self, addresses, depth):
        hart = run_bare(deep_recursion_program(addresses, depth=depth), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER


class TestIndirectJump:
    def test_clean_dispatch(self, addresses):
        hart = run_bare(indirect_jump_program(addresses, corrupt=False), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER

    def test_corrupt_dispatch_reaches_gadget(self, addresses):
        hart = run_bare(indirect_jump_program(addresses, corrupt=True), addresses)
        assert hart.regs.read(10) == GADGET_MARKER


class TestJop:
    def test_benign_dispatch_completes_clean(self, addresses):
        hart = run_bare(jop_program(addresses, corrupt=False), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER

    def test_benign_handlers_both_ran(self, addresses):
        """add 7 then shift left: accumulator ends at 14, left in a1."""
        hart = run_bare(jop_program(addresses, corrupt=False), addresses)
        assert hart.regs.read(11) == 14

    def test_corrupt_chain_reaches_gadget(self, addresses):
        hart = run_bare(jop_program(addresses, corrupt=True), addresses)
        assert hart.regs.read(10) == GADGET_MARKER

    def test_gadgets_are_not_registered_handlers(self, addresses):
        program = jop_program(addresses, corrupt=True)
        handlers = {program.symbols["handler_add"], program.symbols["handler_shift"]}
        gadgets = {program.symbols["gadget_stage1"], program.symbols["gadget_stage2"]}
        assert handlers.isdisjoint(gadgets)


class TestCallHijack:
    def test_benign_pointer_call_completes_clean(self, addresses):
        hart = run_bare(call_hijack_program(addresses, corrupt=False), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER
        assert hart.regs.read(11) == 0x11  # greet actually ran

    def test_hijacked_pointer_reaches_gadget(self, addresses):
        hart = run_bare(call_hijack_program(addresses, corrupt=True), addresses)
        assert hart.regs.read(10) == GADGET_MARKER


class TestReturnToCallsite:
    def test_unprotected_run_is_hijacked(self, addresses):
        hart = run_bare(return_to_callsite_program(addresses), addresses)
        assert hart.regs.read(10) == GADGET_MARKER

    def test_diversion_target_is_a_valid_call_site(self, addresses):
        """The attack's defining property: the corrupted return lands on
        the fall-through of a *real* call instruction (site A)."""
        from repro.isa.cflow import CfKind, classify
        from repro.isa.decode import decode

        program = return_to_callsite_program(addresses)
        site_a_ret = program.symbols["site_a_ret"]
        # The instruction ending at site_a_ret must be a call (making
        # site_a_ret call-preceded — what coarse CFI cannot reject).
        call_pc = site_a_ret - 4
        offset = call_pc - program.base
        word = int.from_bytes(program.data[offset:offset + 4], "little")
        insn = decode(word, xlen=64)
        assert classify(insn) is CfKind.CALL
        assert call_pc + insn.length == site_a_ret
