"""Victim-program semantic tests (independent of CFI detection)."""

import pytest

from repro.attacks.programs import (
    CLEAN_MARKER,
    GADGET_MARKER,
    benign_program,
    deep_recursion_program,
    indirect_jump_program,
    rop_program,
)
from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.system.addresses import AddressMap


@pytest.fixture(scope="module")
def addresses():
    return AddressMap()


def run_bare(program, addresses, max_steps=200_000):
    """Execute on an unprotected CVA6 ISS; return the hart."""
    bus = MemoryMap("host")
    bus.add(addresses.dram_base, Ram(addresses.dram_size), name="dram")
    bus.write_bytes(program.base, program.data)
    hart = Hart(MapPort(bus), Cva6Timing(), xlen=64, reset_pc=program.base)
    hart.run(max_steps=max_steps)
    return hart


class TestBenign:
    def test_completes_clean(self, addresses):
        hart = run_bare(benign_program(addresses), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER

    def test_accumulator_math(self, addresses):
        """sum of squares 5..1 = 55, left in a1 by finalize."""
        hart = run_bare(benign_program(addresses), addresses)
        assert hart.regs.read(11) == 55


class TestRop:
    def test_unprotected_run_is_hijacked(self, addresses):
        """Without CFI the diversion succeeds silently — the threat model."""
        hart = run_bare(rop_program(addresses), addresses)
        assert hart.regs.read(10) == GADGET_MARKER

    def test_gadget_address_differs_from_return_site(self, addresses):
        program = rop_program(addresses)
        assert program.symbols["gadget"] != program.symbols["main"] + 12


class TestRecursion:
    @pytest.mark.parametrize("depth", [1, 8, 33])
    def test_terminates_at_any_depth(self, addresses, depth):
        hart = run_bare(deep_recursion_program(addresses, depth=depth), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER


class TestIndirectJump:
    def test_clean_dispatch(self, addresses):
        hart = run_bare(indirect_jump_program(addresses, corrupt=False), addresses)
        assert hart.regs.read(10) == CLEAN_MARKER

    def test_corrupt_dispatch_reaches_gadget(self, addresses):
        hart = run_bare(indirect_jump_program(addresses, corrupt=True), addresses)
        assert hart.regs.read(10) == GADGET_MARKER
