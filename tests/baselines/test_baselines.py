"""Baseline-model tests: DExIE, FIXER, PHMon."""

import pytest

from repro.baselines.dexie import DEXIE_AREA, DEXIE_SLOWDOWNS, DexieModel
from repro.baselines.fixer import FIXER_REPORTED_OVERHEAD_PERCENT, FixerModel
from repro.baselines.phmon import PhmonModel
from repro.core.commit_log import CommitLog
from repro.isa.cflow import CfKind
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


class TestDexie:
    def test_published_values_returned(self):
        model = DexieModel()
        assert model.slowdown_percent(1e6, 100, published=DEXIE_SLOWDOWNS["edn"]) == 47

    def test_clock_penalty_model_near_published(self):
        """The parametric model should land near the ~48% the paper quotes."""
        model = DexieModel()
        estimate = model.slowdown_percent(2.51e6, 15)
        assert estimate == pytest.approx(48, abs=4)

    def test_area_overhead_72_percent(self):
        assert DexieModel().area_overhead_percent == pytest.approx(72.1, abs=0.5)

    def test_area_catalog_consistent(self):
        assert DEXIE_AREA["lut_with_cfi"] > DEXIE_AREA["lut_base"]
        assert DEXIE_AREA["bram_with_cfi"] - DEXIE_AREA["bram_base"] == 6


class TestFixer:
    def test_low_overhead_on_sparse_cf(self):
        model = FixerModel()
        # dhrystone: 2.25e4 extra ops over 4.57e5 cycles ≈ 4.9%
        assert model.slowdown_percent(4.57e5, 2.25e4) == pytest.approx(4.9, abs=0.2)

    def test_reported_constant(self):
        assert FIXER_REPORTED_OVERHEAD_PERCENT == 1.5

    def test_legacy_binaries_unprotected(self):
        """The deployment contrast §II draws: FIXER needs recompilation."""
        assert not FixerModel().protects_legacy_binaries()


def return_log(target=0x2000):
    return CommitLog(pc=0x1000, encoding=encode_i(op.OP_JALR, 0, 0, 1, 0),
                     next_address=0x1004, target=target)


class TestPhmon:
    def test_match_unit_fires(self):
        model = PhmonModel()
        model.add_rule("returns", lambda log: log.kind is CfKind.RETURN, "check-stack")
        assert model.observe(return_log()) == ("returns", "check-stack")
        assert model.matches == 1

    def test_no_match_returns_none(self):
        model = PhmonModel()
        model.add_rule("never", lambda log: False, "x")
        assert model.observe(return_log()) is None

    def test_security_contrast_with_titancfi(self):
        """§II: PHMon metadata is forgeable after an OS breach; TitanCFI's
        lives in the RoT (or is MAC-authenticated when spilled)."""
        assert PhmonModel().metadata_forgeable_after_os_breach()
