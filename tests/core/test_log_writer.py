"""Log-writer FSM tests: the §IV-B3 state machine against a live mailbox."""

import pytest

from repro.core.commit_log import CommitLog
from repro.core.log_writer import LogWriter, WriterState
from repro.core.queue import CfiQueue
from repro.errors import CfiViolation
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op
from repro.mem.map import MemoryMap
from repro.soc.axi import AxiXbar
from repro.soc.mailbox import VERDICT_OK, VERDICT_VIOLATION, CfiMailbox

MAILBOX_BASE = 0x9000_0000


def make_writer(raise_on_violation=True, queue_depth=4):
    bus = MemoryMap("host")
    mailbox = CfiMailbox()
    bus.add(MAILBOX_BASE, mailbox, name="cfi-mailbox")
    axi = AxiXbar(bus)
    queue = CfiQueue(queue_depth)
    writer = LogWriter(axi, mailbox, MAILBOX_BASE, queue,
                       raise_on_violation=raise_on_violation)
    return writer, queue, mailbox


def call_log(pc=0x1000):
    return CommitLog(pc=pc, encoding=encode_j(op.OP_JAL, 1, 0x40),
                     next_address=pc + 4, target=pc + 0x40)


class TestFsmProgression:
    def test_idle_with_empty_queue(self):
        writer, _, _ = make_writer()
        writer.tick()
        assert writer.state is WriterState.IDLE

    def test_write_phase_rings_doorbell(self):
        writer, queue, mailbox = make_writer()
        queue.push(call_log())
        writer.tick()  # pops, enters WRITE
        assert writer.state is WriterState.WRITE
        for _ in range(100):
            writer.tick()
            if writer.state is WriterState.WAIT:
                break
        assert writer.state is WriterState.WAIT
        assert mailbox.doorbell_pending
        assert writer.stats.logs_sent == 1

    def test_payload_lands_in_mailbox(self):
        writer, queue, mailbox = make_writer()
        log = call_log()
        queue.push(log)
        while writer.state is not WriterState.WAIT:
            writer.tick()
        assert CommitLog.unpack(mailbox.collect()) == log

    def test_completion_releases_fsm(self):
        writer, queue, mailbox = make_writer()
        queue.push(call_log())
        while writer.state is not WriterState.WAIT:
            writer.tick()
        mailbox.respond(VERDICT_OK)
        for _ in range(100):
            writer.tick()
            if writer.state is WriterState.IDLE:
                break
        assert writer.state is WriterState.IDLE
        assert writer.stats.checks_completed == 1

    def test_wait_cycles_accumulate(self):
        writer, queue, mailbox = make_writer()
        queue.push(call_log())
        while writer.state is not WriterState.WAIT:
            writer.tick()
        for _ in range(10):
            writer.tick()
        assert writer.stats.wait_cycles >= 10


class TestVerdicts:
    def _run_one(self, verdict, raise_on_violation=True):
        writer, queue, mailbox = make_writer(raise_on_violation)
        queue.push(call_log())
        while writer.state is not WriterState.WAIT:
            writer.tick()
        mailbox.respond(verdict)
        for _ in range(100):
            writer.tick()
            if writer.state is WriterState.IDLE:
                break
        return writer

    def test_ok_verdict_no_fault(self):
        writer = self._run_one(VERDICT_OK)
        assert writer.fault is None
        assert writer.stats.violations == 0

    def test_violation_raises(self):
        writer, queue, mailbox = make_writer(raise_on_violation=True)
        queue.push(call_log())
        while writer.state is not WriterState.WAIT:
            writer.tick()
        mailbox.respond(VERDICT_VIOLATION)
        with pytest.raises(CfiViolation):
            for _ in range(100):
                writer.tick()

    def test_violation_latched_when_not_raising(self):
        writer = self._run_one(VERDICT_VIOLATION, raise_on_violation=False)
        assert writer.fault is not None
        assert writer.stats.violations == 1

    def test_violation_carries_log_info(self):
        writer = self._run_one(VERDICT_VIOLATION, raise_on_violation=False)
        assert writer.fault.pc == 0x1000
        assert writer.fault.kind == "call"


class TestBackToBack:
    def test_multiple_logs_processed_fifo(self):
        writer, queue, mailbox = make_writer()
        for pc in (0x1000, 0x2000, 0x3000):
            queue.push(call_log(pc))
        seen = []
        for _ in range(2000):
            writer.tick()
            if writer.state is WriterState.WAIT and mailbox.doorbell_pending:
                seen.append(CommitLog.unpack(mailbox.collect()).pc)
                mailbox.respond(VERDICT_OK)
            if writer.stats.checks_completed == 3:
                break
        assert seen == [0x1000, 0x2000, 0x3000]
        assert writer.stats.checks_completed == 3

    def test_latency_statistics(self):
        writer, queue, mailbox = make_writer()
        queue.push(call_log())
        for _ in range(2000):
            writer.tick()
            if writer.state is WriterState.WAIT and mailbox.doorbell_pending:
                mailbox.respond(VERDICT_OK)
            if writer.stats.checks_completed:
                break
        assert writer.stats.mean_check_latency > 0
        assert len(writer.stats.check_latencies) == 1


class TestBulkTick:
    """skip()/skippable_cycles()/tick_n must be tick-for-tick exact."""

    def _stats_key(self, writer):
        s = writer.stats
        return (writer.state, writer.now, writer._countdown,
                s.logs_sent, s.checks_completed, s.busy_cycles,
                s.wait_cycles, tuple(s.check_latencies))

    def _drive(self, writer, mailbox, cycles, advance):
        """Run ``cycles`` ticks, answering every doorbell; ``advance``
        consumes (writer, n) however it likes but must total n==1."""
        for _ in range(cycles):
            advance(writer)
            if writer.state is WriterState.WAIT and mailbox.doorbell_pending:
                mailbox.respond(VERDICT_OK)

    def test_skip_matches_ticks_through_full_handshakes(self):
        per_cycle, q1, mb1 = make_writer()
        bulk, q2, mb2 = make_writer()
        for pc in (0x1000, 0x2000, 0x3000):
            q1.push(call_log(pc))
            q2.push(call_log(pc))

        def tick_once(writer):
            writer.tick()

        self._drive(per_cycle, mb1, 300, tick_once)
        # Bulk variant: interleave skip() jumps with single ticks so
        # every cycle is covered exactly once.
        consumed = 0
        while consumed < 300:
            skippable = bulk.skippable_cycles()
            budget = 300 - consumed
            jump = min(skippable, budget - 1) if budget > 1 else 0
            if jump > 0:
                bulk.skip(jump)
                consumed += jump
            bulk.tick()
            consumed += 1
            if bulk.state is WriterState.WAIT and mb2.doorbell_pending:
                mb2.respond(VERDICT_OK)
        assert self._stats_key(per_cycle) == self._stats_key(bulk)
        assert per_cycle.stats.checks_completed == 3

    def test_stage_tick_n_equals_n_ticks(self):
        from repro.core.config import TitanCfiConfig
        from repro.core.stage import CfiStage

        def make_stage():
            bus = MemoryMap("host")
            mailbox = CfiMailbox()
            bus.add(MAILBOX_BASE, mailbox, name="cfi-mailbox")
            axi = AxiXbar(bus)
            stage = CfiStage(axi, mailbox,
                             TitanCfiConfig(mailbox_base=MAILBOX_BASE))
            return stage, mailbox

        loops, mb1 = make_stage()
        bulk, mb2 = make_stage()
        for stage in (loops, bulk):
            assert stage.try_push(call_log())
        for _ in range(40):
            loops.tick()
        bulk.tick_n(40)
        # Both writers progressed identically (parked in WAIT since no
        # firmware answers here).
        assert loops.writer.state is bulk.writer.state is WriterState.WAIT
        assert loops.writer.now == bulk.writer.now == 40
        assert loops.writer.stats.busy_cycles == bulk.writer.stats.busy_cycles
        assert loops.writer.stats.wait_cycles == bulk.writer.stats.wait_cycles

    def test_skippable_cycles_bounds(self):
        writer, queue, mailbox = make_writer()
        # IDLE with empty queue: unbounded (nothing can happen here).
        assert writer.skippable_cycles() == LogWriter.UNBOUNDED
        queue.push(call_log())
        # IDLE with work ready: next tick transitions.
        assert writer.skippable_cycles() == 0
        writer.tick()  # -> WRITE with a countdown
        assert writer.state is WriterState.WRITE
        assert writer.skippable_cycles() == writer._countdown - 1


class TestAxiTraffic:
    def test_writer_is_its_own_master(self):
        writer, queue, mailbox = make_writer()
        queue.push(call_log())
        while writer.state is not WriterState.WAIT:
            writer.tick()
        assert writer.axi.stats("cfi-stage").writes >= 2  # payload + doorbell

    def test_payload_beats(self):
        """A 28-byte log must cost 4 data beats on the 64-bit bus."""
        writer, _, _ = make_writer()
        assert writer.axi.timings.beats_for(28) == 4
