"""Commit-log packet tests: the 224-bit wire format of §IV-B1."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.commit_log import (
    COMMIT_LOG_BITS,
    COMMIT_LOG_BYTES,
    ENCODING_OFFSET,
    NEXT_OFFSET,
    PC_OFFSET,
    TARGET_OFFSET,
    CommitLog,
)
from repro.errors import ConfigError
from repro.isa.cflow import CfKind
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def call_log(pc=0x1000):
    return CommitLog(
        pc=pc,
        encoding=encode_j(op.OP_JAL, 1, 64),
        next_address=pc + 4,
        target=pc + 64,
    )


class TestPacketGeometry:
    def test_width_is_224_bits(self):
        assert COMMIT_LOG_BITS == 224
        assert COMMIT_LOG_BYTES == 28

    def test_field_offsets_are_word_aligned(self):
        """Ibex must reach each field with one aligned 32-bit read."""
        for offset in (PC_OFFSET, ENCODING_OFFSET, NEXT_OFFSET, TARGET_OFFSET):
            assert offset % 4 == 0

    def test_pack_length(self):
        assert len(call_log().pack()) == COMMIT_LOG_BYTES

    def test_fields_land_at_documented_offsets(self):
        log = CommitLog(pc=0x1122334455667788, encoding=0xAABBCCDD,
                        next_address=0x99, target=0x77)
        packed = log.pack()
        assert int.from_bytes(packed[PC_OFFSET:PC_OFFSET + 8], "little") == 0x1122334455667788
        assert int.from_bytes(packed[ENCODING_OFFSET:ENCODING_OFFSET + 4], "little") == 0xAABBCCDD
        assert int.from_bytes(packed[NEXT_OFFSET:NEXT_OFFSET + 8], "little") == 0x99
        assert int.from_bytes(packed[TARGET_OFFSET:TARGET_OFFSET + 8], "little") == 0x77


class TestRoundTrip:
    def test_simple_roundtrip(self):
        log = call_log()
        assert CommitLog.unpack(log.pack()) == log

    def test_unpack_ignores_trailing_bytes(self):
        log = call_log()
        assert CommitLog.unpack(log.pack() + b"\x00" * 4) == log

    def test_unpack_short_buffer_rejected(self):
        with pytest.raises(ConfigError):
            CommitLog.unpack(b"\x00" * 8)

    @given(
        pc=st.integers(min_value=0, max_value=(1 << 64) - 1),
        encoding=st.integers(min_value=0, max_value=(1 << 32) - 1),
        next_address=st.integers(min_value=0, max_value=(1 << 64) - 1),
        target=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_roundtrip_property(self, pc, encoding, next_address, target):
        log = CommitLog(pc=pc, encoding=encoding,
                        next_address=next_address, target=target)
        assert CommitLog.unpack(log.pack()) == log


class TestValidation:
    def test_oversized_pc_rejected(self):
        with pytest.raises(ConfigError):
            CommitLog(pc=1 << 64, encoding=0, next_address=0, target=0)

    def test_oversized_encoding_rejected(self):
        with pytest.raises(ConfigError):
            CommitLog(pc=0, encoding=1 << 32, next_address=0, target=0)


class TestKindDerivation:
    def test_call_kind(self):
        assert call_log().kind is CfKind.CALL

    def test_return_kind(self):
        log = CommitLog(pc=0, encoding=encode_i(op.OP_JALR, 0, 0, 1, 0),
                        next_address=4, target=0x2000)
        assert log.kind is CfKind.RETURN

    def test_garbage_encoding_is_none(self):
        log = CommitLog(pc=0, encoding=0xFFFFFFFF, next_address=4, target=0)
        assert log.kind is CfKind.NONE
