"""CFI filter and queue-controller tests (§IV-B1/B2)."""

import pytest

from repro.core.commit_log import CommitLog
from repro.core.filter import CfiFilter
from repro.core.queue import CfiQueue, QueueController
from repro.cva6.scoreboard import ScoreboardEntry
from repro.isa.decode import decode
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def entry_for(word, pc=0x1000, xlen=64, taken=True, target=None):
    insn = decode(word, xlen=xlen)
    fall = pc + insn.length
    return ScoreboardEntry(
        pc=pc, insn=insn, fall_through=fall,
        target=target if target is not None else (pc + 0x40 if taken else fall),
        taken=taken,
    )


CALL_WORD = encode_j(op.OP_JAL, 1, 0x40)
RET_WORD = encode_i(op.OP_JALR, 0, 0, 1, 0)
DIRECT_JUMP_WORD = encode_j(op.OP_JAL, 0, 0x40)
ADD_WORD = 0x002081B3


class TestFilter:
    def test_call_selected(self):
        log = CfiFilter().examine(entry_for(CALL_WORD))
        assert log is not None
        assert log.pc == 0x1000
        assert log.next_address == 0x1004
        assert log.target == 0x1040

    def test_return_selected(self):
        assert CfiFilter().examine(entry_for(RET_WORD)) is not None

    def test_direct_jump_not_selected(self):
        assert CfiFilter().examine(entry_for(DIRECT_JUMP_WORD)) is None

    def test_alu_not_selected(self):
        assert CfiFilter().examine(entry_for(ADD_WORD, taken=False)) is None

    def test_none_entry_ignored(self):
        cfi_filter = CfiFilter()
        assert cfi_filter.examine(None) is None
        assert cfi_filter.stats.examined == 0

    def test_invalid_entry_ignored(self):
        entry = entry_for(CALL_WORD)
        invalid = ScoreboardEntry(
            pc=entry.pc, insn=entry.insn, fall_through=entry.fall_through,
            target=entry.target, taken=entry.taken, valid=False,
        )
        assert CfiFilter().examine(invalid) is None

    def test_compressed_call_expanded_encoding(self):
        """The log must carry the *uncompressed* encoding (§IV-B1)."""
        entry = entry_for(0x9082, xlen=32)  # c.jalr ra
        log = CfiFilter().examine(entry)
        assert log is not None
        assert log.encoding == entry.insn.expanded
        assert log.encoding & 0b11 == 0b11  # 32-bit encoding
        # next address reflects the 2-byte length
        assert log.next_address == 0x1002

    def test_stats(self):
        cfi_filter = CfiFilter()
        cfi_filter.examine(entry_for(CALL_WORD))
        cfi_filter.examine(entry_for(RET_WORD))
        cfi_filter.examine(entry_for(ADD_WORD, taken=False))
        assert cfi_filter.stats.examined == 3
        assert cfi_filter.stats.selected == 2
        assert cfi_filter.stats.by_kind == {"call": 1, "return": 1}


def make_log(pc=0x1000):
    return CommitLog(pc=pc, encoding=CALL_WORD, next_address=pc + 4, target=pc + 0x40)


class TestQueueController:
    def test_single_push(self):
        queue = CfiQueue(4)
        controller = QueueController(queue)
        accepted = controller.arbitrate([make_log(), None])
        assert accepted == 2
        assert queue.occupancy == 1

    def test_non_cf_ports_flow_through(self):
        controller = QueueController(CfiQueue(4))
        assert controller.arbitrate([None, None]) == 2

    def test_dual_cf_retirement_stalls_second_port(self):
        queue = CfiQueue(4)
        controller = QueueController(queue)
        accepted = controller.arbitrate([make_log(0x1000), make_log(0x2000)])
        assert accepted == 1
        assert queue.occupancy == 1
        assert controller.stats.conflict_stalls == 1

    def test_full_queue_stalls(self):
        queue = CfiQueue(1)
        controller = QueueController(queue)
        controller.arbitrate([make_log(0x1000)])
        accepted = controller.arbitrate([make_log(0x2000)])
        assert accepted == 0
        assert controller.stats.full_stalls == 1

    def test_replay_after_drain(self):
        queue = CfiQueue(1)
        controller = QueueController(queue)
        controller.arbitrate([make_log(0x1000)])
        assert controller.arbitrate([make_log(0x2000)]) == 0
        queue.pop()
        assert controller.arbitrate([make_log(0x2000)]) == 1

    def test_fifo_order_preserved(self):
        queue = CfiQueue(4)
        controller = QueueController(queue)
        for pc in (0x1000, 0x2000, 0x3000):
            controller.arbitrate([make_log(pc)])
        assert [queue.pop().pc for _ in range(3)] == [0x1000, 0x2000, 0x3000]

    def test_accounting(self):
        queue = CfiQueue(2)
        controller = QueueController(queue)
        controller.arbitrate([make_log(), None])
        controller.arbitrate([make_log()])
        assert controller.stats.total_offered == 2
        assert controller.stats.total_accepted == 2
