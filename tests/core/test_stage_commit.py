"""CFI stage + commit-stage integration (stall protocol, skid buffer)."""

import pytest

from repro.core.config import TitanCfiConfig
from repro.core.stage import CfiStage
from repro.cva6.commit import CommitStage
from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.isa.asm import Assembler
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.soc.axi import AxiXbar
from repro.soc.mailbox import VERDICT_OK, CfiMailbox

MAILBOX_BASE = 0x9000_0000
DRAM_BASE = 0x8000_0000


def build(queue_depth=2, blocking=False, program_source=None):
    bus = MemoryMap("host")
    bus.add(DRAM_BASE, Ram(0x10000), latency=1, name="dram")
    mailbox = CfiMailbox()
    bus.add(MAILBOX_BASE, mailbox, name="cfi-mailbox")
    axi = AxiXbar(bus)
    config = TitanCfiConfig(queue_depth=queue_depth, blocking=blocking,
                            mailbox_base=MAILBOX_BASE)
    stage = CfiStage(axi, mailbox, config)
    source = program_source or """
        main:
            call f
            call f
            call f
            ebreak
        f:
            ret
    """
    program = Assembler(xlen=64).assemble(source, base=DRAM_BASE)
    bus.write_bytes(program.base, program.data)
    hart = Hart(MapPort(bus), Cva6Timing(), xlen=64, reset_pc=DRAM_BASE)
    commit = CommitStage(hart, stage)
    return commit, stage, mailbox


def autorespond(mailbox):
    """Instant RoT: answer any pending doorbell with OK."""
    if mailbox.doorbell_pending:
        mailbox.respond(VERDICT_OK)


def run_to_halt(commit, stage, mailbox, max_cycles=100_000):
    cycles = 0
    debt = 0
    while cycles < max_cycles:
        cycles += 1
        if debt > 0:
            debt -= 1
        elif not commit.hart.halted:
            result = commit.try_advance()
            if result is not None and result.cycles > 1:
                debt = result.cycles - 1
        stage.tick()
        autorespond(mailbox)
        if commit.hart.halted and stage.quiescent and not commit.stalled:
            return cycles
    raise AssertionError("did not halt")


class TestCleanRuns:
    def test_all_cf_events_checked(self):
        commit, stage, mailbox = build(queue_depth=4)
        run_to_halt(commit, stage, mailbox)
        stats = stage.stats_summary()
        assert stats["selected"] == 6       # 3 calls + 3 returns
        assert stats["checks_completed"] == 6
        assert stats["violations"] == 0

    def test_filter_counts_each_instruction_once(self):
        commit, stage, mailbox = build(queue_depth=1)
        run_to_halt(commit, stage, mailbox)
        stats = stage.stats_summary()
        # 3 calls + 3 rets + other retired instructions, each examined once.
        assert stats["examined"] == commit.retired

    def test_queue_depth_one_causes_stalls(self):
        commit, stage, mailbox = build(queue_depth=1)
        run_to_halt(commit, stage, mailbox)
        assert commit.stall_cycles > 0

    def test_deeper_queue_reduces_stalls(self):
        shallow, stage_s, mb_s = build(queue_depth=1)
        cycles_shallow = run_to_halt(shallow, stage_s, mb_s)
        deep, stage_d, mb_d = build(queue_depth=8)
        cycles_deep = run_to_halt(deep, stage_d, mb_d)
        assert deep.stall_cycles <= shallow.stall_cycles
        assert cycles_deep <= cycles_shallow


class TestBlockingMode:
    def test_blocking_stalls_every_cf(self):
        commit, stage, mailbox = build(queue_depth=1, blocking=True)
        run_to_halt(commit, stage, mailbox)
        # Every one of the 6 CF events must have paid a full check stall.
        assert commit.stall_cycles >= 6 * 5

    def test_blocking_slower_than_non_blocking(self):
        blocking, stage_b, mb_b = build(queue_depth=1, blocking=True)
        cycles_blocking = run_to_halt(blocking, stage_b, mb_b)
        plain, stage_p, mb_p = build(queue_depth=8, blocking=False)
        cycles_plain = run_to_halt(plain, stage_p, mb_p)
        assert cycles_blocking > cycles_plain


class TestOfferApi:
    def test_multi_port_offer_validation(self):
        _, stage, _ = build()
        with pytest.raises(ValueError):
            stage.offer([None, None, None])  # 3 entries on a 2-port stage
