"""Compressed (RVC) expansion tests.

Reference halfwords were hand-assembled per the RVC encoding tables; the
expected expansions are the architectural equivalents given in the spec.
The commit log transports expanded encodings, so these expansions are
load-bearing for the CFI firmware.
"""

import pytest

from repro.errors import DecodeError
from repro.isa.decode import decode, expand_compressed


class TestQuadrant0:
    def test_c_addi4spn(self):
        # c.addi4spn x8, sp, 16 -> 000 00001000 000 00
        insn = decode(0x0800, xlen=32)
        assert insn.mnemonic == "addi"
        assert insn.compressed_mnemonic == "c.addi4spn"
        assert insn.rd == 8
        assert insn.rs1 == 2
        assert insn.imm == 16
        assert insn.length == 2

    def test_c_addi4spn_zero_imm_illegal(self):
        with pytest.raises(DecodeError):
            decode(0x0000, xlen=32)

    def test_c_lw(self):
        # c.lw x9, 4(x10): funct3=010 uimm 4 -> bit6=1
        insn = decode(0x4144, xlen=32)
        assert insn.mnemonic == "lw"
        assert insn.compressed_mnemonic == "c.lw"
        assert insn.rd == 9
        assert insn.rs1 == 10
        assert insn.imm == 4

    def test_c_sw(self):
        insn = decode(0xC144, xlen=32)  # c.sw x9, 4(x10)
        assert insn.mnemonic == "sw"
        assert insn.rs2 == 9
        assert insn.rs1 == 10
        assert insn.imm == 4

    def test_c_ld_rv64(self):
        insn = decode(0x6188, xlen=64)  # c.ld x10, 0(x11)
        assert insn.mnemonic == "ld"
        assert insn.rd == 10
        assert insn.rs1 == 11
        assert insn.imm == 0

    def test_c_ld_rejected_rv32(self):
        with pytest.raises(DecodeError):
            decode(0x6188, xlen=32)


class TestQuadrant1:
    def test_c_nop(self):
        insn = decode(0x0001, xlen=32)
        assert insn.mnemonic == "addi"
        assert insn.compressed_mnemonic == "c.nop"
        assert insn.rd == 0

    def test_c_addi(self):
        insn = decode(0x0505, xlen=32)  # c.addi x10, 1
        assert insn.mnemonic == "addi"
        assert insn.rd == 10
        assert insn.rs1 == 10
        assert insn.imm == 1

    def test_c_addi_negative(self):
        insn = decode(0x157D, xlen=32)  # c.addi x10, -1
        assert insn.imm == -1

    def test_c_jal_rv32_is_call(self):
        # c.jal +32 on RV32 expands to jal ra, +32
        insn = decode(0x2081 | 0x0000, xlen=32)
        # funct3=001 -> c.jal on RV32
        assert insn.compressed_mnemonic == "c.jal"
        assert insn.mnemonic == "jal"
        assert insn.rd == 1

    def test_c_addiw_rv64(self):
        insn = decode(0x2505, xlen=64)  # c.addiw x10, 1
        assert insn.compressed_mnemonic == "c.addiw"
        assert insn.mnemonic == "addiw"
        assert insn.imm == 1

    def test_c_li(self):
        insn = decode(0x4529, xlen=32)  # c.li x10, 10
        assert insn.mnemonic == "addi"
        assert insn.rs1 == 0
        assert insn.imm == 10

    def test_c_lui(self):
        insn = decode(0x6505, xlen=32)  # c.lui x10, 1
        assert insn.mnemonic == "lui"
        assert insn.imm == 1

    def test_c_addi16sp(self):
        insn = decode(0x6141, xlen=32)  # c.addi16sp 16
        assert insn.mnemonic == "addi"
        assert insn.rd == 2
        assert insn.rs1 == 2
        assert insn.imm == 16

    def test_c_srli(self):
        insn = decode(0x8105, xlen=32)  # c.srli x10, 1
        assert insn.mnemonic == "srli"
        assert insn.imm == 1

    def test_c_andi(self):
        insn = decode(0x8905, xlen=32)  # c.andi x10, 1
        assert insn.mnemonic == "andi"
        assert insn.imm == 1

    def test_c_sub(self):
        insn = decode(0x8D09, xlen=32)  # c.sub x10, x10... check rs2'
        assert insn.mnemonic == "sub"

    def test_c_j(self):
        insn = decode(0xA001, xlen=32)  # c.j +0
        assert insn.mnemonic == "jal"
        assert insn.rd == 0
        assert insn.imm == 0

    def test_c_beqz(self):
        insn = decode(0xC101, xlen=32)  # c.beqz x10, +0... offset 0
        assert insn.mnemonic == "beq"
        assert insn.rs1 == 10
        assert insn.rs2 == 0

    def test_c_bnez(self):
        insn = decode(0xE101, xlen=32)
        assert insn.mnemonic == "bne"


class TestQuadrant2:
    def test_c_slli(self):
        insn = decode(0x0506, xlen=32)  # c.slli x10, 1
        assert insn.mnemonic == "slli"
        assert insn.imm == 1

    def test_c_lwsp(self):
        insn = decode(0x4502, xlen=32)  # c.lwsp x10, 0(sp)
        assert insn.mnemonic == "lw"
        assert insn.rs1 == 2
        assert insn.rd == 10
        assert insn.imm == 0

    def test_c_ldsp_rv64(self):
        insn = decode(0x6502, xlen=64)  # c.ldsp x10, 0(sp)
        assert insn.mnemonic == "ld"

    def test_c_jr_is_return_shape(self):
        insn = decode(0x8082, xlen=32)  # c.jr ra == ret
        assert insn.compressed_mnemonic == "c.jr"
        assert insn.mnemonic == "jalr"
        assert insn.rd == 0
        assert insn.rs1 == 1
        assert insn.imm == 0

    def test_c_jr_x0_reserved(self):
        with pytest.raises(DecodeError):
            decode(0x8002, xlen=32)

    def test_c_mv(self):
        insn = decode(0x80AA, xlen=32)  # c.mv x1, x10
        assert insn.compressed_mnemonic == "c.mv"
        assert insn.mnemonic == "add"
        assert insn.rd == 1
        assert insn.rs1 == 0
        assert insn.rs2 == 10

    def test_c_ebreak(self):
        insn = decode(0x9002, xlen=32)
        assert insn.mnemonic == "ebreak"
        assert insn.compressed_mnemonic == "c.ebreak"

    def test_c_jalr_is_call_shape(self):
        insn = decode(0x9082, xlen=32)  # c.jalr ra
        assert insn.compressed_mnemonic == "c.jalr"
        assert insn.mnemonic == "jalr"
        assert insn.rd == 1
        assert insn.rs1 == 1

    def test_c_add(self):
        insn = decode(0x90AA, xlen=32)  # c.add x1, x10
        assert insn.mnemonic == "add"
        assert insn.rd == 1
        assert insn.rs1 == 1
        assert insn.rs2 == 10

    def test_c_swsp(self):
        insn = decode(0xC02A, xlen=32)  # c.swsp x10, 0(sp)
        assert insn.mnemonic == "sw"
        assert insn.rs1 == 2
        assert insn.rs2 == 10

    def test_c_sdsp_rv64(self):
        insn = decode(0xE02A, xlen=64)  # c.sdsp x10, 0(sp)
        assert insn.mnemonic == "sd"


class TestExpansionInvariants:
    def test_zero_halfword_illegal(self):
        with pytest.raises(DecodeError):
            expand_compressed(0x0000, 32)

    def test_expanded_word_is_uncompressed(self):
        """The expansion must itself be a valid 32-bit encoding."""
        for hword in (0x8082, 0x9082, 0x4501, 0xA001, 0x0505):
            word32, _ = expand_compressed(hword, 32)
            assert word32 & 0b11 == 0b11  # 32-bit length encoding
            reparsed = decode(word32, xlen=32)
            assert reparsed.length == 4

    def test_expanded_matches_direct_decode(self):
        """Decoding a compressed form must agree with decoding its expansion."""
        for hword in (0x8082, 0x9082, 0x4501, 0x0505, 0x8105):
            compressed = decode(hword, xlen=32)
            expanded = decode(compressed.expanded, xlen=32)
            assert compressed.mnemonic == expanded.mnemonic
            assert compressed.rd == expanded.rd
            assert compressed.rs1 == expanded.rs1
            assert compressed.rs2 == expanded.rs2
            assert compressed.imm == expanded.imm
