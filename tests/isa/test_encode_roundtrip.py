"""Property tests: encode → decode round-trips for every format."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import opcodes as op
from repro.isa.decode import decode
from repro.isa.encode import (
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_shift,
    encode_u,
)

regs = st.integers(min_value=0, max_value=31)
simm12 = st.integers(min_value=-2048, max_value=2047)


@given(rd=regs, rs1=regs, rs2=regs)
def test_r_type_roundtrip(rd, rs1, rs2):
    word = encode_r(op.OP_REG, op.F3_ADD_SUB, op.F7_BASE, rd, rs1, rs2)
    insn = decode(word)
    assert insn.mnemonic == "add"
    assert (insn.rd, insn.rs1, insn.rs2) == (rd, rs1, rs2)


@given(rd=regs, rs1=regs, imm=simm12)
def test_i_type_roundtrip(rd, rs1, imm):
    word = encode_i(op.OP_IMM, op.F3_ADD_SUB, rd, rs1, imm)
    insn = decode(word)
    assert insn.mnemonic == "addi"
    assert (insn.rd, insn.rs1, insn.imm) == (rd, rs1, imm)


@given(rs1=regs, rs2=regs, imm=simm12)
def test_s_type_roundtrip(rs1, rs2, imm):
    word = encode_s(op.OP_STORE, op.F3_SW, rs1, rs2, imm)
    insn = decode(word)
    assert insn.mnemonic == "sw"
    assert (insn.rs1, insn.rs2, insn.imm) == (rs1, rs2, imm)


@given(
    rs1=regs,
    rs2=regs,
    imm=st.integers(min_value=-2048, max_value=2047).map(lambda x: x * 2),
)
def test_b_type_roundtrip(rs1, rs2, imm):
    word = encode_b(op.OP_BRANCH, op.F3_BEQ, rs1, rs2, imm)
    insn = decode(word)
    assert insn.mnemonic == "beq"
    assert (insn.rs1, insn.rs2, insn.imm) == (rs1, rs2, imm)


@given(rd=regs, imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
def test_u_type_roundtrip(rd, imm):
    word = encode_u(op.OP_LUI, rd, imm)
    insn = decode(word)
    assert insn.mnemonic == "lui"
    assert (insn.rd, insn.imm) == (rd, imm)


@given(
    rd=regs,
    imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(lambda x: x * 2),
)
def test_j_type_roundtrip(rd, imm):
    word = encode_j(op.OP_JAL, rd, imm)
    insn = decode(word)
    assert insn.mnemonic == "jal"
    assert (insn.rd, insn.imm) == (rd, imm)


@given(rd=regs, rs1=regs, shamt=st.integers(min_value=0, max_value=63))
def test_shift_roundtrip_rv64(rd, rs1, shamt):
    word = encode_shift(op.OP_IMM, op.F3_SRL_SRA, op.F7_SUB_SRA, rd, rs1, shamt, 64)
    insn = decode(word, xlen=64)
    assert insn.mnemonic == "srai"
    assert (insn.rd, insn.rs1, insn.imm) == (rd, rs1, shamt)


@given(rd=regs, rs1=regs, shamt=st.integers(min_value=0, max_value=31))
def test_shift_roundtrip_rv32(rd, rs1, shamt):
    word = encode_shift(op.OP_IMM, op.F3_SLL, op.F7_BASE, rd, rs1, shamt, 32)
    insn = decode(word, xlen=32)
    assert insn.mnemonic == "slli"
    assert (insn.rd, insn.rs1, insn.imm) == (rd, rs1, shamt)
