"""Tests for the control-flow classifier — the CFI filter's decision rules."""

import pytest

from repro.isa.cflow import (
    CfKind,
    classify,
    classify_word,
    expected_return_address,
    is_call,
    is_cfi_relevant,
    is_control_flow,
    is_indirect_jump,
    is_return,
)
from repro.isa.decode import decode
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def jal(rd, offset=0):
    return decode(encode_j(op.OP_JAL, rd, offset))


def jalr(rd, rs1, offset=0):
    return decode(encode_i(op.OP_JALR, 0, rd, rs1, offset))


class TestCalls:
    def test_jal_ra_is_call(self):
        assert classify(jal(1)) is CfKind.CALL

    def test_jal_t0_is_call(self):
        """x5 is an ABI alternate link register."""
        assert classify(jal(5)) is CfKind.CALL

    def test_jalr_ra_is_call(self):
        assert classify(jalr(1, 10)) is CfKind.CALL

    def test_jalr_ra_from_ra_is_call(self):
        """Co-routine style jalr ra, ra is a call per the ABI table."""
        assert classify(jalr(1, 1)) is CfKind.CALL

    def test_is_call_helper(self):
        assert is_call(jal(1))
        assert not is_call(jal(0))


class TestReturns:
    def test_jalr_zero_ra_is_return(self):
        assert classify(jalr(0, 1)) is CfKind.RETURN

    def test_jalr_zero_t0_is_return(self):
        assert classify(jalr(0, 5)) is CfKind.RETURN

    def test_compressed_ret(self):
        insn = decode(0x8082, xlen=32)  # c.jr ra
        assert classify(insn) is CfKind.RETURN

    def test_is_return_helper(self):
        assert is_return(jalr(0, 1))
        assert not is_return(jalr(0, 10))


class TestIndirectJumps:
    def test_jalr_zero_other_is_indirect(self):
        assert classify(jalr(0, 10)) is CfKind.INDIRECT_JUMP

    def test_jalr_writing_non_link_is_indirect(self):
        assert classify(jalr(6, 10)) is CfKind.INDIRECT_JUMP

    def test_is_indirect_helper(self):
        assert is_indirect_jump(jalr(0, 10))
        assert not is_indirect_jump(jalr(0, 1))


class TestNonCfiTransfers:
    def test_jal_zero_is_direct_jump(self):
        assert classify(jal(0)) is CfKind.DIRECT_JUMP
        assert not classify(jal(0)).cfi_relevant

    def test_branch_not_cfi_relevant(self):
        insn = decode(0x00208463)  # beq
        assert classify(insn) is CfKind.BRANCH
        assert not classify(insn).cfi_relevant

    def test_alu_is_none(self):
        insn = decode(0x02A00093)  # addi
        assert classify(insn) is CfKind.NONE
        assert not is_control_flow(insn)


class TestCfiRelevance:
    """Exactly {call, return, indirect-jump} is streamed to the RoT."""

    def test_relevant_set(self):
        assert CfKind.CALL.cfi_relevant
        assert CfKind.RETURN.cfi_relevant
        assert CfKind.INDIRECT_JUMP.cfi_relevant
        assert not CfKind.DIRECT_JUMP.cfi_relevant
        assert not CfKind.BRANCH.cfi_relevant
        assert not CfKind.NONE.cfi_relevant

    def test_helper_matches_enum(self):
        for insn in (jal(1), jalr(0, 1), jalr(0, 10), jal(0)):
            assert is_cfi_relevant(insn) == classify(insn).cfi_relevant


class TestClassifyWord:
    """classify_word is the firmware-side parse of the commit-log encoding."""

    def test_matches_instruction_classification(self):
        for word in (0x00008067, 0x008000EF, 0x00208463):
            assert classify_word(word) == classify(decode(word))

    def test_never_raises_on_garbage(self):
        assert classify_word(0xFFFFFFFF) is CfKind.NONE
        assert classify_word(0x0000007B) is CfKind.NONE


class TestExpectedReturnAddress:
    def test_call_pushes_pc_plus_4(self):
        assert expected_return_address(jal(1), 0x1000) == 0x1004

    def test_compressed_call_pushes_pc_plus_2(self):
        insn = decode(0x9082, xlen=32)  # c.jalr ra
        assert expected_return_address(insn, 0x1000) == 0x1002

    def test_non_call_returns_none(self):
        assert expected_return_address(jalr(0, 1), 0x1000) is None
