"""Tests for the control-flow classifier — the CFI filter's decision rules."""

import pytest

from repro.isa.cflow import (
    CfKind,
    classify,
    classify_word,
    expected_return_address,
    is_call,
    is_cfi_relevant,
    is_control_flow,
    is_indirect_jump,
    is_return,
)
from repro.isa.decode import decode
from repro.isa.encode import encode_i, encode_j
from repro.isa import opcodes as op


def jal(rd, offset=0):
    return decode(encode_j(op.OP_JAL, rd, offset))


def jalr(rd, rs1, offset=0):
    return decode(encode_i(op.OP_JALR, 0, rd, rs1, offset))


class TestCalls:
    def test_jal_ra_is_call(self):
        assert classify(jal(1)) is CfKind.CALL

    def test_jal_t0_is_call(self):
        """x5 is an ABI alternate link register."""
        assert classify(jal(5)) is CfKind.CALL

    def test_jalr_ra_is_call(self):
        assert classify(jalr(1, 10)) is CfKind.CALL

    def test_jalr_ra_from_ra_is_call(self):
        """Co-routine style jalr ra, ra is a call per the ABI table."""
        assert classify(jalr(1, 1)) is CfKind.CALL

    def test_is_call_helper(self):
        assert is_call(jal(1))
        assert not is_call(jal(0))


class TestReturns:
    def test_jalr_zero_ra_is_return(self):
        assert classify(jalr(0, 1)) is CfKind.RETURN

    def test_jalr_zero_t0_is_return(self):
        assert classify(jalr(0, 5)) is CfKind.RETURN

    def test_compressed_ret(self):
        insn = decode(0x8082, xlen=32)  # c.jr ra
        assert classify(insn) is CfKind.RETURN

    def test_is_return_helper(self):
        assert is_return(jalr(0, 1))
        assert not is_return(jalr(0, 10))


class TestIndirectJumps:
    def test_jalr_zero_other_is_indirect(self):
        assert classify(jalr(0, 10)) is CfKind.INDIRECT_JUMP

    def test_jalr_writing_non_link_is_indirect(self):
        assert classify(jalr(6, 10)) is CfKind.INDIRECT_JUMP

    def test_is_indirect_helper(self):
        assert is_indirect_jump(jalr(0, 10))
        assert not is_indirect_jump(jalr(0, 1))


class TestNonCfiTransfers:
    def test_jal_zero_is_direct_jump(self):
        assert classify(jal(0)) is CfKind.DIRECT_JUMP
        assert not classify(jal(0)).cfi_relevant

    def test_branch_not_cfi_relevant(self):
        insn = decode(0x00208463)  # beq
        assert classify(insn) is CfKind.BRANCH
        assert not classify(insn).cfi_relevant

    def test_alu_is_none(self):
        insn = decode(0x02A00093)  # addi
        assert classify(insn) is CfKind.NONE
        assert not is_control_flow(insn)


class TestCfiRelevance:
    """Exactly {call, return, indirect-jump} is streamed to the RoT."""

    def test_relevant_set(self):
        assert CfKind.CALL.cfi_relevant
        assert CfKind.RETURN.cfi_relevant
        assert CfKind.INDIRECT_JUMP.cfi_relevant
        assert not CfKind.DIRECT_JUMP.cfi_relevant
        assert not CfKind.BRANCH.cfi_relevant
        assert not CfKind.NONE.cfi_relevant

    def test_helper_matches_enum(self):
        for insn in (jal(1), jalr(0, 1), jalr(0, 10), jal(0)):
            assert is_cfi_relevant(insn) == classify(insn).cfi_relevant


class TestClassifyWord:
    """classify_word is the firmware-side parse of the commit-log encoding."""

    def test_matches_instruction_classification(self):
        for word in (0x00008067, 0x008000EF, 0x00208463):
            assert classify_word(word) == classify(decode(word))

    def test_never_raises_on_garbage(self):
        assert classify_word(0xFFFFFFFF) is CfKind.NONE
        assert classify_word(0x0000007B) is CfKind.NONE


class TestExpectedReturnAddress:
    def test_call_pushes_pc_plus_4(self):
        assert expected_return_address(jal(1), 0x1000) == 0x1004

    def test_compressed_call_pushes_pc_plus_2(self):
        insn = decode(0x9082, xlen=32)  # c.jalr ra
        assert expected_return_address(insn, 0x1000) == 0x1002

    def test_non_call_returns_none(self):
        assert expected_return_address(jalr(0, 1), 0x1000) is None


# --------------------------------------------------------------------------
# Static program analysis (the synthesis oracle's foundation)
# --------------------------------------------------------------------------

import random

from repro.campaign.runner import capture_commit_logs
from repro.campaign.spec import VICTIMS
from repro.isa.cflow import (
    cfi_sites,
    direct_call_targets,
    indirect_sites,
    scan_program,
)
from repro.system.addresses import AddressMap

_ADDRESSES = AddressMap()
_STATIC_VICTIMS = sorted(
    name for name, spec in VICTIMS.items() if not spec.synthetic
)


def _program(victim, seed=1):
    return VICTIMS[victim].builder(_ADDRESSES, random.Random(seed))


class TestStaticScan:
    """Linear-sweep analysis over every registered victim program."""

    @pytest.mark.parametrize("victim", _STATIC_VICTIMS)
    def test_dynamic_events_are_a_subset_of_static_sites(self, victim):
        """Every commit log the filter captures must correspond to a
        statically discovered site with the identical classification."""
        program = _program(victim)
        by_pc = {site.pc: site for site in scan_program(program)}
        logs, _hart = capture_commit_logs(program, _ADDRESSES)
        assert logs
        for log in logs:
            site = by_pc[log.pc]
            assert site.kind is log.kind, (victim, hex(log.pc))
            assert site.kind.cfi_relevant

    @pytest.mark.parametrize("victim", _STATIC_VICTIMS)
    def test_cfi_sites_cover_the_dynamic_stream(self, victim):
        program = _program(victim)
        static_pcs = {site.pc for site in cfi_sites(program)}
        logs, _hart = capture_commit_logs(program, _ADDRESSES)
        assert {log.pc for log in logs} <= static_pcs

    @pytest.mark.parametrize("victim", _STATIC_VICTIMS)
    def test_call_return_pairing_is_statically_visible(self, victim):
        """Walking the dynamic stream with a stack of static
        fall-throughs pairs every benign return with its call; the
        attack victims break pairing exactly at their corrupted edge."""
        program = _program(victim)
        logs, _hart = capture_commit_logs(program, _ADDRESSES)
        stack = []
        mismatches = 0
        for log in logs:
            if log.kind is CfKind.CALL:
                stack.append(log.next_address)
            elif log.kind is CfKind.RETURN:
                if not stack or stack.pop() != log.target:
                    mismatches += 1
        attack = VICTIMS[victim].attack
        if attack in ("rop", "ret-to-callsite"):
            assert mismatches >= 1, victim
        else:
            assert mismatches == 0, victim

    def test_indirect_target_extraction(self):
        """The jop dispatcher's indirect jump and the hijacked call are
        found statically, with no static target (register-indirect)."""
        program = _program("jop")
        sites = indirect_sites(program)
        assert sites
        assert all(site.target is None for site in sites)
        assert any(site.kind is CfKind.INDIRECT_JUMP for site in sites)
        hijack = indirect_sites(_program("call-hijack"))
        assert any(site.kind is CfKind.CALL for site in hijack)

    def test_direct_call_targets_resolve_to_symbols(self):
        """Immediate-encoded call targets land on known function labels."""
        program = _program("benign")
        targets = direct_call_targets(program)
        assert program.symbols["square"] in targets
        assert program.symbols["identity"] in targets

    def test_fall_through_matches_link_value(self):
        program = _program("benign")
        for site in cfi_sites(program):
            if site.kind is CfKind.CALL:
                assert site.fall_through == site.pc + 4

    def test_scan_skips_data_gracefully(self):
        """Garbage words (data, padding) never raise and never classify."""
        from repro.isa.cflow import iter_sites

        blob = b"\xff\xff\xff\xff" + b"\x00" * 8 + (0x00008067).to_bytes(4, "little")
        sites = list(iter_sites(blob, 0x1000))
        assert [s.kind for s in sites] == [CfKind.RETURN]
        assert sites[0].pc == 0x100C
