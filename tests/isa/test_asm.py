"""Assembler tests: syntax, pseudo-instructions, symbols, directives."""

import pytest

from repro.errors import AssemblerError
from repro.isa.asm import Assembler, assemble
from repro.isa.decode import decode
from repro.isa.disasm import disassemble


def words(program):
    """Decode an assembled image back into instruction words."""
    return [
        int.from_bytes(program.data[i : i + 4], "little")
        for i in range(0, len(program.data), 4)
    ]


class TestBasicSyntax:
    def test_single_instruction(self):
        program = assemble("addi a0, zero, 5")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "addi"
        assert insn.imm == 5

    def test_comments_stripped(self):
        program = assemble(
            """
            addi a0, zero, 1   # hash comment
            addi a1, zero, 2   // slash comment
            addi a2, zero, 3   ; semicolon comment
            """
        )
        assert len(program.data) == 12

    def test_hex_immediates(self):
        program = assemble("addi a0, zero, 0x7f")
        assert decode(words(program)[0], xlen=32).imm == 0x7F

    def test_negative_immediates(self):
        program = assemble("addi a0, zero, -3")
        assert decode(words(program)[0], xlen=32).imm == -3

    def test_unknown_mnemonic_raises_with_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus a0, a1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")


class TestLabels:
    def test_forward_reference(self):
        program = assemble(
            """
            j end
            nop
            end: nop
            """
        )
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "jal"
        assert insn.imm == 8

    def test_backward_reference(self):
        program = assemble(
            """
            top: nop
            j top
            """
        )
        insn = decode(words(program)[1], xlen=32)
        assert insn.imm == -4

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_label_with_instruction_on_same_line(self):
        program = assemble("entry: addi a0, zero, 1")
        assert program.symbols["entry"] == 0

    def test_unknown_symbol(self):
        with pytest.raises(AssemblerError, match="unknown symbol"):
            assemble("j nowhere")

    def test_symbol_arithmetic(self):
        program = assemble(
            """
            .org 0x100
            table: .word 1, 2, 3
            load: lw a0, table+4(zero)
            """
        )
        insn = decode(words_at(program, program.symbols["load"]), xlen=32)
        assert insn.imm == 0x104


def words_at(program, address):
    offset = address - program.base
    return int.from_bytes(program.data[offset : offset + 4], "little")


class TestMemoryOperands:
    def test_load_offset(self):
        program = assemble("lw a0, 8(sp)")
        insn = decode(words(program)[0], xlen=32)
        assert insn.rs1 == 2
        assert insn.imm == 8

    def test_store(self):
        program = assemble("sw a0, -4(s0)")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "sw"
        assert insn.imm == -4

    def test_bare_parens_default_zero_offset(self):
        program = assemble("lw a0, (sp)")
        assert decode(words(program)[0], xlen=32).imm == 0


class TestPseudoInstructions:
    def test_nop(self):
        program = assemble("nop")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "addi" and insn.rd == 0

    def test_li_small(self):
        program = assemble("li a0, 100")
        assert len(program.data) == 4

    def test_li_large_two_instructions(self):
        program = assemble("li a0, 0x12345")
        assert len(program.data) == 8
        first, second = (decode(w, xlen=32) for w in words(program))
        assert first.mnemonic == "lui"
        assert second.mnemonic == "addi"

    def test_li_large_value_correct(self):
        # Value with the sign-extension carry case: low 12 bits >= 0x800.
        program = assemble("li a0, 0x12801")
        first, second = (decode(w, xlen=32) for w in words(program))
        value = ((first.imm << 12) + second.imm) & 0xFFFFFFFF
        assert value == 0x12801

    def test_la_symbol(self):
        program = assemble(
            """
            la a0, data
            .org 0x800
            data: .word 7
            """
        )
        first, second = (decode(w, xlen=32) for w in words(program)[:2])
        assert ((first.imm << 12) + second.imm) == 0x800

    def test_mv(self):
        program = assemble("mv a1, a0")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "addi" and insn.imm == 0

    def test_ret(self):
        program = assemble("ret")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "jalr"
        assert insn.rd == 0 and insn.rs1 == 1

    def test_call(self):
        program = assemble("call f\nf: nop")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "jal" and insn.rd == 1

    def test_beqz(self):
        program = assemble("beqz a0, out\nout: nop")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "beq" and insn.rs2 == 0

    def test_bgt_swaps_operands(self):
        program = assemble("bgt a0, a1, out\nout: nop")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "blt"
        assert insn.rs1 == 11 and insn.rs2 == 10

    def test_csrr(self):
        program = assemble("csrr a0, mcause")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "csrrs"
        assert insn.csr == 0x342

    def test_csrw_named(self):
        program = assemble("csrw mtvec, a0")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "csrrw"
        assert insn.csr == 0x305

    def test_csrsi(self):
        program = assemble("csrsi mstatus, 8")
        insn = decode(words(program)[0], xlen=32)
        assert insn.mnemonic == "csrrsi"
        assert insn.imm == 8


class TestDirectives:
    def test_org_pads(self):
        program = assemble(".org 0x10\nnop", base=0)
        assert len(program.data) == 0x14
        assert program.data[:0x10] == bytes(0x10)

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n.org 0x0")

    def test_word_little_endian(self):
        program = assemble(".word 0x11223344")
        assert program.data == bytes([0x44, 0x33, 0x22, 0x11])

    def test_multiple_words(self):
        program = assemble(".word 1, 2")
        assert len(program.data) == 8

    def test_align(self):
        program = assemble("nop\n.align 4\nmarker: nop")
        assert program.symbols["marker"] == 16

    def test_space(self):
        program = assemble(".space 12\nx: nop")
        assert program.symbols["x"] == 12

    def test_equ(self):
        # A symbolic li conservatively expands to lui+addi; the combined
        # value must equal the .equ constant.
        program = assemble(".equ MAGIC, 0x55\nli a0, MAGIC")
        first, second = (decode(w, xlen=32) for w in words(program))
        assert ((first.imm << 12) + second.imm) == 0x55

    def test_region_tracking(self):
        program = assemble(
            """
            .region irq
            nop
            nop
            .region cfi
            work: nop
            """
        )
        assert program.region_at(0) == "irq"
        assert program.region_at(4) == "irq"
        assert program.region_at(program.symbols["work"]) == "cfi"

    def test_region_before_any_is_none(self):
        program = assemble("nop\n.region tail\nnop")
        assert program.region_at(0) is None

    def test_asciz(self):
        program = assemble('.asciz "ok"')
        assert program.data == b"ok\x00"


class TestHiLoRelocations:
    def test_hi_lo_reconstruct_address(self):
        program = assemble(
            """
            lui a0, %hi(target)
            addi a0, a0, %lo(target)
            .org 0xABC0
            target: nop
            """
        )
        first, second = (decode(w, xlen=32) for w in words(program)[:2])
        assert ((first.imm << 12) + second.imm) & 0xFFFFFFFF == 0xABC0

    def test_hi_compensates_sign_extension(self):
        program = assemble(
            """
            lui a0, %hi(target)
            addi a0, a0, %lo(target)
            .org 0x1800
            target: nop
            """
        )
        first, second = (decode(w, xlen=32) for w in words(program)[:2])
        assert ((first.imm << 12) + second.imm) & 0xFFFFFFFF == 0x1800


class TestRv64Assembly:
    def test_ld_sd(self):
        asm = Assembler(xlen=64)
        program = asm.assemble("ld a0, 0(sp)\nsd a0, 8(sp)")
        first, second = (decode(w, xlen=64) for w in [
            int.from_bytes(program.data[0:4], "little"),
            int.from_bytes(program.data[4:8], "little"),
        ])
        assert first.mnemonic == "ld"
        assert second.mnemonic == "sd"

    def test_rv64_only_rejected_on_rv32(self):
        with pytest.raises(AssemblerError, match="RV64-only"):
            assemble("ld a0, 0(sp)", xlen=32)

    def test_addiw(self):
        program = Assembler(xlen=64).assemble("addiw a0, a0, 1")
        insn = decode(int.from_bytes(program.data[:4], "little"), xlen=64)
        assert insn.mnemonic == "addiw"


class TestLineMap:
    def test_addresses_map_to_source_lines(self):
        program = assemble("nop\nnop\nfin: nop")
        assert program.line_map[0] == 1
        assert program.line_map[4] == 2
        assert program.line_map[8] == 3


class TestDisassemblerIntegration:
    def test_roundtrip_through_text(self):
        source_lines = [
            "addi a0, zero, 42",
            "add a1, a0, a0",
            "lw a2, 4(sp)",
            "sw a2, 8(sp)",
            "beq a0, a1, 8",
            "jal ra, 8",
            "jalr zero, 0(ra)",
            "lui a3, 0x12",
            "csrrw zero, 0x305, a0",
            "mret",
        ]
        program = assemble("\n".join(source_lines))
        for i, line in enumerate(source_lines):
            word = int.from_bytes(program.data[i * 4 : i * 4 + 4], "little")
            text = disassemble(decode(word, xlen=32))
            reassembled = assemble(text)
            assert reassembled.data[:4] == program.data[i * 4 : i * 4 + 4]
