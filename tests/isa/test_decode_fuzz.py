"""Decoder robustness: exhaustive compressed sweep + random 32-bit fuzz.

The firmware parses attacker-influenced encodings (a commit log's
instruction field after memory corruption could be anything), so the
decode path must never crash — it either returns a consistent
Instruction or raises DecodeError.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError
from repro.isa.cflow import classify_word
from repro.isa.decode import decode, is_compressed_word


class TestExhaustiveCompressedSweep:
    """All 3 × 2^13 compressed encodings, both XLENs."""

    @pytest.mark.parametrize("xlen", [32, 64])
    def test_every_halfword_decodes_or_raises(self, xlen):
        decoded = 0
        for hword in range(0x10000):
            if not is_compressed_word(hword):
                continue
            try:
                insn = decode(hword, xlen=xlen)
            except DecodeError:
                continue
            decoded += 1
            # Consistency: expansion is a legal 32-bit encoding whose
            # fields match the compressed decode.
            assert insn.length == 2
            assert insn.compressed_mnemonic is not None
            expanded = decode(insn.expanded, xlen=xlen)
            assert expanded.mnemonic == insn.mnemonic
            assert expanded.rd == insn.rd
            assert expanded.rs1 == insn.rs1
            assert expanded.rs2 == insn.rs2
            assert expanded.imm == insn.imm
        # A healthy fraction of the space must be valid.
        assert decoded > 10_000

    def test_rv64_accepts_more_loads_than_rv32(self):
        """c.ld/c.sd exist only on RV64."""
        def count(xlen):
            total = 0
            for hword in range(0x10000):
                if not is_compressed_word(hword):
                    continue
                try:
                    decode(hword, xlen=xlen)
                    total += 1
                except DecodeError:
                    pass
            return total

        assert count(64) > count(32)


class TestRandomWordFuzz:
    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=500)
    def test_decode_never_crashes(self, word):
        for xlen in (32, 64):
            try:
                insn = decode(word, xlen=xlen)
            except DecodeError:
                continue
            assert insn.mnemonic
            assert insn.length in (2, 4)

    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=500)
    def test_classify_word_total(self, word):
        """classify_word is total — the firmware-side guarantee."""
        kind = classify_word(word)
        assert kind is not None
