"""Decoder unit tests against hand-checked encodings.

Reference words were cross-checked against the RISC-V unprivileged spec
encoding tables.
"""

import pytest

from repro.errors import DecodeError
from repro.isa.decode import decode, instruction_length, is_compressed_word


class TestBaseInteger:
    def test_addi(self):
        insn = decode(0x02A00093)  # addi x1, x0, 42
        assert insn.mnemonic == "addi"
        assert insn.rd == 1
        assert insn.rs1 == 0
        assert insn.imm == 42
        assert insn.length == 4
        assert not insn.compressed

    def test_addi_negative_imm(self):
        insn = decode(0xFFF00093)  # addi x1, x0, -1
        assert insn.imm == -1

    def test_lui(self):
        insn = decode(0x000120B7)  # lui x1, 0x12
        assert insn.mnemonic == "lui"
        assert insn.rd == 1
        assert insn.imm == 0x12

    def test_lui_negative(self):
        insn = decode(0xFFFFF0B7)  # lui x1, 0xfffff
        assert insn.imm == -1

    def test_auipc(self):
        insn = decode(0x00001097)  # auipc x1, 1
        assert insn.mnemonic == "auipc"
        assert insn.imm == 1

    def test_jal(self):
        insn = decode(0x008000EF)  # jal ra, +8
        assert insn.mnemonic == "jal"
        assert insn.rd == 1
        assert insn.imm == 8

    def test_jal_negative_offset(self):
        insn = decode(0xFF9FF06F)  # jal x0, -8
        assert insn.rd == 0
        assert insn.imm == -8

    def test_jalr(self):
        insn = decode(0x00008067)  # jalr x0, 0(ra) == ret
        assert insn.mnemonic == "jalr"
        assert insn.rd == 0
        assert insn.rs1 == 1
        assert insn.imm == 0

    def test_branch(self):
        insn = decode(0x00208463)  # beq x1, x2, +8
        assert insn.mnemonic == "beq"
        assert insn.rs1 == 1
        assert insn.rs2 == 2
        assert insn.imm == 8

    def test_branch_negative(self):
        insn = decode(0xFE209EE3)  # bne x1, x2, -4
        assert insn.mnemonic == "bne"
        assert insn.imm == -4

    def test_loads(self):
        insn = decode(0x0040A103)  # lw x2, 4(x1)
        assert insn.mnemonic == "lw"
        assert insn.rd == 2
        assert insn.rs1 == 1
        assert insn.imm == 4

    def test_store(self):
        insn = decode(0x0020A223)  # sw x2, 4(x1)
        assert insn.mnemonic == "sw"
        assert insn.rs1 == 1
        assert insn.rs2 == 2
        assert insn.imm == 4

    def test_register_alu(self):
        insn = decode(0x002081B3)  # add x3, x1, x2
        assert insn.mnemonic == "add"
        assert (insn.rd, insn.rs1, insn.rs2) == (3, 1, 2)

    def test_sub(self):
        insn = decode(0x402081B3)  # sub x3, x1, x2
        assert insn.mnemonic == "sub"

    def test_srai_rv64_shamt(self):
        insn = decode(0x43D0D093, xlen=64)  # srai x1, x1, 61
        assert insn.mnemonic == "srai"
        assert insn.imm == 61

    def test_rv32_rejects_64bit_shift(self):
        with pytest.raises(DecodeError):
            decode(0x42D0D093, xlen=32)  # srai with shamt 45 (bit 25 set)


class TestRv64:
    def test_ld(self):
        insn = decode(0x0080B103, xlen=64)  # ld x2, 8(x1)
        assert insn.mnemonic == "ld"

    def test_ld_rejected_on_rv32(self):
        with pytest.raises(DecodeError):
            decode(0x0080B103, xlen=32)

    def test_sd(self):
        insn = decode(0x0020B423, xlen=64)  # sd x2, 8(x1)
        assert insn.mnemonic == "sd"

    def test_addiw(self):
        insn = decode(0x0050809B, xlen=64)  # addiw x1, x1, 5
        assert insn.mnemonic == "addiw"
        assert insn.imm == 5

    def test_addw(self):
        insn = decode(0x002080BB, xlen=64)  # addw x1, x1, x2
        assert insn.mnemonic == "addw"

    def test_op32_rejected_on_rv32(self):
        with pytest.raises(DecodeError):
            decode(0x002080BB, xlen=32)


class TestMExtension:
    def test_mul(self):
        insn = decode(0x022081B3)  # mul x3, x1, x2
        assert insn.mnemonic == "mul"

    def test_div(self):
        insn = decode(0x0220C1B3)  # div x3, x1, x2
        assert insn.mnemonic == "div"

    def test_remu(self):
        insn = decode(0x0220F1B3)  # remu x3, x1, x2
        assert insn.mnemonic == "remu"

    def test_mulw_rv64(self):
        insn = decode(0x022081BB, xlen=64)  # mulw x3, x1, x2
        assert insn.mnemonic == "mulw"


class TestSystem:
    def test_ecall(self):
        assert decode(0x00000073).mnemonic == "ecall"

    def test_ebreak(self):
        assert decode(0x00100073).mnemonic == "ebreak"

    def test_mret(self):
        assert decode(0x30200073).mnemonic == "mret"

    def test_wfi(self):
        assert decode(0x10500073).mnemonic == "wfi"

    def test_csrrw(self):
        insn = decode(0x30509073)  # csrrw x0, mtvec, x1
        assert insn.mnemonic == "csrrw"
        assert insn.csr == 0x305
        assert insn.rs1 == 1

    def test_csrrsi(self):
        insn = decode(0x3004E073)  # csrrsi x0, mstatus, 9
        assert insn.mnemonic == "csrrsi"
        assert insn.imm == 9

    def test_fence(self):
        assert decode(0x0FF0000F).mnemonic == "fence"


class TestErrors:
    def test_unknown_major_opcode(self):
        with pytest.raises(DecodeError):
            decode(0x0000007B)

    def test_bad_xlen(self):
        with pytest.raises(ValueError):
            decode(0x13, xlen=16)

    def test_decode_error_carries_word(self):
        try:
            decode(0x0000007B)
        except DecodeError as exc:
            assert exc.word == 0x0000007B


class TestLengthHelpers:
    def test_compressed_detection(self):
        assert is_compressed_word(0x0001)
        assert not is_compressed_word(0x00000013)

    def test_lengths(self):
        assert instruction_length(0x8082) == 2
        assert instruction_length(0x00000013) == 4
