"""The module-level decode cache: hits, normalisation, error handling."""

import importlib

import pytest

from repro.errors import DecodeError
from repro.isa.asm import assemble

decode_mod = importlib.import_module("repro.isa.decode")
from repro.isa.decode import (
    clear_decode_cache,
    decode,
    decode_cache_size,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_decode_cache()
    yield
    clear_decode_cache()


class TestDecodeCache:
    def test_hit_returns_same_instance(self):
        word = 0x00A50513  # addi a0, a0, 10
        first = decode(word, xlen=32)
        second = decode(word, xlen=32)
        assert first is second

    def test_xlen_keys_are_distinct(self):
        word = 0x00A50513
        assert decode(word, xlen=32) is not decode(word, xlen=64)

    def test_high_bits_normalised_for_compressed(self):
        # c.nop = 0x0001; a fetch may carry garbage in bits 16..31.
        assert decode(0x0001, xlen=32) is decode(0xFFFF0001, xlen=32)
        assert decode(0x0001, xlen=32).raw == 0x0001

    def test_errors_not_cached(self):
        with pytest.raises(DecodeError):
            decode(0x0000, xlen=32)
        assert decode_cache_size() == 0
        with pytest.raises(DecodeError):
            decode(0x0000, xlen=32)

    def test_limit_clears_instead_of_growing(self):
        decode(0x00A50513, xlen=32)
        old_limit = decode_mod.DECODE_CACHE_LIMIT
        decode_mod.DECODE_CACHE_LIMIT = decode_cache_size()
        try:
            decode(0x00B50513, xlen=32)  # trips the limit -> clear + insert
            assert decode_cache_size() == 1
        finally:
            decode_mod.DECODE_CACHE_LIMIT = old_limit

    def test_cached_decode_equals_fresh_decode(self):
        program = assemble(
            """
            main:
                addi a0, zero, 3
                slli a1, a0, 2
                beq  a0, a1, main
                jal  ra, main
            """,
            xlen=32,
        )
        words = [
            int.from_bytes(program.data[i : i + 4], "little")
            for i in range(0, len(program.data), 4)
        ]
        first = [decode(w, xlen=32) for w in words]
        second = [decode(w, xlen=32) for w in words]
        assert first == second
        assert all(a is b for a, b in zip(first, second))
