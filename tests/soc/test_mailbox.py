"""Mailbox tests: register file, doorbell/completion protocol, verdicts."""

import pytest

from repro.errors import AccessFault, ProtocolError
from repro.soc.mailbox import (
    VERDICT_OK,
    VERDICT_VIOLATION,
    CfiMailbox,
    Mailbox,
    MailboxLayout,
)


class TestLayout:
    def test_default_geometry(self):
        layout = MailboxLayout()
        assert layout.data_bytes == 32
        assert layout.doorbell_offset == 32
        assert layout.completion_offset == 40
        assert layout.status_offset == 48
        assert layout.total_bytes == 56

    def test_cfi_mailbox_holds_commit_log(self):
        mailbox = CfiMailbox()
        assert mailbox.layout.data_bytes * 8 >= CfiMailbox.COMMIT_LOG_BITS


class TestRegisterFile:
    def test_data_rw(self):
        mailbox = Mailbox()
        mailbox.write(0, 8, 0x1122334455667788)
        assert mailbox.read(0, 8) == 0x1122334455667788

    def test_data_partial_width(self):
        mailbox = Mailbox()
        mailbox.write(4, 2, 0xBEEF)
        assert mailbox.read(4, 2) == 0xBEEF

    def test_read_crossing_data_file_faults(self):
        mailbox = Mailbox()
        with pytest.raises(AccessFault):
            mailbox.read(mailbox.layout.data_bytes - 2, 4)

    def test_unknown_offset_faults(self):
        mailbox = Mailbox()
        with pytest.raises(AccessFault):
            mailbox.read(mailbox.layout.total_bytes + 8, 4)

    def test_status_read_only(self):
        mailbox = Mailbox()
        with pytest.raises(AccessFault, match="read-only"):
            mailbox.write(mailbox.layout.status_offset, 4, 1)


class TestDoorbellProtocol:
    def test_doorbell_fires_callback(self):
        fired = []
        mailbox = Mailbox(on_doorbell=lambda: fired.append(True))
        mailbox.write(mailbox.layout.doorbell_offset, 4, 1)
        assert fired == [True]
        assert mailbox.doorbell_pending

    def test_double_ring_is_protocol_error(self):
        mailbox = Mailbox()
        mailbox.write(mailbox.layout.doorbell_offset, 4, 1)
        with pytest.raises(ProtocolError):
            mailbox.write(mailbox.layout.doorbell_offset, 4, 1)

    def test_write_zero_clears(self):
        mailbox = Mailbox()
        mailbox.write(mailbox.layout.doorbell_offset, 4, 1)
        mailbox.write(mailbox.layout.doorbell_offset, 4, 0)
        assert not mailbox.doorbell_pending

    def test_status_reflects_flags(self):
        mailbox = Mailbox()
        mailbox.write(mailbox.layout.doorbell_offset, 4, 1)
        assert mailbox.read(mailbox.layout.status_offset, 4) == 0b01
        mailbox.write(mailbox.layout.completion_offset, 4, 1)
        assert mailbox.read(mailbox.layout.status_offset, 4) == 0b11


class TestCompletionWire:
    def test_completion_fires_callback(self):
        fired = []
        mailbox = Mailbox(on_completion=lambda: fired.append(True))
        mailbox.write(mailbox.layout.completion_offset, 4, 1)
        assert fired == [True]


class TestHandshakeHelpers:
    def test_deposit_collect_respond_result(self):
        mailbox = CfiMailbox()
        payload = bytes(range(28)) + bytes(4)
        mailbox.deposit(payload)
        assert not mailbox.ready
        assert mailbox.collect()[: len(payload)] == payload
        mailbox.respond(VERDICT_VIOLATION)
        assert mailbox.ready
        assert mailbox.completion_pending
        assert mailbox.result() == VERDICT_VIOLATION

    def test_deposit_while_pending_rejected(self):
        mailbox = CfiMailbox()
        mailbox.deposit(b"\x01")
        with pytest.raises(ProtocolError):
            mailbox.deposit(b"\x02")

    def test_oversized_payload_rejected(self):
        mailbox = Mailbox()
        with pytest.raises(Exception):
            mailbox.deposit(bytes(mailbox.layout.data_bytes + 1))

    def test_respond_ok(self):
        mailbox = CfiMailbox()
        mailbox.deposit(b"\x01")
        mailbox.respond(VERDICT_OK)
        assert mailbox.result() == VERDICT_OK

    def test_counts(self):
        mailbox = CfiMailbox()
        for _ in range(3):
            mailbox.deposit(b"\x01")
            mailbox.respond(VERDICT_OK)
        assert mailbox.doorbell_count == 3
        assert mailbox.completion_count == 3
