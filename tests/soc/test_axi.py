"""AXI crossbar tests: routing, beat/latency accounting, PMP guarding."""

import pytest

from repro.errors import AccessFault
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.soc.axi import AxiTimings, AxiXbar
from repro.soc.pmp import IoPmp


def make_xbar(pmp=None, timings=None):
    bus = MemoryMap("soc")
    bus.add(0x8000_0000, Ram(0x1000, "dram"), name="dram")
    bus.add(0x4000_0000, Ram(0x100, "mbox"), name="mbox")
    return AxiXbar(bus, timings=timings, pmp=pmp)


class TestTimings:
    def test_single_beat(self):
        t = AxiTimings(address_latency=2, beat_latency=1, data_width_bits=64)
        assert t.transaction_cycles(8) == 3

    def test_multi_beat(self):
        t = AxiTimings(address_latency=2, beat_latency=1, data_width_bits=64)
        # 224-bit commit log padded to 32 bytes -> 4 beats (paper §IV-B3).
        assert t.beats_for(32) == 4
        assert t.transaction_cycles(32) == 6

    def test_sub_beat_rounds_up(self):
        t = AxiTimings(data_width_bits=64)
        assert t.beats_for(1) == 1
        assert t.beats_for(9) == 2


class TestRouting:
    def test_write_then_read(self):
        xbar = make_xbar()
        xbar.write("cva6", 0x8000_0010, b"\xde\xad\xbe\xef")
        data, _ = xbar.read("cva6", 0x8000_0010, 4)
        assert data == b"\xde\xad\xbe\xef"

    def test_int_convenience(self):
        xbar = make_xbar()
        xbar.write_int("cva6", 0x4000_0000, 8, 0x1122334455667788)
        value, _ = xbar.read_int("cva6", 0x4000_0000, 8)
        assert value == 0x1122334455667788

    def test_unmapped_faults(self):
        with pytest.raises(AccessFault):
            make_xbar().read("cva6", 0x9999_0000, 4)

    def test_wide_write_spans_beats(self):
        xbar = make_xbar()
        payload = bytes(range(32))
        cycles = xbar.write("cva6", 0x8000_0000, payload)
        data, _ = xbar.read("cva6", 0x8000_0000, 32)
        assert data == payload
        assert cycles == xbar.timings.transaction_cycles(32)


class TestStats:
    def test_per_master_accounting(self):
        xbar = make_xbar()
        xbar.write("cva6", 0x8000_0000, b"12345678")
        xbar.read("opentitan", 0x8000_0000, 8)
        assert xbar.stats("cva6").writes == 1
        assert xbar.stats("cva6").written_bytes == 8
        assert xbar.stats("opentitan").reads == 1
        assert xbar.stats("cva6").reads == 0

    def test_cycles_accumulate(self):
        xbar = make_xbar()
        xbar.write("cva6", 0x8000_0000, b"x")
        xbar.write("cva6", 0x8000_0000, b"x")
        assert xbar.stats("cva6").cycles == 2 * xbar.timings.transaction_cycles(1)


class TestPmpIntegration:
    def test_allowed_master_passes(self):
        pmp = IoPmp()
        pmp.protect(0x4000_0000, 0x100, {"cva6", "opentitan"}, name="mbox-guard")
        xbar = make_xbar(pmp=pmp)
        xbar.write("cva6", 0x4000_0000, b"ok")

    def test_denied_master_faults(self):
        pmp = IoPmp()
        pmp.protect(0x4000_0000, 0x100, {"opentitan"}, name="mbox-guard")
        xbar = make_xbar(pmp=pmp)
        with pytest.raises(AccessFault, match="denied"):
            xbar.write("accelerator", 0x4000_0000, b"evil")
        assert pmp.faults == 1

    def test_unprotected_region_open(self):
        pmp = IoPmp()
        pmp.protect(0x4000_0000, 0x100, {"opentitan"})
        xbar = make_xbar(pmp=pmp)
        xbar.write("accelerator", 0x8000_0000, b"fine")
