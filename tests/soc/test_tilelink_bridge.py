"""TL-UL crossbar and TL2AXI bridge tests, incl. the paper's latencies."""

from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.soc.axi import AxiTimings, AxiXbar
from repro.soc.bridge import Tl2AxiBridge
from repro.soc.tilelink import TlulTimings, TlulXbar


class TestTlulXbar:
    def test_read_write(self):
        bus = MemoryMap("ot")
        bus.add(0x1000_0000, Ram(0x1000), latency=1, name="sram")
        xbar = TlulXbar(bus)
        xbar.write("ibex", 0x1000_0010, 4, 0xAA55)
        value, _ = xbar.read("ibex", 0x1000_0010, 4)
        assert value == 0xAA55

    def test_latency_includes_device(self):
        bus = MemoryMap("ot")
        bus.add(0, Ram(0x100), latency=1, name="sram")
        xbar = TlulXbar(bus, TlulTimings(request_latency=2, response_latency=2))
        _, cycles = xbar.read("ibex", 0, 4)
        # 2 (req) + 2 (rsp) + 1 (device) = 5: the paper's scratchpad cost.
        assert cycles == 5

    def test_optimized_interconnect_single_cycle(self):
        bus = MemoryMap("ot")
        bus.add(0, Ram(0x100), latency=1, name="sram")
        xbar = TlulXbar(bus, TlulTimings(request_latency=0, response_latency=0))
        _, cycles = xbar.read("ibex", 0, 4)
        assert cycles == 1

    def test_stats(self):
        bus = MemoryMap("ot")
        bus.add(0, Ram(0x100), name="sram")
        xbar = TlulXbar(bus)
        xbar.write("ibex", 0, 4, 1)
        xbar.read("ibex", 0, 4)
        stats = xbar.stats("ibex")
        assert stats.reads == 1 and stats.writes == 1


class TestBridge:
    def make(self, conversion=2):
        soc_map = MemoryMap("soc")
        soc_map.add(0x8000_0000, Ram(0x1000), name="dram")
        axi = AxiXbar(soc_map, AxiTimings(address_latency=2, beat_latency=1))
        bridge = Tl2AxiBridge(
            axi, window_base=0x8000_0000, window_size=0x1000,
            master="opentitan", conversion_latency=conversion,
        )
        return axi, bridge

    def test_forwarding(self):
        axi, bridge = self.make()
        bridge.write(0x10, 4, 0xBEEF)
        assert bridge.read(0x10, 4) == 0xBEEF
        # The data really lives in SoC DRAM:
        value, _ = axi.read_int("cva6", 0x8000_0010, 4)
        assert value == 0xBEEF

    def test_forwarded_traffic_uses_bridge_master(self):
        axi, bridge = self.make()
        bridge.write(0, 4, 1)
        assert axi.stats("opentitan").writes == 1

    def test_latency_composition(self):
        axi, bridge = self.make(conversion=2)
        bridge.read(0, 4)
        # AXI: 2 addr + 1 beat = 3; + 2 conversion = 5 on top of TL side.
        assert bridge.last_cycles == 5

    def test_forward_counter(self):
        _, bridge = self.make()
        bridge.write(0, 4, 1)
        bridge.read(0, 4)
        assert bridge.forwarded == 2
