"""PLIC tests: gateway, claim/complete, level semantics."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.soc.plic import Plic


class TestBasicFlow:
    def test_level_latches_pending(self):
        plic = Plic(4)
        plic.enable(2)
        plic.set_level(2, True)
        assert plic.pending(2)
        assert plic.irq_line

    def test_disabled_source_does_not_interrupt(self):
        plic = Plic(4)
        plic.set_level(2, True)
        assert not plic.irq_line

    def test_claim_returns_source_and_masks(self):
        plic = Plic(4)
        plic.enable(2)
        plic.set_level(2, True)
        assert plic.claim() == 2
        assert not plic.irq_line

    def test_claim_with_nothing_pending_returns_zero(self):
        assert Plic(4).claim() == 0

    def test_complete_relatches_if_level_high(self):
        plic = Plic(4)
        plic.enable(1)
        plic.set_level(1, True)
        plic.claim()
        plic.complete(1)
        assert plic.pending(1)  # line still high

    def test_complete_after_level_drop_stays_clear(self):
        plic = Plic(4)
        plic.enable(1)
        plic.set_level(1, True)
        plic.claim()
        plic.set_level(1, False)
        plic.complete(1)
        assert not plic.pending(1)


class TestPriorities:
    def test_highest_priority_claims_first(self):
        plic = Plic(4)
        for source in (1, 2):
            plic.enable(source)
            plic.set_level(source, True)
        plic.set_priority(2, 7)
        assert plic.claim() == 2

    def test_priority_zero_masks(self):
        plic = Plic(2)
        plic.enable(1)
        plic.set_priority(1, 0)
        plic.set_level(1, True)
        assert not plic.irq_line


class TestProtocolErrors:
    def test_complete_without_claim(self):
        plic = Plic(2)
        with pytest.raises(ProtocolError):
            plic.complete(1)

    def test_source_zero_invalid(self):
        plic = Plic(2)
        with pytest.raises(ConfigError):
            plic.enable(0)

    def test_source_out_of_range(self):
        plic = Plic(2)
        with pytest.raises(ConfigError):
            plic.set_level(3, True)

    def test_zero_sources_rejected(self):
        with pytest.raises(ConfigError):
            Plic(0)


class TestLevelSemantics:
    def test_drop_before_claim_clears_pending(self):
        plic = Plic(1)
        plic.enable(1)
        plic.set_level(1, True)
        plic.set_level(1, False)
        assert not plic.pending(1)

    def test_drop_during_service_keeps_claim_valid(self):
        plic = Plic(1)
        plic.enable(1)
        plic.set_level(1, True)
        assert plic.claim() == 1
        plic.set_level(1, False)
        plic.complete(1)
        assert not plic.pending(1)
