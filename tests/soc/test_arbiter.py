"""Doorbell arbitration of the shared CFI mailbox.

Unit-level: combinational idle grant, level-sensitive requests,
round-robin rotation on release, deterministic same-cycle ordering,
typed protocol errors.  System-level: fairness across symmetric harts,
three-engine identity of contended handshakes, and the interaction
with the existing transport faults (doorbell drop returns the grant,
doorbell dup redelivers under the same grant discipline).
"""

import random

import pytest

from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.errors import ConfigError, ProtocolError
from repro.faults import (
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FaultEvent,
    FaultPlan,
    attach_faults,
)
from repro.firmware.policies import ShadowStackPolicy
from repro.policyhost import mount_policy_host
from repro.soc.mailbox import DoorbellArbiter
from repro.system.sim import MODE_BATCHED, MODE_BUSY, MODE_EVENT, SystemSimulator
from repro.system.soc import build_soc
from repro.system.topology import Topology

MODES = (MODE_BUSY, MODE_EVENT, MODE_BATCHED)


class TestArbiterUnit:
    def test_needs_at_least_one_port(self):
        with pytest.raises(ConfigError):
            DoorbellArbiter(0)
        with pytest.raises(ConfigError):
            DoorbellArbiter("4")

    def test_idle_grant_is_combinational(self):
        arb = DoorbellArbiter(4)
        assert arb.acquire(2)
        assert arb.owner == 2
        assert arb.grants == [0, 0, 1, 0]

    def test_acquire_is_idempotent_for_owner(self):
        arb = DoorbellArbiter(2)
        assert arb.acquire(0)
        assert arb.acquire(0)
        assert arb.grants[0] == 1

    def test_contended_acquire_queues_request(self):
        arb = DoorbellArbiter(3)
        assert arb.acquire(0)
        assert not arb.acquire(1)
        assert arb.requesting(1)
        assert not arb.requesting(0)

    def test_release_rotates_to_next_requester(self):
        arb = DoorbellArbiter(4)
        arb.acquire(1)
        arb.acquire(0)
        arb.acquire(2)
        arb.release(1)
        # Scan starts after the releasing port: 2 wins over 0.
        assert arb.owner == 2
        assert not arb.requesting(2)
        assert arb.requesting(0)
        arb.release(2)
        assert arb.owner == 0

    def test_release_with_no_requests_idles_channel(self):
        arb = DoorbellArbiter(2)
        arb.acquire(1)
        arb.release(1)
        assert arb.owner is None

    def test_release_wraps_around(self):
        arb = DoorbellArbiter(4)
        arb.acquire(3)
        arb.acquire(1)
        arb.release(3)
        assert arb.owner == 1

    def test_same_cycle_ordering_is_port_order(self):
        """Writers tick in port order, so the lowest port's acquire
        lands first and wins an idle channel deterministically."""
        arb = DoorbellArbiter(4)
        for port in range(4):  # one cycle's ticks, in order
            arb.acquire(port)
        assert arb.owner == 0
        assert [arb.requesting(p) for p in range(4)] == [False, True, True, True]

    def test_sustained_contention_is_fair(self):
        arb = DoorbellArbiter(4)
        for port in range(4):
            arb.acquire(port)
        for _ in range(40):
            owner = arb.owner
            arb.release(owner)
            arb.acquire(owner)  # immediately re-request
        assert max(arb.grants) - min(arb.grants) <= 1

    def test_withdraw_drops_request(self):
        arb = DoorbellArbiter(2)
        arb.acquire(0)
        arb.acquire(1)
        arb.withdraw(1)
        arb.release(0)
        assert arb.owner is None

    def test_release_by_non_owner_rejected(self):
        arb = DoorbellArbiter(2)
        arb.acquire(0)
        with pytest.raises(ProtocolError):
            arb.release(1)

    def test_out_of_range_port_rejected(self):
        arb = DoorbellArbiter(2)
        with pytest.raises(ProtocolError):
            arb.acquire(2)
        with pytest.raises(ProtocolError):
            arb.release(-1)


def _build(victims, seed=1234, fault_plan=None, same_seed=False,
           defense=False):
    topo = Topology(n_harts=len(victims))
    soc = build_soc(
        cfi_config=TitanCfiConfig(raise_on_violation=False), topology=topo
    )
    for hart_id, victim in enumerate(victims):
        amap = topo.address_map(hart_id, soc.addresses)
        rng = random.Random(seed if same_seed else seed + hart_id)
        program = VICTIMS[victim].builder(amap, rng)
        soc.load_host_program(program, hart_id=hart_id)
    mount_policy_host(soc, ShadowStackPolicy(), defense=defense)
    if fault_plan is not None:
        attach_faults(soc, fault_plan)
    return soc


def _key(report):
    return (
        report.cycles,
        report.host_instructions,
        report.host_stall_cycles,
        report.detected,
        report.detection_latency,
        report.cfi,
        report.per_hart,
        report.faults,
    )


class TestArbitratedHandshakes:
    def test_symmetric_load_shares_grants_fairly(self):
        victims = ("deep-recursion",) * 4
        soc = _build(victims, same_seed=True)
        SystemSimulator(soc).run()
        grants = soc.doorbell_arbiter.grants
        assert all(g > 0 for g in grants)
        # Identical programs on identical harts: round robin keeps the
        # spread within a handful of handshakes.
        assert max(grants) - min(grants) <= 4

    def test_grants_match_logs_sent(self):
        soc = _build(("rop", "deep-recursion", "benign"))
        SystemSimulator(soc).run()
        for stage, grants in zip(soc.cfi_stages, soc.doorbell_arbiter.grants):
            assert stage.writer.stats.logs_sent == grants

    def test_uncontended_hart_sees_single_hart_timing(self):
        """One active hart + parked peers: detection latency must equal
        the historic single-hart number (combinational idle grant)."""
        single = build_soc(
            cfi_config=TitanCfiConfig(raise_on_violation=False)
        )
        program = VICTIMS["rop"].builder(single.addresses, random.Random(1234))
        single.load_host_program(program)
        mount_policy_host(single, ShadowStackPolicy())
        baseline = SystemSimulator(single).run()

        multi = _build(("rop", "benign"))
        report = SystemSimulator(multi).run()
        assert report.detection_latency == baseline.detection_latency

    @pytest.mark.parametrize("victims", [
        ("deep-recursion", "deep-recursion"),
        ("rop", "deep-recursion", "deep-recursion", "deep-recursion"),
    ])
    def test_contended_reports_identical_across_engines(self, victims):
        keys = [
            _key(SystemSimulator(_build(victims), mode=mode).run())
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]


class TestArbiterFairness:
    """A requester that never stops asking must not starve its peers:
    round-robin rotation bounds every port's wait at one full turn, and
    a holder that never *releases* is bounded by the monitor's hold
    watchdog (which force-releases and quarantines the squatter)."""

    def test_permanent_requester_cannot_starve_peers(self):
        arb = DoorbellArbiter(4)
        arb.acquire(0)           # greedy port wins the idle channel
        for port in (1, 2, 3):
            arb.acquire(port)    # peers queue behind it
        served = []
        for _ in range(8):
            owner = arb.owner
            served.append(owner)
            arb.release(owner)
            arb.acquire(0)       # the greedy port re-asserts instantly
        # Every peer is granted within one rotation — the greedy port
        # does not win again until the whole backlog has been served.
        assert served[:4] == [0, 1, 2, 3]

    def test_held_grant_is_watchdog_released_across_engines(self):
        from repro.faults import build_plan

        plan = build_plan("xhart-hold", 99).scoped(1)
        victims = ("rop", "deep-recursion")
        keys = []
        for mode in MODES:
            soc = _build(victims, fault_plan=plan, defense=True)
            report = SystemSimulator(soc, mode=mode).run()
            keys.append(_key(report))
            defense = soc.policy_host.defense.summary()
            assert defense["holds_released"] == 1
            assert soc.doorbell_arbiter.quarantined(1)
            # The peer hart's wait was bounded: its stream kept flowing
            # past the hold and completed every check, and its attack
            # still landed.
            peer = report.per_hart[0]
            assert peer["cfi"]["checks_completed"] == peer["cfi"]["logs_sent"] > 0
            assert report.detected
        assert keys[0] == keys[1] == keys[2]


class TestArbiterUnderTransportFaults:
    """Doorbell drop/dup faults target hart 0's writer; the grant
    discipline must stay deterministic and engine-invariant around
    them."""

    DROP = FaultPlan(
        events=(FaultEvent(kind=FAULT_DOORBELL_DROP, index=0, count=2),),
        note="drop hart 0's first two events",
    ).scoped(0)
    DUP = FaultPlan(
        events=(FaultEvent(kind=FAULT_DOORBELL_DUP, index=1, count=1),),
        note="redeliver hart 0's second event",
    ).scoped(0)

    @pytest.mark.parametrize("plan", [DROP, DUP], ids=["drop", "dup"])
    def test_faulted_reports_identical_across_engines(self, plan):
        victims = ("rop", "deep-recursion")
        keys = [
            _key(SystemSimulator(
                _build(victims, fault_plan=plan), mode=mode
            ).run())
            for mode in MODES
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_drop_returns_grant_to_peers(self):
        """A dropped event must hand the channel straight back: the
        peer hart's stream keeps flowing and completes every check."""
        soc = _build(("rop", "deep-recursion"), fault_plan=self.DROP)
        report = SystemSimulator(soc).run()
        assert report.faults["fired"][FAULT_DOORBELL_DROP] == 2
        peer = report.per_hart[1]
        assert peer["cfi"]["checks_completed"] == peer["cfi"]["logs_sent"] > 0

    def test_dup_redelivers_under_grant(self):
        soc = _build(("rop", "deep-recursion"), fault_plan=self.DUP)
        report = SystemSimulator(soc).run()
        assert report.faults["fired"][FAULT_DOORBELL_DUP] == 1
        attacker = report.per_hart[0]
        # The duplicated event re-rings the doorbell: one more check
        # than queue pops on the faulted writer.
        assert attacker["cfi"]["checks_completed"] > attacker["cfi"]["selected"]
