"""The reproducer corpus: committed regression replay (tier-1) plus
save/load/triage mechanics."""

from pathlib import Path

import pytest

from repro.synth.corpus import (
    ENTRY_SCHEMA,
    entry_name,
    load_corpus,
    make_entry,
    replay_entry,
    save_entry,
)
from repro.synth.generator import generate
from repro.system.addresses import AddressMap

BASE = AddressMap().dram_base
CORPUS_DIR = Path(__file__).parent / "corpus"


class TestCommittedCorpus:
    """Every committed minimized reproducer must agree on all three
    verdict sources — recorded, oracle, simulated — on today's code.
    This is the regression net the synthesis ISSUE asks for: a
    disagreement that was once found and fixed can never come back
    silently."""

    def test_corpus_exists_and_loads(self):
        entries = load_corpus(CORPUS_DIR)
        assert entries, "committed corpus must not be empty"
        for path, entry in entries:
            assert entry["schema"] == ENTRY_SCHEMA, path

    @pytest.mark.parametrize(
        "path_entry", load_corpus(CORPUS_DIR),
        ids=[p.name for p, _ in load_corpus(CORPUS_DIR)],
    )
    def test_replay_agrees_everywhere(self, path_entry):
        path, entry = path_entry
        report = replay_entry(entry, base=BASE)
        for policy, verdicts in report.items():
            assert verdicts["recorded"] == verdicts["oracle"], (path, policy)
            assert verdicts["oracle"] == verdicts["simulated"], (path, policy)

    def test_corpus_file_names_are_content_derived(self):
        for path, entry in load_corpus(CORPUS_DIR):
            assert path.name == entry_name(entry)


class TestCorpusMechanics:
    def test_round_trip(self, tmp_path):
        model = generate("rop", 11)
        entry = make_entry(model, family="rop", seed=11,
                           note="round-trip test", base=BASE)
        path = save_entry(tmp_path, entry)
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0][0] == path
        assert loaded[0][1] == entry

    def test_replay_reports_every_recorded_policy(self):
        model = generate("jop", 5)
        entry = make_entry(model, family="jop", seed=5, base=BASE)
        report = replay_entry(entry, base=BASE)
        assert set(report) == set(entry["expected"])

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestTriage:
    def test_campaign_disagreement_is_minimized_to_disk(self, tmp_path,
                                                        monkeypatch):
        """The CLI-side triage path: a failing synth result becomes a
        reproducer file (forced here through a broken oracle rule)."""
        import repro.synth.oracle as oracle
        from repro.synth import clear_bundle_cache
        from repro.synth.triage import triage_results

        real_rule = oracle._RULES[oracle.ORACLE_FORWARD_ENTRY]

        def broken_rule(events, entries, functions):
            if any(e.kind == "ijump" for e in events):
                return True
            return real_rule(events, entries, functions)

        monkeypatch.setitem(oracle._RULES, oracle.ORACLE_FORWARD_ENTRY,
                            broken_rule)
        clear_bundle_cache()  # verdicts were cached with the honest rule
        try:
            # A benign seed whose program contains a dispatcher: the
            # broken oracle predicts a forward-edge violation the
            # simulator won't produce.
            from repro.synth import bundle_for_seed
            from repro.synth.ir import model_ops

            seed = next(
                s for s in range(40)
                if any(op["op"] == "dispatch" for op in model_ops(
                    bundle_for_seed("benign", s, BASE).model))
            )
            result = {
                "name": f"reference/synth-benign/forward-edge/s{seed}",
                "victim": "synth-benign",
                "policy": "forward-edge",
                "backend": "reference",
                "seed": seed,
            }
            paths = triage_results([result], tmp_path, {"synth-benign": "benign"},
                                   BASE, max_evals=120)
            assert len(paths) == 1
            assert paths[0].exists()
            entries = load_corpus(tmp_path)
            assert entries[0][1]["policy"] == "forward-edge"
            assert "minimized" in entries[0][1]["note"]
        finally:
            clear_bundle_cache()  # drop bundles built with the broken rule
