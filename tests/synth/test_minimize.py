"""The shrinking pass: reductions, anchors, and the full disagreement
pipeline (forced through a deliberately broken oracle rule)."""

import pytest

from repro.errors import SynthError
from repro.synth import bundle
from repro.synth.generator import generate
from repro.synth.ir import check_model, model_ops, plan_events
from repro.synth.minimize import minimize_model, model_size
from repro.synth.verify import assemble_model, simulated_verdict
from repro.system.addresses import AddressMap

BASE = AddressMap().dram_base


class TestStructuralShrinking:
    def test_predicate_must_hold_initially(self):
        model = generate("benign", 1)
        with pytest.raises(SynthError, match="predicate does not hold"):
            minimize_model(model, lambda m: False)

    def test_trivial_predicate_shrinks_to_the_bone(self):
        """With an always-true predicate everything removable goes."""
        model = generate("benign", 3)
        minimal = minimize_model(model, lambda m: True)
        check_model(minimal)
        assert model_size(minimal) < model_size(model)
        # main plus nothing: every function, op and loop was removable.
        assert [f["name"] for f in minimal["functions"]] == ["main"]
        assert all(f["body"] == [] for f in minimal["functions"])

    def test_attack_anchors_survive(self):
        """The attack carrier op and its functions must never be cut."""
        for family in ("jop", "call-hijack", "ret-to-callsite"):
            model = generate(family, 2)
            minimal = minimize_model(model, lambda m: True)
            check_model(minimal)
            assert minimal["attack"] == model["attack"], family
            kinds = {op["op"] for op in model_ops(minimal)}
            carrier = {"jop": "dispatch", "call-hijack": "hijack",
                       "ret-to-callsite": "rtc"}[family]
            assert carrier in kinds, family

    def test_rop_victim_function_survives(self):
        model = generate("rop", 4)
        minimal = minimize_model(model, lambda m: True)
        names = {f["name"] for f in minimal["functions"]}
        assert model["attack"]["victim"] in names

    def test_structural_predicate_is_preserved(self):
        """Shrinking keeps exactly the property the predicate demands."""

        def has_loop(m):
            return any(op["op"] == "loop" for op in model_ops(m))

        model = next(
            m for m in (generate("benign", seed) for seed in range(30))
            if has_loop(m)
        )
        minimal = minimize_model(model, has_loop)
        assert has_loop(minimal)
        # ...and nothing else: a single empty loop in main is the floor.
        loops = [op for op in model_ops(minimal) if op["op"] == "loop"]
        assert len(loops) == 1 and loops[0]["count"] == 1

    def test_eval_budget_caps_work(self):
        model = generate("benign", 3)
        minimal = minimize_model(model, lambda m: True, max_evals=3)
        check_model(minimal)  # partial shrink is still valid


class TestDisagreementPipeline:
    """End-to-end: a (synthetically) wrong verdict is minimized to a
    small reproducer whose disagreement still reproduces."""

    def test_forced_disagreement_minimizes(self, monkeypatch):
        # Break the oracle's forward-edge rule so every benign dispatch
        # becomes a predicted violation the simulator won't show.
        import repro.synth.oracle as oracle

        real_rule = oracle._RULES[oracle.ORACLE_FORWARD_ENTRY]

        def broken_rule(events, entries, functions):
            if any(e.kind == "ijump" for e in events):
                return True
            return real_rule(events, entries, functions)

        monkeypatch.setitem(oracle._RULES, oracle.ORACLE_FORWARD_ENTRY,
                            broken_rule)

        # Find a benign model with a dispatcher (ijump events).
        model = None
        for seed in range(40):
            candidate = generate("benign", seed)
            if any(op["op"] == "dispatch" for op in model_ops(candidate)):
                model = candidate
                break
        assert model is not None

        def disagree(m):
            program = assemble_model(m, BASE)
            predicted = oracle.expected_verdicts(m, program)["forward-edge"]
            actual = simulated_verdict(m, "forward-edge", base=BASE)
            return predicted != actual

        assert disagree(model), "broken rule must manifest"
        minimal = minimize_model(model, disagree, max_evals=150)
        check_model(minimal)
        assert disagree(minimal), "shrinking must preserve the bug"
        assert model_size(minimal) <= model_size(model)
        # The reproducer is minimal: one dispatcher left, little else.
        dispatches = [op for op in model_ops(minimal) if op["op"] == "dispatch"]
        assert len(dispatches) == 1
        assert len(plan_events(minimal)) <= 4
