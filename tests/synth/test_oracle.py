"""The static oracle: verdict rules, image cross-checking, and agreement
with the real policies over real traces."""

import pytest

from repro.campaign.runner import build_policy, capture_commit_logs
from repro.campaign.spec import POLICY_DETECTS, VICTIMS
from repro.errors import SynthError
from repro.firmware.policies import (
    CheckResult,
    CompositePolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.synth import FAMILIES, bundle
from repro.synth.ir import label_sets
from repro.synth.oracle import (
    ORACLE_POLICIES,
    POLICY_RULES,
    expected_verdicts,
    resolve_events,
)
from repro.system.addresses import AddressMap

ADDRESSES = AddressMap()
BASE = ADDRESSES.dram_base


def _reference_verdict(found, policy_name):
    """The verdict the reference backend's actual policy objects reach."""
    logs, _hart = capture_commit_logs(found.program, ADDRESSES)
    policy = build_policy(policy_name, found.program,
                          found.entry_points, found.function_entries)
    if policy is None:
        return False
    return any(policy.check(log) is CheckResult.VIOLATION for log in logs)


class TestOracleAgreement:
    """Oracle == simulation for every (family × seed × policy) sample."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(6))
    def test_oracle_matches_reference_policies(self, family, seed):
        found = bundle(family, seed, BASE)
        for policy_name in ORACLE_POLICIES:
            simulated = _reference_verdict(found, policy_name)
            assert found.expected[policy_name] == simulated, (
                family, seed, policy_name,
            )

    @pytest.mark.parametrize("family", FAMILIES)
    def test_oracle_agrees_with_the_attack_class_table(self, family):
        """The planted attacks are canonical members of their class, so
        the oracle's per-program verdict must coincide with the
        campaign's (attack × policy) ground-truth table on them."""
        victim = VICTIMS[f"synth-{family}"]
        for seed in range(6):
            found = bundle(family, seed, BASE)
            for policy_name in ORACLE_POLICIES:
                from_table = (victim.attack is not None
                              and victim.attack in POLICY_DETECTS[policy_name])
                assert found.expected[policy_name] == from_table, (
                    family, seed, policy_name,
                )


class TestOracleRules:
    def test_rules_come_from_the_policies(self):
        """The oracle hooks live on the policy classes themselves."""
        assert POLICY_RULES["shadow-stack"] == (ShadowStackPolicy.oracle_rule,)
        assert POLICY_RULES["forward-edge"] == (ForwardEdgePolicy.oracle_rule,)

    def test_composite_rules_match_the_policy_the_runner_builds(self):
        """Drift guard: the oracle's composite rule set must equal the
        ``oracle_rules`` of the composite object ``build_policy``
        actually constructs — change the members in one place and this
        catches a missed update in the other."""
        found = bundle("benign", 0, BASE)
        composite = build_policy("composite", found.program,
                                 found.entry_points, found.function_entries)
        assert isinstance(composite, CompositePolicy)
        assert POLICY_RULES["composite"] == composite.oracle_rules

    def test_none_policy_never_fires(self):
        for family in FAMILIES:
            assert not bundle(family, 0, BASE).expected["none"]

    def test_benign_programs_flag_nothing(self):
        """No false positives by construction — for any policy."""
        for seed in range(8):
            found = bundle("benign", seed, BASE)
            assert not any(found.expected.values()), (seed, found.expected)


class TestImageCrossCheck:
    """resolve_events verifies the plan against the actual encodings."""

    def test_resolved_events_decode_consistently(self):
        found = bundle("rop", 2, BASE)
        events = resolve_events(found.model, found.program)
        assert events, "attack programs must retire CF events"
        for event in events:
            assert found.program.base <= event.pc < found.program.end

    def test_tampered_plan_is_rejected(self):
        """If the model and the image drift apart (here: an image built
        from a *different* model), the oracle must refuse, not lie."""
        a = bundle("rop", 2, BASE)
        b = bundle("rop", 4, BASE)
        with pytest.raises(SynthError):
            resolve_events(a.model, b.program)

    def test_missing_label_is_rejected(self):
        import copy

        from repro.synth.ir import emit

        found = bundle("benign", 1, BASE)
        model = copy.deepcopy(found.model)
        # Force a plan/image mismatch: drop a call op from the emitted
        # image's source model but keep the original plan's model.
        victim = next(
            f for f in model["functions"]
            if any(op["op"] == "call" for op in f["body"])
        )
        victim["body"] = [op for op in victim["body"] if op["op"] != "call"]
        program = emit(model, BASE)
        with pytest.raises(SynthError):
            resolve_events(found.model, program)

    def test_verdicts_cover_every_campaign_policy(self):
        from repro.campaign.spec import REFERENCE_POLICIES

        found = bundle("jop", 1, BASE)
        assert set(found.expected) == set(REFERENCE_POLICIES)
        verdicts = expected_verdicts(found.model, found.program)
        assert verdicts == found.expected
