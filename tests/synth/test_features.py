"""PR-10 IR growth: bounded recursion and indirect tail calls.

Feature-grown models must validate, plan exactly what the emitted image
executes, and leave the featureless output of ``generate`` untouched;
``check_model`` must reject every way a recurse/tailcall construct can
break its contract."""

import copy

import pytest

from repro.attacks.programs import CLEAN_MARKER, GADGET_MARKER
from repro.campaign.runner import capture_commit_logs
from repro.errors import SynthError
from repro.isa.cflow import CfKind
from repro.synth import FAMILIES, bundle
from repro.synth.generator import FEATURES, generate
from repro.synth.ir import (
    MAX_RECURSION_DEPTH,
    check_model,
    model_ops,
    plan_events,
)
from repro.synth.oracle import resolve_events
from repro.system.addresses import AddressMap

ADDRESSES = AddressMap()
BASE = ADDRESSES.dram_base

_KIND = {
    "call": CfKind.CALL,
    "return": CfKind.RETURN,
    "ijump": CfKind.INDIRECT_JUMP,
}


def featured(family: str, seed: int) -> dict:
    return generate(family, seed, FEATURES)


class TestGeneration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_featured_models_validate_deterministically(self, family):
        for seed in range(4):
            model = featured(family, seed)
            check_model(model)
            assert model == featured(family, seed)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_features_grow_their_constructs(self, family):
        ops = {op["op"] for op in model_ops(featured(family, 1))}
        assert {"recurse", "tailcall"} <= ops

    @pytest.mark.parametrize("family", FAMILIES)
    def test_featureless_output_untouched(self, family):
        """Feature draws happen after the family pipeline's, so growth
        extends the base model rather than reshaping it: the attack and
        every base function survive identically."""
        base = generate(family, 2)
        grown = featured(family, 2)
        assert generate(family, 2, ()) == base
        assert grown["attack"] == base["attack"]
        names = {f["name"] for f in grown["functions"]}
        assert {f["name"] for f in base["functions"]} <= names

    def test_unknown_feature_rejected(self):
        with pytest.raises(SynthError, match="unknown generator feature"):
            generate("benign", 1, ("warp",))

    def test_recursion_depth_within_bound(self):
        for family in FAMILIES:
            for op in model_ops(featured(family, 3)):
                if op["op"] == "recurse":
                    assert 1 <= op["depth"] <= MAX_RECURSION_DEPTH


class TestPlanMatchesExecution:
    """The differential, extended to the grown IR: the planned stream
    of a recursing, tail-calling program equals the captured one."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_planned_stream_equals_captured_stream(self, family, seed):
        found = bundle(family, seed, BASE, features=FEATURES)
        logs, _hart = capture_commit_logs(found.program, ADDRESSES)
        planned = resolve_events(found.model, found.program)
        assert len(planned) == len(logs), (family, seed)
        for event, log in zip(planned, logs):
            assert log.kind is _KIND[event.kind]
            assert log.pc == event.pc
            assert log.target == event.target

    @pytest.mark.parametrize("family", FAMILIES)
    def test_marker_semantics_survive_growth(self, family):
        found = bundle(family, 1, BASE, features=FEATURES)
        _logs, hart = capture_commit_logs(found.program, ADDRESSES)
        expected = CLEAN_MARKER if family == "benign" else GADGET_MARKER
        assert hart.regs.read(10) == expected

    def test_recursion_unwind_depth_exact(self):
        """A recurse op plans exactly d calls and d returns of its
        dedicated function per arrival at the site (the site may sit
        inside a loop, so totals are a positive multiple of d)."""
        model = featured("benign", 0)
        (recurse,) = [op for op in model_ops(model) if op["op"] == "recurse"]
        events = plan_events(model)
        calls = [e for e in events
                 if e.kind == "call" and e.target == recurse["fn"]]
        returns = [e for e in events
                   if e.kind == "return"
                   and e.site == f"cf_ret_{recurse['fn']}"]
        assert len(calls) == len(returns) > 0
        assert len(calls) % recurse["depth"] == 0


def tampered(mutator) -> dict:
    model = copy.deepcopy(featured("benign", 5))
    mutator(model)
    return model


def one_op(model: dict, kind: str) -> dict:
    return next(op for op in model_ops(model) if op["op"] == kind)


class TestContractRejections:
    def test_recurse_depth_out_of_range(self):
        with pytest.raises(SynthError, match="recurse depth"):
            check_model(tampered(
                lambda m: one_op(m, "recurse").update(
                    depth=MAX_RECURSION_DEPTH + 1)
            ))

    def test_recurse_reg_outside_pool(self):
        with pytest.raises(SynthError, match="not in pool"):
            check_model(tampered(
                lambda m: one_op(m, "recurse").update(reg="t0")
            ))

    def test_recurse_into_unknown_function(self):
        with pytest.raises(SynthError, match="unknown function"):
            check_model(tampered(
                lambda m: one_op(m, "recurse").update(fn="fn_ghost")
            ))

    def test_recurse_target_must_be_unreferenced(self):
        def add_call(model):
            target = one_op(model, "recurse")["fn"]
            model["functions"][0]["body"].append({
                "op": "call", "uid": 9999, "callee": target,
                "indirect": False,
            })

        with pytest.raises(SynthError, match="may not be referenced"):
            check_model(tampered(add_call))

    def test_recurse_target_must_be_pure_filler(self):
        def pollute(model):
            target = one_op(model, "recurse")["fn"]
            body = next(f for f in model["functions"]
                        if f["name"] == target)["body"]
            body.append({"op": "dispatch", "uid": 9998, "handlers": [1, 2]})

        with pytest.raises(SynthError, match="pure-filler"):
            check_model(tampered(pollute))

    def test_tailcall_must_be_final_op(self):
        def reorder(model):
            for function in model["functions"]:
                body = function["body"]
                if body and body[-1]["op"] == "tailcall":
                    body.insert(0, body.pop())
                    return
            raise AssertionError("no tail-calling function")

        with pytest.raises(SynthError, match="single final op"):
            check_model(tampered(reorder))

    def test_main_cannot_tail_call(self):
        def retail(model):
            tail = one_op(model, "tailcall")
            for function in model["functions"]:
                function["body"] = [
                    op for op in function["body"] if op is not tail
                ]
            main = next(f for f in model["functions"] if f["name"] == "main")
            main["body"].append(tail)

        with pytest.raises(SynthError, match="main cannot end"):
            check_model(tampered(retail))

    def test_tail_callee_must_be_pure_filler(self):
        def retarget(model):
            model["functions"].append({"name": "fn_fat", "body": [
                {"op": "dispatch", "uid": 9996, "handlers": [1, 2]},
            ]})
            one_op(model, "tailcall").update(callee="fn_fat")

        with pytest.raises(SynthError, match="pure-filler leaf"):
            check_model(tampered(retarget))
