"""Generator invariants: determinism, well-formedness, and the
plan-vs-execution differential that grounds the whole subsystem."""

import random

import pytest

from repro.attacks.programs import CLEAN_MARKER, GADGET_MARKER
from repro.campaign.runner import capture_commit_logs
from repro.errors import SynthError
from repro.isa.cflow import CfKind
from repro.synth import FAMILIES, MAX_EVENTS, bundle, bundle_for_seed, bundle_from_rng
from repro.synth.generator import generate
from repro.synth.ir import check_model, emit, label_sets, model_ops, plan_events
from repro.synth.oracle import resolve_events
from repro.system.addresses import AddressMap

ADDRESSES = AddressMap()
BASE = ADDRESSES.dram_base

SEEDS = range(8)

_KIND = {
    "call": CfKind.CALL,
    "return": CfKind.RETURN,
    "ijump": CfKind.INDIRECT_JUMP,
}


class TestGeneration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_deterministic_per_seed(self, family):
        assert generate(family, 42) == generate(family, 42)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_seeds_vary_the_shape(self, family):
        models = {str(generate(family, seed)) for seed in SEEDS}
        assert len(models) == len(list(SEEDS))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_models_validate(self, family):
        for seed in SEEDS:
            check_model(generate(family, seed))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_event_budget_respected(self, family):
        for seed in SEEDS:
            assert len(plan_events(generate(family, seed))) <= MAX_EVENTS

    def test_unknown_family_rejected(self):
        with pytest.raises(SynthError, match="unknown synthesis family"):
            generate("heap-spray", 1)

    def test_attack_families_plant_exactly_one_attack(self):
        for family in FAMILIES:
            model = generate(family, 5)
            if family == "benign":
                assert model["attack"] is None
            else:
                assert model["attack"]["kind"] == family

    def test_every_function_reachable(self):
        """The spanning call edges guarantee every function executes
        (otherwise a planted attack could be dead code)."""
        for family in FAMILIES:
            for seed in SEEDS:
                model = generate(family, seed)
                called = {
                    op["callee"] for op in model_ops(model)
                    if op["op"] == "call"
                }
                called.update(("main", "fn_rtc_helper", "fn_rtc_victim"))
                for function in model["functions"]:
                    assert function["name"] in called, (family, seed)


class TestPlanMatchesExecution:
    """The subsystem's load-bearing invariant: the statically planned
    event stream equals, field for field, the commit-log stream the CFI
    filter captures from a real run."""

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_planned_stream_equals_captured_stream(self, family, seed):
        found = bundle(family, seed, BASE)
        logs, _hart = capture_commit_logs(found.program, ADDRESSES)
        planned = resolve_events(found.model, found.program)
        assert len(planned) == len(logs), (family, seed)
        for event, log in zip(planned, logs):
            assert log.kind is _KIND[event.kind]
            assert log.pc == event.pc
            assert log.target == event.target
            if event.kind == "call":
                assert log.next_address == event.next

    @pytest.mark.parametrize("family", FAMILIES)
    def test_marker_semantics(self, family):
        for seed in SEEDS:
            found = bundle(family, seed, BASE)
            _logs, hart = capture_commit_logs(found.program, ADDRESSES)
            marker = hart.regs.read(10)
            expected = CLEAN_MARKER if family == "benign" else GADGET_MARKER
            assert marker == expected, (family, seed, hex(marker))


class TestBundles:
    def test_builder_and_runner_paths_agree(self):
        """The registry builder (rng) and the runner's oracle path
        (scenario seed) must resolve the identical bundle."""
        for family in FAMILIES:
            via_rng = bundle_from_rng(family, random.Random(77), BASE)
            via_seed = bundle_for_seed(family, 77, BASE)
            assert via_rng is via_seed

    def test_label_sets_resolve_in_the_image(self):
        for family in FAMILIES:
            found = bundle(family, 9, BASE)
            for name in found.entry_points + found.function_entries:
                assert name in found.program.symbols, (family, name)

    def test_entry_points_subset_semantics(self):
        """ep_ labels alias fn_ entries; the call-hijack gadget is in
        the coarse set but never the fine-grained one (its blind spot)."""
        found = bundle("call-hijack", 3, BASE)
        assert "fn_chj_gadget" in found.function_entries
        assert not any("chj" in name for name in found.entry_points)

    def test_jop_gadgets_in_no_label_set(self):
        found = bundle("jop", 3, BASE)
        joined = found.entry_points + found.function_entries
        assert not any("jop_g" in name for name in joined)
