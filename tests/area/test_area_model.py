"""Structural area-model tests."""

import pytest

from repro.area.model import (
    AreaEstimate,
    breakdown,
    estimate_cfi_stage,
    estimate_mailbox,
    filter_area,
    log_writer_area,
    mailbox_area,
    queue_area,
    total,
)
from repro.core.commit_log import COMMIT_LOG_BITS
from repro.errors import ConfigError


class TestPrimitives:
    def test_estimate_addition(self):
        a = AreaEstimate(10, 20, 1)
        b = AreaEstimate(5, 5, 0)
        combined = a + b
        assert (combined.luts, combined.registers, combined.brams) == (15, 25, 1)

    def test_queue_registers_scale_with_depth(self):
        assert queue_area(8).estimate.registers > queue_area(1).estimate.registers

    def test_queue_storage_dominated_by_log_width(self):
        estimate = queue_area(8).estimate
        assert estimate.registers >= 8 * COMMIT_LOG_BITS

    def test_queue_depth_validation(self):
        with pytest.raises(ConfigError):
            queue_area(0)

    def test_filter_is_mostly_combinational(self):
        estimate = filter_area().estimate
        assert estimate.luts > estimate.registers

    def test_writer_has_no_full_log_latch(self):
        assert log_writer_area().estimate.registers < COMMIT_LOG_BITS

    def test_mailbox_storage(self):
        assert mailbox_area().estimate.registers >= 4 * 64


class TestStageComposition:
    def test_two_filters_by_default(self):
        names = [block.name for block in estimate_cfi_stage()]
        assert names.count("cfi-filter") == 2

    def test_breakdown_merges_duplicates(self):
        merged = breakdown(estimate_cfi_stage())
        assert "cfi-filter" in merged
        assert merged["cfi-filter"].luts == 2 * filter_area().estimate.luts

    def test_queue_dominates_registers_at_depth_8(self):
        merged = breakdown(estimate_cfi_stage(queue_depth=8))
        queue_regs = merged["cfi-queue"].registers
        assert queue_regs > sum(
            est.registers for name, est in merged.items() if name != "cfi-queue"
        )

    def test_soc_delta_adds_mailbox(self):
        host = total(estimate_cfi_stage())
        soc = host + total(estimate_mailbox())
        assert soc.registers > host.registers
        assert soc.luts > host.luts

    def test_no_brams_anywhere(self):
        assert total(estimate_cfi_stage()).brams == 0
        assert total(estimate_mailbox()).brams == 0
