"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e . --no-build-isolation`` (and the legacy
``python setup.py develop``) work on machines without the ``wheel``
package — e.g. air-gapped evaluation environments.
"""

from setuptools import setup

setup()
