#!/usr/bin/env python3
"""One RoT monitor, N application harts: the many-hart topology.

TitanCFI centralises CFI enforcement in the root of trust — so one
monitor should protect *every* application core on the SoC, not just
one.  This demo builds a four-hart topology sharing the single Ibex
monitor through the arbitrated CFI mailbox and shows:

1. **Attribution** — a ROP attack on hart 2 is detected and attributed
   to hart 2; the benign peers stay clean.
2. **Arbitration** — the per-hart log writers share the one mailbox
   through a deterministic round-robin doorbell arbiter; the grant
   counts show how the monitor's bandwidth was divided.
3. **Saturation** — racing the attack hart against call-heavy peers
   shows where the shared monitor's back-pressure lands (commit
   stalls), while the handshake latency itself stays flat.

Run:  PYTHONPATH=src python examples/multihart_demo.py
"""

import random

from repro.attacks.programs import (
    benign_program,
    deep_recursion_program,
    rop_program,
)
from repro.core.config import TitanCfiConfig
from repro.firmware.policies import ShadowStackPolicy
from repro.policyhost import mount_policy_host
from repro.system import SystemSimulator, Topology, build_soc


def build(victim_builders):
    """A topology with one hart per builder, sharing one monitor."""
    topo = Topology(n_harts=len(victim_builders))
    soc = build_soc(
        cfi_config=TitanCfiConfig(raise_on_violation=False), topology=topo
    )
    for hart_id, builder in enumerate(victim_builders):
        amap = topo.address_map(hart_id, soc.addresses)
        soc.load_host_program(builder(amap), hart_id=hart_id)
    mount_policy_host(soc, ShadowStackPolicy())
    return soc


def main() -> None:
    rng = random.Random(1234)

    # 1. Attack on hart 2, benign peers everywhere else.
    soc = build([
        benign_program,
        benign_program,
        rop_program,
        benign_program,
    ])
    report = SystemSimulator(soc).run()
    print("four harts, ROP on hart 2:")
    for row in report.per_hart:
        verdict = "VIOLATION" if row["detected"] else "clean"
        latency = (f" (detection latency {row['detection_latency']} cycles)"
                   if row["detected"] else "")
        print(f"  hart {row['hart']}: {verdict}{latency}")
    assert [row["hart"] for row in report.per_hart if row["detected"]] == [2]

    # 2. The doorbell arbiter divided the monitor between the writers.
    print("doorbell grants per hart:", soc.doorbell_arbiter.grants)

    # 3. Saturate the monitor: the attack hart races chatty peers.
    def recursion(amap):
        return deep_recursion_program(amap, depth=16 + rng.randrange(48))

    for n in (2, 4, 8):
        soc = build([rop_program] + [recursion] * (n - 1))
        report = SystemSimulator(soc).run()
        attacker = report.per_hart[0]
        print(
            f"N={n}: detection latency {attacker['detection_latency']} "
            f"cycles, full-queue commit stalls {report.cfi['full_stalls']}, "
            f"queue high-water {report.cfi['queue_high_water']}"
        )


if __name__ == "__main__":
    main()
