#!/usr/bin/env python3
"""ROP detection: the attack TitanCFI exists to stop (paper §I, §VI).

Runs the same stack-smashing victim twice:

* queue depth 8 (Table III config) — detection is asynchronous: the RoT
  flags the corrupted return a few hundred cycles after it retired, so
  the gadget's first instructions execute before the exception lands;
* queue depth 1, blocking (Table II config) — the core stalls on every
  control-flow instruction until its check completes, so the diverted
  return never outruns its verdict and the gadget never executes.

Run:  python examples/rop_detection.py
"""

from repro.attacks.programs import rop_program
from repro.attacks.rop import run_attack_scenario
from repro.system.addresses import AddressMap


def main() -> None:
    addresses = AddressMap()
    program = rop_program(addresses)

    print("=== asynchronous detection (CFI queue depth 8) ===")
    outcome = run_attack_scenario(program, "irq", queue_depth=8)
    print(f"detected:        {outcome.detected}")
    print(f"violation:       {outcome.violation}")
    print(f"gadget executed: {outcome.gadget_executed} "
          "(side effects visible before the verdict)")
    assert outcome.detected and outcome.gadget_executed

    print()
    print("=== blocking detection (queue depth 1, Table II config) ===")
    outcome = run_attack_scenario(program, "irq", queue_depth=1, blocking=True)
    print(f"detected:        {outcome.detected}")
    print(f"violation:       {outcome.violation}")
    print(f"gadget executed: {outcome.gadget_executed} "
          "(the corrupted return stalled until checked)")
    assert outcome.detected and not outcome.gadget_executed

    print()
    print("TitanCFI detected the return-address corruption in both modes;")
    print("blocking mode additionally prevented the payload from running.")


if __name__ == "__main__":
    main()
