#!/usr/bin/env python3
"""Quickstart: protect a program with TitanCFI and watch it being checked.

Builds the full reference SoC (CVA6 + CFI stage + AXI + CFI mailbox +
OpenTitan running the real shadow-stack firmware), runs a small
call-heavy program on the host core, and prints what the CFI path did.

Run:  python examples/quickstart.py
"""

from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.isa.asm import Assembler
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc


def main() -> None:
    # 1. Build the SoC (paper Fig. 1) with the default depth-8 CFI queue.
    soc = build_soc(fabric="standard")

    # 2. Load the shadow-stack CFI firmware into the RoT (paper §IV-C).
    firmware = shadow_stack_firmware("irq", FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    print(f"firmware: {len(firmware.data)} bytes of RV32 code in the RoT ROM")

    # 3. A host program with nested calls and returns.
    program = Assembler(xlen=64).assemble(
        f"""
        .equ STACK_TOP, {soc.addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   s0, 4
            li   a0, 1
        loop:
            call double        # each call/return is streamed to the RoT
            addi s0, s0, -1
            bnez s0, loop
            ebreak
        double:
            add  a0, a0, a0
            ret
        """,
        base=soc.addresses.dram_base,
    )
    soc.load_host_program(program)

    # 4. Co-simulate host core, CFI stage and RoT cycle by cycle.
    report = SystemSimulator(soc).run()

    print(f"host finished in {report.cycles} cycles, "
          f"{report.host_instructions} instructions retired")
    print(f"a0 = {soc.cva6.regs.read(10)}  (1 doubled 4 times = 16)")
    print(f"CFI events checked by the RoT: {report.cfi['checks_completed']} "
          f"({report.cfi['selected']} selected from "
          f"{report.cfi['examined']} retired instructions)")
    print(f"mean check latency: {report.cfi['mean_check_latency']:.0f} cycles "
          "(paper: 267 for the IRQ firmware)")
    print(f"violations: {report.cfi['violations']}")
    assert not report.detected


if __name__ == "__main__":
    main()
