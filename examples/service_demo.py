#!/usr/bin/env python3
"""Campaign as a service: submit → serve → re-submit → dashboard.

Walks the full sweep-service loop in a temporary directory:

1. submit the ``smoke`` matrix as a durable job and drain it — every
   cell executes and lands in the content-addressed result store;
2. re-submit the identical matrix — the second sweep resolves entirely
   from the store (0 cells executed, 100 % hits) and its
   ``campaign.json`` is byte-identical to the cold run;
3. pretend the code changed (a different code-version fingerprint) —
   every cached cell is invalidated and re-executes;
4. render the static HTML dashboard from the store + job artifacts.

Run:  python examples/service_demo.py
"""

import tempfile
from pathlib import Path

from repro.service import SweepService, write_dashboard


def serve(service: SweepService, matrix: str = "smoke") -> dict:
    job = service.submit(matrix, workers=2)
    (sweep,) = service.serve_once()
    print(f"  {job.job_id}: cells={sweep['cells']} hits={sweep['hits']} "
          f"executed={sweep['executed']} invalidated={sweep['invalidated']}"
          f" -> {sweep['state']}")
    return sweep


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="titancfi-service-"))

    # 1. Cold sweep: nothing cached, everything executes.
    print("cold sweep (empty store):")
    service = SweepService(root, code_version="v-demo-1")
    cold = serve(service)
    assert cold["executed"] == cold["cells"]

    # 2. Warm sweep: the store serves every cell; artifacts match
    #    byte for byte.
    print("warm sweep (same matrix, same code):")
    warm = serve(service)
    assert warm["executed"] == 0 and warm["hits"] == warm["cells"]
    a = (service.job_dir("job-0001") / "campaign.json").read_bytes()
    b = (service.job_dir("job-0002") / "campaign.json").read_bytes()
    assert a == b
    print("  campaign.json byte-identical to the cold run")

    # 3. A code change invalidates the cache wholesale: results are a
    #    function of code x spec, and the fingerprint covers the code.
    print("sweep after a (simulated) code change:")
    changed = SweepService(root, code_version="v-demo-2")
    invalidated = serve(changed)
    assert invalidated["invalidated"] == invalidated["cells"]

    # 4. Dashboard: jobs, hit accounting, per-matrix detection tables
    #    and per-policy trends across the two code versions.
    path = write_dashboard(changed)
    print(f"dashboard: {path}")
    print(f"store: {changed.store.count('v-demo-1')} cells under v-demo-1, "
          f"{changed.store.count()} under v-demo-2")


if __name__ == "__main__":
    main()
