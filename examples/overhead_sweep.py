#!/usr/bin/env python3
"""Design-space sweep: queue depth × check latency on real workloads.

Uses the trace-driven model (paper §V-C) to map where TitanCFI's
overhead comes from: the queue absorbs bursts until the RoT saturates;
past the saturation knee only a faster firmware helps.

Run:  python examples/overhead_sweep.py
"""

from repro.bench_catalog.calibration import calibrate
from repro.bench_catalog.catalog import benchmark
from repro.eval.report import render_table
from repro.trace.model import simulate_trace

BENCHMARKS = ("huffbench", "picojpeg", "dhrystone", "ud")
DEPTHS = (1, 2, 4, 8, 16, 32)
LATENCIES = {"optimized": 73, "polling": 112, "irq": 267}


def depth_sweep() -> None:
    rows = []
    for name in BENCHMARKS:
        entry = benchmark(name)
        arrivals = calibrate(entry).arrivals()
        rows.append([name] + [
            f"{simulate_trace(arrivals, entry.cycles, 267, queue_depth=depth).slowdown_percent:.0f}"
            for depth in DEPTHS
        ])
    print(render_table(
        ["benchmark"] + [f"depth {d}" for d in DEPTHS],
        rows,
        title="Slowdown % vs CFI queue depth (IRQ firmware, L=267)",
    ))


def latency_sweep() -> None:
    rows = []
    for name in BENCHMARKS:
        entry = benchmark(name)
        arrivals = calibrate(entry).arrivals()
        cells = [
            f"{simulate_trace(arrivals, entry.cycles, lat, queue_depth=8).slowdown_percent:.0f}"
            for lat in LATENCIES.values()
        ]
        gap = entry.cycles / entry.cf_count
        rows.append([name, f"{gap:.0f}"] + cells)
    print(render_table(
        ["benchmark", "mean CF gap"] + [f"{k} (L={v})" for k, v in LATENCIES.items()],
        rows,
        title="Slowdown % vs firmware latency (queue depth 8)",
    ))


def main() -> None:
    depth_sweep()
    print()
    latency_sweep()
    print()
    print("Reading: when the mean CF gap exceeds L, the queue hides the RoT")
    print("entirely; once saturated (gap < L), depth stops helping and only")
    print("a faster firmware (polling / optimized interconnect) reduces the")
    print("overhead - exactly the trend of the paper's Tables II & III.")


if __name__ == "__main__":
    main()
