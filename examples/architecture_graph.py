#!/usr/bin/env python3
"""Figure 1: export the verified architecture diagram as Graphviz DOT.

Writes ``titancfi_architecture.dot`` next to this script; render with
``dot -Tpng titancfi_architecture.dot -o titancfi.png`` if Graphviz is
available.

Run:  python examples/architecture_graph.py
"""

import pathlib

from repro.eval import figure1


def main() -> None:
    data = figure1.compute()
    problems = data["problems"]
    if problems:
        print("architecture verification FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        raise SystemExit(1)

    graph = data["graph"]
    print(f"architecture verified: {graph.number_of_nodes()} blocks, "
          f"{graph.number_of_edges()} wires, all Figure 1 paths present")
    print("check round trip:", " -> ".join(figure1.CHECK_ROUND_TRIP))

    out = pathlib.Path(__file__).resolve().parent / "titancfi_architecture.dot"
    out.write_text(data["dot"])
    print(f"DOT written to {out}")


if __name__ == "__main__":
    main()
