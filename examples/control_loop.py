#!/usr/bin/env python3
"""Domain example: a protected control loop (the paper's motivation).

The paper's intro targets "security-critical systems such as industrial
controllers and autonomous vehicles" — firmware that runs a periodic
sense → compute → actuate loop and parses external input.  This example
runs such a loop on the protected SoC:

* a PI-style controller tracks a setpoint over memory-mapped "sensor"
  samples (a table in DRAM, as a DMA'd sensor ring would be);
* every iteration makes several calls/returns, all checked by the RoT;
* a second run simulates exploitation of the *input parser* — the saved
  return address is overwritten mid-loop — and shows detection before
  the actuator output diverges further.

Run:  python examples/control_loop.py
"""

from repro.core.config import TitanCfiConfig
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.isa.asm import Assembler
from repro.system.sim import SystemSimulator
from repro.system.soc import build_soc

ITERATIONS = 8


def control_program(addresses, attack: bool) -> "Program":
    """Sense→compute→actuate loop; optionally smashes a return address."""
    smash = """
            # exploit: the "parser" overruns its buffer into the saved ra
            la   t2, hijack
            sd   t2, 8(sp)
    """ if attack else ""
    return Assembler(xlen=64).assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        .equ ACTUATOR,  {addresses.dram_base + 0xE0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   s0, {ITERATIONS}     # loop count
            li   s1, 0                # integral term
            li   s2, 50               # setpoint
            la   s3, samples
            la   s4, ACTUATOR
        loop:
            lw   a0, 0(s3)            # sense
            addi s3, s3, 4
            call parse_input          # (the vulnerable step)
            call compute_command      # PI update
            sw   a0, 0(s4)            # actuate
            addi s0, s0, -1
            bnez s0, loop
            li   a0, 0x42
            ebreak

        parse_input:
            addi sp, sp, -16
            sd   ra, 8(sp)
            andi a0, a0, 0xff         # "sanitise" the sample
            {smash}
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret

        compute_command:              # err = setpoint - sample
            sub  t0, s2, a0
            add  s1, s1, t0           # integral += err
            srai t1, s1, 2            # ki * integral
            add  a0, t0, t1           # command = err + ki*integral
            ret

        hijack:                       # attacker payload: slam the actuator
            li   t0, 0x7fffffff
            sw   t0, 0(s4)
            li   a0, 0x666
            ebreak

        .align 3
        samples: .word 48, 51, 49, 52, 50, 47, 53, 50, 50, 50
        """,
        base=addresses.dram_base,
    )


def run(attack: bool):
    soc = build_soc(cfi_config=TitanCfiConfig(queue_depth=8))
    firmware = shadow_stack_firmware("polling", FirmwareLayout(soc.addresses))
    soc.load_firmware(firmware.data)
    soc.load_host_program(control_program(soc.addresses, attack))
    report = SystemSimulator(soc).run()
    actuator = soc.host_map.read(soc.addresses.dram_base + 0xE0_0000, 4)
    return report, actuator, soc


def main() -> None:
    report, actuator, soc = run(attack=False)
    print("=== clean control loop ===")
    print(f"iterations completed, final actuator command: {actuator}")
    print(f"CF events checked by the RoT: {report.cfi['checks_completed']}, "
          f"violations: {report.cfi['violations']}")
    assert not report.detected

    print()
    report, actuator, soc = run(attack=True)
    print("=== compromised input parser ===")
    print(f"detected: {report.detected}")
    print(f"violation: {report.violation}")
    assert report.detected
    print()
    print("The hijacked return was flagged by the shadow-stack firmware in")
    print("the RoT; the platform runtime can quench the actuator before the")
    print("vehicle acts on a forged command.")


if __name__ == "__main__":
    main()
