#!/usr/bin/env python3
"""Campaign engine demo: sweep attacks × policies, print the verdict grid.

Builds a small scenario matrix with the declarative grid expander —
four victims crossed with three reference policies, plus two
full-platform co-simulations — runs it (serially here; pass jobs>1 for
the sharded runner behind ``python -m repro.campaign run``), and prints
the aggregated detection matrix.

Run:  python examples/campaign_demo.py
"""

from repro.campaign import expand_grid, finalize, render_report, run_campaign


def main() -> None:
    # 1. Declare the matrix: every combination is one scenario, invalid
    #    combinations (e.g. cosim × coarse) are dropped automatically.
    matrix = expand_grid(
        victim=["benign", "rop", "jop", "ret-to-callsite"],
        policy=["shadow-stack", "coarse", "composite"],
    ) + expand_grid(
        victim=["benign", "rop"],
        backend="cosim",          # full SoC + RV32 shadow-stack firmware
    )
    print(f"matrix: {len(matrix)} scenarios")
    for scenario in matrix[:4]:
        print(f"  {scenario.name}  "
              f"(expected: {'DETECT' if scenario.expected_detected else 'pass'})")
    print("  ...")

    # 2. Run it.  Deterministic per-scenario seeds mean a re-run — or a
    #    sharded run with any worker count — aggregates identically.
    payload = finalize(run_campaign(matrix, jobs=1, campaign_seed=2024))

    # 3. The aggregate: who caught what, at what cost.
    print()
    print(render_report(payload))

    counts = payload["summary"]["counts"]
    assert counts["false_positives"] == 0
    assert counts["expectations_missed"] == 0


if __name__ == "__main__":
    main()
