#!/usr/bin/env python3
"""Firmware exploration: regenerate Table I and the §V-B observations.

Runs the three firmware configurations (IRQ / Polling / Optimized) on
the Ibex instruction-set simulator, printing the paper-style breakdown
and the derived facts the paper calls out: the 45-cycle wake latency,
the ≈105-cycle IRQ entry/exit floor, and the savings of each
optimisation.

Run:  python examples/firmware_study.py
"""

from repro.eval import table1
from repro.eval.firmware_analysis import analyze_all, check_latency


def main() -> None:
    computed = table1.compute()
    print(table1.render(computed))

    results = computed["results"]
    irq_call = results["irq"]["call"]
    irq_section = irq_call.section_total("irq")
    print()
    print("§V-B observations, reproduced:")
    print(f"  * IRQ entry/exit overhead: {irq_section.cycles} cycles per check")
    print("    (paper: ~60% of the check; 45 wake + 6-register spill/restore)")
    share = 100.0 * irq_section.cycles / irq_call.total_cycles
    print(f"  * IRQ share of a call check: {share:.0f}% (paper: ~60%)")
    lat = {v: check_latency(results, v) for v in results}
    print(f"  * firmware latencies: IRQ {lat['irq']:.0f}, "
          f"Polling {lat['polling']:.0f}, Optimized {lat['optimized']:.0f}")
    print("    (paper: 267 / 112 / 73)")


if __name__ == "__main__":
    main()
