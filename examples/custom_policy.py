#!/usr/bin/env python3
"""The "any policy in software" claim: a forward-edge policy, no HW change.

TitanCFI's pitch over hardware monitors (paper §II) is that the policy
is firmware: swapping enforcement logic costs a C (here: Python model)
rewrite, not an RTL respin.  This example takes the same commit-log
stream the filters produce and runs TWO policies over it:

* the shadow stack (backward edges), and
* a label-based forward-edge policy that only admits indirect transfers
  landing on registered function entry points,

then shows a jump-table corruption that the shadow stack misses but the
forward-edge policy catches.

Run:  python examples/custom_policy.py
"""

from repro.attacks.programs import indirect_jump_program
from repro.core.filter import CfiFilter
from repro.cva6.scoreboard import ScoreboardEntry
from repro.firmware.policies import (
    CheckResult,
    CompositePolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.hart.core import Hart
from repro.hart.ports import MapPort
from repro.hart.timing import Cva6Timing
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram
from repro.system.addresses import AddressMap


def commit_logs(program, addresses):
    """Run a program on a bare CVA6 ISS and collect its commit logs."""
    bus = MemoryMap("host")
    bus.add(addresses.dram_base, Ram(addresses.dram_size), name="dram")
    bus.write_bytes(program.base, program.data)
    hart = Hart(MapPort(bus), Cva6Timing(), xlen=64, reset_pc=program.base)
    cfi_filter = CfiFilter()
    logs = []
    while not hart.halted:
        entry = ScoreboardEntry.from_step(hart.step())
        log = cfi_filter.examine(entry)
        if log is not None:
            logs.append(log)
    return logs, hart


def main() -> None:
    addresses = AddressMap()

    for corrupt in (False, True):
        program = indirect_jump_program(addresses, corrupt=corrupt)
        logs, hart = commit_logs(program, addresses)

        shadow = ShadowStackPolicy()
        forward = ForwardEdgePolicy({program.symbols["handler"]})
        composite = CompositePolicy([shadow, forward])
        verdicts = [composite.check(log) for log in logs]

        label = "corrupted jump table" if corrupt else "legitimate dispatch"
        flagged = CheckResult.VIOLATION in verdicts
        print(f"{label}:")
        print(f"  commit logs checked:        {len(logs)}")
        print(f"  shadow stack violations:    {shadow.stats.violations}")
        print(f"  forward-edge violations:    {forward.stats.violations}")
        print(f"  composite verdict:          "
              f"{'VIOLATION' if flagged else 'clean'}")
        print(f"  a0 after run:               {hart.regs.read(10):#x}")
        print()
        if corrupt:
            assert flagged and shadow.stats.violations == 0
        else:
            assert not flagged

    print("The jump-table corruption is invisible to return-address")
    print("protection but caught by the forward-edge policy - swapped in")
    print("with zero hardware change, as §II argues.")


if __name__ == "__main__":
    main()
