#!/usr/bin/env python3
"""Cross-hart adversarial faults against the shared RoT monitor.

A compromised application hart on a many-hart SoC does not have to
attack its *own* control flow — it can attack the monitor's transport:
spoof another hart's stream, flood the shared doorbell, or squat on
the arbiter grant.  This demo shows the monitor's defense layer
absorbing all three:

1. **Baseline** — N=2, a ROP attack on hart 0 next to a benign
   deep-recursion peer on hart 1, defense armed, no adversary.
2. **Attacks** — the same cell with hart 1 running each adversarial
   fault plan.  Every attack ends with hart 1 quarantined (its queue
   flipped to lossy drop-oldest so the core sheds load instead of
   wedging the SoC) while hart 0's verdict and detection latency stay
   bit-identical to the baseline — the hard contract.
3. **Graceful degradation** — the quarantined hart keeps running and
   its drop counter absorbs the pressure; the benign hart drops
   nothing.

Run:  PYTHONPATH=src python examples/xhart_attack_demo.py
"""

import random

from repro.campaign.spec import VICTIMS
from repro.core.config import TitanCfiConfig
from repro.faults import attach_faults, build_plan
from repro.firmware.policies import ShadowStackPolicy
from repro.policyhost import mount_policy_host
from repro.system import SystemSimulator, Topology, build_soc

SEED = 1234
PLANS = ("xhart-spoof", "xhart-flood", "xhart-hold")


def build(fault_plan=None):
    """N=2: rop on hart 0, deep-recursion peer on hart 1, one shared
    monitor with the defense layer armed.  The adversarial plan (if
    any) is scoped to hart 1 — hart 0 is the innocent bystander."""
    topo = Topology(n_harts=2)
    soc = build_soc(
        cfi_config=TitanCfiConfig(raise_on_violation=False), topology=topo
    )
    for hart_id, victim in enumerate(("rop", "deep-recursion")):
        amap = topo.address_map(hart_id, soc.addresses)
        program = VICTIMS[victim].builder(amap, random.Random(SEED + hart_id))
        soc.load_host_program(program, hart_id=hart_id)
    mount_policy_host(soc, ShadowStackPolicy(), defense=True)
    if fault_plan is not None:
        attach_faults(soc, build_plan(fault_plan, SEED).scoped(1))
    return soc


def describe(row):
    verdict = "VIOLATION" if row["detected"] else "clean"
    latency = (f", latency {row['detection_latency']}"
               if row["detected"] else "")
    tag = " [QUARANTINED]" if row["quarantined"] else ""
    return f"{verdict}{latency}{tag}"


def main() -> None:
    # 1. Baseline: no adversary, defense armed but silent.
    soc = build()
    baseline = SystemSimulator(soc).run()
    print("baseline (no adversary):")
    for row in baseline.per_hart:
        print(f"  hart {row['hart']}: {describe(row)}")
    assert not any(row["quarantined"] for row in baseline.per_hart)

    # 2. Each adversarial plan, scoped to hart 1.
    for plan in PLANS:
        soc = build(fault_plan=plan)
        report = SystemSimulator(soc).run()
        summary = soc.policy_host.defense.summary()
        print(f"\n{plan} from hart 1:")
        for row in report.per_hart:
            print(f"  hart {row['hart']}: {describe(row)}")
        print(f"  defense: strikes {summary['strikes']}, "
              f"spoofs detected {summary['spoofs_detected']}, "
              f"floods quarantined {summary['floods_quarantined']}, "
              f"holds released {summary['holds_released']}")

        # The attacker ends quarantined; the arbiter agrees.
        attacker = report.per_hart[1]
        assert attacker["quarantined"], plan
        assert soc.doorbell_arbiter.quarantined(1), plan

        # The hard contract: the benign hart's verdict and latency are
        # bit-identical to the no-adversary baseline.
        benign, base = report.per_hart[0], baseline.per_hart[0]
        for field in ("detected", "violation_kind", "detection_latency"):
            assert benign[field] == base[field], (plan, field)

        # 3. Graceful degradation: the quarantined hart sheds load
        # through its drop-oldest queue; the benign hart drops nothing.
        if attacker["cfi"]["dropped"]:
            print(f"  quarantined hart shed {attacker['cfi']['dropped']} "
                  f"events (benign hart shed {benign['cfi']['dropped']})")
        assert benign["cfi"]["dropped"] == 0, plan

    print("\nall attacks quarantined; benign hart bit-identical throughout")


if __name__ == "__main__":
    main()
