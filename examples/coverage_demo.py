#!/usr/bin/env python3
"""Coverage-guided scenario synthesis: generate → measure → steer.

Walks the ``repro.coverage`` loop in a temporary directory:

1. run a bounded guided fuzz loop — uniform seeds first, then mutants
   of frontier (rare-point) corpus entries, every candidate simulated
   under every policy and checked against the static oracle;
2. inspect what the loop learned: the coverage map by axis and the
   content-addressed corpus of coverage-novel programs;
3. re-run the identical configuration into a second directory — every
   artifact must match byte for byte (the loop is a pure function of
   its config);
4. run the blind uniform-generation baseline at DOUBLE the iteration
   budget and watch the guided loop still win on distinct coverage.

Run:  python examples/coverage_demo.py
"""

import tempfile
from pathlib import Path

from repro.coverage import CoverageCorpus, FuzzConfig, fuzz, uniform_baseline
from repro.coverage.fuzz import CORPUS_DIR

ITERS = 60
SEED = 3


def artifact_bytes(root: Path) -> dict:
    return {
        name: (root / name).read_bytes()
        for name in ("fuzz.jsonl", "coverage.json", "campaign.json",
                     "campaign.csv", "corpus/index.json")
    }


def main() -> None:
    config = FuzzConfig(iterations=ITERS, seed=SEED)

    # 1. The guided loop: seed phase, then frontier-steered mutation.
    print(f"guided fuzz loop ({ITERS} candidates, seed {SEED}):")
    root_a = Path(tempfile.mkdtemp(prefix="titancfi-coverage-a-"))
    summary = fuzz(root_a, config)
    print(f"  statuses: {summary['statuses']}")
    print(f"  distinct coverage points: {summary['distinct_points']} "
          f"({summary['observations']} observations)")
    print(f"  oracle disagreements: {summary['oracle_disagreements']}")
    assert summary["oracle_disagreements"] == 0

    # 2. What it learned, by axis, and what it kept.
    print("coverage by axis:")
    for axis, count in sorted(summary["by_axis"].items()):
        print(f"  {axis:<15} {count}")
    corpus = CoverageCorpus(root_a / CORPUS_DIR)
    print(f"corpus: {len(corpus)} coverage-novel programs "
          f"(content-addressed under {CORPUS_DIR}/objects/)")

    # 3. Determinism: same config, fresh directory, identical bytes.
    root_b = Path(tempfile.mkdtemp(prefix="titancfi-coverage-b-"))
    fuzz(root_b, config)
    assert artifact_bytes(root_a) == artifact_bytes(root_b)
    print("re-run: every artifact byte-identical (journal, coverage map, "
          "campaign.json/csv, corpus index)")

    # 4. Blind generation with twice the budget still covers less.
    baseline = uniform_baseline(ITERS * 2, seed=SEED)
    print(f"uniform baseline at 2x budget ({ITERS * 2} candidates): "
          f"{baseline['distinct_points']} distinct points")
    assert summary["distinct_points"] > baseline["distinct_points"]
    print(f"guided loop wins: {summary['distinct_points']} > "
          f"{baseline['distinct_points']} distinct points at half the "
          "iteration budget")


if __name__ == "__main__":
    main()
