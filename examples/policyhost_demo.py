#!/usr/bin/env python3
"""Any policy, cycle-accurately: the policy-host subsystem.

TitanCFI's pitch is that the CFI policy is *software* in the RoT — new
enforcement logic is a firmware rewrite, not an RTL respin.  The cosim
backend originally proved that for one policy (the RV32 shadow-stack
firmware).  The policy host closes the gap: any Python policy mounts
behind the CFI mailbox as a first-class SoC agent, speaking the exact
firmware handshake on a cycle model calibrated from the firmware's
measured latencies.  This demo shows:

1. **Exactness** — `PolicyHost(ShadowStackPolicy)` is indistinguishable
   from the RV32 firmware: same verdict, same detection latency, same
   cycle totals, same per-check latencies.
2. **Flexibility** — a MAC-authenticated return policy (CCFI-style,
   which the firmware does not implement) catches the same ROP attack,
   paying its modelled HMAC surcharge per check.
3. **Forward edges** — a label-based forward-edge policy catches a JOP
   dispatcher hijack the shadow stack is blind to, now with a real
   cycle-accurate detection latency instead of a trace-level verdict.

Run:  PYTHONPATH=src python examples/policyhost_demo.py
"""

from repro.attacks.programs import jop_program, rop_program
from repro.attacks.rop import run_attack_scenario
from repro.firmware.policies import (
    CryptoReturnPolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.system.addresses import AddressMap


def main() -> None:
    addresses = AddressMap()
    rop = rop_program(addresses)

    # 1. Shadow stack: firmware vs policy host must be identical.
    firmware = run_attack_scenario(rop)
    host = run_attack_scenario(rop, policy_backend="host",
                               policy=ShadowStackPolicy())
    print("ROP victim, shadow stack (firmware vs policy host):")
    for label, outcome in (("RV32 firmware", firmware), ("policy host", host)):
        r = outcome.report
        print(f"  {label:14s}: detected={outcome.detected}  "
              f"cycles={r.cycles}  detection latency={r.detection_latency}  "
              f"mean check latency={r.cfi['mean_check_latency']:.1f}")
    assert (firmware.report.cycles, firmware.report.detection_latency) == \
           (host.report.cycles, host.report.detection_latency)
    print("  -> cycle-exact: the writer cannot tell the agents apart")
    print()

    # 2. A policy the firmware does not implement: MAC'd returns.
    crypto = run_attack_scenario(rop, policy_backend="host",
                                 policy=CryptoReturnPolicy())
    print("Same attack under MAC-authenticated returns (CCFI-style):")
    print(f"  detected={crypto.detected}  "
          f"detection latency={crypto.report.detection_latency} "
          f"(+{crypto.report.detection_latency - host.report.detection_latency} "
          "cycles of modelled HMAC work per check)")
    assert crypto.detected
    assert crypto.report.detection_latency > host.report.detection_latency
    print()

    # 3. Forward-edge enforcement with cycle-accurate latency.
    jop = jop_program(addresses, corrupt=True)
    targets = {jop.symbols["handler_add"], jop.symbols["handler_shift"]}
    forward = run_attack_scenario(jop, policy_backend="host",
                                  policy=ForwardEdgePolicy(targets))
    blind = run_attack_scenario(jop, policy_backend="host",
                                policy=ShadowStackPolicy())
    print("JOP dispatcher hijack:")
    print(f"  shadow stack : detected={blind.detected} (return edges only)")
    print(f"  forward edge : detected={forward.detected}  "
          f"kind={forward.violation.kind}  "
          f"detection latency={forward.report.detection_latency}")
    assert forward.detected and not blind.detected
    print()
    print("Any Python policy now runs on the cosim backend with")
    print("firmware-calibrated, engine-invariant timing.")


if __name__ == "__main__":
    main()
