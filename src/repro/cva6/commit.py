"""The CVA6 commit stage, extended with the TitanCFI tap (paper §IV-B).

The commit stage wraps the host hart.  Each time the co-simulator lets
it advance, it retires one instruction, runs the retiring scoreboard
entry through the CFI stage's filter, and — when the CFI queue cannot
accept a control-flow log — *inhibits commit*: the hart is held (a skid
buffer keeps the filtered log) and stall cycles accumulate until the
queue drains.  This reproduces the paper's queue-full stall behaviour
at instruction granularity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cva6.scoreboard import ScoreboardEntry
from repro.hart.core import Hart, StepResult

if TYPE_CHECKING:  # break the core ↔ cva6 import cycle (types only)
    from repro.core.commit_log import CommitLog
    from repro.core.stage import CfiStage


class CommitStage:
    """Commit-side binding between a host hart and the CFI stage.

    Args:
        hart: the CVA6 instruction-set simulator.
        cfi_stage: the TitanCFI stage, or ``None`` for an unprotected
            baseline core (used to measure raw execution time).
    """

    def __init__(self, hart: Hart, cfi_stage: "Optional[CfiStage]" = None):
        self.hart = hart
        self.cfi = cfi_stage
        self.stall_cycles = 0
        self.retired = 0
        self._skid: "Optional[CommitLog]" = None
        self._blocked = False

    @property
    def stalled(self) -> bool:
        """True while commit is inhibited by the CFI queue."""
        return self._skid is not None or self._blocked

    def stall_skippable(self) -> bool:
        """True when :meth:`try_advance` would provably keep returning
        ``None`` until the CFI stage next changes state.

        Used by the event-driven co-simulator: a blocked commit waits on
        writer quiescence, a skidded commit waits on a queue slot, and
        both can only be released by a log-writer transition.
        """
        if self.cfi is None:
            return False
        if self._blocked:
            return not self.cfi.quiescent
        if self._skid is not None:
            # A lossy queue accepts the skidded log on the very next
            # cycle (drop-oldest), so the stall is never skippable.
            return self.cfi.queue.full and not self.cfi.controller.lossy
        return False

    def note_batch_retired(self, count: int) -> None:
        """Account ``count`` instructions retired by a batched window.

        The batched fast path (:meth:`repro.hart.core.Hart.run_n`) only
        executes instructions the CFI filter would *examine but never
        select* — plain ops, branches, direct jumps — so replaying the
        per-cycle path's bookkeeping is two bulk increments: the commit
        counter here, and the filter's ``examined`` statistic (port 0,
        the single-issue port this model commits on).
        """
        self.retired += count
        if self.cfi is not None:
            self.cfi.note_batch_examined(count)

    def skip_stall(self, cycles: int) -> None:
        """Account ``cycles`` inhibited cycles in one jump.

        Exact bulk replay of that many stalled :meth:`try_advance`
        calls: stall cycles accrue, and a skidded log re-offered against
        a full queue counts one full-stall per cycle, as the queue
        controller would have.
        """
        self.stall_cycles += cycles
        if self._skid is not None:
            self.cfi.controller.record_full_stall(cycles)

    def try_advance(self) -> Optional[StepResult]:
        """Advance by one instruction if commit is not inhibited.

        Returns the hart's step result, or ``None`` for a stall cycle
        (the caller charges exactly one cycle for the latter).
        """
        if self._blocked:
            # Blocking mode: wait for the in-flight check to finish.
            if not self.cfi.quiescent:
                self.stall_cycles += 1
                return None
            self._blocked = False

        if self._skid is not None:
            if self.cfi.queue.full and not self.cfi.controller.lossy:
                # Fast replay-fail: a single-port push against a full
                # queue is exactly what the controller would reject;
                # account the full-stall without the arbitration walk.
                # (A lossy controller never rejects — it sheds the
                # oldest entry — so it must take the real push path.)
                self.cfi.controller.record_full_stall()
                self.stall_cycles += 1
                return None
            if not self.cfi.try_push(self._skid):
                self.stall_cycles += 1
                return None
            # The queue accepted the held log this cycle; the stalled
            # instruction retires now and the pipeline resumes next cycle
            # (keeps the one-push-per-cycle queue invariant).
            self._skid = None
            self.stall_cycles += 1
            if self.cfi.config.blocking:
                self._blocked = True
            return None

        result = self.hart.step()
        entry = ScoreboardEntry.from_step(result)
        if entry is not None:
            self.retired += 1
            if self.cfi is not None:
                log = self.cfi.examine_port(0, entry)
                if log is not None:
                    if not self.cfi.try_push(log):
                        # Queue full: hold commit of this instruction until
                        # a slot frees (the paper's "inhibits the CVA6
                        # commit stage, which eventually results in
                        # stalling the core").
                        self._skid = log
                    elif self.cfi.config.blocking:
                        self._blocked = True
        return result
