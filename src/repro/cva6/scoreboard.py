"""Scoreboard entries: what a CVA6 commit port emits each cycle.

"A valid scoreboard entry represents an issued instruction which has
been executed, and is ready to be retired.  From a scoreboard entry the
CFI Filter verifies if the retired instruction is relevant to CFI, and
it extracts useful metadata, called the commit log" (paper §IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hart.core import StepEvent, StepResult
from repro.isa.decode import Instruction


@dataclass(slots=True)
class ScoreboardEntry:
    """One retiring instruction as seen by a commit port.

    Immutable by convention; ``slots`` (not ``frozen``) because one
    entry is allocated per retired host instruction on the hot loop.

    Attributes:
        pc: program counter of the instruction.
        insn: decoded instruction (carries the uncompressed encoding).
        fall_through: ``pc + insn.length``.
        target: architectural next pc (branch/jump destination if taken).
        taken: whether a control transfer happened.
        valid: commit-port valid bit.
    """

    pc: int
    insn: Instruction
    fall_through: int
    target: int
    taken: bool
    valid: bool = True

    @classmethod
    def from_step(cls, result: StepResult) -> Optional["ScoreboardEntry"]:
        """Build an entry from an ISS step; ``None`` for non-retiring steps."""
        if result.insn is None:
            return None
        if result.event not in (StepEvent.RETIRED, StepEvent.MRET, StepEvent.WFI_SLEEP):
            return None
        return cls(
            pc=result.pc,
            insn=result.insn,
            fall_through=result.fall_through,
            target=result.next_pc,
            taken=result.taken,
        )
