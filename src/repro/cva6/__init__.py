"""CVA6 host-core model: scoreboard entries and the two-port commit stage.

The execution engine itself lives in :mod:`repro.hart`; this package adds
the commit-side interface TitanCFI taps into (paper §III-A / §IV-B).
"""

from repro.cva6.scoreboard import ScoreboardEntry
from repro.cva6.commit import CommitStage

__all__ = ["ScoreboardEntry", "CommitStage"]
