"""Scenario synthesis: procedural victims, attack mutations, a static
expected-verdict oracle, and shrinking of oracle/simulation disagreements.

The subsystem turns the simulator stack into a scenario-exploration
machine: instead of replaying a hand-written victim corpus against a
hand-maintained verdict table, it *generates* well-formed RV64 victim
programs (random call graphs, dispatch tables, loops), *plants* attacks
into them (return corruption, JOP chains, call hijacks, callsite-reuse
returns) and *derives* the verdict every policy must reach from the
program's own control-flow structure.  See the module docstrings of
:mod:`repro.synth.ir`, :mod:`repro.synth.generator` and
:mod:`repro.synth.oracle` for the three layers, and
:mod:`repro.synth.minimize` / :mod:`repro.synth.corpus` for what happens
when a prediction and a simulation ever disagree.

The campaign registry consumes this module through
:class:`SynthBundle`: one memoised object per ``(family, seed, base)``
holding the generated model, the assembled program, the policy label
sets and the oracle's expected verdicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.isa.asm import Program
from repro.synth.generator import FAMILIES, FEATURES, MAX_EVENTS, generate
from repro.synth.ir import emit, label_sets, plan_events
from repro.synth.oracle import ORACLE_POLICIES, expected_verdicts, resolve_events

__all__ = [
    "FAMILIES",
    "FEATURES",
    "MAX_EVENTS",
    "ORACLE_POLICIES",
    "SynthBundle",
    "bundle",
    "bundle_for_seed",
    "bundle_from_rng",
    "clear_bundle_cache",
    "expected_verdicts",
    "generate",
    "plan_events",
    "resolve_events",
]


@dataclass(frozen=True)
class SynthBundle:
    """Everything the campaign needs to run one synthesized victim.

    Attributes:
        family: synthesis family (see :data:`FAMILIES`).
        seed: the draw that generated the model.
        model: the IR (JSON-able; feed to :mod:`repro.synth.minimize`).
        program: the assembled RV64 image.
        entry_points: label names of the fine-grained forward-edge set.
        function_entries: label names of the coarse function-entry set.
        expected: policy name → oracle verdict.
    """

    family: str
    seed: int
    model: dict
    program: Program
    entry_points: Tuple[str, ...]
    function_entries: Tuple[str, ...]
    expected: Dict[str, bool]


#: Memoised bundles: generation, assembly and the oracle are pure
#: functions of the key, so campaigns sweeping hundreds of seeds pay
#: each build once per process.  Bounded like the assembly cache.
_BUNDLES: Dict[Tuple[str, int, int, Tuple[str, ...]], SynthBundle] = {}
_BUNDLE_CACHE_LIMIT = 1024


def clear_bundle_cache() -> None:
    """Drop every memoised bundle (tests)."""
    _BUNDLES.clear()


def bundle(family: str, seed: int, base: int,
           features: Tuple[str, ...] = ()) -> SynthBundle:
    """The (memoised) bundle for ``(family, seed)`` loaded at ``base``.

    ``features`` forwards to :func:`repro.synth.generator.generate` —
    the coverage campaign's victims grow bounded recursion and indirect
    tail calls on top of the family pipeline.
    """
    key = (family, seed, base, features)
    cached = _BUNDLES.get(key)
    if cached is not None:
        return cached
    model = generate(family, seed, features=features)
    program = emit(model, base)
    entry_points, function_entries = label_sets(model)
    built = SynthBundle(
        family=family,
        seed=seed,
        model=model,
        program=program,
        entry_points=entry_points,
        function_entries=function_entries,
        expected=expected_verdicts(model, program),
    )
    if len(_BUNDLES) >= _BUNDLE_CACHE_LIMIT:
        _BUNDLES.clear()
    _BUNDLES[key] = built
    return built


def _draw(rng: random.Random) -> int:
    """The model seed a victim builder draws from its scenario RNG.

    One fixed derivation shared by :func:`bundle_from_rng` (the registry
    builder path) and :func:`bundle_for_seed` (the runner's oracle
    path), so both resolve the identical bundle for a scenario.
    """
    return rng.getrandbits(64)


def bundle_from_rng(family: str, rng: random.Random, base: int,
                    features: Tuple[str, ...] = ()) -> SynthBundle:
    """Bundle for a victim builder's ``(addresses, rng)`` call."""
    return bundle(family, _draw(rng), base, features=features)


def bundle_for_seed(family: str, scenario_seed: int, base: int,
                    features: Tuple[str, ...] = ()) -> SynthBundle:
    """Bundle for a scenario's derived seed (the runner-side entry)."""
    return bundle(family, _draw(random.Random(scenario_seed)), base,
                  features=features)
