"""The scenario-synthesis intermediate representation (IR).

A synthesized victim is described by a **model**: a plain JSON-able dict
(functions with structured bodies, plus at most one planted attack) that
three independent consumers interpret:

* :func:`emit` lowers it to RV64 assembly source for the real
  :class:`~repro.isa.asm.Assembler` (so synthesized victims run on the
  same simulators, CFI filter and firmware as the hand-written corpus);
* :func:`plan_events` walks the same structure *abstractly* and returns
  the exact sequence of CFI-relevant control-flow events the program
  will retire — the static oracle's ground truth;
* :func:`~repro.synth.minimize.minimize_model` shrinks it structurally
  when an oracle-vs-simulation disagreement needs a minimal reproducer.

The correspondence between :func:`emit` and :func:`plan_events` is the
load-bearing invariant of the subsystem: both walk the identical op
list, and the emitted image plants a ``cf_*`` label on every
control-flow instruction so the oracle can verify — through
:mod:`repro.isa.cflow` — that each planned event matches the encoding
actually in the image (see :mod:`repro.synth.oracle`).

Model schema (``schema: 1``)::

    {"schema": 1,
     "functions": [{"name": "main", "body": [op, ...]}, ...],
     "attack": null | {"kind": ..., ...}}

Ops (every op carries a model-unique integer ``uid``):

* ``{"op": "alu", "uid": u, "n": k}`` — ``k`` filler ALU instructions.
* ``{"op": "loop", "uid": u, "reg": "s4", "count": c, "body": [...]}``
  — a counted loop; ``reg`` comes from :data:`LOOP_REGS` and must be
  unique per loop across the whole model (so nesting and calls can
  never clobber a live counter).
* ``{"op": "call", "uid": u, "callee": name, "indirect": bool}`` — a
  function call, direct (``jal ra``) or through a register
  (``la``/``jalr ra``).  The callee graph must be acyclic.
* ``{"op": "dispatch", "uid": u, "handlers": [k0, k1]}`` — a
  jump-table dispatcher in the style of the JOP literature's
  dispatcher gadget: the table is materialised in DRAM and walked with
  register-indirect jumps; each handler runs ``ki`` filler
  instructions and jumps back.
* ``{"op": "hijack", "uid": u, "decoy": name}`` — an indirect call
  through a function-pointer cell that the planted attack overwrites
  (only present when ``attack.kind == "call-hijack"``).
* ``{"op": "rtc", "uid": u}`` — the callsite-reuse pattern: a call to
  ``fn_rtc_helper`` whose fall-through (a *valid* call site) is the
  diversion target of ``fn_rtc_victim``'s corrupted return (only
  present when ``attack.kind == "ret-to-callsite"``).
* ``{"op": "recurse", "uid": u, "fn": name, "depth": d, "reg": "s4"}``
  — bounded self-recursion: the site seeds ``reg`` (from
  :data:`LOOP_REGS`, unique like a loop counter) with ``d`` and calls
  ``fn``, which re-calls itself until the counter drains.  ``fn`` is
  dedicated to its one recurse op: pure filler, never referenced by
  any other op, so the unwind depth is exactly ``d`` by construction.
* ``{"op": "tailcall", "uid": u, "callee": name}`` — an indirect tail
  call (``la``/``jr``): must be the *last* op of a frameless non-main
  function, whose intact ``ra`` the pure-filler ``callee`` returns
  through — one planned ijump plus the callee's return, and the
  enclosing function's own ``ret`` never retires.

Attacks (at most one per model):

* ``{"kind": "rop", "victim": name}`` — ``victim``'s saved return
  address is overwritten with the ``rop_gadget`` address before the
  epilogue reloads it.
* ``{"kind": "jop", "uid": u}`` — dispatch ``u``'s table is filled
  with mid-function gadget fragments (``jop_g1`` → ``jop_g2``) instead
  of its handlers.
* ``{"kind": "call-hijack", "uid": u}`` — hijack op ``u``'s pointer
  cell is retargeted to ``fn_chj_gadget``, a *plausible function
  entry* (the coarse-CFI blind spot).
* ``{"kind": "ret-to-callsite", "uid": u}`` — rtc op ``u``'s victim
  return is diverted to the helper call's fall-through, a
  call-preceded address (the coarse-return blind spot).

Every attack's payload ends in ``ebreak`` with ``GADGET_MARKER`` in
``a0``, so the campaign's marker invariants hold for synthesized
victims exactly as for the hand-written ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.attacks.programs import CLEAN_MARKER, GADGET_MARKER
from repro.errors import SynthError
from repro.isa.asm import Assembler, Program

SCHEMA = 1

#: Loop-counter register pool.  Each loop in a model owns one register
#: exclusively, which is what makes counters immune to nesting and to
#: callee clobbering without any save/restore discipline.
LOOP_REGS = ("s4", "s5", "s6", "s7", "s8", "s9")

#: Attack kinds (values of ``model["attack"]["kind"]``).
ATTACK_KINDS = ("rop", "jop", "call-hijack", "ret-to-callsite")

#: Bound on a ``recurse`` op's total invocation count.  Keeps the
#: planned unwind (2 × depth events) small against the generator's
#: event budget and the stack well inside the victim's DRAM window.
MAX_RECURSION_DEPTH = 8

_STACK_TOP_OFF = 0xF0_0000
#: DRAM area holding dispatch tables and hijacked function-pointer
#: cells (one 0x40-byte slot per dispatch/hijack op, below the stack).
_TABLE_OFF = 0xE2_0000

#: Filler instruction rotation (side-effect-free scratch arithmetic on
#: registers nothing else in the IR uses).
_ALU_POOL = (
    "addi t5, t5, {k}",
    "xori t6, t6, {k}",
    "add  a1, t5, t6",
    "andi a2, a1, 63",
    "slli a3, a2, 1",
    "sub  a4, a3, t5",
)


# --------------------------------------------------------------------------
# Validation
# --------------------------------------------------------------------------

def _ops(body: List[dict]) -> Iterator[dict]:
    """Depth-first iteration over a body's ops (loops included)."""
    for op in body:
        yield op
        if op["op"] == "loop":
            yield from _ops(op["body"])


def model_ops(model: dict) -> Iterator[dict]:
    """Depth-first iteration over every op in the model."""
    for function in model["functions"]:
        yield from _ops(function["body"])


def check_model(model: dict) -> None:
    """Validate a model; raises :class:`SynthError` on any defect.

    The checks are exactly the assumptions :func:`emit` and
    :func:`plan_events` rely on — a model that passes here produces an
    image and a plan that agree by construction.
    """
    if model.get("schema") != SCHEMA:
        raise SynthError(f"unsupported model schema {model.get('schema')!r}")
    functions = model.get("functions") or []
    if not functions or functions[0]["name"] != "main":
        raise SynthError("model needs functions with 'main' first")
    names = [f["name"] for f in functions]
    if len(set(names)) != len(names):
        raise SynthError(f"duplicate function names: {names}")

    uids: List[int] = []
    loop_regs: List[str] = []
    attack = model.get("attack")
    kind = attack["kind"] if attack else None
    if attack and kind not in ATTACK_KINDS:
        raise SynthError(f"unknown attack kind {kind!r}")

    by_name = {f["name"]: f for f in functions}
    for function in functions:
        for op in _ops(function["body"]):
            uids.append(op["uid"])
            if op["op"] == "alu":
                if op["n"] < 0:
                    raise SynthError("alu op with negative count")
            elif op["op"] == "loop":
                if op["reg"] not in LOOP_REGS:
                    raise SynthError(f"loop reg {op['reg']!r} not in pool")
                if op["count"] < 1:
                    raise SynthError("loop count must be >= 1")
                loop_regs.append(op["reg"])
            elif op["op"] == "call":
                if op["callee"] not in by_name:
                    raise SynthError(f"call to unknown function {op['callee']!r}")
            elif op["op"] == "dispatch":
                if len(op["handlers"]) != 2:
                    raise SynthError("dispatch needs exactly 2 handlers")
            elif op["op"] == "hijack":
                if kind != "call-hijack":
                    raise SynthError("hijack op without a call-hijack attack")
                if op["decoy"] not in by_name:
                    raise SynthError(f"hijack decoy {op['decoy']!r} unknown")
            elif op["op"] == "rtc":
                if kind != "ret-to-callsite":
                    raise SynthError("rtc op without a ret-to-callsite attack")
            elif op["op"] == "recurse":
                if op["fn"] not in by_name:
                    raise SynthError(f"recurse into unknown function {op['fn']!r}")
                if not 1 <= op["depth"] <= MAX_RECURSION_DEPTH:
                    raise SynthError(
                        f"recurse depth {op['depth']} outside "
                        f"1..{MAX_RECURSION_DEPTH}"
                    )
                if op["reg"] not in LOOP_REGS:
                    raise SynthError(f"recurse reg {op['reg']!r} not in pool")
                loop_regs.append(op["reg"])
            elif op["op"] == "tailcall":
                if op["callee"] not in by_name:
                    raise SynthError(
                        f"tail call to unknown function {op['callee']!r}"
                    )
            else:
                raise SynthError(f"unknown op {op['op']!r}")
    if len(set(uids)) != len(uids):
        raise SynthError(f"duplicate op uids: {sorted(uids)}")
    if len(set(loop_regs)) != len(loop_regs):
        raise SynthError("loop registers must be unique across the model")

    # The call graph must be acyclic (the plan walk would not terminate).
    # Recursion is allowed only through the bounded ``recurse`` op, whose
    # self-edge lives outside this graph and drains a counted register.
    calling: Dict[str, List[str]] = {
        f["name"]: [op["callee"] for op in _ops(f["body"])
                    if op["op"] in ("call", "tailcall")]
        + [op["fn"] for op in _ops(f["body"]) if op["op"] == "recurse"]
        for f in functions
    }
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        if state.get(name) == 1:
            raise SynthError(f"call cycle through {name!r}")
        if state.get(name) == 2:
            return
        state[name] = 1
        for callee in calling[name]:
            visit(callee)
        state[name] = 2

    visit("main")

    def pure_filler(name: str) -> bool:
        return all(op["op"] == "alu" for op in _ops(by_name[name]["body"]))

    # ``recurse`` targets are dedicated: pure filler, non-main, exactly
    # one recurse op each, and referenced by nothing else — the emitted
    # self-call/counter pattern is the *only* way in, which is what
    # bounds the unwind.
    recursed: Dict[str, int] = {}
    for op in [o for o in model_ops(model) if o["op"] == "recurse"]:
        if op["fn"] in recursed:
            raise SynthError(f"function {op['fn']!r} has two recurse sites")
        recursed[op["fn"]] = op["uid"]
    for fn_name in recursed:
        if fn_name == "main" or not pure_filler(fn_name):
            raise SynthError(
                f"recurse target {fn_name!r} must be a pure-filler "
                "non-main function"
            )
        referenced = (
            any(op["op"] in ("call", "tailcall")
                and op.get("callee") == fn_name
                for op in model_ops(model))
            or any(op["op"] == "hijack" and op["decoy"] == fn_name
                   for op in model_ops(model))
            or (kind == "rop" and attack["victim"] == fn_name)
            or fn_name in ("fn_rtc_helper", "fn_rtc_victim")
        )
        if referenced:
            raise SynthError(
                f"recurse target {fn_name!r} may not be referenced by "
                "other ops"
            )

    # ``tailcall`` sites: last op of a frameless non-main function, into
    # a pure-filler leaf that returns through the intact ``ra``.
    for function in functions:
        tails = [op for op in _ops(function["body"]) if op["op"] == "tailcall"]
        if not tails:
            continue
        name = function["name"]
        body = function["body"]
        if name == "main":
            raise SynthError("main cannot end in a tail call")
        if len(tails) != 1 or not body or body[-1] is not tails[0]:
            raise SynthError(
                f"tail call in {name!r} must be its single final op"
            )
        if any(op["op"] in ("call", "hijack", "rtc", "recurse")
               for op in _ops(body)) or _corruption(model, name) is not None:
            raise SynthError(
                f"tail-calling function {name!r} must stay frameless"
            )
        callee = tails[0]["callee"]
        if callee == "main" or callee == name or not pure_filler(callee) \
                or callee in recursed or _corruption(model, callee) is not None:
            raise SynthError(
                f"tail callee {callee!r} must be a pure-filler leaf"
            )

    if kind == "rop":
        victim = attack["victim"]
        if victim not in by_name or victim == "main":
            raise SynthError(f"rop victim {victim!r} must be a non-main function")
    elif kind == "jop":
        dispatches = [op["uid"] for op in model_ops(model) if op["op"] == "dispatch"]
        if attack["uid"] not in dispatches:
            raise SynthError(f"jop attack names unknown dispatch uid {attack['uid']}")
    elif kind == "call-hijack":
        hijacks = [op["uid"] for op in model_ops(model) if op["op"] == "hijack"]
        if attack["uid"] != (hijacks[0] if len(hijacks) == 1 else None):
            raise SynthError("call-hijack attack needs exactly its one hijack op")
    elif kind == "ret-to-callsite":
        rtcs = [op["uid"] for op in model_ops(model) if op["op"] == "rtc"]
        if attack["uid"] != (rtcs[0] if len(rtcs) == 1 else None):
            raise SynthError("ret-to-callsite attack needs exactly its one rtc op")
        for needed in ("fn_rtc_helper", "fn_rtc_victim"):
            if needed not in by_name:
                raise SynthError(f"ret-to-callsite model lacks {needed}")
            if any(True for _ in _ops(by_name[needed]["body"])
                   if _["op"] not in ("alu",)):
                raise SynthError(f"{needed} body must be pure filler")


# --------------------------------------------------------------------------
# Shared structural queries (emit and plan must answer these identically)
# --------------------------------------------------------------------------

def _has_calls(body: List[dict]) -> bool:
    return any(op["op"] in ("call", "hijack", "rtc", "recurse")
               for op in _ops(body))


def _recurse_sites(model: dict) -> Dict[str, dict]:
    """Map each bounded-recursion target function to its recurse op."""
    return {op["fn"]: op for op in model_ops(model) if op["op"] == "recurse"}


def _corruption(model: dict, name: str) -> Optional[str]:
    """Label a corrupted epilogue of function ``name`` diverts to, if any."""
    attack = model.get("attack")
    if not attack:
        return None
    if attack["kind"] == "rop" and attack["victim"] == name:
        return "rop_gadget"
    if attack["kind"] == "ret-to-callsite" and name == "fn_rtc_victim":
        return f"ret_{attack['uid']}_a"
    return None


def _needs_frame(model: dict, function: dict) -> bool:
    """A function saves/restores ``ra`` iff it makes calls (the
    self-call of a recursion target included) or its saved return
    address is the planted attack's corruption target."""
    return (
        _has_calls(function["body"])
        or function["name"] in _recurse_sites(model)
        or _corruption(model, function["name"]) is not None
    )


def _indirect_targets(model: dict) -> List[str]:
    """Functions legitimately reached by an indirect transfer: these get
    an ``ep_`` alias (the fine-grained forward-edge label set)."""
    targets = []
    for op in model_ops(model):
        if op["op"] == "call" and op["indirect"]:
            targets.append(op["callee"])
        elif op["op"] == "tailcall":
            targets.append(op["callee"])
        elif op["op"] == "hijack":
            targets.append(op["decoy"])
    return sorted(set(targets))


def _dispatch_index(model: dict) -> Dict[int, int]:
    """Stable DRAM-slot index per dispatch/hijack uid."""
    return {
        op["uid"]: index
        for index, op in enumerate(
            op for op in model_ops(model) if op["op"] in ("dispatch", "hijack")
        )
    }


def _jop_uid(model: dict) -> Optional[int]:
    attack = model.get("attack")
    return attack["uid"] if attack and attack["kind"] == "jop" else None


# --------------------------------------------------------------------------
# Emission
# --------------------------------------------------------------------------

def emit_source(model: dict, base: int) -> str:
    """Lower a model to RV64 assembly source loaded at ``base``."""
    check_model(model)
    jop = _jop_uid(model)
    slots = _dispatch_index(model)
    ep_targets = set(_indirect_targets(model))
    recursion = _recurse_sites(model)
    attack = model.get("attack")
    kind = attack["kind"] if attack else None

    lines: List[str] = [f".equ STACK_TOP, {base + _STACK_TOP_OFF:#x}"]
    for uid, index in slots.items():
        lines.append(f".equ SLOT_{uid}, {base + _TABLE_OFF + index * 0x40:#x}")
    handler_blocks: List[str] = []
    alu_index = 0

    def alu(n: int) -> List[str]:
        nonlocal alu_index
        out = []
        for _ in range(n):
            template = _ALU_POOL[alu_index % len(_ALU_POOL)]
            out.append("    " + template.format(k=1 + alu_index % 7))
            alu_index += 1
        return out

    def emit_body(body: List[dict]) -> List[str]:
        out: List[str] = []
        for op in body:
            t = op["op"]
            uid = op["uid"]
            if t == "alu":
                out += alu(op["n"])
            elif t == "loop":
                out.append(f"    li   {op['reg']}, {op['count']}")
                out.append(f"loop_{uid}:")
                out += emit_body(op["body"])
                out.append(f"    addi {op['reg']}, {op['reg']}, -1")
                out.append(f"    bnez {op['reg']}, loop_{uid}")
            elif t == "call":
                if op["indirect"]:
                    out.append(f"    la   t2, {op['callee']}")
                    out.append(f"cf_{uid}:")
                    out.append("    jalr ra, 0(t2)")
                else:
                    out.append(f"cf_{uid}:")
                    out.append(f"    call {op['callee']}")
                out.append(f"ret_{uid}:")
            elif t == "dispatch":
                corrupt = uid == jop
                entries = (
                    ("jop_g1", "jop_g2") if corrupt
                    else (f"fn_d{uid}_h0", f"fn_d{uid}_h1")
                )
                out.append(f"    la   s2, SLOT_{uid}")
                for j, entry in enumerate(entries):
                    out.append(f"    la   t2, {entry}")
                    out.append(f"    sd   t2, {8 * j}(s2)")
                out.append("    li   s3, 0")
                out.append(f"disp_{uid}:")
                out.append("    li   t3, 2")
                out.append(f"    bge  s3, t3, disp_{uid}_done")
                out.append("    slli t2, s3, 3")
                out.append("    add  t2, t2, s2")
                out.append("    ld   t2, 0(t2)")
                out.append("    addi s3, s3, 1")
                out.append(f"cf_{uid}:")
                out.append("    jr   t2")
                out.append(f"disp_{uid}_done:")
                if not corrupt:
                    for j, count in enumerate(op["handlers"]):
                        handler_blocks.append(f"ep_d{uid}_h{j}:")
                        handler_blocks.append(f"fn_d{uid}_h{j}:")
                        handler_blocks.extend(alu(count))
                        handler_blocks.append(f"    j    disp_{uid}")
            elif t == "hijack":
                out.append(f"    la   s2, SLOT_{uid}")
                out.append(f"    la   t2, {op['decoy']}")
                out.append("    sd   t2, 0(s2)")
                out.append("    # ... arbitrary-write primitive retargets the cell ...")
                out.append("    la   t2, fn_chj_gadget")
                out.append("    sd   t2, 0(s2)")
                out.append("    ld   t2, 0(s2)")
                out.append(f"cf_{uid}:")
                out.append("    jalr ra, 0(t2)")
                out.append(f"ret_{uid}:")
            elif t == "rtc":
                out.append(f"cf_{uid}_a:")
                out.append("    call fn_rtc_helper")
                out.append(f"ret_{uid}_a:")
                out.append("    bnez s1, rtc_attack")
                out.append("    li   s1, 1")
                out.append(f"cf_{uid}_b:")
                out.append("    call fn_rtc_victim")
                out.append(f"ret_{uid}_b:")
            elif t == "recurse":
                out.append(f"    li   {op['reg']}, {op['depth']}")
                out.append(f"cf_{uid}:")
                out.append(f"    call {op['fn']}")
                out.append(f"ret_{uid}:")
            elif t == "tailcall":
                out.append(f"    la   t2, {op['callee']}")
                out.append(f"cf_{uid}:")
                out.append("    jr   t2")
        return out

    for function in model["functions"]:
        name = function["name"]
        if name == "main":
            lines.append("main:")
            lines.append("    la   sp, STACK_TOP")
            if kind == "ret-to-callsite":
                lines.append("    li   s1, 0")
            lines += emit_body(function["body"])
            lines.append(f"    li   a0, {CLEAN_MARKER:#x}")
            lines.append("    ebreak")
            continue
        if name in ep_targets:
            lines.append(f"ep_{name}:")
        lines.append(f"{name}:")
        frame = _needs_frame(model, function)
        if frame:
            lines.append("    addi sp, sp, -16")
            lines.append("    sd   ra, 8(sp)")
        lines += emit_body(function["body"])
        rec = recursion.get(name)
        if rec is not None:
            # The bounded self-call: drain the site-seeded counter, then
            # unwind through the shared epilogue — every level's saved
            # ``ra`` is distinct, so shadow stacks see exact pairing.
            lines.append(f"    addi {rec['reg']}, {rec['reg']}, -1")
            lines.append(f"    blez {rec['reg']}, rec_{rec['uid']}_done")
            lines.append(f"cf_rec_{rec['uid']}:")
            lines.append(f"    call {name}")
            lines.append(f"rec_{rec['uid']}_done:")
        divert = _corruption(model, name)
        if divert is not None:
            lines.append("    # ... overflow overruns into the saved ra slot ...")
            lines.append(f"    la   t2, {divert}")
            lines.append("    sd   t2, 8(sp)")
        if frame:
            lines.append("    ld   ra, 8(sp)")
            lines.append("    addi sp, sp, 16")
        lines.append(f"cf_ret_{name}:")
        lines.append("    ret")

    lines += handler_blocks

    if kind == "rop":
        lines.append("rop_gadget:")
        lines.append(f"    li   a0, {GADGET_MARKER:#x}")
        lines.append("    ebreak")
    elif kind == "jop":
        # Mid-function gadget fragments chained through the dispatch
        # table (s2 still holds the corrupted table's base).
        lines.append("jop_g1:")
        lines.append("    li   a0, 0x66")
        lines.append("    ld   t2, 8(s2)")
        lines.append("cf_jop_g1:")
        lines.append("    jr   t2")
        lines.append("jop_g2:")
        lines.append("    slli a0, a0, 4")
        lines.append("    ori  a0, a0, 6")
        lines.append("    ebreak")
    elif kind == "call-hijack":
        # Laid out as a plausible function entry: in the coarse label
        # set (its blind spot), never in the fine-grained entry set.
        lines.append("fn_chj_gadget:")
        lines.append(f"    li   a0, {GADGET_MARKER:#x}")
        lines.append("    ebreak")
    elif kind == "ret-to-callsite":
        lines.append("rtc_attack:")
        lines.append(f"    li   a0, {GADGET_MARKER:#x}")
        lines.append("    ebreak")

    return "\n".join(lines) + "\n"


def emit(model: dict, base: int) -> Program:
    """Assemble a model into a loadable :class:`Program` at ``base``."""
    return Assembler(xlen=64).assemble(emit_source(model, base), base=base)


# --------------------------------------------------------------------------
# The static plan: the event stream the program will retire
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanEvent:
    """One planned CFI-relevant control-flow event (label-level).

    Attributes:
        kind: ``"call"``, ``"return"`` or ``"ijump"`` (mirrors
            :class:`repro.isa.cflow.CfKind`'s CFI-relevant set).
        site: label of the transfer instruction (a ``cf_*`` label).
        target: label control transfers to.
        next: fall-through label (calls only: the pushed return address).
        indirect: register-indirect encoding (``jalr``)?  Always true
            for returns and indirect jumps; distinguishes ``jal`` from
            ``jalr`` calls, which forward-edge policies treat
            differently.
    """

    kind: str
    site: str
    target: str
    next: Optional[str] = None
    indirect: bool = True


def plan_events(model: dict) -> List[PlanEvent]:
    """Walk the model abstractly; return the exact retired event stream.

    The walk mirrors execution: bodies run in order, loops repeat their
    bodies ``count`` times, calls descend into the callee and emit its
    return event on the way out.  A planted attack's first execution
    terminates the program (every payload ends in ``ebreak``), so the
    walk stops there — exactly as the machine does.
    """
    check_model(model)
    functions = {f["name"]: f for f in model["functions"]}
    attack = model.get("attack")
    jop = _jop_uid(model)
    events: List[PlanEvent] = []
    done = False

    def run_function(name: str, ret_label: str) -> None:
        nonlocal done
        body = functions[name]["body"]
        tail = body[-1] if body and body[-1]["op"] == "tailcall" else None
        run_body(body[:-1] if tail is not None else body)
        if done:
            return
        if tail is not None:
            # The enclosing function's own ``ret`` never retires: the
            # pure-filler callee returns through the intact ``ra``.
            events.append(PlanEvent("ijump", f"cf_{tail['uid']}",
                                    tail["callee"]))
            events.append(PlanEvent(
                "return", f"cf_ret_{tail['callee']}", ret_label,
            ))
            return
        divert = _corruption(model, name)
        if divert is not None:
            events.append(PlanEvent("return", f"cf_ret_{name}", divert))
            # rop diverts into an ebreak payload; ret-to-callsite lands
            # on the helper fall-through whose flag check (a branch, not
            # a CFI event) reaches the terminal payload.
            done = True
            return
        events.append(PlanEvent("return", f"cf_ret_{name}", ret_label))

    def run_body(body: List[dict]) -> None:
        nonlocal done
        for op in body:
            if done:
                return
            t = op["op"]
            uid = op["uid"]
            if t == "alu":
                continue
            if t == "loop":
                for _ in range(op["count"]):
                    run_body(op["body"])
                    if done:
                        return
            elif t == "call":
                events.append(PlanEvent(
                    "call", f"cf_{uid}", op["callee"],
                    next=f"ret_{uid}", indirect=op["indirect"],
                ))
                run_function(op["callee"], f"ret_{uid}")
            elif t == "dispatch":
                if uid == jop:
                    events.append(PlanEvent("ijump", f"cf_{uid}", "jop_g1"))
                    events.append(PlanEvent("ijump", "cf_jop_g1", "jop_g2"))
                    done = True
                    return
                for j in range(len(op["handlers"])):
                    events.append(PlanEvent("ijump", f"cf_{uid}", f"fn_d{uid}_h{j}"))
            elif t == "hijack":
                events.append(PlanEvent(
                    "call", f"cf_{uid}", "fn_chj_gadget",
                    next=f"ret_{uid}", indirect=True,
                ))
                done = True
                return
            elif t == "rtc":
                events.append(PlanEvent(
                    "call", f"cf_{uid}_a", "fn_rtc_helper",
                    next=f"ret_{uid}_a", indirect=False,
                ))
                run_function("fn_rtc_helper", f"ret_{uid}_a")
                if done:
                    return
                events.append(PlanEvent(
                    "call", f"cf_{uid}_b", "fn_rtc_victim",
                    next=f"ret_{uid}_b", indirect=False,
                ))
                run_function("fn_rtc_victim", f"ret_{uid}_b")
                if done:
                    return
            elif t == "recurse":
                # depth invocations: the site call, depth-1 self-calls,
                # then the unwind — the deepest levels return to the
                # self-call's fall-through, the outermost to the site.
                fn = op["fn"]
                events.append(PlanEvent(
                    "call", f"cf_{uid}", fn,
                    next=f"ret_{uid}", indirect=False,
                ))
                for _ in range(op["depth"] - 1):
                    events.append(PlanEvent(
                        "call", f"cf_rec_{uid}", fn,
                        next=f"rec_{uid}_done", indirect=False,
                    ))
                for _ in range(op["depth"] - 1):
                    events.append(PlanEvent(
                        "return", f"cf_ret_{fn}", f"rec_{uid}_done",
                    ))
                events.append(PlanEvent("return", f"cf_ret_{fn}", f"ret_{uid}"))

    run_body(functions["main"]["body"])
    return events


def label_sets(model: dict) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(entry_points, function_entries) label-name sets of a model.

    ``entry_points`` is the fine-grained forward-edge set: functions
    legitimately reached indirectly, plus dispatch handlers.
    ``function_entries`` is the coarse set: everything that *looks like*
    a function entry — including a planted call-hijack gadget, which is
    laid out as one (the coarse blind spot) — but never mid-function
    fragments like the JOP gadgets.
    """
    entries = [f"ep_{name}" for name in _indirect_targets(model)]
    functions = ["main"] + [
        f["name"] for f in model["functions"] if f["name"] != "main"
    ]
    for op in model_ops(model):
        if op["op"] == "dispatch" and op["uid"] != _jop_uid(model):
            for j in range(len(op["handlers"])):
                entries.append(f"ep_d{op['uid']}_h{j}")
                functions.append(f"fn_d{op['uid']}_h{j}")
    attack = model.get("attack")
    if attack and attack["kind"] == "call-hijack":
        functions.append("fn_chj_gadget")
    return tuple(sorted(entries)), tuple(sorted(functions))
