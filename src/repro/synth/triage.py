"""Auto-triage: campaign disagreements → minimized reproducers.

When a campaign run finds a synthesized scenario whose simulated verdict
contradicts the oracle (``expectation_met == False`` on a ``synth-*``
victim), the CLI hands the failing results here instead of merely
failing the run.  For each one, triage rebuilds the exact model from
``(family, scenario seed)``, re-checks the disagreement under the
scenario's own backend configuration, shrinks it with
:func:`repro.synth.minimize.minimize_model`, and saves a corpus entry
(:mod:`repro.synth.corpus`) — the artifact a developer commits under
``tests/synth/corpus/`` so the tier-1 suite guards the fix forever.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

from repro.synth import bundle_for_seed
from repro.synth.corpus import make_entry, save_entry
from repro.synth.minimize import minimize_model
from repro.synth.verify import disagreement_predicate


def _scenario_config(result: Dict[str, object]) -> dict:
    """Backend knobs of a campaign result, for the reproduction predicate.

    Every config field the runner records that can change a verdict is
    carried over, so config-dependent disagreements (a fabric profile,
    a cycle cap) reproduce under the scenario's exact configuration.
    """
    config: dict = {"backend": result["backend"]}
    if result.get("max_cycles") is not None:
        config["max_cycles"] = int(result["max_cycles"])
    if result["backend"] == "cosim":
        config.update(
            firmware=result["firmware"],
            queue_depth=result["queue_depth"],
            blocking=bool(result["blocking"]),
            fabric=result.get("fabric") or "standard",
            policy_backend=result["policy_backend"],
        )
    return config


def triage_results(
    results: Sequence[Dict[str, object]],
    out_dir: Path,
    family_of: Dict[str, str],
    base: int,
    max_evals: int = 200,
) -> List[Path]:
    """Minimize every disagreeing synth result into a saved reproducer.

    Args:
        results: failing campaign result dicts (synth victims only).
        out_dir: where reproducer JSON files are written.
        family_of: victim name → synthesis family.
        base: image load address (the campaign's DRAM base).
        max_evals: shrink budget per finding (each eval is a simulation).

    Returns:
        the saved reproducer paths (one per finding that still
        reproduces outside the campaign harness).
    """
    paths: List[Path] = []
    for result in results:
        family = family_of[str(result["victim"])]
        seed = int(result["seed"])
        found = bundle_for_seed(family, seed, base)
        config = _scenario_config(result)
        predicate = disagreement_predicate(
            str(result["policy"]), base=base, **config
        )
        if not predicate(found.model):
            # The disagreement does not reproduce standalone (e.g. a
            # sharding-environment artifact): record it unminimized so
            # it is still not dropped silently.
            minimal = found.model
            note = (f"campaign scenario {result['name']} disagreed with the "
                    f"oracle but does not reproduce standalone")
        else:
            minimal = minimize_model(found.model, predicate,
                                     max_evals=max_evals)
            note = (f"minimized from campaign scenario {result['name']} "
                    f"(family {family}, seed {seed})")
        entry = make_entry(
            minimal, family=family, seed=seed, note=note,
            policy=str(result["policy"]), config=config, base=base,
        )
        paths.append(save_entry(out_dir, entry))
    return paths
