"""Shrinking: reduce a model to a minimal one still showing a property.

When the static oracle and a simulator disagree on a generated program,
the raw model is far too big to debug — :func:`minimize_model` applies
greedy structural reductions (drop functions, drop ops, unwrap loops,
shrink counts) while a caller-supplied ``predicate`` keeps returning
``True`` (i.e. "the disagreement still reproduces"), in the spirit of
delta debugging.  The result is the regression artifact the corpus
stores (:mod:`repro.synth.corpus`).

The predicate is arbitrary: triage uses "oracle verdict != simulated
verdict under this scenario's exact configuration", tests use synthetic
structural predicates to pin the reducer's behaviour.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Tuple

from repro.errors import SynthError
from repro.synth.ir import _ops, check_model, model_ops


def _protected_functions(model: dict) -> set:
    """Functions a reduction must never drop (attack anchors)."""
    protected = {"main"}
    attack = model.get("attack")
    if not attack:
        return protected
    if attack["kind"] == "rop":
        protected.add(attack["victim"])
    elif attack["kind"] == "ret-to-callsite":
        protected.update(("fn_rtc_helper", "fn_rtc_victim"))
    elif attack["kind"] == "call-hijack":
        for op in model_ops(model):
            if op["op"] == "hijack":
                protected.add(op["decoy"])
    return protected


def _anchored_uids(model: dict) -> set:
    """Ops a reduction must never drop (the attack's carrier)."""
    attack = model.get("attack")
    if not attack:
        return set()
    if attack["kind"] in ("jop", "call-hijack", "ret-to-callsite"):
        return {attack["uid"]}
    return set()


def _bodies(model: dict) -> Iterator[Tuple[List[dict], int, dict]]:
    """Yield ``(parent_body, index, op)`` for every op, outer-first."""
    stack = [f["body"] for f in model["functions"]]
    while stack:
        body = stack.pop(0)
        for index, op in enumerate(body):
            yield body, index, op
            if op["op"] == "loop":
                stack.append(op["body"])


def _candidates(model: dict) -> Iterator[Tuple[str, dict]]:
    """Reduced variants of ``model``, biggest cuts first.

    Every yielded candidate is structurally valid (``check_model``
    passes); whether it still exhibits the property is the predicate's
    call.
    """
    protected = _protected_functions(model)
    anchored = _anchored_uids(model)
    referenced = {
        op["callee"] for op in model_ops(model) if op["op"] == "call"
    }

    # Drop an entire (unreferenced, unprotected) function.
    for index, function in enumerate(model["functions"]):
        name = function["name"]
        if name in protected or name in referenced:
            continue
        candidate = copy.deepcopy(model)
        del candidate["functions"][index]
        yield f"drop function {name}", candidate

    # Drop one op (loops drop with their whole body).
    for body, index, op in _bodies(model):
        if op["uid"] in anchored:
            continue
        if op["op"] == "loop" and any(
            inner["uid"] in anchored for inner in _ops(op["body"])
        ):
            continue
        candidate = copy.deepcopy(model)
        parent, i = _locate(candidate, op["uid"])
        parent.pop(i)
        yield f"drop {op['op']} uid={op['uid']}", candidate

    # Unwrap a loop (keep its body, lose the iteration).
    for body, index, op in _bodies(model):
        if op["op"] != "loop":
            continue
        candidate = copy.deepcopy(model)
        parent, i = _locate(candidate, op["uid"])
        inner = parent[i]["body"]
        parent[i:i + 1] = inner
        yield f"unwrap loop uid={op['uid']}", candidate

    # Shrink a loop count.
    for body, index, op in _bodies(model):
        if op["op"] == "loop" and op["count"] > 1:
            candidate = copy.deepcopy(model)
            parent, i = _locate(candidate, op["uid"])
            parent[i]["count"] = 1
            yield f"loop count→1 uid={op['uid']}", candidate

    # Shrink filler and handler sizes.
    for body, index, op in _bodies(model):
        if op["op"] == "alu" and op["n"] > 1:
            candidate = copy.deepcopy(model)
            parent, i = _locate(candidate, op["uid"])
            parent[i]["n"] = 1
            yield f"alu n→1 uid={op['uid']}", candidate
        elif op["op"] == "dispatch" and op["handlers"] != [1, 1]:
            candidate = copy.deepcopy(model)
            parent, i = _locate(candidate, op["uid"])
            parent[i]["handlers"] = [1, 1]
            yield f"handlers→[1,1] uid={op['uid']}", candidate


def _locate(model: dict, uid: int) -> Tuple[List[dict], int]:
    """(parent body, index) of the op carrying ``uid`` in ``model``."""
    for body, index, op in _bodies(model):
        if op["uid"] == uid:
            return body, index
    raise SynthError(f"uid {uid} not in model")


def minimize_model(
    model: dict,
    predicate: Callable[[dict], bool],
    max_evals: int = 500,
) -> dict:
    """Greedily shrink ``model`` while ``predicate`` stays true.

    Args:
        model: a valid model for which ``predicate(model)`` holds.
        predicate: the property to preserve (e.g. "oracle and simulator
            still disagree"); evaluated on structurally valid candidates
            only.
        max_evals: predicate-evaluation budget — minimization is
            simulation-heavy, so the reducer returns its best-so-far
            once the budget is spent.

    Returns:
        the smallest model found (possibly the input if nothing cut).
    """
    check_model(model)
    if not predicate(model):
        raise SynthError("predicate does not hold on the initial model")
    current = copy.deepcopy(model)
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for _description, candidate in _candidates(current):
            try:
                check_model(candidate)
            except SynthError:
                continue
            evals += 1
            if predicate(candidate):
                current = candidate
                progress = True
                break
            if evals >= max_evals:
                break
    return current


def model_size(model: dict) -> int:
    """Rough structural size (op count; the reducer's fitness metric)."""
    return sum(1 for _ in model_ops(model)) + len(model["functions"])
