"""CLI: ``python -m repro.synth`` — inspect and verify generated victims.

Subcommands:

* ``show --family jop --seed 3`` — print a generated program's
  assembly, its planned event stream and the oracle's verdicts.
* ``verify --seeds 8 [--cosim] [--out DIR]`` — sweep every family over
  a seed range, compare the oracle against the simulators for every
  policy, and minimize any disagreement into a reproducer JSON.

The campaign CLI (``python -m repro.campaign run --matrix synth``) is
the production entry point; this one is for poking at single programs
and for standalone oracle hunts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.synth import FAMILIES, FEATURES, bundle
from repro.synth.corpus import make_entry, save_entry
from repro.synth.ir import emit_source
from repro.synth.minimize import minimize_model
from repro.synth.verify import disagreement_predicate, verify_model


def _base() -> int:
    from repro.system.addresses import AddressMap

    return AddressMap().dram_base


def _cmd_show(args: argparse.Namespace) -> int:
    features = tuple(args.feature or ())
    found = bundle(args.family, args.seed, _base(), features=features)
    if args.coverage:
        from repro.coverage.shape import shape_vector

        vector = shape_vector(found.model, program=found.program)
        if args.json:
            import json

            print(json.dumps(vector.to_json(), indent=2, sort_keys=True))
            return 0
        print(f"# coverage shape ({args.family}, seed {args.seed}): "
              f"{vector.digest}, {len(vector.points)} points")
        for axis, points in vector.axes().items():
            print(f"#   {axis}:")
            for point in points:
                print(f"#     {point}")
        return 0
    print(emit_source(found.model, _base()))
    print(f"# planned events ({args.family}, seed {args.seed}):")
    from repro.synth import plan_events

    for event in plan_events(found.model):
        extra = f" next={event.next}" if event.next else ""
        print(f"#   {event.kind:<6} @{event.site} -> {event.target}{extra}")
    print("# oracle verdicts:")
    for policy, verdict in found.expected.items():
        print(f"#   {policy:<14} {'DETECT' if verdict else 'pass'}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    base = _base()
    backend = "cosim" if args.cosim else "reference"
    failures = 0
    for family in FAMILIES:
        for seed in range(args.seeds):
            found = bundle(family, seed, base)
            results = verify_model(found.model, base=base, backend=backend)
            bad = {p: r for p, r in results.items() if r[0] != r[1]}
            if not bad:
                continue
            failures += len(bad)
            for policy, (oracle, simulated) in bad.items():
                print(f"DISAGREEMENT {family} seed={seed} policy={policy}: "
                      f"oracle={oracle} simulated={simulated}")
                predicate = disagreement_predicate(policy, base=base,
                                                   backend=backend)
                minimal = minimize_model(found.model, predicate,
                                         max_evals=args.max_evals)
                entry = make_entry(
                    minimal, family=family, seed=seed, policy=policy,
                    config={"backend": backend},
                    note=f"minimized by `python -m repro.synth verify`",
                    base=base,
                )
                path = save_entry(Path(args.out), entry)
                print(f"  reproducer: {path}")
    total = len(FAMILIES) * args.seeds
    print(f"verified {total} programs x all policies on {backend}: "
          f"{failures} disagreement(s)")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.synth",
        description="scenario synthesis: generate, inspect, verify",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="print one generated program")
    show.add_argument("--family", default="benign", choices=FAMILIES)
    show.add_argument("--seed", type=int, default=0)
    show.add_argument("--feature", action="append", choices=FEATURES,
                      help="grow the program with a generator feature "
                           "(repeatable; e.g. recursion, tailcall)")
    show.add_argument("--coverage", action="store_true",
                      help="print the program's coverage shape vector "
                           "instead of its assembly")
    show.add_argument("--json", action="store_true",
                      help="with --coverage: machine-readable vector")

    verify = sub.add_parser("verify", help="oracle-vs-simulation sweep")
    verify.add_argument("--seeds", type=int, default=8,
                        help="seeds per family (0..N-1)")
    verify.add_argument("--cosim", action="store_true",
                        help="verify on the cosim backend (slower)")
    verify.add_argument("--out", default="artifacts/synth",
                        help="reproducer output directory")
    verify.add_argument("--max-evals", type=int, default=200,
                        help="shrink budget per disagreement")

    args = parser.parse_args(argv)
    if args.command == "show":
        return _cmd_show(args)
    return _cmd_verify(args)


if __name__ == "__main__":
    sys.exit(main())
