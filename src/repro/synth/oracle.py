"""The static expected-verdict oracle.

Given a synthesized model and its assembled image, the oracle derives —
without simulating a single instruction — the verdict every registered
CFI policy must reach on the program:

1. :func:`resolve_events` takes the model's planned event stream
   (:func:`repro.synth.ir.plan_events`), resolves every label through
   the image's symbol table, and **verifies each event against the
   encoding actually in the image** using :mod:`repro.isa.cflow`: the
   instruction at the planned site must classify to the planned kind,
   a direct call's immediate-encoded target must equal the planned
   target, and every call's fall-through must equal the planned pushed
   return address.  A mismatch means the emitter and the planner have
   drifted apart — the one failure mode that would make the oracle
   lie — and raises :class:`~repro.errors.SynthError` instead.
2. :func:`expected_verdicts` replays the resolved stream through the
   **rule families the policies themselves declare**
   (``oracle_rule`` in :mod:`repro.firmware.policies`): exact
   return-address matching, entry-point forward-edge sets, or the
   coarse call-preceded/function-entry pair.  No hand-maintained
   (victim × policy) table is involved: the verdict falls out of the
   program's own control-flow structure.

The acceptance contract (tested per scenario and in CI): for every
generated program and policy, the verdict predicted here equals the
verdict the simulators produce on every backend and engine.  Any
disagreement is a real bug in exactly one of generator, oracle, policy
or simulator — :mod:`repro.synth.minimize` shrinks it to a minimal
reproducer instead of letting it vanish into a failed assertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SynthError
from repro.firmware.policies import (
    COMPOSITE_MEMBERS,
    ORACLE_COARSE_PAIRED,
    ORACLE_FORWARD_ENTRY,
    ORACLE_RETURN_EXACT,
    CoarseGrainedPolicy,
    CryptoReturnPolicy,
    ForwardEdgePolicy,
    ShadowStackPolicy,
)
from repro.isa.asm import Program
from repro.isa.cflow import CfKind, classify
from repro.isa.decode import decode
from repro.synth.ir import label_sets, plan_events

#: Policy name → static rule families, pulled from the policies' own
#: ``oracle_rule`` declarations.  (Names mirror the campaign registry;
#: the composite's rules derive from the same
#: :data:`~repro.firmware.policies.COMPOSITE_MEMBERS` list the campaign
#: runner instantiates, so the two cannot drift apart.)
POLICY_RULES: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "shadow-stack": (ShadowStackPolicy.oracle_rule,),
    "forward-edge": (ForwardEdgePolicy.oracle_rule,),
    "coarse": (CoarseGrainedPolicy.oracle_rule,),
    "composite": tuple(member.oracle_rule for member in COMPOSITE_MEMBERS),
    "crypto-return": (CryptoReturnPolicy.oracle_rule,),
}

#: Policies the oracle predicts (== the campaign's REFERENCE_POLICIES).
ORACLE_POLICIES = tuple(POLICY_RULES)

_PLAN_TO_CFKIND = {
    "call": CfKind.CALL,
    "return": CfKind.RETURN,
    "ijump": CfKind.INDIRECT_JUMP,
}


@dataclass(frozen=True)
class ResolvedEvent:
    """A planned event with every label resolved to an image address."""

    kind: str                 # "call" | "return" | "ijump"
    pc: int                   # address of the transfer instruction
    target: int               # destination address
    next: Optional[int]       # calls: the pushed return address
    indirect: bool            # register-indirect (jalr) encoding


def resolve_events(model: dict, program: Program) -> List[ResolvedEvent]:
    """Resolve the planned stream against the image and verify it.

    See the module docstring; this is the emit/plan cross-check that
    grounds the oracle in the actual encodings.
    """
    symbols = program.symbols
    resolved: List[ResolvedEvent] = []
    for event in plan_events(model):
        try:
            pc = symbols[event.site]
            target = symbols[event.target]
            next_address = symbols[event.next] if event.next else None
        except KeyError as exc:
            raise SynthError(
                f"planned event references missing label {exc.args[0]!r}"
            ) from None
        offset = pc - program.base
        word = int.from_bytes(program.data[offset:offset + 4], "little")
        insn = decode(word, xlen=64)
        kind = classify(insn)
        if kind is not _PLAN_TO_CFKIND[event.kind]:
            raise SynthError(
                f"planned {event.kind} at {event.site} ({pc:#x}) but the "
                f"image holds a {kind.value} ({insn.mnemonic})"
            )
        if event.indirect != (insn.mnemonic == "jalr"):
            raise SynthError(
                f"planned indirect={event.indirect} at {event.site} but the "
                f"image holds {insn.mnemonic}"
            )
        if insn.mnemonic == "jal" and pc + insn.imm != target:
            raise SynthError(
                f"direct call at {event.site} targets {pc + insn.imm:#x}, "
                f"plan says {target:#x}"
            )
        if event.kind == "call" and pc + insn.length != next_address:
            raise SynthError(
                f"call at {event.site} pushes {pc + insn.length:#x}, "
                f"plan says {next_address:#x}"
            )
        resolved.append(ResolvedEvent(
            kind=event.kind, pc=pc, target=target,
            next=next_address, indirect=event.indirect,
        ))
    return resolved


# --------------------------------------------------------------------------
# Rule evaluation
# --------------------------------------------------------------------------

def _rule_return_exact(events: List[ResolvedEvent], entries: Set[int],
                       functions: Set[int]) -> bool:
    """Exact return-edge protection (shadow stack / MAC'd returns)."""
    stack: List[int] = []
    for event in events:
        if event.kind == "call":
            stack.append(event.next)
        elif event.kind == "return":
            if not stack or stack.pop() != event.target:
                return True
    return False


def _rule_forward_entry(events: List[ResolvedEvent], entries: Set[int],
                        functions: Set[int]) -> bool:
    """Fine-grained forward edges: indirect transfers must hit a
    registered entry point (direct-jal calls are statically verified)."""
    for event in events:
        if event.kind == "ijump" and event.target not in entries:
            return True
        if event.kind == "call" and event.indirect and event.target not in entries:
            return True
    return False


def _rule_coarse_paired(events: List[ResolvedEvent], entries: Set[int],
                        functions: Set[int]) -> bool:
    """Coarse CFI: returns to call-preceded addresses (accumulated in
    execution order, as the running policy accumulates them); indirect
    transfers to *some* function entry."""
    call_preceded: Set[int] = set()
    for event in events:
        if event.kind == "call":
            call_preceded.add(event.next)
            if event.indirect and event.target not in functions:
                return True
        elif event.kind == "return":
            if event.target not in call_preceded:
                return True
        elif event.kind == "ijump":
            if event.target not in functions:
                return True
    return False


_RULES = {
    ORACLE_RETURN_EXACT: _rule_return_exact,
    ORACLE_FORWARD_ENTRY: _rule_forward_entry,
    ORACLE_COARSE_PAIRED: _rule_coarse_paired,
}


def rule_fires(rule: str, events: List[ResolvedEvent], entries: Set[int],
               functions: Set[int]) -> bool:
    """Does ``rule`` flag a violation somewhere in ``events``?"""
    try:
        evaluate = _RULES[rule]
    except KeyError:
        raise SynthError(f"unknown oracle rule {rule!r}") from None
    return evaluate(events, entries, functions)


def expected_verdicts(model: dict, program: Program) -> Dict[str, bool]:
    """Expected detection verdict per policy for ``(model, program)``."""
    events = resolve_events(model, program)
    entry_names, function_names = label_sets(model)
    entries = {program.symbols[name] for name in entry_names}
    functions = {program.symbols[name] for name in function_names}
    return {
        policy: any(
            rule_fires(rule, events, entries, functions) for rule in rules
        )
        for policy, rules in POLICY_RULES.items()
    }
