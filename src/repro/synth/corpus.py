"""The minimized-reproducer regression corpus.

Every oracle-vs-simulation disagreement the subsystem ever surfaces is
reduced (:mod:`repro.synth.minimize`) and saved as a small JSON entry —
the model, the configuration that showed the disagreement, and the
recorded verdicts.  Entries committed under ``tests/synth/corpus/`` are
replayed by the tier-1 suite on every run: once the underlying bug is
fixed, the entry keeps guarding the regression (oracle == simulation on
the minimal program, for every policy it records).

Entry schema (``schema: 1``)::

    {"schema": 1,
     "family": "jop",              # generator family (provenance)
     "seed": 1234,                 # generator seed (provenance)
     "note": "...",                # human context
     "policy": "coarse",           # the disagreeing policy (or null)
     "config": {...},              # backend/engine knobs of the finding
     "model": {...},               # the minimized IR
     "expected": {"shadow-stack": true, ...}}   # oracle verdicts
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthError
from repro.synth.oracle import expected_verdicts
from repro.synth.verify import assemble_model, simulated_verdict

ENTRY_SCHEMA = 1


def make_entry(
    model: dict,
    family: str,
    seed: int,
    note: str = "",
    policy: Optional[str] = None,
    config: Optional[dict] = None,
    base: Optional[int] = None,
) -> dict:
    """Build a corpus entry for ``model`` (verdicts recomputed fresh)."""
    program = assemble_model(model, base)
    return {
        "schema": ENTRY_SCHEMA,
        "family": family,
        "seed": seed,
        "note": note,
        "policy": policy,
        "config": dict(config or {}),
        "model": model,
        "expected": expected_verdicts(model, program),
    }


def entry_name(entry: dict) -> str:
    """Stable content-derived file name for an entry.

    The digest covers the model *and* the disagreeing policy/config:
    two findings that shrink to the same minimal program but differ in
    what disagreed must not overwrite each other.
    """
    identity = {
        "model": entry["model"],
        "policy": entry.get("policy"),
        "config": entry.get("config"),
    }
    digest = hashlib.sha256(
        json.dumps(identity, sort_keys=True).encode()
    ).hexdigest()[:10]
    return f"repro_{entry['family']}_{digest}.json"


def save_entry(directory: Path, entry: dict) -> Path:
    """Write ``entry`` under ``directory``; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_name(entry)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: Path) -> List[Tuple[Path, dict]]:
    """Load every ``repro_*.json`` entry under ``directory`` (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("repro_*.json")):
        entry = json.loads(path.read_text())
        if entry.get("schema") != ENTRY_SCHEMA:
            raise SynthError(f"{path}: unsupported corpus schema "
                             f"{entry.get('schema')!r}")
        entries.append((path, entry))
    return entries


def replay_entry(entry: dict, base: Optional[int] = None) -> Dict[str, dict]:
    """Re-run a corpus entry; returns per-policy verdict comparison.

    For every policy the entry records, recompute the oracle verdict and
    the reference-backend simulated verdict on today's code.  The tier-1
    corpus test asserts all three agree — recorded, oracle, simulated —
    so neither a generator/oracle drift nor a policy/simulator
    regression can land silently.
    """
    model = entry["model"]
    program = assemble_model(model, base)
    oracle = expected_verdicts(model, program)
    report: Dict[str, dict] = {}
    for policy, recorded in entry["expected"].items():
        report[policy] = {
            "recorded": bool(recorded),
            "oracle": oracle[policy],
            "simulated": simulated_verdict(model, policy, base=base),
        }
    return report
