"""Oracle-vs-simulation verification of synthesized models.

The bridge between the static oracle and the real simulators: given a
raw model (not a registered campaign victim — minimized reproducers and
ad-hoc generator output arrive here), assemble it, run it on a chosen
backend/engine and compare the simulated verdict with the oracle's
prediction per policy.  The campaign CLI's triage path and the corpus
replay tests are both built on these helpers.

Imports from :mod:`repro.campaign` stay inside the functions: the
campaign registry imports :mod:`repro.synth` for its victim builders,
so the module graph must not close the cycle at import time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.isa.asm import Program
from repro.synth.ir import emit, label_sets
from repro.synth.oracle import ORACLE_POLICIES, expected_verdicts


def assemble_model(model: dict, base: Optional[int] = None) -> Program:
    """Assemble ``model`` at ``base`` (default: the host DRAM base)."""
    if base is None:
        from repro.system.addresses import AddressMap

        base = AddressMap().dram_base
    return emit(model, base)


def _build_policy(policy: str, model: dict, program: Program):
    from repro.campaign.runner import build_policy

    entry_names, function_names = label_sets(model)
    return build_policy(policy, program, entry_names, function_names)


def simulated_verdict(
    model: dict,
    policy: str,
    base: Optional[int] = None,
    backend: str = "reference",
    sim_mode: Optional[str] = None,
    firmware: str = "irq",
    queue_depth: int = 8,
    blocking: bool = False,
    fabric: str = "standard",
    max_cycles: int = 10_000_000,
    policy_backend: Optional[str] = None,
) -> bool:
    """Run ``model`` under ``policy`` and return the simulator's verdict.

    ``backend`` selects the campaign's reference trace-check or the full
    cosim platform; on cosim, ``policy_backend`` defaults to the
    firmware for the shadow stack and the policy host otherwise (the
    campaign's ``auto`` resolution).  The remaining knobs mirror
    :class:`repro.campaign.spec.Scenario`, so a campaign cell's exact
    configuration is reproducible here.
    """
    program = assemble_model(model, base)
    if backend == "reference":
        from repro.campaign.runner import capture_commit_logs
        from repro.firmware.policies import CheckResult
        from repro.system.addresses import AddressMap

        logs, _hart = capture_commit_logs(program, AddressMap(),
                                          max_steps=max_cycles)
        policy_obj = _build_policy(policy, model, program)
        if policy_obj is None:
            return False
        return any(
            policy_obj.check(log) is CheckResult.VIOLATION for log in logs
        )

    from repro.attacks.rop import run_attack_scenario

    if policy_backend is None:
        policy_backend = "firmware" if policy == "shadow-stack" else "host"
    policy_obj = None
    if policy_backend == "host":
        policy_obj = _build_policy(policy, model, program)
    outcome = run_attack_scenario(
        program,
        firmware_variant=firmware,
        queue_depth=queue_depth,
        blocking=blocking,
        fabric=fabric,
        max_cycles=max_cycles,
        sim_mode=sim_mode,
        policy_backend=policy_backend,
        policy=policy_obj,
    )
    return outcome.detected


def verify_model(
    model: dict,
    base: Optional[int] = None,
    policies: Optional[Iterable[str]] = None,
    backend: str = "reference",
    **kwargs,
) -> Dict[str, Tuple[bool, bool]]:
    """Compare oracle and simulator per policy.

    Returns ``{policy: (oracle_verdict, simulated_verdict)}`` — callers
    filter for inequality to find disagreements.
    """
    program = assemble_model(model, base)
    oracle = expected_verdicts(model, program)
    chosen = tuple(policies) if policies is not None else ORACLE_POLICIES
    results: Dict[str, Tuple[bool, bool]] = {}
    for policy in chosen:
        if backend != "reference" and policy == "none":
            continue
        results[policy] = (
            oracle[policy],
            simulated_verdict(model, policy, base=base, backend=backend,
                              **kwargs),
        )
    return results


def disagreement_predicate(
    policy: str,
    base: Optional[int] = None,
    backend: str = "reference",
    **kwargs,
):
    """A :func:`repro.synth.minimize.minimize_model` predicate: "oracle
    and simulator still disagree on ``policy``" under a fixed backend
    configuration."""

    def predicate(model: dict) -> bool:
        program = assemble_model(model, base)
        oracle = expected_verdicts(model, program)[policy]
        simulated = simulated_verdict(model, policy, base=base,
                                      backend=backend, **kwargs)
        return oracle != simulated

    return predicate
