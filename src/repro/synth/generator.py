"""Seed-deterministic procedural generation of victim models.

:func:`generate` builds a well-formed benign model — a random acyclic
call graph over a handful of functions, indirect-call edges, counted
loops, jump-table dispatchers, leaf/non-leaf mixes — and then (for the
attack families) hands it to the mutation layer, which plants exactly
one attack into it at a seed-chosen location.  Everything is driven by
one ``random.Random(seed)``: the same ``(family, seed)`` always yields
the identical model, which is what lets the campaign registry treat
synthesized victims as pure functions of the scenario seed.

The generator also enforces a **plan budget**: after mutation it walks
the model's event stream (:func:`repro.synth.ir.plan_events`) and, if
loops have multiplied it past :data:`MAX_EVENTS`, deterministically
halves loop counts until the stream fits — generated scenarios stay
cheap on every backend without losing seed determinism.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import SynthError
from repro.synth.ir import (
    LOOP_REGS,
    MAX_RECURSION_DEPTH,
    SCHEMA,
    check_model,
    plan_events,
)

#: Synthesis families (the campaign's ``synth-*`` victims map onto these).
FAMILIES = ("benign", "rop", "jop", "call-hijack", "ret-to-callsite")

#: Opt-in generator features (see :func:`generate`): each grows the
#: model with one structural construct *after* the family pipeline has
#: consumed its draws, so ``generate(family, seed)`` without features
#: stays byte-identical across releases — the campaign registry's
#: pure-function-of-the-seed contract.
FEATURES = ("recursion", "tailcall")

#: Upper bound on a generated program's CFI-relevant event stream.
MAX_EVENTS = 500


class _Builder:
    """Per-generation scratch state (uid counter, loop-register pool)."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.next_uid = 0
        self.loop_regs = list(LOOP_REGS)

    def uid(self) -> int:
        self.next_uid += 1
        return self.next_uid

    def alu(self, lo: int = 1, hi: int = 4) -> dict:
        return {"op": "alu", "uid": self.uid(), "n": self.rng.randint(lo, hi)}

    def take_loop_reg(self) -> Optional[str]:
        if not self.loop_regs:
            return None
        return self.loop_regs.pop(0)


def _benign_model(b: _Builder) -> dict:
    """A random benign program: call DAG + loops + dispatchers."""
    rng = b.rng
    n_functions = rng.randint(2, 5)
    names = ["main"] + [f"fn_{i}" for i in range(1, n_functions + 1)]
    bodies: List[List[dict]] = [[] for _ in names]

    # Spanning call edges guarantee every function executes: each fn_i
    # is called from a function of lower index (acyclic by construction).
    for i in range(1, len(names)):
        caller = rng.randrange(0, i)
        bodies[caller].append({
            "op": "call", "uid": b.uid(), "callee": names[i],
            "indirect": rng.random() < 0.35,
        })
    # Extra call edges (still low → high index only).
    for _ in range(rng.randint(0, 3)):
        callee = rng.randint(1, len(names) - 1)
        caller = rng.randrange(0, callee)
        bodies[caller].append({
            "op": "call", "uid": b.uid(), "callee": names[callee],
            "indirect": rng.random() < 0.35,
        })
    # Dispatchers (benign jump-table dispatch, the JOP substrate).
    for _ in range(rng.randint(0, 2)):
        host = rng.randrange(0, len(names))
        bodies[host].append({
            "op": "dispatch", "uid": b.uid(),
            "handlers": [rng.randint(1, 3), rng.randint(1, 3)],
        })
    # Filler, shuffled in between the structural ops.
    for body in bodies:
        for _ in range(rng.randint(1, 3)):
            body.insert(rng.randint(0, len(body)), b.alu())

    # Wrap random contiguous slices in counted loops.
    for _ in range(rng.randint(0, 3)):
        reg = b.take_loop_reg()
        if reg is None:
            break
        body = bodies[rng.randrange(0, len(names))]
        if not body:
            continue
        start = rng.randrange(0, len(body))
        stop = min(len(body), start + rng.randint(1, 2))
        inner, body[start:stop] = body[start:stop], []
        body.insert(start, {
            "op": "loop", "uid": b.uid(), "reg": reg,
            "count": rng.randint(2, 4), "body": inner,
        })

    return {
        "schema": SCHEMA,
        "functions": [
            {"name": name, "body": body} for name, body in zip(names, bodies)
        ],
        "attack": None,
    }


# --------------------------------------------------------------------------
# Mutation layer: plant exactly one attack into a benign model
# --------------------------------------------------------------------------

def _plant(b: _Builder, model: dict, op: dict) -> None:
    """Insert ``op`` at a seed-chosen position of a seed-chosen function.

    Any position is reachable: the benign model's call graph spans every
    function and the planted attack is the model's only terminal, so the
    walk (and the machine) always arrives.
    """
    function = b.rng.choice(model["functions"])
    body = function["body"]
    body.insert(b.rng.randint(0, len(body)), op)


def _mutate_rop(b: _Builder, model: dict) -> None:
    victims = [f["name"] for f in model["functions"] if f["name"] != "main"]
    model["attack"] = {"kind": "rop", "victim": b.rng.choice(victims)}


def _mutate_jop(b: _Builder, model: dict) -> None:
    uid = b.uid()
    _plant(b, model, {"op": "dispatch", "uid": uid, "handlers": [1, 1]})
    model["attack"] = {"kind": "jop", "uid": uid}


def _mutate_call_hijack(b: _Builder, model: dict) -> None:
    uid = b.uid()
    decoys = [f["name"] for f in model["functions"] if f["name"] != "main"]
    _plant(b, model, {"op": "hijack", "uid": uid,
                      "decoy": b.rng.choice(decoys)})
    model["attack"] = {"kind": "call-hijack", "uid": uid}


def _mutate_ret_to_callsite(b: _Builder, model: dict) -> None:
    uid = b.uid()
    _plant(b, model, {"op": "rtc", "uid": uid})
    model["functions"].append({
        "name": "fn_rtc_helper", "body": [b.alu(1, 2)],
    })
    model["functions"].append({
        "name": "fn_rtc_victim", "body": [b.alu(1, 2)],
    })
    model["attack"] = {"kind": "ret-to-callsite", "uid": uid}


_MUTATORS = {
    "rop": _mutate_rop,
    "jop": _mutate_jop,
    "call-hijack": _mutate_call_hijack,
    "ret-to-callsite": _mutate_ret_to_callsite,
}


# --------------------------------------------------------------------------
# Opt-in feature growth (bounded recursion, indirect tail calls)
# --------------------------------------------------------------------------

def _plant_sites(model: dict) -> List[dict]:
    """Functions a grown construct may be planted into: everything but
    the attack-reserved pure-filler helpers and feature-owned leaves."""
    reserved = ("fn_rtc_helper", "fn_rtc_victim")
    return [
        f for f in model["functions"]
        if f["name"] not in reserved and not f["name"].startswith("fn_rec_")
        and not f["name"].startswith("fn_tc_")
    ]


def _grow_recursion(b: _Builder, model: dict) -> None:
    """Append a dedicated self-recursive function and plant its site."""
    reg = b.take_loop_reg()
    if reg is None:
        return
    uid = b.uid()
    fn_name = f"fn_rec_{uid}"
    model["functions"].append({"name": fn_name, "body": [b.alu(1, 2)]})
    site = {
        "op": "recurse", "uid": uid, "fn": fn_name,
        "depth": b.rng.randint(2, min(4, MAX_RECURSION_DEPTH)), "reg": reg,
    }
    function = b.rng.choice(_plant_sites(model))
    body = function["body"]
    body.insert(b.rng.randint(0, len(body)), site)


def _grow_tailcall(b: _Builder, model: dict) -> None:
    """Append a frameless wrapper that tail-calls a new leaf, and plant
    a call to the wrapper (the tail call itself is an indirect jump)."""
    uid = b.uid()
    wrapper = f"fn_tc_{uid}"
    leaf = f"fn_tc_{uid}_leaf"
    model["functions"].append({"name": wrapper, "body": [
        b.alu(1, 2),
        {"op": "tailcall", "uid": b.uid(), "callee": leaf},
    ]})
    model["functions"].append({"name": leaf, "body": [b.alu(1, 2)]})
    site = {
        "op": "call", "uid": b.uid(), "callee": wrapper,
        "indirect": b.rng.random() < 0.35,
    }
    function = b.rng.choice(_plant_sites(model))
    body = function["body"]
    body.insert(b.rng.randint(0, len(body)), site)


_FEATURES = {
    "recursion": _grow_recursion,
    "tailcall": _grow_tailcall,
}


def _clamp_events(model: dict) -> dict:
    """Halve loop counts until the planned stream fits :data:`MAX_EVENTS`."""
    for _ in range(8):
        if len(plan_events(model)) <= MAX_EVENTS:
            return model
        shrunk = False
        for op in list(_iter_loops(model)):
            if op["count"] > 1:
                op["count"] = max(1, op["count"] // 2)
                shrunk = True
        if not shrunk:
            break
    if len(plan_events(model)) > MAX_EVENTS:
        raise SynthError("generated model exceeds the event budget")
    return model


def _iter_loops(model: dict):
    from repro.synth.ir import model_ops

    return (op for op in model_ops(model) if op["op"] == "loop")


def generate(family: str, seed: int,
             features: Tuple[str, ...] = ()) -> dict:
    """Generate the model for ``(family, seed)`` (pure and deterministic).

    ``features`` opts into structural growth — ``"recursion"`` plants a
    bounded self-recursive function, ``"tailcall"`` a frameless wrapper
    ending in an indirect tail call.  Feature draws happen strictly
    after the family pipeline's, so the default ``features=()`` output
    is byte-identical to what earlier releases generated for the same
    ``(family, seed)``.
    """
    if family not in FAMILIES:
        raise SynthError(f"unknown synthesis family {family!r} "
                         f"(have: {', '.join(FAMILIES)})")
    for feature in features:
        if feature not in _FEATURES:
            raise SynthError(f"unknown generator feature {feature!r} "
                             f"(have: {', '.join(FEATURES)})")
    b = _Builder(random.Random(seed))
    model = _benign_model(b)
    if family != "benign":
        _MUTATORS[family](b, model)
    for feature in features:
        _FEATURES[feature](b, model)
    model = _clamp_events(model)
    check_model(model)
    return model
