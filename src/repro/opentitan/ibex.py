"""Ibex: the RV32IMC secure microcontroller inside OpenTitan.

"The secure microcontroller is Ibex, an open-source RV32IMC MCU
optimized for low-gate count" (paper §III-B).  The execution engine is
the shared :class:`repro.hart.core.Hart`; this module only binds the
Ibex-specific pieces: XLEN 32, TL-UL bus port, Ibex static timing, and
the measured 45-cycle doorbell→wake latency (§V-B).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hart.core import Hart
from repro.hart.ports import TlulPort
from repro.hart.timing import IbexTiming
from repro.soc.tilelink import TlulXbar


def make_ibex(
    xbar: TlulXbar,
    reset_pc: int,
    external_irq: Optional[Callable[[], bool]] = None,
    wake_cycles: int = 45,
    name: str = "ibex",
) -> Hart:
    """Construct the Ibex hart on OpenTitan's TL-UL crossbar.

    Args:
        xbar: OpenTitan's internal TL-UL fabric.
        reset_pc: boot address (start of the CFI firmware image).
        external_irq: level of the external interrupt line (PLIC).
        wake_cycles: doorbell-to-first-fetch latency; the paper measures
            45 cycles on the reference SoC.
        name: diagnostic name.
    """
    timing = IbexTiming(wake_cycles=wake_cycles)
    return Hart(
        TlulPort(xbar, master=name),
        timing,
        xlen=32,
        reset_pc=reset_pc,
        external_irq=external_irq,
        name=name,
    )
