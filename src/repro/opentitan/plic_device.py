"""Memory-mapped register adapter for the PLIC model.

Ibex firmware claims and completes interrupts through loads/stores; this
device exposes the :class:`repro.soc.plic.Plic` protocol as registers:

    0x00  CLAIM/COMPLETE   read → claim id; write id → complete
    0x04  PENDING          read-only bitmask (bit N = source N)
    0x08  ENABLE           write bitmask to enable sources; readable
"""

from __future__ import annotations

from repro.errors import AccessFault
from repro.soc.plic import Plic

CLAIM_OFFSET = 0x00
PENDING_OFFSET = 0x04
ENABLE_OFFSET = 0x08


class PlicDevice:
    """Device-protocol wrapper around a :class:`Plic` instance."""

    size = 0x100

    def __init__(self, plic: Plic):
        self.plic = plic
        self._enable_mask = 0

    def read(self, offset: int, size: int) -> int:
        if offset == CLAIM_OFFSET:
            return self.plic.claim()
        if offset == PENDING_OFFSET:
            mask_value = 0
            for source in range(1, self.plic.source_count + 1):
                if self.plic.pending(source):
                    mask_value |= 1 << source
            return mask_value
        if offset == ENABLE_OFFSET:
            return self._enable_mask
        raise AccessFault(offset, "read", f"plic: no register at {offset:#x}")

    def write(self, offset: int, size: int, value: int) -> None:
        if offset == CLAIM_OFFSET:
            self.plic.complete(value)
            return
        if offset == ENABLE_OFFSET:
            self._enable_mask = value
            for source in range(1, self.plic.source_count + 1):
                if value & (1 << source):
                    self.plic.enable(source)
                else:
                    self.plic.disable(source)
            return
        raise AccessFault(offset, "write", f"plic: no register at {offset:#x}")
