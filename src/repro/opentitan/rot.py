"""The OpenTitan Root-of-Trust top level (paper §III-B).

Assembles the RoT: Ibex on a TL-UL crossbar with its boot ROM, 128 KiB
private SRAM scratchpad, scrambled+ECC flash, HMAC accelerator, PLIC and
the TL2AXI bridge into the host domain.  Two fabric profiles exist:

* ``standard`` — the reference interconnect: ~5-cycle scratchpad
  accesses, ~12-cycle SoC accesses through the bridge;
* ``optimized`` — the paper's §V-B proposal of a low-latency
  interconnect: single-cycle scratchpad, ~8-cycle SoC accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.hart.core import Hart
from repro.mem.map import MemoryMap
from repro.mem.memory import Ram, Rom
from repro.mem.scramble import ScrambledMemory
from repro.opentitan.crypto.accel import HmacAccelerator
from repro.opentitan.ibex import make_ibex
from repro.opentitan.plic_device import PlicDevice
from repro.soc.axi import AxiXbar
from repro.soc.bridge import Tl2AxiBridge
from repro.soc.plic import Plic
from repro.soc.tilelink import TlulTimings, TlulXbar
from repro.system.addresses import AddressMap


@dataclass(frozen=True)
class RotConfig:
    """OpenTitan build options.

    Attributes:
        fabric: ``"standard"`` or ``"optimized"`` (paper §V-B).
        wake_cycles: doorbell-to-wake latency of Ibex.
        plic_sources: interrupt source count.
    """

    fabric: str = "standard"
    wake_cycles: int = 45
    plic_sources: int = 4

    def tlul_timings(self) -> TlulTimings:
        """TL-UL timing for the chosen fabric profile."""
        if self.fabric == "standard":
            # 2+2 fabric + 1-cycle SRAM = the paper's ~5-cycle scratchpad.
            return TlulTimings(request_latency=2, response_latency=2)
        if self.fabric == "optimized":
            # Low-latency interconnect: single-cycle private accesses.
            return TlulTimings(request_latency=0, response_latency=0)
        raise ConfigError(f"unknown fabric profile {self.fabric!r}")

    def bridge_region_latency(self) -> int:
        """Device latency of the bridge window region.

        Composed with the TL-UL fabric this yields the paper's SoC
        access costs: standard 2+2+8 = 12 cycles, optimized 0+0+8 = 8.
        """
        return 8


class OpenTitan:
    """The assembled Root-of-Trust.

    Args:
        axi: host-domain crossbar the bridge forwards into.
        addresses: system address map.
        config: build options.
        external_irq: override for the Ibex IRQ line (defaults to this
            RoT's own PLIC line).
    """

    def __init__(
        self,
        axi: AxiXbar,
        addresses: Optional[AddressMap] = None,
        config: Optional[RotConfig] = None,
    ):
        self.addresses = addresses or AddressMap()
        self.config = config or RotConfig()
        amap = self.addresses

        self.tl_map = MemoryMap("opentitan")
        self.rom = Rom(amap.ot_rom_size, "ot-rom")
        self.sram = Ram(amap.ot_sram_size, "ot-sram")
        self.flash = ScrambledMemory(amap.ot_flash_size, name="ot-flash")
        self.hmac = HmacAccelerator()
        self.plic = Plic(self.config.plic_sources, name="ot-plic")
        self.plic_device = PlicDevice(self.plic)
        self.bridge = Tl2AxiBridge(
            axi,
            window_base=amap.host_window_base,
            window_size=amap.ot_bridge_size,
            master="opentitan",
            conversion_latency=0,
        )

        self.tl_map.add(amap.ot_rom_base, self.rom, latency=1,
                        tag="rot-rom", name="ot-rom")
        self.tl_map.add(amap.ot_sram_base, self.sram, latency=1,
                        tag="rot-sram", name="ot-sram")
        self.tl_map.add(amap.ot_flash_base, self.flash, latency=3,
                        tag="rot-flash", name="ot-flash")
        self.tl_map.add(amap.ot_hmac_base, self.hmac, latency=1,
                        tag="rot-crypto", name="ot-hmac")
        self.tl_map.add(amap.ot_plic_base, self.plic_device, latency=1,
                        tag="rot-plic", name="ot-plic")
        self.tl_map.add(amap.ot_bridge_base, self.bridge,
                        size=amap.ot_bridge_size,
                        latency=self.config.bridge_region_latency(),
                        tag="soc", name="tl2axi-window")

        self.xbar = TlulXbar(self.tl_map, self.config.tlul_timings())
        self.ibex: Hart = make_ibex(
            self.xbar,
            reset_pc=amap.ot_rom_base,
            external_irq=lambda: self.plic.irq_line,
            wake_cycles=self.config.wake_cycles,
        )

    def load_firmware(self, image: bytes, base: Optional[int] = None) -> None:
        """Load a firmware image into the boot ROM and point Ibex at it."""
        target = base if base is not None else self.addresses.ot_rom_base
        self.tl_map.write_bytes(target, image)
        self.ibex.pc = target

    def scratchpad_access_cycles(self) -> int:
        """Measured cost of one SRAM access through the current fabric."""
        return self.xbar.timings.access_cycles(4, 1)

    def soc_access_cycles(self) -> int:
        """Measured cost of one SoC access through the bridge window."""
        return self.xbar.timings.access_cycles(4, self.config.bridge_region_latency())
