"""OpenTitan Root-of-Trust model (paper §III-B).

Contains the Ibex secure microcontroller (an RV32IMC hart with Ibex
timing), the TL-UL device fabric, the scrambled+ECC flash, the HMAC
accelerator, the RoT-side PLIC, and the :class:`repro.opentitan.rot.OpenTitan`
top level that assembles them.
"""

from repro.opentitan.ibex import make_ibex
from repro.opentitan.rot import OpenTitan, RotConfig

__all__ = ["make_ibex", "OpenTitan", "RotConfig"]
