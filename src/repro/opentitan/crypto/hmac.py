"""HMAC-SHA256 (RFC 2104) on top of the from-scratch SHA-256."""

from __future__ import annotations

from functools import lru_cache

from repro.opentitan.crypto.sha256 import sha256

_BLOCK = 64


@lru_cache(maxsize=65536)
def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 tag of ``message`` under ``key`` (32 bytes).

    Memoized: the function is pure, and the shadow-stack policy tags
    the same (address, depth) records over and over as loops push and
    pop identical frames — cycle accounting stays in the accel model,
    which charges per *operation*, not per Python recomputation.
    """
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    inner = bytes(k ^ 0x36 for k in key)
    outer = bytes(k ^ 0x5C for k in key)
    return sha256(outer + sha256(inner + message))


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length-safe constant-time comparison for tag verification."""
    if len(a) != len(b):
        return False
    difference = 0
    for x, y in zip(a, b):
        difference |= x ^ y
    return difference == 0
