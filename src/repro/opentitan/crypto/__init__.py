"""Cryptographic accelerators: from-scratch SHA-256 and HMAC.

OpenTitan's crypto blocks "efficiently execute compute-intensive
security primitives, such as ... hash calculation" (paper §III-B);
TitanCFI uses them to authenticate shadow-stack pages spilled to
untrusted SoC memory (§VI).  Both primitives are implemented from
scratch (no hashlib) and validated against independent test vectors.
"""

from repro.opentitan.crypto.sha256 import sha256
from repro.opentitan.crypto.hmac import hmac_sha256
from repro.opentitan.crypto.accel import HmacAccelerator

__all__ = ["sha256", "hmac_sha256", "HmacAccelerator"]
