"""Memory-mapped HMAC accelerator device (OpenTitan ``hmac`` block).

Register map (byte offsets; all registers 32-bit):

    0x00  CMD      write: 1 = start SHA-256, 2 = start HMAC
    0x04  STATUS   read-only: bit0 = done
    0x08  MSG_LEN  message length in bytes (set before CMD)
    0x20  KEY      8 words (write-only key material)
    0x40  DIGEST   8 words (read-only result)
    0x80  MSG      streaming window (sequential word writes append)

The functional result is computed by the from-scratch primitives; the
cycle cost model (``cycles_per_block`` × SHA-256 blocks processed) is
exposed through :attr:`busy_cycles` for the spill-path analysis — the
real block hashes one 512-bit block in ~80 cycles.
"""

from __future__ import annotations

from repro.errors import AccessFault
from repro.opentitan.crypto.hmac import hmac_sha256
from repro.opentitan.crypto.sha256 import sha256

CMD_OFFSET = 0x00
STATUS_OFFSET = 0x04
MSG_LEN_OFFSET = 0x08
KEY_OFFSET = 0x20
DIGEST_OFFSET = 0x40
MSG_OFFSET = 0x80

CMD_SHA256 = 1
CMD_HMAC = 2


class HmacAccelerator:
    """Device-protocol HMAC/SHA-256 engine."""

    size = 0x100

    def __init__(self, cycles_per_block: int = 80):
        self.cycles_per_block = cycles_per_block
        self.busy_cycles = 0
        self.operations = 0
        self._key = bytearray(32)
        self._digest = bytes(32)
        self._message = bytearray()
        self._msg_len = 0
        self._done = False

    # -- device protocol -----------------------------------------------------

    def read(self, offset: int, size: int) -> int:
        if offset == STATUS_OFFSET:
            return int(self._done)
        if DIGEST_OFFSET <= offset < DIGEST_OFFSET + 32:
            index = offset - DIGEST_OFFSET
            return int.from_bytes(self._digest[index : index + size], "little")
        if offset == MSG_LEN_OFFSET:
            return self._msg_len
        raise AccessFault(offset, "read", f"hmac: no readable register at {offset:#x}")

    def write(self, offset: int, size: int, value: int) -> None:
        data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        if offset == CMD_OFFSET:
            self._execute(value)
            return
        if offset == MSG_LEN_OFFSET:
            self._msg_len = value
            return
        if KEY_OFFSET <= offset < KEY_OFFSET + 32:
            index = offset - KEY_OFFSET
            self._key[index : index + size] = data
            return
        if MSG_OFFSET <= offset < MSG_OFFSET + 0x80:
            self._message += data
            self._done = False
            return
        raise AccessFault(offset, "write", f"hmac: no writable register at {offset:#x}")

    # -- functional model -------------------------------------------------------

    def _execute(self, command: int) -> None:
        message = bytes(self._message[: self._msg_len or len(self._message)])
        if command == CMD_SHA256:
            self._digest = sha256(message)
        elif command == CMD_HMAC:
            self._digest = hmac_sha256(bytes(self._key), message)
        else:
            raise AccessFault(CMD_OFFSET, "write", f"hmac: unknown command {command}")
        blocks = max(1, (len(message) + 63) // 64)
        extra = 3 if command == CMD_HMAC else 0  # key pads + outer hash
        self.busy_cycles += (blocks + extra) * self.cycles_per_block
        self.operations += 1
        self._message.clear()
        self._done = True

    # -- direct (host-level) API ---------------------------------------------------

    def compute_hmac(self, key: bytes, message: bytes) -> bytes:
        """Python-level HMAC for policy models; charges the same cycles."""
        blocks = max(1, (len(message) + 63) // 64)
        self.busy_cycles += (blocks + 3) * self.cycles_per_block
        self.operations += 1
        return hmac_sha256(key, message)
