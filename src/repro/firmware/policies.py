"""Python-level reference CFI policies.

These are executable specifications of the firmware's behaviour, used
three ways:

* differential testing — the assembly firmware and the reference policy
  must return the same verdict on the same commit-log stream;
* the trace-driven overhead model, which needs policy semantics without
  paying for instruction-level simulation;
* the paper's "any policy in software" claim — the forward-edge policy
  demonstrates a second policy with zero hardware change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.core.commit_log import CommitLog
from repro.errors import ConfigError
from repro.isa.cflow import CfKind
from repro.opentitan.crypto.accel import HmacAccelerator
from repro.opentitan.crypto.hmac import constant_time_equal


class CheckResult(enum.Enum):
    """Verdict of one policy check (the value written to MB_RESULT)."""

    OK = 0
    VIOLATION = 1


class Policy(Protocol):
    """A CFI enforcement policy running in the RoT."""

    def check(self, log: CommitLog) -> CheckResult:
        """Process one commit log; returns the verdict."""
        ...


#: Values of the optional ``last_event`` attribute a policy may expose
#: after each :meth:`check`.  The policy-host cycle model uses it to
#: select the firmware code path a check corresponds to (a shadow-stack
#: underflow takes a shorter firmware path than a pop-and-mismatch, so
#: the two must be charged differently); policies without the attribute
#: are charged the verdict-derived default path.
EVENT_PUSH = "push"            # call: entry pushed
EVENT_SPILL = "spill"          # call: overflow spill, then push
EVENT_POP = "pop"              # return: popped and matched
EVENT_MISMATCH = "mismatch"    # return: popped, target mismatch
EVENT_UNDERFLOW = "underflow"  # return: nothing to pop (and no spill)
EVENT_RESTORE = "restore"      # return: spill block restored first
EVENT_SKIP = "skip"            # event the policy does not constrain


#: Static-oracle rule families (the ``oracle_rule`` class attribute each
#: policy exposes).  The scenario-synthesis oracle
#: (:mod:`repro.synth.oracle`) predicts a policy's verdict on a generated
#: program *without running it* by replaying the program's statically
#: derived control-flow event stream through the rule the policy declares
#: here — so a policy and its oracle prediction are tied together at the
#: policy's definition site, not in a hand-maintained table elsewhere.
ORACLE_RETURN_EXACT = "return-exact"      # returns must match the pushed address
ORACLE_FORWARD_ENTRY = "forward-entry"    # indirect transfers must hit a
                                          # registered entry point
ORACLE_COARSE_PAIRED = "coarse-paired"    # returns call-preceded; indirect
                                          # transfers to *some* function entry


class PerHartContextMixin:
    """Per-hart shadow contexts for multi-hart monitors.

    One monitor protecting N application harts keeps N independent
    policy states — hart 1's calls must not satisfy hart 0's returns.
    The policy instance itself *is* the hart-0 context (so single-hart
    code paths are untouched); :meth:`context` lazily spawns a sibling
    per additional hart, and :meth:`install_context` lets the campaign
    runner provision contexts whose configuration (label sets derived
    from per-hart program addresses) differs per hart.
    """

    def _spawn_context(self):
        """Build a fresh sibling sharing this policy's configuration."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot spawn per-hart contexts"
        )

    def context(self, hart_id: int):
        """The policy state charged with application hart ``hart_id``."""
        if hart_id == 0:
            return self
        contexts = self.__dict__.setdefault("_contexts", {})
        ctx = contexts.get(hart_id)
        if ctx is None:
            ctx = self._spawn_context()
            contexts[hart_id] = ctx
        return ctx

    def install_context(self, hart_id: int, policy) -> None:
        """Provision an externally-built context for ``hart_id > 0``."""
        if hart_id == 0:
            raise ConfigError("hart 0's context is the policy itself")
        self.__dict__.setdefault("_contexts", {})[hart_id] = policy

    def reset_contexts(self) -> None:
        """Reset every spawned/installed sibling (monitor-reset fault:
        the whole monitor reboots, so every hart's state is lost)."""
        for ctx in self.__dict__.get("_contexts", {}).values():
            reset = getattr(ctx, "reset", None)
            if reset is not None:
                reset()

    def quarantine_context(self, hart_id: int) -> None:
        """Mark ``hart_id``'s context as quarantined by the monitor's
        defense layer.  Purely observational — the context object keeps
        its state (forensics read it after the run), and the sealing
        itself happens at the doorbell arbiter; the mark survives
        :meth:`reset_contexts` just as the arbiter latch survives a
        monitor reboot."""
        self.__dict__.setdefault("_quarantined_contexts", set()).add(hart_id)

    @property
    def quarantined_contexts(self) -> frozenset:
        """Hart ids whose contexts the defense layer has sealed."""
        return frozenset(self.__dict__.get("_quarantined_contexts", ()))


@dataclass
class PolicyStats:
    """Counters every policy keeps."""

    checks: int = 0
    calls: int = 0
    returns: int = 0
    indirect_jumps: int = 0
    violations: int = 0
    spills: int = 0
    restores: int = 0


class ShadowStackPolicy(PerHartContextMixin):
    """Return-address protection via a shadow stack (paper §V-B).

    The resident stack lives in (modelled) RoT scratchpad; on overflow
    the oldest ``spill_entries`` are MAC'd with the HMAC accelerator and
    moved to untrusted memory, mirroring the assembly firmware.  Restore
    verifies the tag; any mismatch (tampering) is a violation.

    Args:
        capacity: resident stack entries before a spill.
        spill_entries: entries moved per spill.
        accel: HMAC accelerator (shared with the RoT model when used
            inside the SoC; a private one otherwise).
        key: MAC key held in tamper-proof storage.
    """

    #: Static-oracle rule (see the EVENT_*/ORACLE_* block above).
    oracle_rule = ORACLE_RETURN_EXACT

    #: Degradation-contract class: the verdict depends on accumulated
    #: runtime state, so a monitor reset can flip later verdicts (see
    #: :mod:`repro.faults.contract`).
    monitor_state = "stateful"

    def __init__(
        self,
        capacity: int = 1024,
        spill_entries: Optional[int] = None,
        accel: Optional[HmacAccelerator] = None,
        key: bytes = b"titancfi-device-key",
    ):
        if capacity < 2:
            raise ConfigError("shadow stack capacity must be >= 2")
        self.capacity = capacity
        self.spill_entries = spill_entries or capacity // 2
        if not 0 < self.spill_entries <= capacity:
            raise ConfigError("spill_entries must be in (0, capacity]")
        self.accel = accel or HmacAccelerator()
        self.key = key
        self.stack: List[int] = []
        #: Untrusted spill storage: list of (packed entries, tag).
        self.spill_area: List[Tuple[bytes, bytes]] = []
        self.stats = PolicyStats()
        #: Firmware code path of the most recent check (see EVENT_*).
        self.last_event: str = EVENT_SKIP

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _pack(entries: List[int]) -> bytes:
        return b"".join(e.to_bytes(8, "little") for e in entries)

    @staticmethod
    def _unpack(blob: bytes) -> List[int]:
        return [
            int.from_bytes(blob[i : i + 8], "little") for i in range(0, len(blob), 8)
        ]

    def _spill(self) -> None:
        victim = self.stack[: self.spill_entries]
        self.stack = self.stack[self.spill_entries :]
        blob = self._pack(victim)
        tag = self.accel.compute_hmac(self.key, blob)
        self.spill_area.append((blob, tag))
        self.stats.spills += 1

    def _restore(self) -> bool:
        """Pull the newest spill block back; False on tag mismatch."""
        blob, tag = self.spill_area.pop()
        fresh = self.accel.compute_hmac(self.key, blob)
        if not constant_time_equal(fresh, tag):
            return False
        self.stack = self._unpack(blob) + self.stack
        self.stats.restores += 1
        return True

    def reset(self) -> None:
        """Return to the boot state (mid-run monitor-reset fault)."""
        self.stack = []
        self.spill_area = []
        self.last_event = EVENT_SKIP
        self.reset_contexts()

    def _spawn_context(self) -> "ShadowStackPolicy":
        return ShadowStackPolicy(
            self.capacity, self.spill_entries, accel=self.accel, key=self.key
        )

    # -- policy interface ---------------------------------------------------------

    def check(self, log: CommitLog) -> CheckResult:
        """Shadow-stack semantics for one control-flow event."""
        self.stats.checks += 1
        kind = log.kind
        if kind is CfKind.CALL:
            self.stats.calls += 1
            if len(self.stack) >= self.capacity:
                self._spill()
                self.last_event = EVENT_SPILL
            else:
                self.last_event = EVENT_PUSH
            self.stack.append(log.next_address)
            return CheckResult.OK
        if kind is CfKind.RETURN:
            self.stats.returns += 1
            self.last_event = EVENT_POP
            if not self.stack:
                if not self.spill_area:
                    self.last_event = EVENT_UNDERFLOW
                    self.stats.violations += 1
                    return CheckResult.VIOLATION
                if not self._restore():
                    self.last_event = EVENT_RESTORE
                    self.stats.violations += 1
                    return CheckResult.VIOLATION
                self.last_event = EVENT_RESTORE
            expected = self.stack.pop()
            if expected != log.target:
                if self.last_event == EVENT_POP:
                    self.last_event = EVENT_MISMATCH
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.INDIRECT_JUMP:
            # Return-address protection does not constrain forward edges.
            self.stats.indirect_jumps += 1
            self.last_event = EVENT_SKIP
            return CheckResult.OK
        self.last_event = EVENT_SKIP
        return CheckResult.OK

    @property
    def depth(self) -> int:
        """Total protected depth (resident + spilled)."""
        return len(self.stack) + sum(
            len(blob) // 8 for blob, _ in self.spill_area
        )

    def tamper_spill(self, block: int = -1, byte: int = 0) -> None:
        """Corrupt one spilled byte (attack-simulation hook)."""
        blob, tag = self.spill_area[block]
        damaged = bytearray(blob)
        damaged[byte] ^= 0xFF
        self.spill_area[block] = (bytes(damaged), tag)


class ForwardEdgePolicy(PerHartContextMixin):
    """Label-based forward-edge CFI (the paper's "any policy" claim).

    Indirect transfers (indirect calls and jumps) must land on an
    address registered as a valid entry point.  Returns are ignored —
    compose with :class:`ShadowStackPolicy` for full coverage.
    """

    oracle_rule = ORACLE_FORWARD_ENTRY

    #: The label set is provisioned configuration, not accumulated
    #: state — a monitor reset cannot change any later verdict.
    monitor_state = "stateless"

    def __init__(self, valid_targets: Optional[Set[int]] = None):
        self.valid_targets: Set[int] = set(valid_targets or ())
        self.stats = PolicyStats()

    def allow(self, target: int) -> None:
        """Register a legitimate entry point."""
        self.valid_targets.add(target)

    def reset(self) -> None:
        """Boot state == provisioned state: nothing to clear."""
        self.reset_contexts()

    def _spawn_context(self) -> "ForwardEdgePolicy":
        # Default sibling inherits the provisioned labels; harts whose
        # programs live at different addresses get theirs provisioned by
        # the campaign runner through install_context instead.
        return ForwardEdgePolicy(self.valid_targets)

    def check(self, log: CommitLog) -> CheckResult:
        self.stats.checks += 1
        kind = log.kind
        if kind is CfKind.INDIRECT_JUMP:
            self.stats.indirect_jumps += 1
            if log.target not in self.valid_targets:
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.CALL:
            self.stats.calls += 1
            # Only *indirect* calls (JALR) are constrained; direct JAL
            # targets are immediate-encoded and statically verified.
            if (log.encoding & 0x7F) == 0x67 and log.target not in self.valid_targets:
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.RETURN:
            self.stats.returns += 1
        return CheckResult.OK


class CoarseGrainedPolicy(PerHartContextMixin):
    """Coarse-grained CFI in the style of the early binary-level schemes
    (Burow et al.'s survey, categories with label granularity "any").

    Two relaxed target sets:

    * returns must land on a *call-preceded* address (any valid return
      site in the program — not necessarily the one that was pushed);
    * indirect calls and jumps must land on *some* function entry (not
      necessarily a registered indirect-transfer target).

    This is the precision/security trade-off the campaign matrix
    measures: a corrupted return aimed at another valid call site, or an
    indirect call hijacked to a different whole function, both pass.
    """

    oracle_rule = ORACLE_COARSE_PAIRED

    #: Return sites learned from observed calls are accumulated state.
    monitor_state = "stateful"

    def __init__(
        self,
        valid_return_sites: Optional[Set[int]] = None,
        valid_entries: Optional[Set[int]] = None,
    ):
        self.valid_return_sites: Set[int] = set(valid_return_sites or ())
        self.valid_entries: Set[int] = set(valid_entries or ())
        # Boot-state snapshot for monitor-reset faults: the sites
        # learned from observed calls are lost, the provisioned ones are
        # not (they would be re-derived from the binary at boot).
        self._provisioned_return_sites = frozenset(self.valid_return_sites)
        self.stats = PolicyStats()

    def reset(self) -> None:
        """Drop runtime-learned return sites (mid-run monitor reset)."""
        self.valid_return_sites = set(self._provisioned_return_sites)
        self.reset_contexts()

    def _spawn_context(self) -> "CoarseGrainedPolicy":
        return CoarseGrainedPolicy(
            self._provisioned_return_sites, self.valid_entries
        )

    def allow_return_site(self, address: int) -> None:
        """Register a call-preceded address (a legal coarse return target)."""
        self.valid_return_sites.add(address)

    def allow_entry(self, address: int) -> None:
        """Register a function entry (a legal coarse forward-edge target)."""
        self.valid_entries.add(address)

    def check(self, log: CommitLog) -> CheckResult:
        self.stats.checks += 1
        kind = log.kind
        if kind is CfKind.CALL:
            self.stats.calls += 1
            # Every call fall-through is by definition call-preceded.
            self.valid_return_sites.add(log.next_address)
            if (log.encoding & 0x7F) == 0x67 and log.target not in self.valid_entries:
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.RETURN:
            self.stats.returns += 1
            if log.target not in self.valid_return_sites:
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.INDIRECT_JUMP:
            self.stats.indirect_jumps += 1
            if log.target not in self.valid_entries:
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        return CheckResult.OK


class CompositePolicy(PerHartContextMixin):
    """Run several policies on each log; any violation wins."""

    #: Most-specific-first precedence for the composite's own
    #: ``last_event``: structural events (spill/restore/underflow) must
    #: win over plain push/pop so the policy host's path selection (and
    #: its fail-loud guard for uncalibrated paths) sees them.
    _EVENT_PRECEDENCE = (EVENT_SPILL, EVENT_RESTORE, EVENT_UNDERFLOW,
                         EVENT_MISMATCH, EVENT_POP, EVENT_PUSH)

    def __init__(self, policies: List[Policy]):
        if not policies:
            raise ConfigError("composite policy needs at least one member")
        self.policies = policies
        self.stats = PolicyStats()
        self.last_event: str = EVENT_SKIP

    @property
    def monitor_state(self) -> str:
        """Stateful iff any member is (a reset perturbs that member)."""
        return (
            "stateful"
            if any(
                getattr(p, "monitor_state", "stateful") == "stateful"
                for p in self.policies
            )
            else "stateless"
        )

    def reset(self) -> None:
        """Reset every member that carries runtime state."""
        for policy in self.policies:
            reset = getattr(policy, "reset", None)
            if reset is not None:
                reset()
        self.last_event = EVENT_SKIP
        self.reset_contexts()

    def _spawn_context(self) -> "CompositePolicy":
        members = []
        for policy in self.policies:
            spawn = getattr(policy, "_spawn_context", None)
            if spawn is None:
                raise ConfigError(
                    f"composite member {type(policy).__name__} cannot "
                    "spawn per-hart contexts"
                )
            members.append(spawn())
        return CompositePolicy(members)

    @property
    def oracle_rules(self) -> Tuple[str, ...]:
        """Static-oracle rules of every member (any firing rule wins,
        mirroring :meth:`check`'s any-violation semantics)."""
        return tuple(
            rule for policy in self.policies
            for rule in (getattr(policy, "oracle_rule", None),)
            if rule is not None
        )

    def check(self, log: CommitLog) -> CheckResult:
        self.stats.checks += 1
        verdict = CheckResult.OK
        events = []
        for policy in self.policies:
            if policy.check(log) is CheckResult.VIOLATION:
                verdict = CheckResult.VIOLATION
            events.append(getattr(policy, "last_event", EVENT_SKIP))
        self.last_event = next(
            (event for event in self._EVENT_PRECEDENCE if event in events),
            EVENT_SKIP,
        )
        if verdict is CheckResult.VIOLATION:
            self.stats.violations += 1
        return verdict

    def host_extra_cycles(self, log: CommitLog, verdict: CheckResult) -> int:
        """Mailbox-agent surcharge: the sum of every member's surcharge
        (a firmware running several policies pays each one's extra work
        per check)."""
        total = 0
        for policy in self.policies:
            extra = getattr(policy, "host_extra_cycles", None)
            if extra is not None:
                total += extra(log, verdict)
        return total


#: Member policies of the campaign's standard ``composite`` cell.  The
#: single source of truth shared by the campaign runner (which
#: instantiates them with resolved label sets) and the synthesis
#: oracle's rule table (which reads their ``oracle_rule`` hooks) — the
#: two can therefore never drift apart.
COMPOSITE_MEMBERS: Tuple[type, ...] = (ShadowStackPolicy, ForwardEdgePolicy)


class CryptoReturnPolicy(PerHartContextMixin):
    """MAC-authenticated return addresses, in the spirit of CCFI
    (Mashtizadeh et al.): instead of hiding the shadow stack in trusted
    scratchpad, every pushed return address is *tagged* with an HMAC
    over ``(address, stack position)`` under the device key, so the
    whole structure could live in untrusted memory — tampering with
    either an address or its position is detected when the tag is
    re-verified on return.

    This policy exists to exercise the policy-host subsystem with an
    enforcement scheme the RV32 firmware does **not** implement: it
    runs on the cosim backend only as a mailbox agent
    (:class:`repro.policyhost.PolicyHost`), paying a modelled HMAC
    surcharge per call/return on top of the firmware-derived per-event
    costs (see :meth:`host_extra_cycles`).

    Args:
        accel: HMAC accelerator (shared with the RoT model when used
            inside the SoC; a private one otherwise).
        key: MAC key held in tamper-proof storage.
    """

    #: Same detection envelope as the shadow stack: exact return-edge
    #: protection (the MAC changes *how*, not *what*, is enforced).
    oracle_rule = ORACLE_RETURN_EXACT

    #: The tag table is accumulated runtime state.
    monitor_state = "stateful"

    #: Modelled accelerator cost of one MAC over a (address, position)
    #: record on the standard RoT fabric: 4 message words + length +
    #: command + status poll + 8 digest reads ≈ 15 scratchpad-latency
    #: accesses at ~5 cycles, plus bookkeeping logic.
    MAC_CYCLES = 85
    #: A return additionally compares the 8-word tag (loads + xor/or).
    VERIFY_EXTRA_CYCLES = 18

    def __init__(
        self,
        accel: Optional[HmacAccelerator] = None,
        key: bytes = b"titancfi-device-key",
    ):
        self.accel = accel or HmacAccelerator()
        self.key = key
        #: Untrusted storage: (return address, tag) per frame.
        self.table: List[Tuple[int, bytes]] = []
        self.stats = PolicyStats()
        self.last_event: str = EVENT_SKIP

    def _tag(self, address: int, position: int) -> bytes:
        record = address.to_bytes(8, "little") + position.to_bytes(8, "little")
        return self.accel.compute_hmac(self.key, record)

    def reset(self) -> None:
        """Return to the boot state (mid-run monitor-reset fault)."""
        self.table = []
        self.last_event = EVENT_SKIP
        self.reset_contexts()

    def _spawn_context(self) -> "CryptoReturnPolicy":
        return CryptoReturnPolicy(accel=self.accel, key=self.key)

    def check(self, log: CommitLog) -> CheckResult:
        self.stats.checks += 1
        kind = log.kind
        if kind is CfKind.CALL:
            self.stats.calls += 1
            self.last_event = EVENT_PUSH
            address = log.next_address
            self.table.append((address, self._tag(address, len(self.table))))
            return CheckResult.OK
        if kind is CfKind.RETURN:
            self.stats.returns += 1
            if not self.table:
                self.last_event = EVENT_UNDERFLOW
                self.stats.violations += 1
                return CheckResult.VIOLATION
            self.last_event = EVENT_POP
            address, tag = self.table.pop()
            fresh = self._tag(address, len(self.table))
            if not constant_time_equal(fresh, tag):
                # The stored record was tampered with in untrusted memory.
                self.last_event = EVENT_MISMATCH
                self.stats.violations += 1
                return CheckResult.VIOLATION
            if address != log.target:
                self.last_event = EVENT_MISMATCH
                self.stats.violations += 1
                return CheckResult.VIOLATION
            return CheckResult.OK
        if kind is CfKind.INDIRECT_JUMP:
            self.stats.indirect_jumps += 1
        self.last_event = EVENT_SKIP
        return CheckResult.OK

    def host_extra_cycles(self, log: CommitLog, verdict: CheckResult) -> int:
        """Cycles a mailbox-agent check pays beyond the shadow-stack
        firmware's measured per-event cost: one accelerator MAC per
        call (tag) and per return (re-verify + constant-time compare)."""
        kind = log.kind
        if kind is CfKind.CALL:
            return self.MAC_CYCLES
        if kind is CfKind.RETURN and self.last_event != EVENT_UNDERFLOW:
            return self.MAC_CYCLES + self.VERIFY_EXTRA_CYCLES
        return 0

    @property
    def depth(self) -> int:
        """Protected return-address depth."""
        return len(self.table)

    def tamper(self, frame: int = -1) -> None:
        """Corrupt one stored return address (attack-simulation hook):
        the tag no longer matches, so the next return through the frame
        is flagged even if the attacker aims at the original address."""
        address, tag = self.table[frame]
        self.table[frame] = (address ^ 0x10, tag)
