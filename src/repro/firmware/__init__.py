"""OpenTitan CFI firmware (paper §IV-C) and reference policy models.

The firmware is genuine RV32 assembly, assembled by :mod:`repro.isa.asm`
and executed on the Ibex ISS.  Two variants exist:

* ``irq`` — the baseline: the check runs in the CFI mailbox interrupt
  service routine (wake → spill → claim → check → complete → restore →
  mret → wfi);
* ``polling`` — the paper's first optimisation: a busy-wait loop on the
  doorbell bit, paying no IRQ entry/exit cost.

The paper's third configuration, *Optimized*, is the polling firmware
run on the low-latency fabric profile (``fabric="optimized"``).

:mod:`repro.firmware.policies` holds Python-level reference policies
(shadow stack with authenticated spill, forward-edge label policy) used
by the trace-driven model and as an executable spec for the assembly.
"""

from repro.firmware.shadow_stack import (
    FirmwareLayout,
    shadow_stack_firmware,
)
from repro.firmware.policies import (
    CheckResult,
    CoarseGrainedPolicy,
    CompositePolicy,
    ForwardEdgePolicy,
    Policy,
    ShadowStackPolicy,
)

__all__ = [
    "FirmwareLayout",
    "shadow_stack_firmware",
    "CheckResult",
    "CoarseGrainedPolicy",
    "CompositePolicy",
    "ForwardEdgePolicy",
    "Policy",
    "ShadowStackPolicy",
]
