"""Per-thread CFI contexts (the paper's §V-C / §VII future work).

Two extensions the paper sketches are implemented here as policy-layer
features, with no hardware change — which is the point of enforcing CFI
in RoT firmware:

* **per-thread enforcement** — one shadow stack per protected thread,
  switched by an explicit context-switch notification (in deployment:
  an SCMI message from the OS scheduler to the RoT);
* **selective protection** — only threads registered as *protected*
  (the paper: "processes exposed at the boundary of the system, dealing
  with potentially tainted data") are checked; the rest flow through
  unchecked, eliminating their overhead entirely.

Inactive contexts beyond the resident limit are evicted to untrusted
memory under an HMAC tag, extending §VI's authenticated-spill scheme
from stack pages to whole contexts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.commit_log import CommitLog
from repro.errors import CfiViolation, ConfigError
from repro.firmware.policies import CheckResult, ShadowStackPolicy
from repro.opentitan.crypto.accel import HmacAccelerator
from repro.opentitan.crypto.hmac import constant_time_equal


@dataclass
class ContextStats:
    """Bookkeeping of a :class:`CfiContextManager`."""

    switches: int = 0
    checks: int = 0
    skipped_unprotected: int = 0
    evictions: int = 0
    activations: int = 0
    violations: int = 0


class CfiContextManager:
    """Multiplexes shadow-stack state across threads.

    Args:
        resident_limit: contexts kept live in (modelled) RoT scratchpad;
            beyond it, least-recently-used contexts are evicted under an
            HMAC tag (128 KiB of scratchpad cannot hold "tens of
            processes", §VI).
        stack_capacity: per-context resident shadow-stack entries.
        accel: shared HMAC accelerator (cycle accounting).
        key: device key used for context eviction tags.
    """

    def __init__(
        self,
        resident_limit: int = 4,
        stack_capacity: int = 256,
        accel: Optional[HmacAccelerator] = None,
        key: bytes = b"titancfi-context-key",
    ):
        if resident_limit < 1:
            raise ConfigError("resident_limit must be >= 1")
        self.resident_limit = resident_limit
        self.stack_capacity = stack_capacity
        self.accel = accel or HmacAccelerator()
        self.key = key
        self._protected: Dict[int, bool] = {}
        self._resident: Dict[int, ShadowStackPolicy] = {}
        self._evicted: Dict[int, Tuple[bytes, bytes]] = {}
        self._lru: List[int] = []
        self._current: Optional[int] = None
        self.stats = ContextStats()

    # -- thread registration --------------------------------------------------

    def register(self, thread_id: int, protected: bool = True) -> None:
        """Declare a thread; only protected threads are enforced."""
        if thread_id in self._protected:
            raise ConfigError(f"thread {thread_id} already registered")
        self._protected[thread_id] = protected

    def is_protected(self, thread_id: int) -> bool:
        """Whether ``thread_id`` is under enforcement."""
        return self._protected.get(thread_id, False)

    @property
    def current_thread(self) -> Optional[int]:
        """The thread whose control flow is currently being checked."""
        return self._current

    @property
    def resident_threads(self) -> List[int]:
        """Thread ids with live scratchpad state."""
        return list(self._resident)

    # -- context switching ------------------------------------------------------

    def switch_to(self, thread_id: int) -> None:
        """Scheduler notification: subsequent commit logs belong to
        ``thread_id``.  Activates (possibly restoring) its context."""
        if thread_id not in self._protected:
            raise ConfigError(f"thread {thread_id} was never registered")
        self.stats.switches += 1
        self._current = thread_id
        if self._protected[thread_id]:
            self._activate(thread_id)

    def _activate(self, thread_id: int) -> None:
        if thread_id in self._resident:
            self._touch(thread_id)
            return
        self.stats.activations += 1
        if thread_id in self._evicted:
            policy = self._restore(thread_id)
        else:
            policy = ShadowStackPolicy(
                capacity=self.stack_capacity, accel=self.accel, key=self.key
            )
        self._make_room()
        self._resident[thread_id] = policy
        self._touch(thread_id)

    def _touch(self, thread_id: int) -> None:
        if thread_id in self._lru:
            self._lru.remove(thread_id)
        self._lru.append(thread_id)

    def _make_room(self) -> None:
        while len(self._resident) >= self.resident_limit:
            victim = self._lru.pop(0)
            self._evict(victim)

    # -- authenticated eviction ----------------------------------------------------

    def _evict(self, thread_id: int) -> None:
        policy = self._resident.pop(thread_id)
        blob = policy._pack(policy.stack)
        tag = self.accel.compute_hmac(self.key, thread_id.to_bytes(8, "little") + blob)
        self._evicted[thread_id] = (blob, tag)
        self.stats.evictions += 1

    def _restore(self, thread_id: int) -> ShadowStackPolicy:
        blob, tag = self._evicted.pop(thread_id)
        fresh = self.accel.compute_hmac(
            self.key, thread_id.to_bytes(8, "little") + blob
        )
        if not constant_time_equal(fresh, tag):
            self.stats.violations += 1
            raise CfiViolation("context-tamper", pc=None)
        policy = ShadowStackPolicy(
            capacity=self.stack_capacity, accel=self.accel, key=self.key
        )
        policy.stack = ShadowStackPolicy._unpack(blob)
        return policy

    def tamper_evicted(self, thread_id: int, byte: int = 0) -> None:
        """Corrupt an evicted context blob (attack-simulation hook)."""
        blob, tag = self._evicted[thread_id]
        damaged = bytearray(blob or b"\x00")
        damaged[byte % len(damaged)] ^= 0xFF
        self._evicted[thread_id] = (bytes(damaged), tag)

    # -- the policy interface --------------------------------------------------------

    def check(self, log: CommitLog) -> CheckResult:
        """Enforce the current thread's policy on one commit log."""
        if self._current is None:
            raise ConfigError("no thread scheduled; call switch_to() first")
        if not self._protected[self._current]:
            self.stats.skipped_unprotected += 1
            return CheckResult.OK
        self.stats.checks += 1
        verdict = self._resident[self._current].check(log)
        if verdict is CheckResult.VIOLATION:
            self.stats.violations += 1
        return verdict

    def depth_of(self, thread_id: int) -> int:
        """Protected call depth of a thread (resident or evicted)."""
        if thread_id in self._resident:
            return self._resident[thread_id].depth
        if thread_id in self._evicted:
            return len(self._evicted[thread_id][0]) // 8
        return 0
