"""Shadow-stack CFI firmware generator (paper §IV-C, §V-B).

Generates RV32 assembly implementing the return-address-protection
policy in the RoT:

* parse the commit-log encoding to distinguish calls from returns
  (the same link-register rules as :mod:`repro.isa.cflow`),
* on a call, push the expected return address (the log's *next
  address*) onto a shadow stack in OpenTitan's private scratchpad,
* on a return, pop and compare against the log's *target*; mismatch →
  violation verdict,
* on overflow/underflow, spill/restore half the stack to SoC DRAM,
  authenticated with the HMAC accelerator (§VI, Zipper-stack-inspired).

``.region`` directives tag the image so the Table I harness can split
executed cycles into *IRQ* versus *CFI* work by program counter alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.isa.asm import Assembler, Program
from repro.system.addresses import AddressMap

#: PLIC enable bit for the CFI mailbox source (source id 1 → bit 1).
_PLIC_ENABLE_MASK = 0x2


@dataclass(frozen=True)
class FirmwareLayout:
    """Resolved addresses the firmware is generated against.

    Attributes:
        ss_capacity: shadow-stack capacity in entries (words).
        spill_entries: entries moved to DRAM per overflow spill.
        spill_slots: maximum resident spill blocks in DRAM.
    """

    addresses: AddressMap
    ss_capacity: int = 1024
    spill_entries: int = 512
    spill_slots: int = 8

    def __post_init__(self):
        if self.ss_capacity < 4:
            raise ConfigError("shadow stack needs at least 4 entries")
        if not 0 < self.spill_entries < self.ss_capacity:
            raise ConfigError("spill_entries must be in (0, ss_capacity)")

    # ---- scratchpad cells ----
    @property
    def ss_ptr_cell(self) -> int:
        return self.addresses.ot_sram_base + 0x00

    @property
    def ss_count_cell(self) -> int:
        return self.addresses.ot_sram_base + 0x04

    @property
    def spill_count_cell(self) -> int:
        return self.addresses.ot_sram_base + 0x08

    @property
    def ss_base(self) -> int:
        return self.addresses.ot_sram_base + 0x100

    @property
    def ss_end(self) -> int:
        return self.ss_base + 4 * self.ss_capacity

    @property
    def irq_stack_top(self) -> int:
        return self.addresses.ot_sram_base + self.addresses.ot_sram_size - 0x10

    # ---- DRAM spill area (Ibex alias through the bridge) ----
    @property
    def spill_slot_bytes(self) -> int:
        return 4 * self.spill_entries + 32  # data + HMAC tag

    @property
    def spill_base(self) -> int:
        # Top megabyte of host DRAM, as seen through the bridge window.
        host = (self.addresses.dram_base + self.addresses.dram_size
                - self.spill_slots * self.spill_slot_bytes - 0x1000)
        return self.addresses.ibex_alias(host)

    # ---- mailbox registers (Ibex aliases) ----
    @property
    def mailbox(self) -> int:
        return self.addresses.cfi_mailbox_ibex


def shadow_stack_firmware(
    variant: str,
    layout: Optional[FirmwareLayout] = None,
) -> Program:
    """Assemble the shadow-stack firmware.

    Args:
        variant: ``"irq"`` or ``"polling"``.
        layout: address/geometry overrides.

    Returns:
        the assembled :class:`repro.isa.asm.Program` (load at the RoT
        boot ROM base; ``program.regions`` carries the IRQ/CFI tags).
    """
    if variant not in ("irq", "polling"):
        raise ConfigError(f"unknown firmware variant {variant!r}")
    lay = layout or FirmwareLayout(AddressMap())
    source = _generate(variant, lay)
    return Assembler(xlen=32).assemble(source, base=lay.addresses.ot_rom_base)


def _generate(variant: str, lay: FirmwareLayout) -> str:
    mb = lay.mailbox
    hmac = lay.addresses.ot_hmac_base
    plic = lay.addresses.ot_plic_base
    constants = f"""
# ---- generated shadow-stack CFI firmware ({variant} variant) ----
.equ MB_RESULT,    {mb:#x}
.equ MB_INSN,      {mb + 8:#x}
.equ MB_NEXT,      {mb + 12:#x}
.equ MB_TARGET,    {mb + 20:#x}
.equ MB_DOORBELL,  {mb + 32:#x}
.equ MB_COMPL,     {mb + 40:#x}
.equ MB_STATUS,    {mb + 48:#x}
.equ PLIC_CC,      {plic:#x}
.equ PLIC_EN,      {plic + 8:#x}
.equ HMAC_CMD,     {hmac:#x}
.equ HMAC_STATUS,  {hmac + 4:#x}
.equ HMAC_LEN,     {hmac + 8:#x}
.equ HMAC_KEY,     {hmac + 32:#x}
.equ HMAC_DIGEST,  {hmac + 64:#x}
.equ HMAC_MSG,     {hmac + 128:#x}
.equ SS_PTR_CELL,  {lay.ss_ptr_cell:#x}
.equ SS_COUNT,     {lay.ss_count_cell:#x}
.equ SPILL_COUNT,  {lay.spill_count_cell:#x}
.equ SS_BASE,      {lay.ss_base:#x}
.equ SS_END,       {lay.ss_end:#x}
.equ IRQ_SP,       {lay.irq_stack_top:#x}
.equ SPILL_BASE,   {lay.spill_base:#x}
.equ SPILL_BYTES,  {lay.spill_slot_bytes:#x}
.equ SPILL_WORDS,  {lay.spill_entries}
.equ SPILL_DATA,   {4 * lay.spill_entries:#x}
"""

    boot = f"""
.region boot
_start:
    li   sp, IRQ_SP
    li   t0, SS_BASE
    li   t1, SS_PTR_CELL
    sw   t0, 0(t1)             # ss ptr = base
    sw   zero, 4(t1)           # depth counter = 0
    sw   zero, 8(t1)           # spill counter = 0
    # Program the HMAC key (8 words of the device key).
    li   t0, HMAC_KEY
    li   t1, 0x5F0CC5E5
    sw   t1, 0(t0)
    sw   t1, 4(t0)
    sw   t1, 8(t0)
    sw   t1, 12(t0)
    sw   t1, 16(t0)
    sw   t1, 20(t0)
    sw   t1, 24(t0)
    sw   t1, 28(t0)
"""
    if variant == "irq":
        boot += """
    la   t0, isr
    csrw mtvec, t0
    li   t0, 0x800             # mie.MEIE
    csrw mie, t0
    li   t0, PLIC_EN
    li   t1, {enable}
    sw   t1, 0(t0)
    csrsi mstatus, 8           # global interrupt enable
idle:
    wfi
    j    idle
""".format(enable=_PLIC_ENABLE_MASK)
    else:
        boot += """
    # Polling variant: interrupts stay masked; busy-wait on the doorbell.
    j    poll_loop

.region poll
poll_loop:
    li   s0, MB_STATUS
poll_wait:
    lw   t0, 0(s0)
    andi t0, t0, 1
    beqz t0, poll_wait
    call cfi_check
    j    poll_wait
"""

    isr = """
.align 4
.region irq
isr:
    addi sp, sp, -24
    sw   t0, 0(sp)
    sw   t1, 4(sp)
    sw   t2, 8(sp)
    sw   a0, 12(sp)
    sw   a1, 16(sp)
    sw   a2, 20(sp)
    li   t0, PLIC_CC
    lw   t1, 0(t0)             # claim the interrupt
    li   t2, MB_STATUS
    lw   t2, 0(t2)             # confirm the doorbell source
    call cfi_check
    li   t0, PLIC_CC
    sw   t1, 0(t0)             # complete the interrupt
    li   t2, MB_STATUS
    lw   t2, 0(t2)             # coalesced-doorbell recheck
    lw   t0, 0(sp)
    lw   t1, 4(sp)
    lw   t2, 8(sp)
    lw   a0, 12(sp)
    lw   a1, 16(sp)
    lw   a2, 20(sp)
    addi sp, sp, 24
    mret
""" if variant == "irq" else ""

    check = """
# ---------------------------------------------------------------------------
# cfi_check: parse the commit log and enforce the shadow-stack policy.
# Clobbers a0-a7; returns via ra.  The verdict is written to MB_RESULT and
# the completion register is set (which also clears the doorbell).
# ---------------------------------------------------------------------------
.region cfi
cfi_check:
    li   a0, MB_RESULT
    lw   a1, 8(a0)             # uncompressed encoding        [SoC 1]
    andi a2, a1, 127           # major opcode
    li   a3, 0x6f              # JAL
    beq  a2, a3, parse_jal
    li   a3, 0x67              # JALR
    beq  a2, a3, parse_jalr
    j    respond_ok            # not a transfer we check

parse_jal:
    srli a2, a1, 7
    andi a2, a2, 31            # rd
    li   a3, 1                 # ra
    beq  a2, a3, do_call
    li   a3, 5                 # t0 (alternate link register)
    beq  a2, a3, do_call
    j    respond_ok            # jal x0: direct jump, no state

parse_jalr:
    srli a2, a1, 7
    andi a2, a2, 31            # rd
    li   a3, 1
    beq  a2, a3, do_call
    li   a3, 5
    beq  a2, a3, do_call
    bnez a2, respond_ok        # jalr rd∉{x0,link}: indirect jump
    srli a4, a1, 15
    andi a4, a4, 31            # rs1
    li   a3, 1
    beq  a4, a3, do_return
    li   a3, 5
    beq  a4, a3, do_return
    j    respond_ok            # jalr x0 from non-link: indirect jump

do_call:
    lw   a2, 12(a0)            # expected return address      [SoC 2]
    li   a4, SS_PTR_CELL
    lw   a5, 0(a4)             # shadow-stack pointer         [RoT 1]
    li   a3, SS_END
    bgeu a5, a3, ss_overflow
push_entry:
    sw   a2, 0(a5)             # push                          [RoT 2]
    addi a5, a5, 4
    sw   a5, 0(a4)             # pointer writeback             [RoT 3]
    lw   a3, 4(a4)             # depth counter                 [RoT 4]
    addi a3, a3, 1
    sw   a3, 4(a4)             #                               [RoT 5]
    j    respond_ok

do_return:
    lw   a2, 20(a0)            # actual return target         [SoC 2]
    li   a4, SS_PTR_CELL
    lw   a5, 0(a4)             # shadow-stack pointer         [RoT 1]
    li   a3, SS_BASE
    bgeu a3, a5, ss_underflow
pop_entry:
    addi a5, a5, -4
    lw   a6, 0(a5)             # pop                           [RoT 2]
    sw   a5, 0(a4)             # pointer writeback             [RoT 3]
    lw   a3, 4(a4)             # depth counter                 [RoT 4]
    addi a3, a3, -1
    sw   a3, 4(a4)             #                               [RoT 5]
    bne  a6, a2, respond_bad   # return-address mismatch
    j    respond_ok

respond_ok:
    sw   zero, 0(a0)           # verdict = OK                  [SoC 3]
    li   a2, 1
    sw   a2, 40(a0)            # completion (clears doorbell)  [SoC 4]
    ret

respond_bad:
    li   a2, 1
    sw   a2, 0(a0)             # verdict = VIOLATION           [SoC 3]
    sw   a2, 40(a0)            # completion                    [SoC 4]
    ret
"""

    spill = """
# ---------------------------------------------------------------------------
# Overflow: authenticate the oldest SPILL_WORDS entries with the HMAC
# accelerator, copy them (and the tag) to the DRAM spill area, slide the
# survivors down, then retry the push.  (§VI: "exploits the available
# cryptographic accelerators to ensure authenticity of CFI metadata".)
# ---------------------------------------------------------------------------
.region spill
ss_overflow:
    addi sp, sp, -4            # cfi_check was entered via call: keep ra
    sw   ra, 0(sp)
    call ss_spill
    lw   ra, 0(sp)
    addi sp, sp, 4
    li   a4, SS_PTR_CELL
    lw   a5, 0(a4)
    j    push_entry

ss_spill:
    # Stream the oldest SPILL_WORDS words into the HMAC engine.
    li   a6, SPILL_DATA
    li   a7, HMAC_LEN
    sw   a6, 0(a7)
    li   a6, SS_BASE
    li   a7, SS_BASE
    li   t3, SPILL_DATA
    add  t3, t3, a6            # end of spill region
    li   t4, HMAC_MSG
spill_mac_loop:
    lw   t5, 0(a6)
    sw   t5, 0(t4)
    addi a6, a6, 4
    bltu a6, t3, spill_mac_loop
    li   t4, HMAC_CMD
    li   t5, 2                 # CMD_HMAC
    sw   t5, 0(t4)
spill_mac_wait:
    li   t4, HMAC_STATUS
    lw   t5, 0(t4)
    beqz t5, spill_mac_wait
    # Destination slot: SPILL_BASE + spill_count * SPILL_BYTES.
    li   t4, SPILL_COUNT
    lw   t5, 0(t4)
    li   t6, SPILL_BYTES
    mul  t6, t6, t5
    li   a6, SPILL_BASE
    add  t6, t6, a6            # slot address
    addi t5, t5, 1
    sw   t5, 0(t4)             # spill_count++
    # Copy the data words out to DRAM.
    li   a6, SS_BASE
spill_copy_loop:
    lw   t5, 0(a6)
    sw   t5, 0(t6)
    addi a6, a6, 4
    addi t6, t6, 4
    bltu a6, t3, spill_copy_loop
    # Append the 8-word tag.
    li   a6, HMAC_DIGEST
    addi t3, a6, 32
spill_tag_loop:
    lw   t5, 0(a6)
    sw   t5, 0(t6)
    addi a6, a6, 4
    addi t6, t6, 4
    bltu a6, t3, spill_tag_loop
    # Slide survivors down: [SS_BASE+SPILL_DATA, ptr) -> [SS_BASE, ...).
    li   a6, SS_BASE
    li   t3, SPILL_DATA
    add  t3, t3, a6            # src cursor
    li   t4, SS_PTR_CELL
    lw   t5, 0(t4)             # old ptr (== SS_END)
spill_slide_loop:
    bgeu t3, t5, spill_slide_done
    lw   t6, 0(t3)
    sw   t6, 0(a6)
    addi t3, t3, 4
    addi a6, a6, 4
    j    spill_slide_loop
spill_slide_done:
    sw   a6, 0(t4)             # new ptr
    ret

# ---------------------------------------------------------------------------
# Underflow: restore the most recent spill block (verify its tag first).
# A bad tag or an empty spill area is a violation.
# ---------------------------------------------------------------------------
ss_underflow:
    li   t4, SPILL_COUNT
    lw   t5, 0(t4)
    beqz t5, respond_bad       # nothing to restore: unmatched return
    addi sp, sp, -4            # keep cfi_check's return address
    sw   ra, 0(sp)
    call ss_restore
    lw   ra, 0(sp)
    addi sp, sp, 4
    bnez a7, respond_bad       # tag mismatch: tampered spill block
    li   a4, SS_PTR_CELL
    lw   a5, 0(a4)
    j    pop_entry

ss_restore:
    # Source slot: SPILL_BASE + (spill_count - 1) * SPILL_BYTES.
    li   t4, SPILL_COUNT
    lw   t5, 0(t4)
    addi t5, t5, -1
    sw   t5, 0(t4)             # spill_count--
    li   t6, SPILL_BYTES
    mul  t6, t6, t5
    li   a6, SPILL_BASE
    add  t6, t6, a6            # slot address
    # Copy data into the (empty) resident stack and re-MAC it.
    li   a6, SPILL_DATA
    li   a7, HMAC_LEN
    sw   a6, 0(a7)
    li   a6, SS_BASE
    li   t3, SPILL_DATA
    add  t3, t3, a6
    li   t4, HMAC_MSG
restore_copy_loop:
    lw   t5, 0(t6)
    sw   t5, 0(a6)             # into the resident stack
    sw   t5, 0(t4)             # and into the MAC engine
    addi a6, a6, 4
    addi t6, t6, 4
    bltu a6, t3, restore_copy_loop
    li   t4, HMAC_CMD
    li   t5, 2
    sw   t5, 0(t4)
restore_mac_wait:
    li   t4, HMAC_STATUS
    lw   t5, 0(t4)
    beqz t5, restore_mac_wait
    # Compare the stored tag (t6 points at it) against the fresh digest.
    li   a6, HMAC_DIGEST
    addi t3, a6, 32
    li   a7, 0                 # mismatch accumulator
restore_cmp_loop:
    lw   t5, 0(a6)
    lw   t4, 0(t6)
    xor  t5, t5, t4
    or   a7, a7, t5
    addi a6, a6, 4
    addi t6, t6, 4
    bltu a6, t3, restore_cmp_loop
    # Resident stack now holds SPILL_WORDS entries.
    li   t4, SS_PTR_CELL
    li   t5, SS_BASE
    li   t6, SPILL_DATA
    add  t5, t5, t6
    sw   t5, 0(t4)
    ret
"""

    return constants + boot + isr + check + spill
