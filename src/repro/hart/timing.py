"""Static per-instruction timing models for the two cores.

The reproduction replaces RTL cycle accuracy with calibrated static
models (see DESIGN.md §2).  Costs are charged per *retired* instruction:

* :class:`IbexTiming` follows the public Ibex documentation for the
  3-stage, single-issue core (taken branches 3 cycles, jumps 2, loads
  and stores dominated by the TL-UL round trip) and reproduces the
  paper's §V-B measurements: ~5-cycle scratchpad accesses and a
  45-cycle doorbell-to-wakeup latency.
* :class:`Cva6Timing` approximates the 6-stage application core: most
  integer ops single-cycle, a branch-resolution penalty on taken
  branches, memory at region latency.

Memory-access instructions are charged exactly the cycles their bus
port reports, so fabric configuration (standard vs. the paper's
"Optimized" low-latency interconnect) flows straight into firmware
cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.isa.decode import Instruction

_LOADS = frozenset({"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"})
_STORES = frozenset({"sb", "sh", "sw", "sd"})
_BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
_JUMPS = frozenset({"jal", "jalr"})
_MUL = frozenset({"mul", "mulh", "mulhsu", "mulhu", "mulw"})
_DIV = frozenset({"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"})
_CSR = frozenset({"csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"})

#: Single-cycle-class ops with no taken/latency dependence, enumerated so
#: the per-instruction cost collapses to one dict probe (the chain of
#: frozenset membership tests below it runs once per *unknown* mnemonic,
#: not once per retired instruction).
_ALU = frozenset({
    "lui", "auipc",
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "addiw", "slliw", "srliw", "sraiw",
    "addw", "subw", "sllw", "srlw", "sraw",
    "fence", "fence.i", "wfi", "ecall", "ebreak",
})


def _fixed_cost_table(*, jal: int, jalr: int, mul: int, div: int, csr: int,
                      mret: int, alu: int) -> dict:
    """Mnemonic → cycles for every cost that needs no runtime input."""
    table = {m: alu for m in _ALU}
    table.update({m: mul for m in _MUL})
    table.update({m: div for m in _DIV})
    table.update({m: csr for m in _CSR})
    table["jal"] = jal
    table["jalr"] = jalr
    table["mret"] = mret
    return table


class TimingModel(Protocol):
    """Cycle cost of one retired instruction."""

    #: Cycles from a pending wake event to the first fetched instruction.
    wake_cycles: int
    #: Pipeline cost of entering a trap/interrupt handler.
    trap_entry_cycles: int

    def cycles_for(self, insn: Instruction, taken: bool, mem_cycles: int) -> int:
        """Cycles charged for ``insn``.

        Args:
            insn: the retired instruction.
            taken: for branches, whether the branch was taken.
            mem_cycles: bus-reported cycles for loads/stores (0 otherwise).
        """
        ...


@dataclass
class IbexTiming:
    """Ibex (RV32IMC, 3-stage, low gate count) static timing.

    ``wake_cycles`` reproduces the paper's measured 45 cycles from the
    doorbell interrupt to Ibex leaving sleep (§V-B).
    """

    alu_cycles: int = 1
    taken_branch_cycles: int = 3
    untaken_branch_cycles: int = 1
    jump_cycles: int = 2
    mul_cycles: int = 1          # single-cycle multiplier configuration
    div_cycles: int = 37         # iterative divider
    csr_cycles: int = 1
    mret_cycles: int = 4
    trap_entry_cycles: int = 3
    wake_cycles: int = 45

    def __post_init__(self):
        self._fixed = _fixed_cost_table(
            jal=self.jump_cycles, jalr=self.jump_cycles,
            mul=self.mul_cycles, div=self.div_cycles,
            csr=self.csr_cycles, mret=self.mret_cycles, alu=self.alu_cycles,
        )
        #: (untaken, taken) — indexable by the branch's taken flag.
        self._branch = (self.untaken_branch_cycles, self.taken_branch_cycles)
        #: (store extra, load extra, clamp-to-1) — the memory case of
        #: cycles_for in precomputed form, for the batched retire loop.
        self._mem_extra = (0, 0, True)

    def cycles_for(self, insn: Instruction, taken: bool, mem_cycles: int) -> int:
        m = insn.mnemonic
        cost = self._fixed.get(m)
        if cost is not None:
            return cost
        if m in _BRANCHES:
            return self.taken_branch_cycles if taken else self.untaken_branch_cycles
        if m in _LOADS or m in _STORES:
            # The TL-UL port reports the full round trip; charge it as-is.
            return max(1, mem_cycles)
        return self.alu_cycles


@dataclass
class Cva6Timing:
    """CVA6 (RV64GC, 6-stage, single-issue) static timing."""

    alu_cycles: int = 1
    taken_branch_cycles: int = 3  # average resolution penalty
    untaken_branch_cycles: int = 1
    jump_cycles: int = 1          # direct jumps are predicted
    jalr_cycles: int = 3          # indirect targets resolve in EX
    load_base_cycles: int = 1
    store_base_cycles: int = 1
    mul_cycles: int = 2
    div_cycles: int = 20
    csr_cycles: int = 1
    mret_cycles: int = 5
    trap_entry_cycles: int = 5
    wake_cycles: int = 10

    def __post_init__(self):
        self._fixed = _fixed_cost_table(
            jal=self.jump_cycles, jalr=self.jalr_cycles,
            mul=self.mul_cycles, div=self.div_cycles,
            csr=self.csr_cycles, mret=self.mret_cycles, alu=self.alu_cycles,
        )
        #: (untaken, taken) — indexable by the branch's taken flag.
        self._branch = (self.untaken_branch_cycles, self.taken_branch_cycles)
        #: (store extra, load extra, clamp-to-1) — the memory case of
        #: cycles_for in precomputed form, for the batched retire loop.
        self._mem_extra = (self.store_base_cycles, self.load_base_cycles, False)

    def cycles_for(self, insn: Instruction, taken: bool, mem_cycles: int) -> int:
        m = insn.mnemonic
        cost = self._fixed.get(m)
        if cost is not None:
            return cost
        if m in _LOADS:
            return self.load_base_cycles + mem_cycles
        if m in _STORES:
            return self.store_base_cycles + mem_cycles
        if m in _BRANCHES:
            return self.taken_branch_cycles if taken else self.untaken_branch_cycles
        return self.alu_cycles
