"""Architectural state: integer register file and machine-mode CSRs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import TrapError
from repro.isa import opcodes as op
from repro.isa.registers import REG_COUNT, abi_name
from repro.utils.bits import mask


class RegisterFile:
    """The 32 integer registers; ``x0`` is hardwired to zero."""

    def __init__(self, xlen: int):
        self.xlen = xlen
        self._mask = mask(xlen)
        self._regs = [0] * REG_COUNT
        #: Direct view of the backing list for hot readers.  Safe for
        #: reads because the ``x0 == 0`` invariant is maintained by
        #: :meth:`write`; writers must go through :meth:`write` (or
        #: replicate its ``x0``/mask handling exactly).
        self.raw = self._regs

    def read(self, index: int) -> int:
        """Unsigned value of register ``index``."""
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write ``value`` (masked to XLEN); writes to ``x0`` are dropped."""
        if index:
            self._regs[index] = value & self._mask

    def snapshot(self) -> Dict[str, int]:
        """ABI-named copy of all registers (debugging/tests)."""
        return {abi_name(i): self._regs[i] for i in range(REG_COUNT)}

    def __getitem__(self, index: int) -> int:
        return self.read(index)

    def __setitem__(self, index: int, value: int) -> None:
        self.write(index, value)


class CsrFile:
    """Machine-mode CSR subset used by the OpenTitan CFI firmware.

    ``mcycle``/``minstret`` are windows onto the owning hart's counters
    (installed by :class:`repro.hart.core.Hart` at construction).
    """

    _WRITABLE = {
        op.CSR_MSTATUS,
        op.CSR_MIE,
        op.CSR_MTVEC,
        op.CSR_MSCRATCH,
        op.CSR_MEPC,
        op.CSR_MCAUSE,
        op.CSR_MTVAL,
        op.CSR_MISA,
    }
    _READ_ONLY = {op.CSR_MHARTID, op.CSR_MCYCLE, op.CSR_MINSTRET}

    def __init__(self, xlen: int, hartid: int = 0):
        self.xlen = xlen
        self._mask = mask(xlen)
        self._values: Dict[int, int] = {
            op.CSR_MSTATUS: 0,
            op.CSR_MIE: 0,
            op.CSR_MIP: 0,
            op.CSR_MTVEC: 0,
            op.CSR_MSCRATCH: 0,
            op.CSR_MEPC: 0,
            op.CSR_MCAUSE: 0,
            op.CSR_MTVAL: 0,
            op.CSR_MISA: 0,
            op.CSR_MHARTID: hartid,
        }
        self._hart = None  # set by Hart for counter CSRs

    def bind_hart(self, hart) -> None:
        """Attach the owning hart (for mcycle/minstret reads)."""
        self._hart = hart

    def read(self, csr: int) -> int:
        """CSR read; unknown CSRs raise an illegal-instruction trap."""
        if csr == op.CSR_MCYCLE:
            return (self._hart.cycle if self._hart else 0) & self._mask
        if csr == op.CSR_MINSTRET:
            return (self._hart.instret if self._hart else 0) & self._mask
        if csr in self._values:
            return self._values[csr]
        raise TrapError(op.CAUSE_ILLEGAL_INSTRUCTION, 0, f"read of unknown CSR {csr:#x}")

    def write(self, csr: int, value: int) -> None:
        """CSR write; read-only or unknown CSRs raise a trap."""
        if csr in self._READ_ONLY:
            raise TrapError(op.CAUSE_ILLEGAL_INSTRUCTION, 0, f"write to read-only CSR {csr:#x}")
        if csr == op.CSR_MIP:
            # mip is wire-driven in this model; software writes are dropped
            # (matches Ibex, where MEIP is read-only).
            return
        if csr not in self._values:
            raise TrapError(op.CAUSE_ILLEGAL_INSTRUCTION, 0, f"write to unknown CSR {csr:#x}")
        self._values[csr] = value & self._mask

    # -- mstatus convenience ---------------------------------------------------

    @property
    def mstatus(self) -> int:
        """Raw mstatus value."""
        return self._values[op.CSR_MSTATUS]

    @property
    def mie_enabled(self) -> bool:
        """Global machine-interrupt-enable (mstatus.MIE)."""
        # Read the backing dict directly: this is polled once per
        # simulated instruction by Hart.step.
        return bool(self._values[op.CSR_MSTATUS] & op.MSTATUS_MIE)

    def enter_trap(self, pc: int, cause: int, interrupt: bool, tval: int = 0) -> int:
        """Perform trap-entry CSR side effects; returns the handler pc."""
        status = self.mstatus
        mie = (status >> 3) & 1
        status &= ~(op.MSTATUS_MIE | op.MSTATUS_MPIE | op.MSTATUS_MPP_MASK)
        status |= mie << 7          # MPIE <- MIE
        status |= op.MSTATUS_MPP_MASK  # MPP <- machine mode
        self._values[op.CSR_MSTATUS] = status
        self._values[op.CSR_MEPC] = pc & self._mask
        cause_value = cause
        if interrupt:
            cause_value |= 1 << (self.xlen - 1)
        self._values[op.CSR_MCAUSE] = cause_value
        self._values[op.CSR_MTVAL] = tval & self._mask
        # Direct-mode mtvec only (mode bits stripped).
        return self._values[op.CSR_MTVEC] & ~0b11

    def exit_trap(self) -> int:
        """Perform mret CSR side effects; returns the resume pc (mepc)."""
        status = self.mstatus
        mpie = (status >> 7) & 1
        status &= ~op.MSTATUS_MIE
        status |= mpie << 3          # MIE <- MPIE
        status |= op.MSTATUS_MPIE    # MPIE <- 1
        self._values[op.CSR_MSTATUS] = status
        return self._values[op.CSR_MEPC]
