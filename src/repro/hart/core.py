"""The RISC-V hart execution engine.

One :class:`Hart` instance models one core.  Execution is functional
(architectural state only) with cycle accounting delegated to a
:class:`repro.hart.timing.TimingModel`; memory goes through a
:class:`repro.hart.ports.BusPort`.  Machine-mode traps, external
interrupts and WFI sleep are implemented because the TitanCFI firmware
protocol depends on them (doorbell interrupt → ISR → mret → sleep).

Every :meth:`Hart.step` returns a :class:`StepResult` describing the
retired instruction — pc, encoding, fall-through and actual next pc —
which is exactly the scoreboard information the CVA6 commit stage hands
to the CFI filters (paper §IV-B1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AccessFault, DecodeError, SimulationError, TrapError
from repro.hart.ports import BusPort
from repro.hart.state import CsrFile, RegisterFile
from repro.hart.timing import TimingModel
from repro.isa import opcodes as op
from repro.isa.decode import Instruction, decode, is_compressed_word
from repro.utils.bits import mask, sext


class StepEvent(enum.Enum):
    """What happened during one step."""

    RETIRED = "retired"            # a normal instruction retired
    INTERRUPT = "interrupt"        # trap entry for an external interrupt
    TRAP = "trap"                  # synchronous trap entry
    MRET = "mret"                  # return from trap
    WFI_SLEEP = "wfi-sleep"        # wfi retired, hart went to sleep
    SLEEPING = "sleeping"          # hart idle, nothing pending
    WAKE = "wake"                  # wake event consumed (wake_cycles)
    HALT = "halt"                  # ecall/ebreak with no handler


@dataclass(slots=True)
class StepResult:
    """Outcome of one :meth:`Hart.step`.

    Treated as immutable by convention; declared with ``slots`` rather
    than ``frozen`` because one StepResult is allocated per simulated
    instruction and the frozen ``__setattr__`` path dominates
    allocation cost on the hot loop.

    Attributes:
        event: what happened.
        pc: pc of the retired instruction (or the sleeping/trap pc).
        insn: the retired instruction, or ``None`` for non-retiring steps.
        fall_through: ``pc + insn.length`` (the commit log's *next
            address* field), or ``pc`` for non-retiring steps.
        next_pc: architecturally next pc (branch/jump target if taken).
        taken: for branches/jumps, whether control transferred.
        cycles: cycles charged to this step.
        mem_address: effective address for loads/stores, else ``None``.
    """

    event: StepEvent
    pc: int
    insn: Optional[Instruction]
    fall_through: int
    next_pc: int
    taken: bool
    cycles: int
    mem_address: Optional[int] = None


class Hart:
    """A single RISC-V hart.

    Args:
        bus: load/store/fetch port.
        timing: per-instruction cycle model.
        xlen: 32 or 64.
        reset_pc: initial program counter.
        external_irq: level callback for the external interrupt line
            (typically ``plic.irq_line``); ``None`` means tied low.
        name: diagnostic name.
        hartid: value of the ``mhartid`` CSR.
    """

    def __init__(
        self,
        bus: BusPort,
        timing: TimingModel,
        xlen: int = 32,
        reset_pc: int = 0,
        external_irq: Optional[Callable[[], bool]] = None,
        name: str = "hart",
        hartid: int = 0,
    ):
        if xlen not in (32, 64):
            raise ValueError(f"xlen must be 32 or 64, got {xlen}")
        self.bus = bus
        self.timing = timing
        self.xlen = xlen
        self.name = name
        self.pc = reset_pc & mask(xlen)
        self.regs = RegisterFile(xlen)
        self.csrs = CsrFile(xlen, hartid=hartid)
        self.csrs.bind_hart(self)
        # An unwired interrupt line can never pend; skipping the CSR
        # poll on every step matters for the host core's hot loop.  The
        # property setter keeps the fast-path flag coherent when a line
        # is wired after construction.
        self._irq_wired = external_irq is not None
        self._external_irq = external_irq or (lambda: False)
        self.cycle = 0
        self.instret = 0
        self.sleeping = False
        self.halted = False
        self._mask = mask(xlen)
        # Per-pc decoded-instruction cache: pc -> (insn, exec handler).
        # A hit skips the bus fetch and the decode entirely; entries are
        # flushed when a store lands in any page code was fetched from
        # (see _note_store) or on fence.i.
        self._pc_cache: Dict[int, Tuple[Instruction, Callable]] = {}
        self._code_pages: set = set()
        # Prefer a fabric-wide store hook (sees every master's writes);
        # without one, fall back to watching this hart's own stores.
        subscribe = getattr(bus, "on_store", None)
        if subscribe is not None:
            subscribe(self._note_store)
            self._self_watch_stores = False
        else:
            self._self_watch_stores = True

    # -- helpers -----------------------------------------------------------------

    _PAGE_BITS = 12

    @property
    def external_irq(self) -> Callable[[], bool]:
        """Level callback for the external interrupt line."""
        return self._external_irq

    @external_irq.setter
    def external_irq(self, callback: Optional[Callable[[], bool]]) -> None:
        self._external_irq = callback or (lambda: False)
        self._irq_wired = callback is not None

    def _sx(self, value: int) -> int:
        """Value of a register interpreted as signed XLEN-bit."""
        return sext(value, self.xlen)

    def _note_store(self, address: int, size: int) -> None:
        """Store-hook: flush the pc cache when a write hits cached code.

        Bulk loads (``write_bytes``) can span many pages, so every page
        the write touches is checked — an interior cached page must
        invalidate just like the endpoints.
        """
        pages = self._code_pages
        if not pages:
            return
        first = address >> self._PAGE_BITS
        last = (address + size - 1) >> self._PAGE_BITS
        # Iterate the (tiny) cached-page set, not the written span — a
        # bulk DRAM-image write can cover thousands of pages.
        if first in pages or (
            last != first and any(first < page <= last for page in pages)
        ):
            self._pc_cache.clear()
            pages.clear()

    def flush_fetch_cache(self) -> None:
        """Drop every cached (pc → decoded instruction) entry."""
        self._pc_cache.clear()
        self._code_pages.clear()

    def _fetch_decode(self, pc: int) -> Tuple[Instruction, Callable]:
        """Fetch+decode miss handler; populates the pc cache."""
        low, _ = self.bus.fetch(pc, 2)
        if is_compressed_word(low):
            word = low
        else:
            high, _ = self.bus.fetch(pc + 2, 2)
            word = low | (high << 16)
        insn = decode(word, xlen=self.xlen)
        handler = _EXEC_TABLE.get(insn.mnemonic)
        entry = (insn, handler)
        self._pc_cache[pc] = entry
        self._code_pages.add(pc >> self._PAGE_BITS)
        self._code_pages.add((pc + insn.length - 1) >> self._PAGE_BITS)
        return entry

    def _interrupt_pending(self) -> bool:
        mie = self.csrs.read(op.CSR_MIE)
        return bool(mie & op.MIE_MEIE) and self._external_irq()

    @property
    def interrupt_pending(self) -> bool:
        """Level of the (enabled) external interrupt into this hart."""
        return self._interrupt_pending()

    def sleep_for(self, cycles: int) -> None:
        """Account ``cycles`` of WFI sleep in one jump.

        Equivalent to ``cycles`` consecutive :meth:`step` calls while
        :attr:`sleeping` with no interrupt pending — used by the
        event-driven co-simulator to skip idle stretches without
        perturbing the cycle counter.
        """
        self.cycle += cycles

    # -- trap entry/exit ------------------------------------------------------------

    def _enter_trap(self, cause: int, interrupt: bool, tval: int = 0) -> StepResult:
        handler = self.csrs.enter_trap(self.pc, cause, interrupt, tval)
        if handler == 0:
            # No trap vector installed: treat as a halt so victim programs
            # and tests don't spin at address zero.
            self.halted = True
            self.cycle += 1
            return StepResult(
                event=StepEvent.HALT,
                pc=self.pc,
                insn=None,
                fall_through=self.pc,
                next_pc=self.pc,
                taken=False,
                cycles=1,
            )
        previous_pc = self.pc
        self.pc = handler
        cycles = self.timing.trap_entry_cycles
        self.cycle += cycles
        return StepResult(
            event=StepEvent.INTERRUPT if interrupt else StepEvent.TRAP,
            pc=previous_pc,
            insn=None,
            fall_through=previous_pc,
            next_pc=handler,
            taken=True,
            cycles=cycles,
        )

    # -- main step -------------------------------------------------------------------

    def step(self) -> StepResult:
        """Advance the hart by one instruction (or one idle/wake event)."""
        if self.halted:
            raise SimulationError(f"{self.name}: step() after halt")

        if self.sleeping:
            if self._interrupt_pending():
                self.sleeping = False
                cycles = self.timing.wake_cycles
                self.cycle += cycles
                return StepResult(
                    event=StepEvent.WAKE,
                    pc=self.pc,
                    insn=None,
                    fall_through=self.pc,
                    next_pc=self.pc,
                    taken=False,
                    cycles=cycles,
                )
            self.cycle += 1
            return StepResult(
                event=StepEvent.SLEEPING,
                pc=self.pc,
                insn=None,
                fall_through=self.pc,
                next_pc=self.pc,
                taken=False,
                cycles=1,
            )

        if self._irq_wired and self.csrs.mie_enabled and self._interrupt_pending():
            return self._enter_trap(op.CAUSE_MACHINE_EXTERNAL_IRQ, interrupt=True)

        pc = self.pc
        entry = self._pc_cache.get(pc)
        if entry is None:
            try:
                entry = self._fetch_decode(pc)
            except DecodeError as exc:
                exc.pc = pc
                return self._enter_trap(op.CAUSE_ILLEGAL_INSTRUCTION, False, tval=exc.word)
            except AccessFault:
                return self._enter_trap(op.CAUSE_FETCH_ACCESS, False, tval=pc)
        insn, handler = entry

        fall_through = (pc + insn.length) & self._mask
        try:
            if handler is None:
                raise TrapError(
                    op.CAUSE_ILLEGAL_INSTRUCTION, pc, f"unimplemented {insn.mnemonic}"
                )
            outcome = handler(self, insn, pc, fall_through)
        except TrapError as exc:
            return self._enter_trap(exc.cause, False, tval=0)
        except AccessFault as exc:
            cause = op.CAUSE_STORE_ACCESS if exc.access == "write" else op.CAUSE_LOAD_ACCESS
            return self._enter_trap(cause, False, tval=exc.address)

        event, next_pc, taken, mem_cycles, mem_address = outcome
        if event is StepEvent.HALT:
            self.halted = True
            self.cycle += 1
            return StepResult(
                event=event, pc=pc, insn=insn, fall_through=fall_through,
                next_pc=pc, taken=False, cycles=1, mem_address=None,
            )

        cycles = self.timing.cycles_for(insn, taken, mem_cycles)
        self.pc = next_pc
        self.cycle += cycles
        self.instret += 1
        if event is StepEvent.WFI_SLEEP:
            self.sleeping = True
        return StepResult(
            event=event,
            pc=pc,
            insn=insn,
            fall_through=fall_through,
            next_pc=next_pc,
            taken=taken,
            cycles=cycles,
            mem_address=mem_address,
        )

    # Individual semantic helpers (kept as methods for state access) ----------------

    def _load(self, address: int, size: int, signed: bool) -> tuple:
        value, cycles = self.bus.read(address & self._mask, size)
        if signed:
            value = sext(value, size * 8) & self._mask
        return value, cycles

    def _store(self, address: int, size: int, value: int) -> int:
        address &= self._mask
        if self._self_watch_stores:
            self._note_store(address, size)
        return self.bus.write(address, size, value & mask(size * 8))

    # -- batch running ------------------------------------------------------------------

    def run(
        self,
        max_steps: int = 1_000_000,
        until: Optional[Callable[[StepResult], bool]] = None,
        collect: bool = False,
    ) -> List[StepResult]:
        """Step until halt, ``until`` returns True, or ``max_steps``.

        Args:
            max_steps: hard step bound (guards infinite loops in tests).
            until: optional stop predicate evaluated on each result.
            collect: when True, every StepResult is returned (memory-heavy
                for long runs; default returns only the last).

        Returns:
            the collected results (or a one-element list of the last).
        """
        results: List[StepResult] = []
        last: Optional[StepResult] = None
        for _ in range(max_steps):
            if self.halted:
                break
            last = self.step()
            if collect:
                results.append(last)
            if last.event is StepEvent.HALT:
                break
            if until is not None and until(last):
                break
        else:
            raise SimulationError(f"{self.name}: run() exceeded {max_steps} steps")
        if not collect and last is not None:
            results.append(last)
        return results


# ------------------------------------------------------------------------------
# Execution table.  Handlers return (event, next_pc, taken, mem_cycles, mem_addr).
# ------------------------------------------------------------------------------

def _alu_op(compute):
    def run(hart: Hart, insn: Instruction, pc: int, fall_through: int):
        hart.regs.write(insn.rd, compute(hart, insn))
        return (StepEvent.RETIRED, fall_through, False, 0, None)

    return run


def _make_exec_table():
    table = {}

    # -- U-type ---------------------------------------------------------------
    table["lui"] = _alu_op(lambda h, i: (i.imm << 12) & h._mask)

    def auipc(h, i, pc, ft):
        h.regs.write(i.rd, (pc + (i.imm << 12)) & h._mask)
        return (StepEvent.RETIRED, ft, False, 0, None)

    table["auipc"] = auipc

    # -- jumps ------------------------------------------------------------------
    def jal(h, i, pc, ft):
        h.regs.write(i.rd, ft)
        target = (pc + i.imm) & h._mask
        return (StepEvent.RETIRED, target, True, 0, None)

    def jalr(h, i, pc, ft):
        target = (h.regs.read(i.rs1) + i.imm) & h._mask & ~1
        h.regs.write(i.rd, ft)
        return (StepEvent.RETIRED, target, True, 0, None)

    table["jal"] = jal
    table["jalr"] = jalr

    # -- branches ----------------------------------------------------------------
    def branch(cond):
        def run(h, i, pc, ft):
            taken = cond(h, i)
            next_pc = (pc + i.imm) & h._mask if taken else ft
            return (StepEvent.RETIRED, next_pc, taken, 0, None)

        return run

    table["beq"] = branch(lambda h, i: h.regs.read(i.rs1) == h.regs.read(i.rs2))
    table["bne"] = branch(lambda h, i: h.regs.read(i.rs1) != h.regs.read(i.rs2))
    table["blt"] = branch(lambda h, i: h._sx(h.regs.read(i.rs1)) < h._sx(h.regs.read(i.rs2)))
    table["bge"] = branch(lambda h, i: h._sx(h.regs.read(i.rs1)) >= h._sx(h.regs.read(i.rs2)))
    table["bltu"] = branch(lambda h, i: h.regs.read(i.rs1) < h.regs.read(i.rs2))
    table["bgeu"] = branch(lambda h, i: h.regs.read(i.rs1) >= h.regs.read(i.rs2))

    # -- loads ---------------------------------------------------------------------
    def load(size, signed):
        def run(h, i, pc, ft):
            address = (h.regs.read(i.rs1) + i.imm) & h._mask
            value, cycles = h._load(address, size, signed)
            h.regs.write(i.rd, value)
            return (StepEvent.RETIRED, ft, False, cycles, address)

        return run

    table["lb"] = load(1, True)
    table["lh"] = load(2, True)
    table["lw"] = load(4, True)
    table["ld"] = load(8, True)
    table["lbu"] = load(1, False)
    table["lhu"] = load(2, False)
    table["lwu"] = load(4, False)

    # -- stores -----------------------------------------------------------------------
    def store(size):
        def run(h, i, pc, ft):
            address = (h.regs.read(i.rs1) + i.imm) & h._mask
            cycles = h._store(address, size, h.regs.read(i.rs2))
            return (StepEvent.RETIRED, ft, False, cycles, address)

        return run

    table["sb"] = store(1)
    table["sh"] = store(2)
    table["sw"] = store(4)
    table["sd"] = store(8)

    # -- immediate ALU -------------------------------------------------------------------
    table["addi"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) + i.imm) & h._mask)
    table["slti"] = _alu_op(lambda h, i: int(h._sx(h.regs.read(i.rs1)) < i.imm))
    table["sltiu"] = _alu_op(lambda h, i: int(h.regs.read(i.rs1) < (i.imm & h._mask)))
    table["xori"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) ^ i.imm) & h._mask)
    table["ori"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) | i.imm) & h._mask)
    table["andi"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) & i.imm) & h._mask)
    table["slli"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) << i.imm) & h._mask)
    table["srli"] = _alu_op(lambda h, i: h.regs.read(i.rs1) >> i.imm)
    table["srai"] = _alu_op(lambda h, i: (h._sx(h.regs.read(i.rs1)) >> i.imm) & h._mask)

    # -- register ALU -----------------------------------------------------------------------
    def shamt(h, value):
        return value & (h.xlen - 1)

    table["add"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) + h.regs.read(i.rs2)) & h._mask)
    table["sub"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) - h.regs.read(i.rs2)) & h._mask)
    table["sll"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) << shamt(h, h.regs.read(i.rs2))) & h._mask)
    table["slt"] = _alu_op(lambda h, i: int(h._sx(h.regs.read(i.rs1)) < h._sx(h.regs.read(i.rs2))))
    table["sltu"] = _alu_op(lambda h, i: int(h.regs.read(i.rs1) < h.regs.read(i.rs2)))
    table["xor"] = _alu_op(lambda h, i: h.regs.read(i.rs1) ^ h.regs.read(i.rs2))
    table["srl"] = _alu_op(lambda h, i: h.regs.read(i.rs1) >> shamt(h, h.regs.read(i.rs2)))
    table["sra"] = _alu_op(lambda h, i: (h._sx(h.regs.read(i.rs1)) >> shamt(h, h.regs.read(i.rs2))) & h._mask)
    table["or"] = _alu_op(lambda h, i: h.regs.read(i.rs1) | h.regs.read(i.rs2))
    table["and"] = _alu_op(lambda h, i: h.regs.read(i.rs1) & h.regs.read(i.rs2))

    # -- RV64 W-forms ---------------------------------------------------------------------------
    def w_result(h, value):
        return sext(value & mask(32), 32) & h._mask

    table["addiw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) + i.imm))
    table["slliw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) << i.imm))
    table["srliw"] = _alu_op(lambda h, i: w_result(h, (h.regs.read(i.rs1) & mask(32)) >> i.imm))
    table["sraiw"] = _alu_op(lambda h, i: w_result(h, sext(h.regs.read(i.rs1) & mask(32), 32) >> i.imm))
    table["addw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) + h.regs.read(i.rs2)))
    table["subw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) - h.regs.read(i.rs2)))
    table["sllw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) << (h.regs.read(i.rs2) & 31)))
    table["srlw"] = _alu_op(lambda h, i: w_result(h, (h.regs.read(i.rs1) & mask(32)) >> (h.regs.read(i.rs2) & 31)))
    table["sraw"] = _alu_op(lambda h, i: w_result(h, sext(h.regs.read(i.rs1) & mask(32), 32) >> (h.regs.read(i.rs2) & 31)))

    # -- M extension -------------------------------------------------------------------------------
    def signed_pair(h, i):
        return h._sx(h.regs.read(i.rs1)), h._sx(h.regs.read(i.rs2))

    def div_signed(a, b):
        if b == 0:
            return -1
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient

    def rem_signed(a, b):
        if b == 0:
            return a
        return a - div_signed(a, b) * b

    table["mul"] = _alu_op(lambda h, i: (h.regs.read(i.rs1) * h.regs.read(i.rs2)) & h._mask)
    table["mulh"] = _alu_op(lambda h, i: ((signed_pair(h, i)[0] * signed_pair(h, i)[1]) >> h.xlen) & h._mask)
    table["mulhsu"] = _alu_op(lambda h, i: ((h._sx(h.regs.read(i.rs1)) * h.regs.read(i.rs2)) >> h.xlen) & h._mask)
    table["mulhu"] = _alu_op(lambda h, i: ((h.regs.read(i.rs1) * h.regs.read(i.rs2)) >> h.xlen) & h._mask)
    table["div"] = _alu_op(lambda h, i: div_signed(*signed_pair(h, i)) & h._mask)
    table["divu"] = _alu_op(
        lambda h, i: (h._mask if h.regs.read(i.rs2) == 0 else h.regs.read(i.rs1) // h.regs.read(i.rs2)) & h._mask
    )
    table["rem"] = _alu_op(lambda h, i: rem_signed(*signed_pair(h, i)) & h._mask)
    table["remu"] = _alu_op(
        lambda h, i: (h.regs.read(i.rs1) if h.regs.read(i.rs2) == 0 else h.regs.read(i.rs1) % h.regs.read(i.rs2)) & h._mask
    )
    table["mulw"] = _alu_op(lambda h, i: w_result(h, h.regs.read(i.rs1) * h.regs.read(i.rs2)))
    table["divw"] = _alu_op(
        lambda h, i: w_result(h, div_signed(sext(h.regs.read(i.rs1) & mask(32), 32), sext(h.regs.read(i.rs2) & mask(32), 32)))
    )
    table["divuw"] = _alu_op(
        lambda h, i: w_result(
            h,
            mask(32) if (h.regs.read(i.rs2) & mask(32)) == 0
            else (h.regs.read(i.rs1) & mask(32)) // (h.regs.read(i.rs2) & mask(32)),
        )
    )
    table["remw"] = _alu_op(
        lambda h, i: w_result(h, rem_signed(sext(h.regs.read(i.rs1) & mask(32), 32), sext(h.regs.read(i.rs2) & mask(32), 32)))
    )
    table["remuw"] = _alu_op(
        lambda h, i: w_result(
            h,
            (h.regs.read(i.rs1) & mask(32)) if (h.regs.read(i.rs2) & mask(32)) == 0
            else (h.regs.read(i.rs1) & mask(32)) % (h.regs.read(i.rs2) & mask(32)),
        )
    )

    # -- Zicsr ----------------------------------------------------------------------------------------
    def csr_op(write_value):
        def run(h, i, pc, ft):
            old = h.csrs.read(i.csr)
            new = write_value(h, i, old)
            if new is not None:
                h.csrs.write(i.csr, new)
            h.regs.write(i.rd, old)
            return (StepEvent.RETIRED, ft, False, 0, None)

        return run

    table["csrrw"] = csr_op(lambda h, i, old: h.regs.read(i.rs1))
    table["csrrs"] = csr_op(lambda h, i, old: (old | h.regs.read(i.rs1)) if i.rs1 else None)
    table["csrrc"] = csr_op(lambda h, i, old: (old & ~h.regs.read(i.rs1)) if i.rs1 else None)
    table["csrrwi"] = csr_op(lambda h, i, old: i.imm)
    table["csrrsi"] = csr_op(lambda h, i, old: (old | i.imm) if i.imm else None)
    table["csrrci"] = csr_op(lambda h, i, old: (old & ~i.imm) if i.imm else None)

    # -- system -------------------------------------------------------------------------------------------
    def mret(h, i, pc, ft):
        resume = h.csrs.exit_trap()
        return (StepEvent.MRET, resume, True, 0, None)

    def wfi(h, i, pc, ft):
        return (StepEvent.WFI_SLEEP, ft, False, 0, None)

    def ecall(h, i, pc, ft):
        if h.csrs.read(op.CSR_MTVEC) == 0:
            return (StepEvent.HALT, pc, False, 0, None)
        raise TrapError(op.CAUSE_ECALL_M, pc)

    def ebreak(h, i, pc, ft):
        # Semihosting-style termination: programs in this reproduction end
        # with ebreak, so it always halts rather than trapping (the CFI
        # firmware never executes one).
        return (StepEvent.HALT, pc, False, 0, None)

    def fence(h, i, pc, ft):
        return (StepEvent.RETIRED, ft, False, 0, None)

    def fence_i(h, i, pc, ft):
        # The architectural instruction-stream sync point: discard every
        # cached fetch (the store-hook invalidation makes this redundant
        # on the modelled fabrics, but custom ports may lack the hook).
        h.flush_fetch_cache()
        return (StepEvent.RETIRED, ft, False, 0, None)

    table["mret"] = mret
    table["wfi"] = wfi
    table["ecall"] = ecall
    table["ebreak"] = ebreak
    table["fence"] = fence
    table["fence.i"] = fence_i

    return table


_EXEC_TABLE = _make_exec_table()
