"""The RISC-V hart execution engine.

One :class:`Hart` instance models one core.  Execution is functional
(architectural state only) with cycle accounting delegated to a
:class:`repro.hart.timing.TimingModel`; memory goes through a
:class:`repro.hart.ports.BusPort`.  Machine-mode traps, external
interrupts and WFI sleep are implemented because the TitanCFI firmware
protocol depends on them (doorbell interrupt → ISR → mret → sleep).

Every :meth:`Hart.step` returns a :class:`StepResult` describing the
retired instruction — pc, encoding, fall-through and actual next pc —
which is exactly the scoreboard information the CVA6 commit stage hands
to the CFI filters (paper §IV-B1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AccessFault, DecodeError, SimulationError, TrapError
from repro.hart.ports import BusPort
from repro.hart.state import CsrFile, RegisterFile
from repro.hart.timing import TimingModel
from repro.isa import opcodes as op
from repro.isa.decode import Instruction, decode, is_compressed_word
from repro.isa.registers import LINK_REGS
from repro.utils.bits import mask, sext

#: Mnemonics :meth:`Hart.run_n` always stops *before*: they halt or
#: trap, so the per-cycle scheduler must observe them.  (``wfi`` gets
#: its own action: in a solo window it can retire in-batch — going to
#: sleep has no cross-component effect — ending the window after it.)
_BATCH_STOP = frozenset({"ecall", "ebreak"})

#: Store/load mnemonic → access size, for the batch loop's memory-window
#: checks (MMIO stores are cross-component events; see :meth:`Hart.run_n`).
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}
_LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2,
               "lw": 4, "lwu": 4, "ld": 8}

_CSR_MNEMONICS = frozenset({"csrrw", "csrrs", "csrrc",
                            "csrrwi", "csrrsi", "csrrci"})

_BRANCH_MNEMONICS = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})

#: Batch action codes, precomputed per decoded pc (see _fetch_decode):
#: how :meth:`Hart.run_n` must treat the instruction without any
#: per-retire classification work.
_ACT_PLAIN = 0      # no interaction possible
_ACT_STOP = 1       # always stop before (wfi/ecall/ebreak/unimplemented)
_ACT_CFI = 2        # CFI-selected transfer (jalr, jal to a link register)
_ACT_MRET = 4       # trap return: stoppable, else execute + irq recheck
_ACT_CSR_IRQ = 5    # CSR write that can gate interrupts (mstatus/mie)
_ACT_WFI = 6        # retire-then-sleep: executable as a window's last insn
_ACT_STORE = 16     # 16 + access size (low 4 bits)
_ACT_LOAD = 32      # 32 + access size (low 4 bits)
_ACT_SIGNED = 64    # OR'd onto loads that sign-extend

#: CSRs whose value gates the external-interrupt predicate.
_IRQ_CSRS = frozenset({op.CSR_MSTATUS, op.CSR_MIE})


def _batch_action(insn: Instruction, handler) -> int:
    """Classify one decoded instruction for the batch loop (fill time)."""
    if handler is None:
        return _ACT_STOP
    m = insn.mnemonic
    if m in _BATCH_STOP:
        return _ACT_STOP
    if m == "wfi":
        return _ACT_WFI
    if m == "jalr":
        return _ACT_CFI
    if m == "jal":
        return _ACT_CFI if insn.rd in LINK_REGS else _ACT_PLAIN
    if m == "mret":
        return _ACT_MRET
    if m in _CSR_MNEMONICS:
        # Only a *write* to an interrupt-gating CSR can change the
        # pending predicate; pure reads (rs1/imm = 0) and writes to
        # other CSRs are plain.  The CSR index is encoding-static, so
        # this is decidable at decode-cache fill time.
        writes = (
            m in ("csrrw", "csrrwi")
            or (m in ("csrrs", "csrrc") and bool(insn.rs1))
            or (m in ("csrrsi", "csrrci") and bool(insn.imm))
        )
        if writes and insn.csr in _IRQ_CSRS:
            return _ACT_CSR_IRQ
        return _ACT_PLAIN
    size = _STORE_SIZES.get(m)
    if size is not None:
        return _ACT_STORE + size
    size = _LOAD_SIZES.get(m)
    if size is not None:
        action = _ACT_LOAD + size
        if m in ("lb", "lh", "lw", "ld"):
            action |= _ACT_SIGNED
        return action
    return _ACT_PLAIN


class StepEvent(enum.Enum):
    """What happened during one step."""

    RETIRED = "retired"            # a normal instruction retired
    INTERRUPT = "interrupt"        # trap entry for an external interrupt
    TRAP = "trap"                  # synchronous trap entry
    MRET = "mret"                  # return from trap
    WFI_SLEEP = "wfi-sleep"        # wfi retired, hart went to sleep
    SLEEPING = "sleeping"          # hart idle, nothing pending
    WAKE = "wake"                  # wake event consumed (wake_cycles)
    HALT = "halt"                  # ecall/ebreak with no handler


@dataclass(slots=True)
class StepResult:
    """Outcome of one :meth:`Hart.step`.

    Treated as immutable by convention; declared with ``slots`` rather
    than ``frozen`` because one StepResult is allocated per simulated
    instruction and the frozen ``__setattr__`` path dominates
    allocation cost on the hot loop.

    Attributes:
        event: what happened.
        pc: pc of the retired instruction (or the sleeping/trap pc).
        insn: the retired instruction, or ``None`` for non-retiring steps.
        fall_through: ``pc + insn.length`` (the commit log's *next
            address* field), or ``pc`` for non-retiring steps.
        next_pc: architecturally next pc (branch/jump target if taken).
        taken: for branches/jumps, whether control transferred.
        cycles: cycles charged to this step.
        mem_address: effective address for loads/stores, else ``None``.
    """

    event: StepEvent
    pc: int
    insn: Optional[Instruction]
    fall_through: int
    next_pc: int
    taken: bool
    cycles: int
    mem_address: Optional[int] = None


class Hart:
    """A single RISC-V hart.

    Args:
        bus: load/store/fetch port.
        timing: per-instruction cycle model.
        xlen: 32 or 64.
        reset_pc: initial program counter.
        external_irq: level callback for the external interrupt line
            (typically ``plic.irq_line``); ``None`` means tied low.
        name: diagnostic name.
        hartid: value of the ``mhartid`` CSR.
    """

    def __init__(
        self,
        bus: BusPort,
        timing: TimingModel,
        xlen: int = 32,
        reset_pc: int = 0,
        external_irq: Optional[Callable[[], bool]] = None,
        name: str = "hart",
        hartid: int = 0,
    ):
        if xlen not in (32, 64):
            raise ValueError(f"xlen must be 32 or 64, got {xlen}")
        self.bus = bus
        self.timing = timing
        self.xlen = xlen
        self.name = name
        self.pc = reset_pc & mask(xlen)
        self.regs = RegisterFile(xlen)
        self.csrs = CsrFile(xlen, hartid=hartid)
        self.csrs.bind_hart(self)
        # An unwired interrupt line can never pend; skipping the CSR
        # poll on every step matters for the host core's hot loop.  The
        # property setter keeps the fast-path flag coherent when a line
        # is wired after construction.
        self._irq_wired = external_irq is not None
        self._external_irq = external_irq or (lambda: False)
        self.cycle = 0
        self.instret = 0
        self.sleeping = False
        self.halted = False
        self._mask = mask(xlen)
        # Per-pc decoded-instruction cache:
        #   pc -> (insn, exec handler, batch action, fixed cycle cost).
        # A hit skips the bus fetch and the decode entirely; the batch
        # action and cost are precomputed so the batched retire loop
        # (run_n) does zero per-instruction classification.  Entries are
        # flushed when a store lands in any page code was fetched from
        # (see _note_store) or on fence.i.
        self._pc_cache: Dict[int, Tuple] = {}
        # Mnemonic -> cycle cost for costs with no runtime dependence
        # (absent for branches and memory ops); {} for timing models
        # without the precomputed table.
        self._fixed_cycles: Dict[str, int] = getattr(timing, "_fixed", None) or {}
        self._code_pages: set = set()
        # Prefer a fabric-wide store hook (sees every master's writes);
        # without one, fall back to watching this hart's own stores.
        subscribe = getattr(bus, "on_store", None)
        if subscribe is not None:
            subscribe(self._note_store)
            self._self_watch_stores = False
        else:
            self._self_watch_stores = True
        # Stable hot-loop context, hoisted once: run_n unpacks this
        # single tuple instead of chasing ~10 attribute chains per
        # window (windows can be a handful of instructions long, so
        # prologue cost is measurable).  Every element is fixed for the
        # hart's lifetime; the pc cache is cleared *in place* so the
        # dict object itself is stable.
        self._batch_ctx = (
            self.regs.raw,
            self.csrs,
            self._pc_cache,
            self.bus.read,
            self.bus.write,
            self._self_watch_stores,
            self._note_store,
            self.timing.cycles_for,
            getattr(self.timing, "_mem_extra", None),
            self._mask,
        )

    # -- helpers -----------------------------------------------------------------

    _PAGE_BITS = 12

    @property
    def external_irq(self) -> Callable[[], bool]:
        """Level callback for the external interrupt line."""
        return self._external_irq

    @external_irq.setter
    def external_irq(self, callback: Optional[Callable[[], bool]]) -> None:
        self._external_irq = callback or (lambda: False)
        self._irq_wired = callback is not None

    def _sx(self, value: int) -> int:
        """Value of a register interpreted as signed XLEN-bit."""
        return sext(value, self.xlen)

    def _note_store(self, address: int, size: int) -> None:
        """Store-hook: flush the pc cache when a write hits cached code.

        Bulk loads (``write_bytes``) can span many pages, so every page
        the write touches is checked — an interior cached page must
        invalidate just like the endpoints.
        """
        pages = self._code_pages
        if not pages:
            return
        first = address >> self._PAGE_BITS
        last = (address + size - 1) >> self._PAGE_BITS
        # Iterate the (tiny) cached-page set, not the written span — a
        # bulk DRAM-image write can cover thousands of pages.
        if first in pages or (
            last != first and any(first < page <= last for page in pages)
        ):
            self._pc_cache.clear()
            pages.clear()

    def flush_fetch_cache(self) -> None:
        """Drop every cached (pc → decoded instruction) entry."""
        self._pc_cache.clear()
        self._code_pages.clear()

    def _fetch_decode(self, pc: int) -> Tuple:
        """Fetch+decode miss handler; populates the pc cache."""
        low, _ = self.bus.fetch(pc, 2)
        if is_compressed_word(low):
            word = low
        else:
            high, _ = self.bus.fetch(pc + 2, 2)
            word = low | (high << 16)
        insn = decode(word, xlen=self.xlen)
        handler = _EXEC_TABLE.get(insn.mnemonic)
        cost = self._fixed_cycles.get(insn.mnemonic)
        if cost is None and insn.mnemonic in _BRANCH_MNEMONICS:
            # Branches store the (untaken, taken) pair; the batch loop
            # indexes it with the taken flag instead of calling the
            # timing model.
            cost = getattr(self.timing, "_branch", None)
        entry = (
            insn,
            handler,
            _batch_action(insn, handler),
            cost,
        )
        self._pc_cache[pc] = entry
        self._code_pages.add(pc >> self._PAGE_BITS)
        self._code_pages.add((pc + insn.length - 1) >> self._PAGE_BITS)
        return entry

    def _interrupt_pending(self) -> bool:
        mie = self.csrs.read(op.CSR_MIE)
        return bool(mie & op.MIE_MEIE) and self._external_irq()

    @property
    def interrupt_pending(self) -> bool:
        """Level of the (enabled) external interrupt into this hart."""
        return self._interrupt_pending()

    def sleep_for(self, cycles: int) -> None:
        """Account ``cycles`` of WFI sleep in one jump.

        Equivalent to ``cycles`` consecutive :meth:`step` calls while
        :attr:`sleeping` with no interrupt pending — used by the
        event-driven co-simulator to skip idle stretches without
        perturbing the cycle counter.
        """
        self.cycle += cycles

    # -- trap entry/exit ------------------------------------------------------------

    def _enter_trap(self, cause: int, interrupt: bool, tval: int = 0) -> StepResult:
        handler = self.csrs.enter_trap(self.pc, cause, interrupt, tval)
        if handler == 0:
            # No trap vector installed: treat as a halt so victim programs
            # and tests don't spin at address zero.
            self.halted = True
            self.cycle += 1
            return StepResult(
                event=StepEvent.HALT,
                pc=self.pc,
                insn=None,
                fall_through=self.pc,
                next_pc=self.pc,
                taken=False,
                cycles=1,
            )
        previous_pc = self.pc
        self.pc = handler
        cycles = self.timing.trap_entry_cycles
        self.cycle += cycles
        return StepResult(
            event=StepEvent.INTERRUPT if interrupt else StepEvent.TRAP,
            pc=previous_pc,
            insn=None,
            fall_through=previous_pc,
            next_pc=handler,
            taken=True,
            cycles=cycles,
        )

    # -- main step -------------------------------------------------------------------

    def step(self) -> StepResult:
        """Advance the hart by one instruction (or one idle/wake event)."""
        if self.halted:
            raise SimulationError(f"{self.name}: step() after halt")

        if self.sleeping:
            if self._interrupt_pending():
                self.sleeping = False
                cycles = self.timing.wake_cycles
                self.cycle += cycles
                return StepResult(
                    event=StepEvent.WAKE,
                    pc=self.pc,
                    insn=None,
                    fall_through=self.pc,
                    next_pc=self.pc,
                    taken=False,
                    cycles=cycles,
                )
            self.cycle += 1
            return StepResult(
                event=StepEvent.SLEEPING,
                pc=self.pc,
                insn=None,
                fall_through=self.pc,
                next_pc=self.pc,
                taken=False,
                cycles=1,
            )

        if self._irq_wired and self.csrs.mie_enabled and self._interrupt_pending():
            return self._enter_trap(op.CAUSE_MACHINE_EXTERNAL_IRQ, interrupt=True)

        pc = self.pc
        entry = self._pc_cache.get(pc)
        if entry is None:
            try:
                entry = self._fetch_decode(pc)
            except DecodeError as exc:
                exc.pc = pc
                return self._enter_trap(op.CAUSE_ILLEGAL_INSTRUCTION, False, tval=exc.word)
            except AccessFault:
                return self._enter_trap(op.CAUSE_FETCH_ACCESS, False, tval=pc)
        insn, handler = entry[0], entry[1]

        fall_through = (pc + insn.length) & self._mask
        try:
            if handler is None:
                raise TrapError(
                    op.CAUSE_ILLEGAL_INSTRUCTION, pc, f"unimplemented {insn.mnemonic}"
                )
            outcome = handler(self, insn, pc, fall_through)
        except TrapError as exc:
            return self._enter_trap(exc.cause, False, tval=0)
        except AccessFault as exc:
            cause = op.CAUSE_STORE_ACCESS if exc.access == "write" else op.CAUSE_LOAD_ACCESS
            return self._enter_trap(cause, False, tval=exc.address)

        event, next_pc, taken, mem_cycles, mem_address = outcome
        if event is StepEvent.HALT:
            self.halted = True
            self.cycle += 1
            return StepResult(
                event=event, pc=pc, insn=insn, fall_through=fall_through,
                next_pc=pc, taken=False, cycles=1, mem_address=None,
            )

        cycles = self.timing.cycles_for(insn, taken, mem_cycles)
        self.pc = next_pc
        self.cycle += cycles
        self.instret += 1
        if event is StepEvent.WFI_SLEEP:
            self.sleeping = True
        return StepResult(
            event=event,
            pc=pc,
            insn=insn,
            fall_through=fall_through,
            next_pc=next_pc,
            taken=taken,
            cycles=cycles,
            mem_address=mem_address,
        )

    # -- batch running ------------------------------------------------------------------

    def run_n(
        self,
        budget: int,
        window_lo: int,
        window_hi: int,
        stop_before_cfi: bool = False,
        max_insns: int = 0,
        confined: bool = False,
        terminate_on_store: bool = False,
    ) -> Tuple[int, int, int]:
        """Retire whole instructions in a tight loop (the batched fast path).

        Executes *plain* instructions — ones that provably cannot
        interact with any other component — without allocating a
        :class:`StepResult` per retire or returning to the caller, and
        stops **before** the first boundary instruction so the caller's
        per-cycle :meth:`step` path replays it with full semantics on
        the exact cycle the busy loop would have.  Boundary conditions:

        * ``wfi`` / ``ecall`` / ``ebreak`` / unimplemented opcodes (they
          change the hart's run state or trap);
        * with ``stop_before_cfi``, anything the TitanCFI filter selects
          (``jalr``, ``jal`` to a link register — see
          :func:`repro.isa.cflow.classify`) plus ``mret``, so the CFI
          commit path stays on the cycle-exact scheduler;
        * stores outside ``[window_lo, window_hi)`` — MMIO writes are
          cross-component events (doorbells, verdicts).  Loads are only
          confined in ``confined`` mode: when the rest of the platform
          is provably frozen for the window, a batched MMIO read
          returns exactly the busy-loop value at the same cycle because
          every modelled device read is side-effect free;
        * a pending (enabled) external interrupt — re-evaluated exactly
          where :meth:`step` could first observe a change (window entry
          and after ``mret``/store instructions and writes to
          ``mstatus``/``mie``, the only in-window ops able to affect
          the interrupt predicate);
        * any fetch/decode/execute fault.  Faults are re-raised by the
          caller's :meth:`step` replay; the handlers are written so a
          faulting attempt mutates nothing (loads/stores fault before
          the register/memory update, the pc-cache flush in
          :meth:`_note_store` is idempotent).

        ``self.cycle`` and ``instret`` advance per retired instruction
        (``mcycle``/``minstret`` reads inside the window stay exact);
        self-modifying code keeps working because every iteration
        re-reads the pc cache the store hook invalidates.

        Args:
            budget: issue instructions only while the cycles spent so
                far stay below this bound.  The *last* instruction may
                overshoot; the caller absorbs the excess as cycle debt.
            window_lo: first address stores (and, in ``confined`` mode,
                loads) may target without ending the window.
            window_hi: one past the last window-safe address.
            stop_before_cfi: also stop before CFI-relevant instructions
                (host commit-stage mode).
            max_insns: optional retire-count bound (0 = unbounded).
            confined: full-isolation mode for dual-hart windows, where
                this hart may run *ahead* of the globally-accounted
                clock: out-of-window loads, ``mret`` and
                ``mstatus``/``mie`` writes all become boundaries, so
                the whole window provably touches nothing outside the
                window and can never become interrupt-sensitive.
            terminate_on_store: instead of stopping *before* an
                out-of-window store, execute it as the window's final
                instruction and report its cost, letting the caller
                replay the rest of that cycle (the log writer's
                same-cycle reaction) in order.  Only sound when every
                other component is provably inactive through the
                store's retire cycle — the solo-window case, never the
                dual (run-ahead) case.

        Returns:
            ``(retired, cycles_spent, terminator_cost)``;
            ``terminator_cost`` is non-zero only when
            ``terminate_on_store`` ended the window, and is the cycle
            cost of that final store (its retire cycle is
            ``cycles_spent - terminator_cost + 1``).  ``(0, 0, 0)``
            means the very next instruction is a boundary and the
            caller must fall back to one normal step.
        """
        if self.halted:
            raise SimulationError(f"{self.name}: run_n() after halt")
        if self.sleeping:
            return 0, 0, 0
        (raw_regs, csrs, cache, bus_read, bus_write, self_watch,
         note_store, cycles_for, mem_extra, mask_) = self._batch_ctx
        irq_wired = self._irq_wired
        need_irq_check = irq_wired
        pc = self.pc
        retired = 0
        spent = 0
        terminating = False
        limit = max_insns if max_insns > 0 else -1
        while spent < budget and retired != limit:
            if need_irq_check:
                if csrs.mie_enabled and self._interrupt_pending():
                    break
                need_irq_check = False
            try:
                entry = cache[pc]
            except KeyError:
                try:
                    entry = self._fetch_decode(pc)
                except (DecodeError, AccessFault):
                    break
            insn, handler, action, cost = entry
            if action:
                if action >= _ACT_STORE:
                    # -- memory op, fully inlined (the action encodes
                    #    direction, size and signedness, so no handler
                    #    dispatch or outcome tuple is needed) ---------
                    address = (raw_regs[insn.rs1] + insn.imm) & mask_
                    size = action & 15
                    if action >= _ACT_LOAD:
                        if confined and (address < window_lo
                                         or address + size > window_hi):
                            break
                        try:
                            value, mem_cycles = bus_read(address, size)
                        except (TrapError, AccessFault):
                            break
                        if action >= _ACT_SIGNED:
                            sign_bit = 1 << ((size << 3) - 1)
                            if value >= sign_bit:
                                value = (value - (sign_bit << 1)) & mask_
                        rd = insn.rd
                        if rd:
                            raw_regs[rd] = value
                        is_load = True
                    else:
                        if (address < window_lo
                                or address + size > window_hi):
                            if not terminate_on_store:
                                break
                            terminating = True
                        if self_watch:
                            note_store(address, size)
                        try:
                            mem_cycles = bus_write(
                                address, size,
                                raw_regs[insn.rs2] & ((1 << (size << 3)) - 1),
                            )
                        except (TrapError, AccessFault):
                            break
                        is_load = False
                    if mem_extra is not None:
                        cost = mem_extra[is_load] + mem_cycles
                        if cost < 1 and mem_extra[2]:
                            cost = 1
                    else:
                        cost = cycles_for(insn, False, mem_cycles)
                    pc = (pc + insn.length) & mask_
                    self.cycle += cost
                    self.instret += 1
                    spent += cost
                    retired += 1
                    if terminating:
                        self.pc = pc
                        return retired, spent, cost
                    if not is_load and irq_wired:
                        need_irq_check = True
                    continue
                if action == _ACT_STOP:
                    break
                if action == _ACT_WFI:
                    if stop_before_cfi or confined:
                        break
                    # Retire the wfi in-window (same accounting as
                    # step(): one fixed-cost retire, then sleep) and
                    # end the window — the hart cannot fetch further.
                    pc = (pc + insn.length) & mask_
                    if cost is None:
                        cost = cycles_for(insn, False, 0)
                    self.cycle += cost
                    self.instret += 1
                    spent += cost
                    retired += 1
                    self.sleeping = True
                    break
                if action == _ACT_CFI:
                    if stop_before_cfi:
                        break
                elif action == _ACT_MRET:
                    if stop_before_cfi or confined:
                        break
                    need_irq_check = irq_wired
                else:  # _ACT_CSR_IRQ
                    if confined:
                        break
                    need_irq_check = irq_wired
            fall_through = (pc + insn.length) & mask_
            try:
                outcome = handler(self, insn, pc, fall_through)
            except (TrapError, AccessFault):
                break
            _event, next_pc, taken, _mem_cycles, _mem_address = outcome
            if cost is None:
                cost = cycles_for(insn, taken, 0)
            elif type(cost) is tuple:
                cost = cost[taken]
            pc = next_pc
            self.cycle += cost
            self.instret += 1
            spent += cost
            retired += 1
        self.pc = pc
        return retired, spent, 0

    def run(
        self,
        max_steps: int = 1_000_000,
        until: Optional[Callable[[StepResult], bool]] = None,
        collect: bool = False,
    ) -> List[StepResult]:
        """Step until halt, ``until`` returns True, or ``max_steps``.

        Args:
            max_steps: hard step bound (guards infinite loops in tests).
            until: optional stop predicate evaluated on each result.
            collect: when True, every StepResult is returned (memory-heavy
                for long runs; default returns only the last).

        Returns:
            the collected results (or a one-element list of the last).
        """
        results: List[StepResult] = []
        last: Optional[StepResult] = None
        for _ in range(max_steps):
            if self.halted:
                break
            last = self.step()
            if collect:
                results.append(last)
            if last.event is StepEvent.HALT:
                break
            if until is not None and until(last):
                break
        else:
            raise SimulationError(f"{self.name}: run() exceeded {max_steps} steps")
        if not collect and last is not None:
            results.append(last)
        return results


# ------------------------------------------------------------------------------
# Execution table.  Handlers return (event, next_pc, taken, mem_cycles, mem_addr).
# ------------------------------------------------------------------------------

def _alu_op(compute):
    def run(hart: Hart, insn: Instruction, pc: int, fall_through: int):
        # Inlined RegisterFile.write (x0 drop + mask): one call saved
        # per ALU retire, the single hottest operation in the batch loop.
        if insn.rd:
            hart.regs.raw[insn.rd] = compute(hart, insn) & hart._mask
        return (StepEvent.RETIRED, fall_through, False, 0, None)

    return run


def _make_exec_table():
    table = {}

    # The hottest integer ops get hand-written handlers (no inner
    # compute-lambda call): the batched retire loop executes these tens
    # of thousands of times per co-sim, so one call per retire matters.
    def addi(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] + i.imm) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def add(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] + h.regs.raw[i.rs2]) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def sub(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] - h.regs.raw[i.rs2]) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def and_(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = h.regs.raw[i.rs1] & h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, ft, False, 0, None)

    def or_(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = h.regs.raw[i.rs1] | h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, ft, False, 0, None)

    def xor_(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = h.regs.raw[i.rs1] ^ h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, ft, False, 0, None)

    def andi(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] & i.imm) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def ori(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] | i.imm) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def xori(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] ^ i.imm) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def slli(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (h.regs.raw[i.rs1] << i.imm) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    def srli(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = h.regs.raw[i.rs1] >> i.imm
        return (StepEvent.RETIRED, ft, False, 0, None)

    def sltu(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = int(h.regs.raw[i.rs1] < h.regs.raw[i.rs2])
        return (StepEvent.RETIRED, ft, False, 0, None)

    def lui(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (i.imm << 12) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    table["addi"] = addi
    table["add"] = add
    table["sub"] = sub
    table["and"] = and_
    table["or"] = or_
    table["xor"] = xor_
    table["andi"] = andi
    table["ori"] = ori
    table["xori"] = xori
    table["slli"] = slli
    table["srli"] = srli
    table["sltu"] = sltu

    # -- U-type ---------------------------------------------------------------
    table["lui"] = lui

    def auipc(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = (pc + (i.imm << 12)) & h._mask
        return (StepEvent.RETIRED, ft, False, 0, None)

    table["auipc"] = auipc

    # -- jumps ------------------------------------------------------------------
    def jal(h, i, pc, ft):
        if i.rd:
            h.regs.raw[i.rd] = ft
        target = (pc + i.imm) & h._mask
        return (StepEvent.RETIRED, target, True, 0, None)

    def jalr(h, i, pc, ft):
        # rs1 is read before rd is written (jalr ra, ra semantics).
        target = (h.regs.raw[i.rs1] + i.imm) & h._mask & ~1
        if i.rd:
            h.regs.raw[i.rd] = ft
        return (StepEvent.RETIRED, target, True, 0, None)

    table["jal"] = jal
    table["jalr"] = jalr

    # -- branches (direct handlers — no condition-lambda call) -------------------
    def beq(h, i, pc, ft):
        taken = h.regs.raw[i.rs1] == h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    def bne(h, i, pc, ft):
        taken = h.regs.raw[i.rs1] != h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    def blt(h, i, pc, ft):
        taken = h._sx(h.regs.raw[i.rs1]) < h._sx(h.regs.raw[i.rs2])
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    def bge(h, i, pc, ft):
        taken = h._sx(h.regs.raw[i.rs1]) >= h._sx(h.regs.raw[i.rs2])
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    def bltu(h, i, pc, ft):
        taken = h.regs.raw[i.rs1] < h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    def bgeu(h, i, pc, ft):
        taken = h.regs.raw[i.rs1] >= h.regs.raw[i.rs2]
        return (StepEvent.RETIRED, (pc + i.imm) & h._mask if taken else ft,
                taken, 0, None)

    table["beq"] = beq
    table["bne"] = bne
    table["blt"] = blt
    table["bge"] = bge
    table["bltu"] = bltu
    table["bgeu"] = bgeu

    # -- loads ---------------------------------------------------------------------
    def load(size, signed):
        # Sign extension inlined arithmetically ((v ^ s) - s on the
        # unsigned bus value): a sext() call per load is measurable.
        sign_bit = 1 << (size * 8 - 1)

        def run(h, i, pc, ft):
            # Bus access inlined (no _load hop): one load per simulated
            # memory instruction makes the extra frame measurable.
            address = (h.regs.raw[i.rs1] + i.imm) & h._mask
            value, cycles = h.bus.read(address, size)
            if signed and value >= sign_bit:
                value = (value - (sign_bit << 1)) & h._mask
            if i.rd:
                h.regs.raw[i.rd] = value
            return (StepEvent.RETIRED, ft, False, cycles, address)

        return run

    table["lb"] = load(1, True)
    table["lh"] = load(2, True)
    table["lw"] = load(4, True)
    table["ld"] = load(8, True)
    table["lbu"] = load(1, False)
    table["lhu"] = load(2, False)
    table["lwu"] = load(4, False)

    # -- stores -----------------------------------------------------------------------
    def store(size):
        value_mask = mask(size * 8)

        def run(h, i, pc, ft):
            address = (h.regs.raw[i.rs1] + i.imm) & h._mask
            if h._self_watch_stores:
                h._note_store(address, size)
            cycles = h.bus.write(address, size, h.regs.raw[i.rs2] & value_mask)
            return (StepEvent.RETIRED, ft, False, cycles, address)

        return run

    table["sb"] = store(1)
    table["sh"] = store(2)
    table["sw"] = store(4)
    table["sd"] = store(8)

    # -- immediate ALU (the common ones are direct handlers above) ----------------------
    table["slti"] = _alu_op(lambda h, i: int(h._sx(h.regs.raw[i.rs1]) < i.imm))
    table["sltiu"] = _alu_op(lambda h, i: int(h.regs.raw[i.rs1] < (i.imm & h._mask)))
    table["srai"] = _alu_op(lambda h, i: (h._sx(h.regs.raw[i.rs1]) >> i.imm) & h._mask)

    # -- register ALU -----------------------------------------------------------------------
    def shamt(h, value):
        return value & (h.xlen - 1)

    table["sll"] = _alu_op(lambda h, i: (h.regs.raw[i.rs1] << shamt(h, h.regs.raw[i.rs2])) & h._mask)
    table["slt"] = _alu_op(lambda h, i: int(h._sx(h.regs.raw[i.rs1]) < h._sx(h.regs.raw[i.rs2])))
    table["srl"] = _alu_op(lambda h, i: h.regs.raw[i.rs1] >> shamt(h, h.regs.raw[i.rs2]))
    table["sra"] = _alu_op(lambda h, i: (h._sx(h.regs.raw[i.rs1]) >> shamt(h, h.regs.raw[i.rs2])) & h._mask)

    # -- RV64 W-forms ---------------------------------------------------------------------------
    def w_result(h, value):
        return sext(value & mask(32), 32) & h._mask

    table["addiw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] + i.imm))
    table["slliw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] << i.imm))
    table["srliw"] = _alu_op(lambda h, i: w_result(h, (h.regs.raw[i.rs1] & mask(32)) >> i.imm))
    table["sraiw"] = _alu_op(lambda h, i: w_result(h, sext(h.regs.raw[i.rs1] & mask(32), 32) >> i.imm))
    table["addw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] + h.regs.raw[i.rs2]))
    table["subw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] - h.regs.raw[i.rs2]))
    table["sllw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] << (h.regs.raw[i.rs2] & 31)))
    table["srlw"] = _alu_op(lambda h, i: w_result(h, (h.regs.raw[i.rs1] & mask(32)) >> (h.regs.raw[i.rs2] & 31)))
    table["sraw"] = _alu_op(lambda h, i: w_result(h, sext(h.regs.raw[i.rs1] & mask(32), 32) >> (h.regs.raw[i.rs2] & 31)))

    # -- M extension -------------------------------------------------------------------------------
    def signed_pair(h, i):
        return h._sx(h.regs.raw[i.rs1]), h._sx(h.regs.raw[i.rs2])

    def div_signed(a, b):
        if b == 0:
            return -1
        quotient = abs(a) // abs(b)
        return -quotient if (a < 0) != (b < 0) else quotient

    def rem_signed(a, b):
        if b == 0:
            return a
        return a - div_signed(a, b) * b

    table["mul"] = _alu_op(lambda h, i: (h.regs.raw[i.rs1] * h.regs.raw[i.rs2]) & h._mask)
    table["mulh"] = _alu_op(lambda h, i: ((signed_pair(h, i)[0] * signed_pair(h, i)[1]) >> h.xlen) & h._mask)
    table["mulhsu"] = _alu_op(lambda h, i: ((h._sx(h.regs.raw[i.rs1]) * h.regs.raw[i.rs2]) >> h.xlen) & h._mask)
    table["mulhu"] = _alu_op(lambda h, i: ((h.regs.raw[i.rs1] * h.regs.raw[i.rs2]) >> h.xlen) & h._mask)
    table["div"] = _alu_op(lambda h, i: div_signed(*signed_pair(h, i)) & h._mask)
    table["divu"] = _alu_op(
        lambda h, i: (h._mask if h.regs.raw[i.rs2] == 0 else h.regs.raw[i.rs1] // h.regs.raw[i.rs2]) & h._mask
    )
    table["rem"] = _alu_op(lambda h, i: rem_signed(*signed_pair(h, i)) & h._mask)
    table["remu"] = _alu_op(
        lambda h, i: (h.regs.raw[i.rs1] if h.regs.raw[i.rs2] == 0 else h.regs.raw[i.rs1] % h.regs.raw[i.rs2]) & h._mask
    )
    table["mulw"] = _alu_op(lambda h, i: w_result(h, h.regs.raw[i.rs1] * h.regs.raw[i.rs2]))
    table["divw"] = _alu_op(
        lambda h, i: w_result(h, div_signed(sext(h.regs.raw[i.rs1] & mask(32), 32), sext(h.regs.raw[i.rs2] & mask(32), 32)))
    )
    table["divuw"] = _alu_op(
        lambda h, i: w_result(
            h,
            mask(32) if (h.regs.raw[i.rs2] & mask(32)) == 0
            else (h.regs.raw[i.rs1] & mask(32)) // (h.regs.raw[i.rs2] & mask(32)),
        )
    )
    table["remw"] = _alu_op(
        lambda h, i: w_result(h, rem_signed(sext(h.regs.raw[i.rs1] & mask(32), 32), sext(h.regs.raw[i.rs2] & mask(32), 32)))
    )
    table["remuw"] = _alu_op(
        lambda h, i: w_result(
            h,
            (h.regs.raw[i.rs1] & mask(32)) if (h.regs.raw[i.rs2] & mask(32)) == 0
            else (h.regs.raw[i.rs1] & mask(32)) % (h.regs.raw[i.rs2] & mask(32)),
        )
    )

    # -- Zicsr ----------------------------------------------------------------------------------------
    def csr_op(write_value):
        def run(h, i, pc, ft):
            old = h.csrs.read(i.csr)
            new = write_value(h, i, old)
            if new is not None:
                h.csrs.write(i.csr, new)
            h.regs.write(i.rd, old)
            return (StepEvent.RETIRED, ft, False, 0, None)

        return run

    table["csrrw"] = csr_op(lambda h, i, old: h.regs.raw[i.rs1])
    table["csrrs"] = csr_op(lambda h, i, old: (old | h.regs.raw[i.rs1]) if i.rs1 else None)
    table["csrrc"] = csr_op(lambda h, i, old: (old & ~h.regs.raw[i.rs1]) if i.rs1 else None)
    table["csrrwi"] = csr_op(lambda h, i, old: i.imm)
    table["csrrsi"] = csr_op(lambda h, i, old: (old | i.imm) if i.imm else None)
    table["csrrci"] = csr_op(lambda h, i, old: (old & ~i.imm) if i.imm else None)

    # -- system -------------------------------------------------------------------------------------------
    def mret(h, i, pc, ft):
        resume = h.csrs.exit_trap()
        return (StepEvent.MRET, resume, True, 0, None)

    def wfi(h, i, pc, ft):
        return (StepEvent.WFI_SLEEP, ft, False, 0, None)

    def ecall(h, i, pc, ft):
        if h.csrs.read(op.CSR_MTVEC) == 0:
            return (StepEvent.HALT, pc, False, 0, None)
        raise TrapError(op.CAUSE_ECALL_M, pc)

    def ebreak(h, i, pc, ft):
        # Semihosting-style termination: programs in this reproduction end
        # with ebreak, so it always halts rather than trapping (the CFI
        # firmware never executes one).
        return (StepEvent.HALT, pc, False, 0, None)

    def fence(h, i, pc, ft):
        return (StepEvent.RETIRED, ft, False, 0, None)

    def fence_i(h, i, pc, ft):
        # The architectural instruction-stream sync point: discard every
        # cached fetch (the store-hook invalidation makes this redundant
        # on the modelled fabrics, but custom ports may lack the hook).
        h.flush_fetch_cache()
        return (StepEvent.RETIRED, ft, False, 0, None)

    table["mret"] = mret
    table["wfi"] = wfi
    table["ecall"] = ecall
    table["ebreak"] = ebreak
    table["fence"] = fence
    table["fence.i"] = fence_i

    return table


_EXEC_TABLE = _make_exec_table()
