"""Instruction-set simulation: architectural state, execution, timing.

One execution engine (:class:`repro.hart.core.Hart`) serves both cores of
the reference SoC; they differ only in XLEN, bus port and timing model:

* CVA6 — RV64, AXI-attached, :class:`repro.hart.timing.Cva6Timing`;
* Ibex — RV32, TL-UL-attached, :class:`repro.hart.timing.IbexTiming`.
"""

from repro.hart.state import CsrFile, RegisterFile
from repro.hart.core import Hart, StepEvent, StepResult
from repro.hart.ports import BusPort, MapPort, TlulPort
from repro.hart.timing import Cva6Timing, IbexTiming, TimingModel

__all__ = [
    "CsrFile",
    "RegisterFile",
    "Hart",
    "StepEvent",
    "StepResult",
    "BusPort",
    "MapPort",
    "TlulPort",
    "Cva6Timing",
    "IbexTiming",
    "TimingModel",
]
