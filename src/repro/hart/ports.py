"""Bus ports: how a hart's loads, stores and fetches reach the fabric.

The two cores of the reference SoC sit on different fabrics — CVA6 on
the AXI side (modelled here as direct memory-map access with region
latencies) and Ibex behind OpenTitan's TL-UL crossbar.  A common
:class:`BusPort` protocol hides that from the execution engine; every
access returns the cycles it consumed so the timing model can charge
them.
"""

from __future__ import annotations

from typing import Protocol, Tuple

from repro.mem.map import MemoryMap, StoreHook
from repro.soc.tilelink import TlulXbar


class BusPort(Protocol):
    """Load/store/fetch interface given to a :class:`repro.hart.core.Hart`."""

    def read(self, address: int, size: int) -> Tuple[int, int]:
        """Data read; returns ``(value, cycles)``."""
        ...

    def write(self, address: int, size: int, value: int) -> int:
        """Data write; returns cycles."""
        ...

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        """Instruction fetch; returns ``(value, cycles)``."""
        ...

    def on_store(self, hook: StoreHook) -> None:
        """Subscribe to writes reaching fetchable memory.

        The hook fires for *every* master's writes through the fabric
        (including bulk image loads), which is what lets a hart keep a
        per-pc decoded-instruction cache coherent with self-modifying
        code and with foreign writers.  Optional — harts probe for it
        with ``getattr`` and fall back to invalidating on their own
        stores only.
        """
        ...


def _region_memo(region, attr: str):
    """Build a port memo ``(lo, hi, latency, device_fn)`` for ``region``.

    ``device_fn`` is the device's pre-bounds-checked entry point
    (``fast_read``/``fast_write``) when it offers one — sound only
    because the mapped window never exceeds the device, which is
    exactly what the guard checks — else the protocol method.
    """
    device = region.device
    fn = getattr(device, attr, None)
    if fn is None or region.size > device.size:
        fn = device.read if attr == "fast_read" else device.write
    return (region.base, region.end, region.latency, fn)


class MapPort:
    """Direct memory-map port (CVA6 host-domain view).

    Access cost is the mapped region's latency — the host crossbar's
    contribution is folded into those latencies by the SoC builder.

    The data path is the fused fast path of
    :meth:`repro.mem.map.MemoryMap.read_timed` /
    :meth:`~repro.mem.map.MemoryMap.write_timed`: one hot-region bounds
    check, then the device, falling back to the map's full decode (and
    its fault messages) on a region miss.  One load/store per simulated
    instruction makes every call layer here measurable.
    """

    def __init__(self, memory_map: MemoryMap):
        self.map = memory_map
        # Port-local read/write memos ``(lo, hi, latency, device_fn)``.
        # The map's shared hot-region memo thrashes when other masters
        # (the CFI log writer, the TL2AXI bridge) interleave mailbox
        # traffic with this hart's DRAM stream; the per-port,
        # per-direction memos stay pinned to the hart's own working
        # regions.  Stale entries are harmless: regions are only ever
        # added, never moved.  ``device_fn`` is the device's
        # pre-bounds-checked entry point when it offers one (Ram
        # ``fast_read``/``fast_write``), else its protocol method.
        self._read_memo = None
        self._write_memo = None
        self._fetch_memo = None

    def read(self, address: int, size: int) -> Tuple[int, int]:
        m = self.map
        memo = self._read_memo
        if memo is not None and not m._observers:
            lo, hi, latency, fn = memo
            if lo <= address and address + size <= hi:
                return fn(address - lo, size), latency
        return self._read_slow(address, size)

    def _read_slow(self, address: int, size: int) -> Tuple[int, int]:
        m = self.map
        if m._observers:
            return m.read_timed(address, size)
        region = m._region_checked(address, size, "read")
        memo = _region_memo(region, "fast_read")
        self._read_memo = memo
        return memo[3](address - region.base, size), region.latency

    def write(self, address: int, size: int, value: int) -> int:
        m = self.map
        memo = self._write_memo
        if memo is not None and not m._observers:
            lo, hi, latency, fn = memo
            if lo <= address and address + size <= hi:
                fn(address - lo, size, value)
                for hook in m._store_hooks:
                    hook(address, size)
                return latency
        return self._write_slow(address, size, value)

    def _write_slow(self, address: int, size: int, value: int) -> int:
        m = self.map
        if m._observers:
            return m.write_timed(address, size, value)
        region = m._region_checked(address, size, "write")
        memo = _region_memo(region, "fast_write")
        self._write_memo = memo
        memo[3](address - region.base, size, value)
        for hook in m._store_hooks:
            hook(address, size)
        return region.latency

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        m = self.map
        memo = self._fetch_memo
        if memo is not None and not m._observers:
            lo, hi, latency, fn = memo
            if lo <= address and address + size <= hi:
                return fn(address - lo, size), latency
        if m._observers:
            return m.read_timed(address, size, kind="fetch")
        region = m._region_checked(address, size, "fetch")
        memo = _region_memo(region, "fast_read")
        self._fetch_memo = memo
        return memo[3](address - region.base, size), region.latency

    def on_store(self, hook: StoreHook) -> None:
        self.map.add_store_hook(hook)


class TlulPort:
    """TL-UL crossbar port (Ibex's view inside OpenTitan).

    Fetches bypass the timed data path: Ibex's prefetch buffer hides
    instruction-memory latency for the straight-line firmware we model,
    and the paper's cycle accounting charges fetch stalls to the
    instruction itself (via the timing model), not to the bus.
    """

    def __init__(self, xbar: TlulXbar, master: str = "ibex"):
        self.xbar = xbar
        self.master = master
        # The xbar's per-master accounting object, bound once: the
        # paper's Table I reads these counters, so every access must
        # still be recorded — just without a dict lookup per access
        # (the counter bumps are inlined below for the same reason).
        self._stats = xbar.stats(master)
        # The xbar's (nbytes, latency) → cycles memo, shared so the
        # fast paths below do one inline dict probe per access.
        self._cycles = xbar._cycles_memo
        # Per-direction memos ``(lo, hi, latency, device_fn)`` — see
        # MapPort.  Reads keep *two* slots (most-recent first): the
        # firmware's check loop alternates mailbox reads (bridge) with
        # scratchpad reads (SRAM), which a single slot ping-pongs on.
        self._read_memo = None
        self._read_memo2 = None
        self._write_memo = None
        self._fetch_memo = None

    def read(self, address: int, size: int) -> Tuple[int, int]:
        memo = self._read_memo
        if memo is not None and not self.xbar.map._observers:
            lo, hi, latency, fn = memo
            if not (lo <= address and address + size <= hi):
                memo = self._read_memo2
                if memo is None:
                    return self._read_slow(address, size)
                lo, hi, latency, fn = memo
                if not (lo <= address and address + size <= hi):
                    return self._read_slow(address, size)
                # Promote the hit to the front slot, then fall through
                # to the one shared hit body below.
                self._read_memo2 = self._read_memo
                self._read_memo = memo
            value = fn(address - lo, size)
            cycles = self._cycles.get((size, latency))
            if cycles is None:
                cycles = self.xbar._access_cycles(size, latency)
            stats = self._stats
            stats.reads += 1
            stats.read_bytes += size
            stats.cycles += cycles
            return value, cycles
        return self._read_slow(address, size)

    def _read_slow(self, address: int, size: int) -> Tuple[int, int]:
        xbar = self.xbar
        m = xbar.map
        if m._observers:
            return xbar.read(self.master, address, size)
        region = m._region_checked(address, size, "read")
        memo = _region_memo(region, "fast_read")
        self._read_memo2 = self._read_memo
        self._read_memo = memo
        value = memo[3](address - region.base, size)
        cycles = xbar._access_cycles(size, region.latency)
        self._stats.record("read", size, cycles)
        return value, cycles

    def write(self, address: int, size: int, value: int) -> int:
        memo = self._write_memo
        m = self.xbar.map
        if memo is not None and not m._observers:
            lo, hi, latency, fn = memo
            if lo <= address and address + size <= hi:
                fn(address - lo, size, value)
                for hook in m._store_hooks:
                    hook(address, size)
                cycles = self._cycles.get((size, latency))
                if cycles is None:
                    cycles = self.xbar._access_cycles(size, latency)
                stats = self._stats
                stats.writes += 1
                stats.written_bytes += size
                stats.cycles += cycles
                return cycles
        return self._write_slow(address, size, value)

    def _write_slow(self, address: int, size: int, value: int) -> int:
        xbar = self.xbar
        m = xbar.map
        if m._observers:
            return xbar.write(self.master, address, size, value)
        region = m._region_checked(address, size, "write")
        memo = _region_memo(region, "fast_write")
        self._write_memo = memo
        memo[3](address - region.base, size, value)
        for hook in m._store_hooks:
            hook(address, size)
        cycles = xbar._access_cycles(size, region.latency)
        self._stats.record("write", size, cycles)
        return cycles

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        m = self.xbar.map
        memo = self._fetch_memo
        if memo is not None and not m._observers:
            lo, hi, _latency, fn = memo
            if lo <= address and address + size <= hi:
                return fn(address - lo, size), 0
        if m._observers:
            return m.fetch(address, size), 0
        region = m._region_checked(address, size, "fetch")
        memo = _region_memo(region, "fast_read")
        self._fetch_memo = memo
        return memo[3](address - region.base, size), 0

    def on_store(self, hook: StoreHook) -> None:
        self.xbar.map.add_store_hook(hook)
