"""Bus ports: how a hart's loads, stores and fetches reach the fabric.

The two cores of the reference SoC sit on different fabrics — CVA6 on
the AXI side (modelled here as direct memory-map access with region
latencies) and Ibex behind OpenTitan's TL-UL crossbar.  A common
:class:`BusPort` protocol hides that from the execution engine; every
access returns the cycles it consumed so the timing model can charge
them.
"""

from __future__ import annotations

from typing import Protocol, Tuple

from repro.mem.map import MemoryMap, StoreHook
from repro.soc.tilelink import TlulXbar


class BusPort(Protocol):
    """Load/store/fetch interface given to a :class:`repro.hart.core.Hart`."""

    def read(self, address: int, size: int) -> Tuple[int, int]:
        """Data read; returns ``(value, cycles)``."""
        ...

    def write(self, address: int, size: int, value: int) -> int:
        """Data write; returns cycles."""
        ...

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        """Instruction fetch; returns ``(value, cycles)``."""
        ...

    def on_store(self, hook: StoreHook) -> None:
        """Subscribe to writes reaching fetchable memory.

        The hook fires for *every* master's writes through the fabric
        (including bulk image loads), which is what lets a hart keep a
        per-pc decoded-instruction cache coherent with self-modifying
        code and with foreign writers.  Optional — harts probe for it
        with ``getattr`` and fall back to invalidating on their own
        stores only.
        """
        ...


class MapPort:
    """Direct memory-map port (CVA6 host-domain view).

    Access cost is the mapped region's latency — the host crossbar's
    contribution is folded into those latencies by the SoC builder.
    """

    def __init__(self, memory_map: MemoryMap):
        self.map = memory_map

    def read(self, address: int, size: int) -> Tuple[int, int]:
        value = self.map.read(address, size)
        return value, self.map.latency(address)

    def write(self, address: int, size: int, value: int) -> int:
        self.map.write(address, size, value)
        return self.map.latency(address)

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        value = self.map.fetch(address, size)
        return value, self.map.latency(address)

    def on_store(self, hook: StoreHook) -> None:
        self.map.add_store_hook(hook)


class TlulPort:
    """TL-UL crossbar port (Ibex's view inside OpenTitan).

    Fetches bypass the timed data path: Ibex's prefetch buffer hides
    instruction-memory latency for the straight-line firmware we model,
    and the paper's cycle accounting charges fetch stalls to the
    instruction itself (via the timing model), not to the bus.
    """

    def __init__(self, xbar: TlulXbar, master: str = "ibex"):
        self.xbar = xbar
        self.master = master

    def read(self, address: int, size: int) -> Tuple[int, int]:
        return self.xbar.read(self.master, address, size)

    def write(self, address: int, size: int, value: int) -> int:
        return self.xbar.write(self.master, address, size, value)

    def fetch(self, address: int, size: int) -> Tuple[int, int]:
        value = self.xbar.map.fetch(address, size)
        return value, 0

    def on_store(self, hook: StoreHook) -> None:
        self.xbar.map.add_store_hook(hook)
