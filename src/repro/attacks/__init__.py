"""Attack scenarios: the code-reuse attacks TitanCFI exists to stop (§I, §VI)."""

from repro.attacks.programs import (
    benign_program,
    call_hijack_program,
    deep_recursion_program,
    indirect_jump_program,
    jop_program,
    return_to_callsite_program,
    rop_program,
)
from repro.attacks.rop import AttackOutcome, run_attack_scenario

__all__ = [
    "benign_program",
    "call_hijack_program",
    "deep_recursion_program",
    "indirect_jump_program",
    "jop_program",
    "return_to_callsite_program",
    "rop_program",
    "AttackOutcome",
    "run_attack_scenario",
]
