"""Attack scenarios: the code-reuse attacks TitanCFI exists to stop (§I, §VI)."""

from repro.attacks.programs import (
    benign_program,
    deep_recursion_program,
    rop_program,
    indirect_jump_program,
)
from repro.attacks.rop import AttackOutcome, run_attack_scenario

__all__ = [
    "benign_program",
    "deep_recursion_program",
    "rop_program",
    "indirect_jump_program",
    "AttackOutcome",
    "run_attack_scenario",
]
