"""Victim and attack programs for the CVA6 host core.

All programs are RV64 assembly for the host DRAM base, end in
``ebreak`` and leave a result in ``a0`` so tests can verify semantic
outcomes (did the gadget run?) independently of CFI detection.
"""

from __future__ import annotations

from repro.isa.asm import Assembler, Program
from repro.system.addresses import AddressMap

#: Value the attacker's gadget writes into a0 when it executes.
GADGET_MARKER = 0x666
#: Value a clean victim run leaves in a0.
CLEAN_MARKER = 0x42


def _assemble(source: str, addresses: AddressMap) -> Program:
    return Assembler(xlen=64).assemble(source, base=addresses.dram_base)


def benign_program(addresses: AddressMap) -> Program:
    """A well-behaved workload: nested calls, loops, indirect call."""
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   s0, 5              # loop counter
            li   s1, 0              # accumulator
        loop:
            mv   a0, s0
            call square
            add  s1, s1, a0
            addi s0, s0, -1
            bnez s0, loop
            # indirect call through a function pointer
            la   t1, finalize
            jalr ra, 0(t1)
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        square:
            addi sp, sp, -16
            sd   ra, 8(sp)
            call identity           # nested call
            mul  a0, a0, a0
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret

        identity:
            ret

        finalize:
            mv   a1, s1
            ret
        """,
        addresses,
    )


def rop_program(addresses: AddressMap) -> Program:
    """A stack smash redirecting a return into an attacker gadget.

    ``victim`` saves its return address to the stack; the "overflow"
    (modelled as a direct overwrite, as a buffer overflow would achieve)
    replaces it with the gadget's address before the epilogue reloads it.
    """
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            call victim
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        victim:
            addi sp, sp, -32
            sd   ra, 24(sp)
            # ... vulnerable buffer write: the attacker-controlled input
            # overruns into the saved return address slot ...
            la   t1, gadget
            sd   t1, 24(sp)
            ld   ra, 24(sp)
            addi sp, sp, 32
            ret                      # diverted: returns into the gadget

        gadget:
            li   a0, {GADGET_MARKER:#x}
            ebreak
        """,
        addresses,
    )


def deep_recursion_program(addresses: AddressMap, depth: int = 64) -> Program:
    """Recursion deeper than a small shadow stack — exercises the
    authenticated spill/restore path (§VI)."""
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   a0, {depth}
            call recurse
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        recurse:
            addi sp, sp, -16
            sd   ra, 8(sp)
            beqz a0, base_case
            addi a0, a0, -1
            call recurse
        base_case:
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret
        """,
        addresses,
    )


def indirect_jump_program(addresses: AddressMap, corrupt: bool = False) -> Program:
    """A jump-table dispatch; with ``corrupt=True`` the table entry is
    overwritten to a non-entry address (forward-edge attack)."""
    target = "gadget" if corrupt else "handler"
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            la   t1, {target}
            jr   t1                  # indirect dispatch
            ebreak

        handler:
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        gadget:
            li   a0, {GADGET_MARKER:#x}
            ebreak
        """,
        addresses,
    )
