"""Victim and attack programs for the CVA6 host core.

All programs are RV64 assembly for the host DRAM base, end in
``ebreak`` and leave a result in ``a0`` so tests can verify semantic
outcomes (did the gadget run?) independently of CFI detection.
"""

from __future__ import annotations

from repro.isa.asm import Assembler, Program
from repro.system.addresses import AddressMap

#: Value the attacker's gadget writes into a0 when it executes.
GADGET_MARKER = 0x666
#: Value a clean victim run leaves in a0.
CLEAN_MARKER = 0x42


def _assemble(source: str, addresses: AddressMap) -> Program:
    return Assembler(xlen=64).assemble(source, base=addresses.dram_base)


def benign_program(addresses: AddressMap) -> Program:
    """A well-behaved workload: nested calls, loops, indirect call."""
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   s0, 5              # loop counter
            li   s1, 0              # accumulator
        loop:
            mv   a0, s0
            call square
            add  s1, s1, a0
            addi s0, s0, -1
            bnez s0, loop
            # indirect call through a function pointer
            la   t1, finalize
            jalr ra, 0(t1)
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        square:
            addi sp, sp, -16
            sd   ra, 8(sp)
            call identity           # nested call
            mul  a0, a0, a0
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret

        identity:
            ret

        finalize:
            mv   a1, s1
            ret
        """,
        addresses,
    )


def rop_program(addresses: AddressMap) -> Program:
    """A stack smash redirecting a return into an attacker gadget.

    ``victim`` saves its return address to the stack; the "overflow"
    (modelled as a direct overwrite, as a buffer overflow would achieve)
    replaces it with the gadget's address before the epilogue reloads it.
    """
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            call victim
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        victim:
            addi sp, sp, -32
            sd   ra, 24(sp)
            # ... vulnerable buffer write: the attacker-controlled input
            # overruns into the saved return address slot ...
            la   t1, gadget
            sd   t1, 24(sp)
            ld   ra, 24(sp)
            addi sp, sp, 32
            ret                      # diverted: returns into the gadget

        gadget:
            li   a0, {GADGET_MARKER:#x}
            ebreak
        """,
        addresses,
    )


def deep_recursion_program(addresses: AddressMap, depth: int = 64) -> Program:
    """Recursion deeper than a small shadow stack — exercises the
    authenticated spill/restore path (§VI)."""
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   a0, {depth}
            call recurse
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        recurse:
            addi sp, sp, -16
            sd   ra, 8(sp)
            beqz a0, base_case
            addi a0, a0, -1
            call recurse
        base_case:
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret
        """,
        addresses,
    )


def indirect_jump_program(addresses: AddressMap, corrupt: bool = False) -> Program:
    """A jump-table dispatch; with ``corrupt=True`` the table entry is
    overwritten to a non-entry address (forward-edge attack)."""
    target = "gadget" if corrupt else "handler"
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            la   t1, {target}
            jr   t1                  # indirect dispatch
            ebreak

        handler:
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        gadget:
            li   a0, {GADGET_MARKER:#x}
            ebreak
        """,
        addresses,
    )


def jop_program(addresses: AddressMap, corrupt: bool = False) -> Program:
    """A dispatcher-gadget JOP chain (jump-oriented programming).

    The dispatcher walks a function-pointer table in DRAM with register-
    indirect jumps — the dispatcher-gadget pattern of Bletsch et al.
    Benign runs dispatch to the two registered handlers; with
    ``corrupt=True`` the attacker's memory write fills the table with
    mid-function gadget addresses instead, and the chain (gadget_stage1
    → gadget_stage2, linked through the same table) assembles
    ``GADGET_MARKER`` in a0.  No return address is ever corrupted, so
    return-edge policies are blind to this attack.
    """
    first, second = (
        ("gadget_stage1", "gadget_stage2") if corrupt
        else ("handler_add", "handler_shift")
    )
    return _assemble(
        f"""
        .equ STACK_TOP,  {addresses.dram_base + 0xF0_0000:#x}
        .equ TABLE_BASE, {addresses.dram_base + 0xE0_0000:#x}
        main:
            la   sp, STACK_TOP
            la   s1, TABLE_BASE
            # ... attacker-controlled write fills the dispatch table ...
            la   t0, {first}
            sd   t0, 0(s1)
            la   t0, {second}
            sd   t0, 8(s1)
            li   s2, 0               # table index
            li   s3, 2               # entries to dispatch
            li   s4, 0               # accumulator
        dispatch:
            bge  s2, s3, done
            slli t1, s2, 3
            add  t1, t1, s1
            ld   t2, 0(t1)
            addi s2, s2, 1
            jr   t2                  # register-indirect dispatch
        done:
            mv   a1, s4
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        handler_add:
            addi s4, s4, 7
            j    dispatch
        handler_shift:
            slli s4, s4, 1
            j    dispatch

        # Attacker gadgets: instruction fragments, not function entries.
        gadget_stage1:
            li   a0, 0x66
            ld   t2, 8(s1)           # next gadget straight from the table
            jr   t2                  # chain without touching the dispatcher
        gadget_stage2:
            slli a0, a0, 4
            ori  a0, a0, 6           # 0x660 | 6 = GADGET_MARKER
            ebreak
        """,
        addresses,
    )


def call_hijack_program(addresses: AddressMap, corrupt: bool = False) -> Program:
    """A function-pointer overwrite hijacking an *indirect call*.

    ``main`` calls through a pointer cell in DRAM; with ``corrupt=True``
    an attacker write swaps the pointer from ``greet`` to ``gadget``
    before the call.  The call still pushes a correct return address —
    the gadget simply never returns — so a shadow stack cannot see this
    forward-edge attack, while target-set policies flag the call.
    ``gadget`` is laid out as a plausible function entry, which is
    exactly the corner coarse "any function entry" CFI cannot reject.
    """
    overwrite = """
            # ... arbitrary-write primitive retargets the pointer ...
            la   t0, gadget
            sd   t0, 0(s1)
    """ if corrupt else ""
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        .equ FPTR_CELL, {addresses.dram_base + 0xE1_0000:#x}
        main:
            la   sp, STACK_TOP
            la   s1, FPTR_CELL
            la   t0, greet
            sd   t0, 0(s1)
        {overwrite}
            ld   t1, 0(s1)
            jalr ra, 0(t1)           # indirect call through the pointer
            li   a0, {CLEAN_MARKER:#x}
            ebreak

        greet:
            li   a1, 0x11
            ret

        gadget:
            li   a0, {GADGET_MARKER:#x}
            ebreak
        """,
        addresses,
    )


def return_to_callsite_program(addresses: AddressMap) -> Program:
    """A corrupted return aimed at a *valid* call site's return address.

    ``victim``'s saved return address is overwritten with
    ``site_a_ret`` — the genuine return point of the earlier
    ``call helper`` — so the diverted target is call-preceded and a
    coarse "returns must follow a call" policy accepts it.  Only a
    shadow stack, which remembers *which* return address was pushed,
    catches the mismatch.  The replayed prologue path then branches to
    the attacker's payload (``s2`` records the first arrival).
    """
    return _assemble(
        f"""
        .equ STACK_TOP, {addresses.dram_base + 0xF0_0000:#x}
        main:
            la   sp, STACK_TOP
            li   s2, 0
            call helper              # call site A
        site_a_ret:
            bnez s2, attacker_path   # second arrival: hijacked return
            li   s2, 1
            call victim              # call site B
            li   a0, {CLEAN_MARKER:#x}
            ebreak
        attacker_path:
            li   a0, {GADGET_MARKER:#x}
            ebreak

        helper:
            ret

        victim:
            addi sp, sp, -16
            sd   ra, 8(sp)
            # ... overflow overwrites the saved ra with a call-preceded
            # address (site A's return point), not an arbitrary gadget ...
            la   t1, site_a_ret
            sd   t1, 8(sp)
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret                      # diverted, but to a "valid" site
        """,
        addresses,
    )
