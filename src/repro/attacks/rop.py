"""Attack-scenario driver: run a victim on the full co-simulated SoC.

Ties everything together: assembles a victim program, boots the real
shadow-stack firmware in the RoT, runs the co-simulation, and reports
whether TitanCFI detected the attack and whether the gadget's side
effects were architecturally visible (they are with a deep queue —
detection is asynchronous; with ``blocking=True`` the gadget never
retires, paper Table II's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.programs import GADGET_MARKER
from repro.core.config import TitanCfiConfig
from repro.errors import CfiViolation
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.isa.asm import Program
from repro.system.sim import SimulationReport, SystemSimulator
from repro.system.soc import TitanCfiSoc, build_soc


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack run.

    Attributes:
        detected: TitanCFI flagged a violation.
        violation: the violation object (kind, pc, addresses).
        gadget_executed: the attacker payload's marker reached a0.
        report: the full simulation report.
    """

    detected: bool
    violation: Optional[CfiViolation]
    gadget_executed: bool
    report: SimulationReport


def run_attack_scenario(
    program: Program,
    firmware_variant: str = "irq",
    queue_depth: int = 8,
    blocking: bool = False,
    fabric: str = "standard",
    max_cycles: int = 10_000_000,
    soc: Optional[TitanCfiSoc] = None,
    firmware_image: Optional[bytes] = None,
    sim_mode: Optional[str] = None,
) -> AttackOutcome:
    """Run ``program`` on a TitanCFI-protected SoC.

    Args:
        program: host program (e.g. from :mod:`repro.attacks.programs`).
        firmware_variant: ``"irq"`` or ``"polling"``.
        queue_depth: CFI queue depth (8 = Table III, 1 = Table II).
        blocking: stall per check (with depth 1, the Table II config).
        fabric: RoT interconnect profile.
        max_cycles: co-simulation bound.
        soc: pre-built SoC override (advanced use).
        firmware_image: pre-assembled firmware image for
            ``firmware_variant`` (the campaign's shard cache passes
            this to keep assembly off the per-scenario path); must
            match the default firmware layout.
        sim_mode: co-simulator engine (``None`` = engine default);
            every mode is cycle-exact, so the outcome is identical.
    """
    if soc is None:
        config = TitanCfiConfig(queue_depth=queue_depth, blocking=blocking)
        soc = build_soc(cfi_config=config, fabric=fabric)
        if firmware_image is None:
            firmware_image = shadow_stack_firmware(
                firmware_variant, FirmwareLayout(soc.addresses)
            ).data
        soc.load_firmware(firmware_image)
    soc.load_host_program(program)

    simulator = SystemSimulator(soc, mode=sim_mode)
    report = simulator.run(max_cycles=max_cycles)
    gadget_executed = soc.cva6.regs.read(10) == GADGET_MARKER
    return AttackOutcome(
        detected=report.detected,
        violation=report.violation,
        gadget_executed=gadget_executed,
        report=report,
    )
