"""Attack-scenario driver: run a victim on the full co-simulated SoC.

Ties everything together: assembles a victim program, boots the real
shadow-stack firmware in the RoT, runs the co-simulation, and reports
whether TitanCFI detected the attack and whether the gadget's side
effects were architecturally visible (they are with a deep queue —
detection is asynchronous; with ``blocking=True`` the gadget never
retires, paper Table II's configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.programs import GADGET_MARKER
from repro.core.config import TitanCfiConfig
from repro.errors import CfiViolation, ConfigError
from repro.firmware.policies import Policy
from repro.firmware.shadow_stack import FirmwareLayout, shadow_stack_firmware
from repro.isa.asm import Program
from repro.system.sim import (
    POLICY_BACKEND_FIRMWARE,
    POLICY_BACKEND_HOST,
    POLICY_BACKENDS,
    SimulationReport,
    SystemSimulator,
)
from repro.system.soc import TitanCfiSoc, build_soc


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack run.

    Attributes:
        detected: TitanCFI flagged a violation.
        violation: the violation object (kind, pc, addresses).
        gadget_executed: the attacker payload's marker reached a0.
        report: the full simulation report.
    """

    detected: bool
    violation: Optional[CfiViolation]
    gadget_executed: bool
    report: SimulationReport


def run_attack_scenario(
    program: Program,
    firmware_variant: str = "irq",
    queue_depth: int = 8,
    blocking: bool = False,
    fabric: str = "standard",
    max_cycles: int = 10_000_000,
    soc: Optional[TitanCfiSoc] = None,
    firmware_image: Optional[bytes] = None,
    sim_mode: Optional[str] = None,
    policy_backend: str = POLICY_BACKEND_FIRMWARE,
    policy: Optional[Policy] = None,
    fault_plan=None,
    lossy: bool = False,
) -> AttackOutcome:
    """Run ``program`` on a TitanCFI-protected SoC.

    Args:
        program: host program (e.g. from :mod:`repro.attacks.programs`).
        firmware_variant: ``"irq"`` or ``"polling"``.
        queue_depth: CFI queue depth (8 = Table III, 1 = Table II).
        blocking: stall per check (with depth 1, the Table II config).
        fabric: RoT interconnect profile.
        max_cycles: co-simulation bound.
        soc: pre-built SoC override (advanced use).
        firmware_image: pre-assembled firmware image for
            ``firmware_variant`` (the campaign's shard cache passes
            this to keep assembly off the per-scenario path); must
            match the default firmware layout.
        sim_mode: co-simulator engine (``None`` = engine default);
            every mode is cycle-exact, so the outcome is identical.
        policy_backend: who serves the CFI mailbox — ``"firmware"``
            runs the RV32 shadow-stack firmware on the Ibex ISS;
            ``"host"`` mounts ``policy`` as a
            :class:`repro.policyhost.PolicyHost` on the cycle model
            calibrated for ``firmware_variant`` and ``fabric``.
        policy: the Python policy to enforce (``"host"`` backend only).
        fault_plan: a :class:`repro.faults.FaultPlan` to attach for the
            run (``None`` leaves every fault hook detached — the
            fault-free path is cycle-identical with the layer present).
        lossy: run the CFI queue in lossy (drop-oldest) mode instead of
            stalling commit on overflow.
    """
    if policy_backend not in POLICY_BACKENDS:
        raise ConfigError(
            f"unknown policy backend {policy_backend!r} (have: {POLICY_BACKENDS})"
        )
    if soc is None:
        config = TitanCfiConfig(queue_depth=queue_depth, blocking=blocking,
                                lossy=lossy)
        soc = build_soc(cfi_config=config, fabric=fabric)
        if policy_backend == POLICY_BACKEND_HOST:
            from repro.policyhost.host import mount_policy_host

            if policy is None:
                raise ConfigError("policy_backend='host' needs a policy instance")
            mount_policy_host(soc, policy, variant=firmware_variant)
        else:
            if policy is not None:
                raise ConfigError(
                    "a policy instance needs policy_backend='host' (the "
                    "firmware backend implements the shadow stack itself)"
                )
            if firmware_image is None:
                firmware_image = shadow_stack_firmware(
                    firmware_variant, FirmwareLayout(soc.addresses)
                ).data
            soc.load_firmware(firmware_image)
    else:
        # A prebuilt SoC arrives with its mailbox agent already set up;
        # the policy arguments must agree with it, not be ignored.
        mounted = getattr(soc, "policy_host", None) is not None
        if policy is not None:
            raise ConfigError(
                "pass a pre-built soc with its policy host already "
                "mounted (repro.policyhost.mount_policy_host), not a "
                "policy instance"
            )
        if (policy_backend == POLICY_BACKEND_HOST) != mounted:
            raise ConfigError(
                f"policy_backend={policy_backend!r} but the pre-built soc "
                f"{'has' if mounted else 'has no'} policy host mounted"
            )
    if fault_plan is not None:
        from repro.faults.inject import attach_faults

        attach_faults(soc, fault_plan)
    soc.load_host_program(program)

    simulator = SystemSimulator(soc, mode=sim_mode)
    report = simulator.run(max_cycles=max_cycles)
    gadget_executed = soc.cva6.regs.read(10) == GADGET_MARKER
    return AttackOutcome(
        detected=report.detected,
        violation=report.violation,
        gadget_executed=gadget_executed,
        report=report,
    )
