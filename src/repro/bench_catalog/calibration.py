"""Burst-parameter calibration for the synthetic traces.

We cannot have the authors' RTL commit traces; DESIGN.md §2 documents
the substitution: synthetic traces reproducing the published first-order
statistics exactly, with a two-parameter burst structure fitted against
the published **IRQ** slowdown only (queue depth 8, IRQ latency).  The
Polling and Optimized columns are then *predictions* of the fitted
trace — the harness reports them next to the paper's values, which is
the validation that the fitted arrival process, not per-column tuning,
explains the measurements.

Benchmarks whose published IRQ slowdown already agrees with the uniform
trace (the saturated and idle regimes) are not fitted at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench_catalog.catalog import ALL_BENCHMARKS, Benchmark
from repro.trace.generator import burst_trace, uniform_trace
from repro.trace.model import simulate_trace

#: Search grids for the two burst parameters.
_FRACTION_GRID = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
_GAP_GRID = [4, 8, 16, 24, 32, 48, 64, 96, 128]

#: A fit is attempted only when the uniform trace misses the published
#: IRQ value by more than this (percentage points).
_FIT_TOLERANCE = 1.5


@dataclass(frozen=True)
class CalibratedTrace:
    """Result of calibrating one benchmark.

    Attributes:
        benchmark: the catalog entry.
        burst_fraction / in_burst_gap: fitted parameters (0 / n/a for
            uniform traces).
        fitted: whether a burst fit was needed.
        irq_error: |model − paper| on the calibration column, in
            percentage points (``None`` if the paper shows "−").
    """

    benchmark: Benchmark
    burst_fraction: float
    in_burst_gap: int
    fitted: bool
    irq_error: Optional[float]

    def arrivals(self) -> List[int]:
        """Generate the calibrated arrival trace."""
        if self.burst_fraction == 0.0:
            return uniform_trace(self.benchmark.cycles, self.benchmark.cf_count)
        return burst_trace(
            self.benchmark.cycles,
            self.benchmark.cf_count,
            self.burst_fraction,
            self.in_burst_gap,
        )


def _model_slowdown(
    arrivals: Sequence[int], bench: Benchmark, latency: int, queue_depth: int
) -> float:
    return simulate_trace(
        arrivals, bench.cycles, latency, queue_depth=queue_depth
    ).slowdown_percent


def calibrate(
    bench: Benchmark,
    irq_latency: int = 267,
    queue_depth: int = 8,
) -> CalibratedTrace:
    """Fit burst parameters for one benchmark against its IRQ target."""
    target = bench.paper_irq if bench.paper_irq is not None else 0.0

    uniform = uniform_trace(bench.cycles, bench.cf_count)
    uniform_value = _model_slowdown(uniform, bench, irq_latency, queue_depth)
    uniform_error = abs(uniform_value - target)
    if uniform_error <= _FIT_TOLERANCE:
        return CalibratedTrace(bench, 0.0, 1, fitted=False, irq_error=uniform_error)

    best = (uniform_error, 0.0, 1)
    for fraction in _FRACTION_GRID:
        if fraction == 0.0:
            continue
        for gap in _GAP_GRID:
            arrivals = burst_trace(bench.cycles, bench.cf_count, fraction, gap)
            value = _model_slowdown(arrivals, bench, irq_latency, queue_depth)
            error = abs(value - target)
            if error < best[0]:
                best = (error, fraction, gap)
    error, fraction, gap = best
    return CalibratedTrace(
        bench,
        burst_fraction=fraction,
        in_burst_gap=gap,
        fitted=fraction > 0.0,
        irq_error=error,
    )


def calibrate_all(
    irq_latency: int = 267,
    queue_depth: int = 8,
    benchmarks: Optional[Sequence[Benchmark]] = None,
) -> Dict[str, CalibratedTrace]:
    """Calibrate every catalog benchmark; keyed by name."""
    chosen = benchmarks if benchmarks is not None else ALL_BENCHMARKS
    return {
        bench.name: calibrate(bench, irq_latency=irq_latency, queue_depth=queue_depth)
        for bench in chosen
    }
