"""Benchmark catalog: EmBench-IoT and RISC-V-Tests workload statistics.

Each entry carries the statistics the paper publishes for it (total
cycles and retired control-flow instruction count — Table III columns
2-3) plus the published slowdowns used as reproduction targets, and the
DExIE/FIXER comparison values of Table II.
"""

from repro.bench_catalog.catalog import (
    Benchmark,
    EMBENCH,
    RISCV_TESTS,
    ALL_BENCHMARKS,
    TABLE2_BENCHMARKS,
    benchmark,
)
from repro.bench_catalog.calibration import CalibratedTrace, calibrate, calibrate_all

__all__ = [
    "Benchmark",
    "EMBENCH",
    "RISCV_TESTS",
    "ALL_BENCHMARKS",
    "TABLE2_BENCHMARKS",
    "benchmark",
    "CalibratedTrace",
    "calibrate",
    "calibrate_all",
]
