"""The benchmark catalog (paper Tables II & III).

Workload statistics (cycles, CF count) come straight from Table III —
they are properties of the benchmarks on the reference SoC, published
by the authors, and serve as this reproduction's workload definitions.
Published slowdowns are kept as *targets* (``paper_*`` fields), never
fed into the model itself; the calibration fits burst parameters
against the IRQ column only and validates on the other two.

A ``None`` slowdown reproduces the paper's "−" (no measurable
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Benchmark:
    """One catalog entry.

    Attributes:
        name: benchmark name.
        suite: ``"embench"`` or ``"riscv-tests"``.
        cycles: unprotected runtime in cycles (Table III).
        cf_count: retired CFI-relevant instructions (Table III).
        paper_opt/paper_poll/paper_irq: published Table III slowdowns
            (queue depth 8), ``None`` for "−".
        table2: published Table II slowdowns (queue depth 1) as an
            ``(opt, poll, irq)`` tuple, or ``None`` if absent.
        dexie_slowdown: DExIE's published slowdown for Table II rows.
        fixer_slowdown: FIXER's published slowdown for Table II rows.
    """

    name: str
    suite: str
    cycles: int
    cf_count: int
    paper_opt: Optional[float] = None
    paper_poll: Optional[float] = None
    paper_irq: Optional[float] = None
    table2: Optional[Tuple[Optional[float], Optional[float], Optional[float]]] = None
    dexie_slowdown: Optional[float] = None
    fixer_slowdown: Optional[float] = None

    @property
    def mean_gap(self) -> float:
        """Average cycles between CF instructions."""
        return self.cycles / self.cf_count if self.cf_count else float("inf")


def _b(name, suite, cycles, cf, opt=None, poll=None, irq=None,
       table2=None, dexie=None, fixer=None) -> Benchmark:
    return Benchmark(
        name=name, suite=suite, cycles=int(cycles), cf_count=int(cf),
        paper_opt=opt, paper_poll=poll, paper_irq=irq,
        table2=table2, dexie_slowdown=dexie, fixer_slowdown=fixer,
    )


#: EmBench-IoT v1.0 rows of Table III (and Table II where applicable).
EMBENCH = [
    _b("aha-mont64", "embench", 2.51e6, 1.50e1,
       table2=(None, None, None), dexie=48),
    _b("crc32", "embench", 3.49e6, 1.50e1),
    _b("cubic", "embench", 1.10e6, 2.01e4, opt=46, poll=107, irq=390),
    _b("edn", "embench", 4.23e6, 3.67e2,
       table2=(1, 1, 2), dexie=47),
    _b("huffbench", "embench", 3.49e6, 2.28e3, opt=1, poll=3, irq=11),
    _b("matmult-int", "embench", 4.69e6, 2.05e2,
       table2=(None, None, 1), dexie=48),
    _b("minver", "embench", 4.75e5, 4.50e3, opt=None, poll=7, irq=153),
    _b("nbody", "embench", 1.21e5, 4.29e3, opt=163, poll=301, irq=849),
    _b("nettle-aes", "embench", 5.20e6, 7.95e2),
    _b("nettle-sha256", "embench", 4.73e6, 8.57e3, opt=1, poll=2, irq=11),
    _b("nsichneu", "embench", 5.24e6, 1.70e1),
    _b("picojpeg", "embench", 4.97e6, 2.14e4, opt=5, poll=15, irq=58),
    _b("qrduino", "embench", 4.61e6, 4.35e3),
    _b("sglib-combined", "embench", 3.67e6, 2.62e4, opt=9, poll=32, irq=142),
    _b("slre", "embench", 3.57e6, 6.69e4, opt=38, poll=110, irq=401),
    _b("st", "embench", 1.47e5, 2.31e2, opt=None, poll=None, irq=2),
    _b("statemate", "embench", 3.22e6, 2.75e4, opt=None, poll=None, irq=129),
    _b("ud", "embench", 1.87e6, 2.98e3,
       table2=(12, 18, 43), dexie=48),
    _b("wikisort", "embench", 4.38e5, 7.69e3, opt=94, poll=158, irq=418),
]

#: RISC-V-Tests rows of Table III (and Table II where applicable).
RISCV_TESTS = [
    _b("dhrystone", "riscv-tests", 4.57e5, 2.25e4, opt=260, poll=452, irq=1215,
       table2=(360, 553, 1318), fixer=2),
    _b("median", "riscv-tests", 2.53e4, 1.10e1,
       table2=(3, 5, 12), fixer=2),
    _b("memcpy", "riscv-tests", 1.20e5, 1.10e1),
    _b("mm", "riscv-tests", 1.41e6, 2.33e5, opt=1108, poll=1752, irq=4311),
    _b("mt-matmul", "riscv-tests", 5.76e4, 2.38e2, opt=11, poll=22, irq=65),
    _b("mt-memcpy", "riscv-tests", 4.08e5, 1.80e1),
    _b("mt-vvadd", "riscv-tests", 1.48e5, 3.30e1),
    _b("multiply", "riscv-tests", 3.72e4, 9.00e0,
       table2=(2, 3, 6), fixer=2),
    _b("pmp", "riscv-tests", 9.01e5, 5.90e1),
    _b("qsort", "riscv-tests", 2.68e5, 1.10e1,
       table2=(None, None, 1), fixer=2),
    _b("rsort", "riscv-tests", 3.32e5, 1.10e1,
       table2=(None, None, 1), fixer=2),
    _b("spmv", "riscv-tests", 1.67e5, 1.10e1),
    _b("towers", "riscv-tests", 2.01e4, 9.00e0),
]

ALL_BENCHMARKS = EMBENCH + RISCV_TESTS

#: Benchmarks appearing in Table II (queue depth 1 comparison).
TABLE2_BENCHMARKS = [b for b in ALL_BENCHMARKS if b.table2 is not None]

_BY_NAME: Dict[str, Benchmark] = {b.name: b for b in ALL_BENCHMARKS}


def benchmark(name: str) -> Benchmark:
    """Look up a catalog entry by name."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown benchmark {name!r}")
    return _BY_NAME[name]
