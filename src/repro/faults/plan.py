"""Fault plans: seed-deterministic, JSON-able fault schedules.

A :class:`FaultPlan` is a tuple of :class:`FaultEvent`\\ s, each naming a
fault *kind* and the event-occurrence index it fires at.  Transport
faults index the log writer's queue pops (the Nth CFI event leaving the
queue); monitor faults index the monitor's delivered checks (the Nth
doorbell the policy host services).  Indexing occurrences instead of
cycles is what makes faulted runs engine-invariant for free: all three
engines pop/service events at identical cycles, so the same occurrence
index fires at the same cycle everywhere.

Fault kinds
-----------

``doorbell-drop``
    The Nth popped event is lost in transit: the payload never reaches
    the mailbox and no doorbell rings.  (Modelled at the pop so the
    writer FSM never enters its WAIT state for an event nobody will
    service — a literal dropped doorbell with a delivered payload
    would deadlock the handshake, which the real SoC resolves with a
    watchdog we do not model.)
``doorbell-dup``
    The Nth popped event is delivered, then delivered *again* verbatim
    immediately after its verdict returns — a replayed doorbell.
``event-corrupt``
    The Nth popped event's target word is XORed with a non-zero mask
    before transmission (transport bit-flips).  Only ``target`` is
    corrupted so the encoding word — and hence the event's kind — stays
    valid.
``monitor-stall``
    The monitor's response to the Nth delivered check is delayed by
    ``param`` cycles (late wake / scheduling jitter inside the RoT).
``monitor-reset``
    The monitor's policy state is reset to its boot state immediately
    before servicing the Nth delivered check (mid-run RoT reset).

Named plans
-----------

:data:`FAULT_PLANS` registers named plan builders; :func:`build_plan`
derives every random choice from ``sha256("fault:{name}:{seed}")`` so a
campaign scenario's fault schedule is a pure function of its name and
derived seed.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.errors import FaultPlanError

FAULT_DOORBELL_DROP = "doorbell-drop"
FAULT_DOORBELL_DUP = "doorbell-dup"
FAULT_EVENT_CORRUPT = "event-corrupt"
FAULT_MONITOR_STALL = "monitor-stall"
FAULT_MONITOR_RESET = "monitor-reset"

#: Faults injected on the log-writer transport path (indexed by queue pop).
TRANSPORT_FAULTS = frozenset(
    {FAULT_DOORBELL_DROP, FAULT_DOORBELL_DUP, FAULT_EVENT_CORRUPT}
)
#: Faults injected into the monitor (indexed by delivered check).
MONITOR_FAULTS = frozenset({FAULT_MONITOR_STALL, FAULT_MONITOR_RESET})

ALL_FAULT_KINDS = TRANSPORT_FAULTS | MONITOR_FAULTS

_TARGET_MASK_BITS = (1 << 64) - 1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Args:
        kind: one of the five fault kind constants.
        index: 0-based event-occurrence index the fault first fires at.
        count: number of consecutive occurrences affected (a window).
        param: kind-specific parameter — the XOR mask for
            ``event-corrupt``, the stall in cycles for
            ``monitor-stall``; unused (0) otherwise.
    """

    kind: str
    index: int
    count: int = 1
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.index < 0:
            raise FaultPlanError(f"fault index must be >= 0, got {self.index}")
        if self.count < 1:
            raise FaultPlanError(f"fault count must be >= 1, got {self.count}")
        if self.kind == FAULT_EVENT_CORRUPT:
            if not 0 < self.param <= _TARGET_MASK_BITS:
                raise FaultPlanError(
                    "event-corrupt needs a non-zero 64-bit XOR mask, "
                    f"got {self.param:#x}"
                )
        elif self.kind == FAULT_MONITOR_STALL:
            if self.param < 1:
                raise FaultPlanError(
                    f"monitor-stall needs a positive cycle delay, got {self.param}"
                )
        elif self.param != 0:
            raise FaultPlanError(
                f"{self.kind} takes no parameter, got {self.param}"
            )

    def to_json(self) -> Dict[str, int | str]:
        return {
            "kind": self.kind,
            "index": self.index,
            "count": self.count,
            "param": self.param,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            return cls(
                kind=str(data["kind"]),
                index=int(data["index"]),  # type: ignore[arg-type]
                count=int(data.get("count", 1)),  # type: ignore[arg-type]
                param=int(data.get("param", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault event {data!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one simulation run."""

    events: Tuple[FaultEvent, ...] = ()
    note: str = ""

    @property
    def empty(self) -> bool:
        return not self.events

    @property
    def kinds(self) -> frozenset:
        return frozenset(event.kind for event in self.events)

    @property
    def needs_monitor(self) -> bool:
        """True when the plan injects monitor faults, which require a
        policy-host agent (the RV32 firmware is opaque to injection)."""
        return bool(self.kinds & MONITOR_FAULTS)

    @property
    def total_stall_cycles(self) -> int:
        """Upper bound on extra detection latency the plan's stalls can
        cause (each stalled check is delayed by ``param`` at most once)."""
        return sum(
            event.param * event.count
            for event in self.events
            if event.kind == FAULT_MONITOR_STALL
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "events": [event.to_json() for event in self.events],
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultPlan":
        events = data.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise FaultPlanError(f"fault plan events must be a list, got {events!r}")
        return cls(
            events=tuple(FaultEvent.from_json(e) for e in events),
            note=str(data.get("note", "")),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_json(data)


# -- named plan registry ---------------------------------------------------------


@dataclass(frozen=True)
class PlanSpec:
    """A registered named fault plan.

    Attributes:
        name: registry key (also the campaign scenario name part).
        builder: seeded builder returning the plan's events.
        needs_monitor: True when the plan contains monitor faults (so
            the campaign grid can skip firmware-agent cells up front).
        note: one-line description for reports.
    """

    name: str
    builder: Callable[[random.Random], Tuple[FaultEvent, ...]]
    needs_monitor: bool = False
    note: str = ""


def _plan_rng(name: str, seed: int) -> random.Random:
    digest = hashlib.sha256(f"fault:{name}:{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _corrupt_mask(rng: random.Random) -> int:
    # A non-zero 16-bit flip pattern somewhere in the low 48 bits —
    # always lands inside the DRAM-resident target addresses the
    # policies compare, so corruption is never a silent no-op mask.
    mask = rng.randrange(1, 1 << 16)
    return mask << rng.randrange(0, 33)


def _drop_first(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DROP, index=0),)


def _drop_window(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DROP, index=rng.randrange(1, 4), count=2),)


def _dup_first(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DUP, index=0),)


def _dup_window(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DUP, index=rng.randrange(1, 4), count=2),)


def _corrupt_target(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_EVENT_CORRUPT,
            index=rng.randrange(0, 3),
            param=_corrupt_mask(rng),
        ),
    )


def _stall_late(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_MONITOR_STALL,
            index=rng.randrange(0, 3),
            param=rng.randrange(120, 481),
        ),
    )


def _stall_burst(rng: random.Random) -> Tuple[FaultEvent, ...]:
    # Queue-overflow stress: stall six consecutive checks so the writer
    # outpaces the monitor and the CFI queue backs up.
    return (
        FaultEvent(
            FAULT_MONITOR_STALL,
            index=0,
            count=6,
            param=rng.randrange(200, 501),
        ),
    )


def _reset_early(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_MONITOR_RESET, index=rng.randrange(1, 4)),)


FAULT_PLANS: Dict[str, PlanSpec] = {
    spec.name: spec
    for spec in (
        PlanSpec("drop-first", _drop_first,
                 note="lose the very first CFI event in transit"),
        PlanSpec("drop-window", _drop_window,
                 note="lose two consecutive early events"),
        PlanSpec("dup-first", _dup_first,
                 note="replay the first event's doorbell"),
        PlanSpec("dup-window", _dup_window,
                 note="replay two consecutive early events"),
        PlanSpec("corrupt-target", _corrupt_target,
                 note="flip bits in an early event's target word"),
        PlanSpec("stall-late", _stall_late, needs_monitor=True,
                 note="delay one check's monitor response"),
        PlanSpec("stall-burst", _stall_burst, needs_monitor=True,
                 note="stall six consecutive checks (queue back-pressure)"),
        PlanSpec("reset-early", _reset_early, needs_monitor=True,
                 note="reset the monitor's policy state mid-run"),
    )
}


def build_plan(name: str, seed: int) -> FaultPlan:
    """Materialise the named plan for ``seed`` (pure and deterministic)."""
    try:
        spec = FAULT_PLANS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; known: {', '.join(sorted(FAULT_PLANS))}"
        ) from None
    events = spec.builder(_plan_rng(name, seed))
    return FaultPlan(events=events, note=spec.note)
