"""Fault plans: seed-deterministic, JSON-able fault schedules.

A :class:`FaultPlan` is a tuple of :class:`FaultEvent`\\ s, each naming a
fault *kind* and the event-occurrence index it fires at.  Transport
faults index the log writer's queue pops (the Nth CFI event leaving the
queue); monitor faults index the monitor's delivered checks (the Nth
doorbell the policy host services).  Indexing occurrences instead of
cycles is what makes faulted runs engine-invariant for free: all three
engines pop/service events at identical cycles, so the same occurrence
index fires at the same cycle everywhere.

Fault kinds
-----------

``doorbell-drop``
    The Nth popped event is lost in transit: the payload never reaches
    the mailbox and no doorbell rings.  (Modelled at the pop so the
    writer FSM never enters its WAIT state for an event nobody will
    service — a literal dropped doorbell with a delivered payload
    would deadlock the handshake, which the real SoC resolves with a
    watchdog we do not model.)
``doorbell-dup``
    The Nth popped event is delivered, then delivered *again* verbatim
    immediately after its verdict returns — a replayed doorbell.
``event-corrupt``
    The Nth popped event's target word is XORed with a non-zero mask
    before transmission (transport bit-flips).  Only ``target`` is
    corrupted so the encoding word — and hence the event's kind — stays
    valid.
``monitor-stall``
    The monitor's response to the Nth delivered check is delayed by
    ``param`` cycles (late wake / scheduling jitter inside the RoT).
``monitor-reset``
    The monitor's policy state is reset to its boot state immediately
    before servicing the Nth delivered check (mid-run RoT reset).

Adversarial kinds (compromised-hart model)
------------------------------------------

The three ``hart-*``/``doorbell-flood``/``arbiter-hold`` kinds model a
*compromised application hart* rather than a faulty transport; they
need a multi-hart topology (a lone hart has no peers to attack) and a
policy-host monitor to defend against them:

``hart-spoof``
    The Nth popped event's source-hart id (the spare payload byte) is
    rewritten to ``param`` before transmission — the compromised hart
    masquerades as a peer on the shared mailbox.
``doorbell-flood``
    Starting at the Nth popped event, the compromised hart's writer
    injects ``param`` fabricated control-flow events (forged returns)
    back-to-back, hammering the doorbell arbiter to crowd peers out of
    monitor bandwidth.
``arbiter-hold``
    After its Nth event's verdict returns, the compromised hart never
    releases its doorbell grant — it squats on the shared channel.

Hart scoping
------------

Every event optionally carries a ``hart`` scope naming the writer whose
event stream its index counts.  Single-hart plans may leave it ``None``
(the historic form); attaching an unscoped plan to a multi-hart SoC is
a :class:`repro.errors.FaultPlanError` (it would silently fault hart 0),
and a scope outside the topology raises
:class:`repro.errors.UnknownHartError`.  :meth:`FaultPlan.scoped`
rescopes a whole plan in one call.

Named plans
-----------

:data:`FAULT_PLANS` registers named plan builders; :func:`build_plan`
derives every random choice from ``sha256("fault:{name}:{seed}")`` so a
campaign scenario's fault schedule is a pure function of its name and
derived seed.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from repro.errors import FaultPlanError

FAULT_DOORBELL_DROP = "doorbell-drop"
FAULT_DOORBELL_DUP = "doorbell-dup"
FAULT_EVENT_CORRUPT = "event-corrupt"
FAULT_MONITOR_STALL = "monitor-stall"
FAULT_MONITOR_RESET = "monitor-reset"
FAULT_HART_SPOOF = "hart-spoof"
FAULT_DOORBELL_FLOOD = "doorbell-flood"
FAULT_ARBITER_HOLD = "arbiter-hold"

#: Faults injected on the log-writer transport path (indexed by queue pop).
TRANSPORT_FAULTS = frozenset(
    {FAULT_DOORBELL_DROP, FAULT_DOORBELL_DUP, FAULT_EVENT_CORRUPT}
)
#: Faults injected into the monitor (indexed by delivered check).
MONITOR_FAULTS = frozenset({FAULT_MONITOR_STALL, FAULT_MONITOR_RESET})
#: Compromised-hart kinds (indexed by the attacking writer's queue pops;
#: need a multi-hart topology and a policy-host monitor to defend).
ADVERSARIAL_FAULTS = frozenset(
    {FAULT_HART_SPOOF, FAULT_DOORBELL_FLOOD, FAULT_ARBITER_HOLD}
)

ALL_FAULT_KINDS = TRANSPORT_FAULTS | MONITOR_FAULTS | ADVERSARIAL_FAULTS

_TARGET_MASK_BITS = (1 << 64) - 1
_SPOOF_ID_MAX = 0xFF  # the source-hart id rides in one payload byte


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Args:
        kind: one of the fault kind constants.
        index: 0-based event-occurrence index the fault first fires at.
        count: number of consecutive occurrences affected (a window).
        param: kind-specific parameter — the XOR mask for
            ``event-corrupt``, the stall in cycles for
            ``monitor-stall``, the forged source-hart id for
            ``hart-spoof``, the burst length for ``doorbell-flood``;
            unused (0) otherwise.
        hart: the writer whose event stream ``index`` counts, or
            ``None`` for the historic single-hart (unscoped) form.
    """

    kind: str
    index: int
    count: int = 1
    param: int = 0
    hart: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.index < 0:
            raise FaultPlanError(f"fault index must be >= 0, got {self.index}")
        if self.count < 1:
            raise FaultPlanError(f"fault count must be >= 1, got {self.count}")
        if self.hart is not None and (type(self.hart) is not int or self.hart < 0):
            raise FaultPlanError(
                f"fault hart scope must be a hart id >= 0, got {self.hart!r}"
            )
        if self.kind == FAULT_EVENT_CORRUPT:
            if not 0 < self.param <= _TARGET_MASK_BITS:
                raise FaultPlanError(
                    "event-corrupt needs a non-zero 64-bit XOR mask, "
                    f"got {self.param:#x}"
                )
        elif self.kind == FAULT_MONITOR_STALL:
            if self.param < 1:
                raise FaultPlanError(
                    f"monitor-stall needs a positive cycle delay, got {self.param}"
                )
        elif self.kind == FAULT_HART_SPOOF:
            if not 0 <= self.param <= _SPOOF_ID_MAX:
                raise FaultPlanError(
                    f"hart-spoof needs a forged hart id in 0..{_SPOOF_ID_MAX}, "
                    f"got {self.param}"
                )
        elif self.kind == FAULT_DOORBELL_FLOOD:
            if self.param < 1:
                raise FaultPlanError(
                    f"doorbell-flood needs a positive burst length, got {self.param}"
                )
        elif self.param != 0:
            raise FaultPlanError(
                f"{self.kind} takes no parameter, got {self.param}"
            )

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "index": self.index,
            "count": self.count,
            "param": self.param,
        }
        if self.hart is not None:
            payload["hart"] = self.hart
        return payload

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultEvent":
        try:
            hart = data.get("hart")
            return cls(
                kind=str(data["kind"]),
                index=int(data["index"]),  # type: ignore[arg-type]
                count=int(data.get("count", 1)),  # type: ignore[arg-type]
                param=int(data.get("param", 0)),  # type: ignore[arg-type]
                hart=None if hart is None else int(hart),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault event {data!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one simulation run."""

    events: Tuple[FaultEvent, ...] = ()
    note: str = ""

    @property
    def empty(self) -> bool:
        return not self.events

    @property
    def kinds(self) -> frozenset:
        return frozenset(event.kind for event in self.events)

    @property
    def needs_monitor(self) -> bool:
        """True when the plan needs a policy-host agent — it injects
        monitor faults (the RV32 firmware is opaque to injection) or
        adversarial kinds (only the host mounts the quarantine
        defense)."""
        return bool(self.kinds & (MONITOR_FAULTS | ADVERSARIAL_FAULTS))

    @property
    def adversarial(self) -> bool:
        """True when the plan models a compromised hart (needs N > 1)."""
        return bool(self.kinds & ADVERSARIAL_FAULTS)

    @property
    def hart_scoped(self) -> bool:
        """True when every event names the writer it indexes."""
        return all(event.hart is not None for event in self.events)

    @property
    def harts(self) -> Tuple[int, ...]:
        """Scoped hart ids, ascending (unscoped events contribute none)."""
        return tuple(sorted(
            {event.hart for event in self.events if event.hart is not None}
        ))

    def scoped(self, hart: int) -> "FaultPlan":
        """A copy of the plan with every event scoped to ``hart``."""
        if type(hart) is not int or hart < 0:
            raise FaultPlanError(
                f"fault hart scope must be a hart id >= 0, got {hart!r}"
            )
        return FaultPlan(
            events=tuple(replace(event, hart=hart) for event in self.events),
            note=self.note,
        )

    def for_hart(self, hart: int) -> "FaultPlan":
        """The sub-plan of events scoped to ``hart`` (events left
        unscoped index hart 0's stream, the historic meaning)."""
        return FaultPlan(
            events=tuple(
                event for event in self.events
                if (0 if event.hart is None else event.hart) == hart
            ),
            note=self.note,
        )

    @property
    def total_stall_cycles(self) -> int:
        """Upper bound on extra detection latency the plan's stalls can
        cause (each stalled check is delayed by ``param`` at most once)."""
        return sum(
            event.param * event.count
            for event in self.events
            if event.kind == FAULT_MONITOR_STALL
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "events": [event.to_json() for event in self.events],
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultPlan":
        events = data.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise FaultPlanError(f"fault plan events must be a list, got {events!r}")
        return cls(
            events=tuple(FaultEvent.from_json(e) for e in events),
            note=str(data.get("note", "")),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_json(data)


# -- named plan registry ---------------------------------------------------------


@dataclass(frozen=True)
class PlanSpec:
    """A registered named fault plan.

    Attributes:
        name: registry key (also the campaign scenario name part).
        builder: seeded builder returning the plan's events.
        needs_monitor: True when the plan needs the policy-host agent
            (so the campaign grid can skip firmware-agent cells up
            front).
        note: one-line description for reports.
        adversarial: True for compromised-hart plans, which need a
            multi-hart cell with a hart-scoped attacker (the campaign
            grid keeps them out of single-hart fault sweeps).
    """

    name: str
    builder: Callable[[random.Random], Tuple[FaultEvent, ...]]
    needs_monitor: bool = False
    note: str = ""
    adversarial: bool = False


def _plan_rng(name: str, seed: int) -> random.Random:
    digest = hashlib.sha256(f"fault:{name}:{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _corrupt_mask(rng: random.Random) -> int:
    # A non-zero 16-bit flip pattern somewhere in the low 48 bits —
    # always lands inside the DRAM-resident target addresses the
    # policies compare, so corruption is never a silent no-op mask.
    mask = rng.randrange(1, 1 << 16)
    return mask << rng.randrange(0, 33)


def _drop_first(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DROP, index=0),)


def _drop_window(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DROP, index=rng.randrange(1, 4), count=2),)


def _dup_first(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DUP, index=0),)


def _dup_window(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_DOORBELL_DUP, index=rng.randrange(1, 4), count=2),)


def _corrupt_target(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_EVENT_CORRUPT,
            index=rng.randrange(0, 3),
            param=_corrupt_mask(rng),
        ),
    )


def _stall_late(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_MONITOR_STALL,
            index=rng.randrange(0, 3),
            param=rng.randrange(120, 481),
        ),
    )


def _stall_burst(rng: random.Random) -> Tuple[FaultEvent, ...]:
    # Queue-overflow stress: stall six consecutive checks so the writer
    # outpaces the monitor and the CFI queue backs up.
    return (
        FaultEvent(
            FAULT_MONITOR_STALL,
            index=0,
            count=6,
            param=rng.randrange(200, 501),
        ),
    )


def _reset_early(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (FaultEvent(FAULT_MONITOR_RESET, index=rng.randrange(1, 4)),)


#: Adversarial plans fire late (the compromised hart behaves for its
#: first ~20 events) so every benign peer's *first* detection completes
#: on the shared, still-identical timeline — that is what lets the
#: per-hart contract demand bit-identical benign verdicts and latencies
#: against the adversary-free baseline.
_ADVERSARIAL_ONSET = (20, 25)


def _xhart_spoof(rng: random.Random) -> Tuple[FaultEvent, ...]:
    # Masquerade as hart 0: the forged id differs from any attacker the
    # campaign places on harts >= 1, so the monitor's owner/tag
    # inconsistency check always has something to see.
    return (
        FaultEvent(
            FAULT_HART_SPOOF,
            index=rng.randrange(*_ADVERSARIAL_ONSET),
            param=0,
        ),
    )


def _xhart_flood(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_DOORBELL_FLOOD,
            index=rng.randrange(*_ADVERSARIAL_ONSET),
            param=rng.randrange(4, 9),
        ),
    )


def _xhart_hold(rng: random.Random) -> Tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FAULT_ARBITER_HOLD,
            index=rng.randrange(*_ADVERSARIAL_ONSET),
        ),
    )


FAULT_PLANS: Dict[str, PlanSpec] = {
    spec.name: spec
    for spec in (
        PlanSpec("drop-first", _drop_first,
                 note="lose the very first CFI event in transit"),
        PlanSpec("drop-window", _drop_window,
                 note="lose two consecutive early events"),
        PlanSpec("dup-first", _dup_first,
                 note="replay the first event's doorbell"),
        PlanSpec("dup-window", _dup_window,
                 note="replay two consecutive early events"),
        PlanSpec("corrupt-target", _corrupt_target,
                 note="flip bits in an early event's target word"),
        PlanSpec("stall-late", _stall_late, needs_monitor=True,
                 note="delay one check's monitor response"),
        PlanSpec("stall-burst", _stall_burst, needs_monitor=True,
                 note="stall six consecutive checks (queue back-pressure)"),
        PlanSpec("reset-early", _reset_early, needs_monitor=True,
                 note="reset the monitor's policy state mid-run"),
        PlanSpec("xhart-spoof", _xhart_spoof, needs_monitor=True,
                 adversarial=True,
                 note="compromised hart forges its source-hart id"),
        PlanSpec("xhart-flood", _xhart_flood, needs_monitor=True,
                 adversarial=True,
                 note="compromised hart floods the doorbell with "
                      "fabricated events"),
        PlanSpec("xhart-hold", _xhart_hold, needs_monitor=True,
                 adversarial=True,
                 note="compromised hart never releases its doorbell grant"),
    )
}


def build_plan(name: str, seed: int) -> FaultPlan:
    """Materialise the named plan for ``seed`` (pure and deterministic)."""
    try:
        spec = FAULT_PLANS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; known: {', '.join(sorted(FAULT_PLANS))}"
        ) from None
    events = spec.builder(_plan_rng(name, seed))
    return FaultPlan(events=events, note=spec.note)
