"""Per-policy degradation contracts under injected faults.

The SoK: Runtime Integrity taxonomy treats *degraded-monitor* behaviour
as a security property in its own right: a monitor that silently
changes its verdict under a transport glitch is worse than one that
documents the miss.  Each campaign fault scenario is labelled with the
observed degradation relative to its fault-free baseline run, and the
label is checked against the set the policy's contract allows for the
injected fault kinds:

``detect``
    The attack is still detected, no later than the fault-free run
    (modulo transport-latency jitter).
``detect-late``
    Still detected, but the injected monitor stalls delayed detection —
    bounded by the plan's total injected stall cycles.
``fail-safe``
    The fault itself surfaced as a violation verdict (e.g. a reset
    policy underflows, a corrupted benign target mismatches) — the
    monitor fails closed, never open.
``documented-miss``
    The fault suppressed detection — allowed only where the fault
    family genuinely defeats the policy's mechanism (e.g. the violating
    event itself was dropped in transit), and always recorded.
``transparent``
    A benign run stayed benign: the fault was absorbed.
``fail-safe-quarantine``
    The monitor's defense layer identified a *compromised hart*
    (spoofed source id, doorbell flood, held arbiter grant) and
    quarantined it off the shared channel — the adversarial analogue of
    failing closed.

Adversarial plans additionally carry a **per-hart** contract
(:func:`evaluate_hart_contract`): the attacking hart must end the run
quarantined, while every benign peer's verdict *and* detection latency
must be bit-identical to the adversary-free baseline — degradation may
never leak across harts.

The contract is keyed on the policy's ``monitor_state`` class attribute
("stateful" / "stateless", see :mod:`repro.firmware.policies`) rather
than policy names, so new policies get contracts by construction.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.faults.plan import (
    ADVERSARIAL_FAULTS,
    FAULT_ARBITER_HOLD,
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_DOORBELL_FLOOD,
    FAULT_EVENT_CORRUPT,
    FAULT_HART_SPOOF,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FaultPlan,
)

DEGRADATION_DETECT = "detect"
DEGRADATION_DETECT_LATE = "detect-late"
DEGRADATION_FAIL_SAFE = "fail-safe"
DEGRADATION_MISS = "documented-miss"
DEGRADATION_TRANSPARENT = "transparent"
DEGRADATION_QUARANTINE = "fail-safe-quarantine"

#: Roles for the per-hart adversarial contract.
ROLE_ATTACKER = "attacker"
ROLE_BENIGN = "benign"

#: Adversarial kinds' allowed labels are role-agnostic at the *run*
#: level (the per-hart contract below is the strong check): the defense
#: may quarantine the compromised hart, and the run's attack verdict
#: must be unchanged relative to the adversary-free baseline.
_ADVERSARIAL_ALLOWED = frozenset(
    {DEGRADATION_DETECT, DEGRADATION_QUARANTINE, DEGRADATION_FAIL_SAFE,
     DEGRADATION_TRANSPARENT}
)

#: Allowed degradation labels per (monitor_state, fault kind).
_ALLOWED = {
    # A stall delays the response but never changes any verdict: the
    # same events reach the same policy state.  This is the contract's
    # teeth — a stall that *flips* a verdict is a contract violation.
    ("stateless", FAULT_MONITOR_STALL): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_DETECT_LATE, DEGRADATION_TRANSPARENT}
    ),
    ("stateful", FAULT_MONITOR_STALL): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_DETECT_LATE, DEGRADATION_TRANSPARENT}
    ),
    # A reset cannot affect a stateless policy at all; a stateful one
    # may miss (lost shadow state) or fail safe (e.g. later underflow).
    ("stateless", FAULT_MONITOR_RESET): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_TRANSPARENT}
    ),
    ("stateful", FAULT_MONITOR_RESET): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_FAIL_SAFE, DEGRADATION_MISS,
         DEGRADATION_TRANSPARENT}
    ),
    # Dropping the violating event defeats any event-driven monitor —
    # a documented miss; dropping a call desynchronises stateful ones.
    ("stateless", FAULT_DOORBELL_DROP): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_MISS, DEGRADATION_TRANSPARENT}
    ),
    ("stateful", FAULT_DOORBELL_DROP): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_FAIL_SAFE, DEGRADATION_MISS,
         DEGRADATION_TRANSPARENT}
    ),
    # A replayed event is idempotent for stateless policies; a stateful
    # one may double-push/double-pop and fail closed — never open.
    ("stateless", FAULT_DOORBELL_DUP): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_TRANSPARENT}
    ),
    ("stateful", FAULT_DOORBELL_DUP): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_FAIL_SAFE, DEGRADATION_TRANSPARENT}
    ),
    # Corruption can mask a bad target (miss) or damage a good one
    # (fail-safe) for either class.
    ("stateless", FAULT_EVENT_CORRUPT): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_MISS, DEGRADATION_FAIL_SAFE,
         DEGRADATION_TRANSPARENT}
    ),
    ("stateful", FAULT_EVENT_CORRUPT): frozenset(
        {DEGRADATION_DETECT, DEGRADATION_MISS, DEGRADATION_FAIL_SAFE,
         DEGRADATION_TRANSPARENT}
    ),
    # Compromised-hart kinds: the defense fails closed (quarantine);
    # spoofed/forged events may also surface as plain violations.
    ("stateless", FAULT_HART_SPOOF): _ADVERSARIAL_ALLOWED,
    ("stateful", FAULT_HART_SPOOF): _ADVERSARIAL_ALLOWED,
    ("stateless", FAULT_DOORBELL_FLOOD): _ADVERSARIAL_ALLOWED,
    ("stateful", FAULT_DOORBELL_FLOOD): _ADVERSARIAL_ALLOWED,
    ("stateless", FAULT_ARBITER_HOLD): _ADVERSARIAL_ALLOWED,
    ("stateful", FAULT_ARBITER_HOLD): _ADVERSARIAL_ALLOWED,
}


def allowed_degradations(monitor_state: str, plan: FaultPlan) -> FrozenSet[str]:
    """Union of the allowed labels over every fault kind in ``plan``."""
    allowed: FrozenSet[str] = frozenset()
    for kind in plan.kinds:
        allowed |= _ALLOWED[(monitor_state, kind)]
    return allowed or frozenset({DEGRADATION_TRANSPARENT, DEGRADATION_DETECT})


def classify_degradation(
    plan: FaultPlan,
    baseline_detected: bool,
    detected: bool,
    baseline_latency: Optional[int],
    latency: Optional[int],
) -> str:
    """Label the faulted run relative to its fault-free baseline."""
    if detected and baseline_detected:
        if (
            plan.total_stall_cycles
            and baseline_latency is not None
            and latency is not None
            and latency > baseline_latency
        ):
            return DEGRADATION_DETECT_LATE
        return DEGRADATION_DETECT
    if detected and not baseline_detected:
        return DEGRADATION_FAIL_SAFE
    if baseline_detected and not detected:
        return DEGRADATION_MISS
    return DEGRADATION_TRANSPARENT


def evaluate_contract(
    monitor_state: str,
    plan: FaultPlan,
    baseline_detected: bool,
    detected: bool,
    baseline_latency: Optional[int] = None,
    latency: Optional[int] = None,
) -> Tuple[str, bool]:
    """Classify the degradation and check it against the contract.

    Returns ``(label, ok)``; ``ok`` is False when the observed label is
    outside the contract for the plan's fault kinds, or when a
    ``detect-late`` overshoots the plan's total injected stall cycles.
    """
    label = classify_degradation(
        plan, baseline_detected, detected, baseline_latency, latency
    )
    ok = label in allowed_degradations(monitor_state, plan)
    if (
        ok
        and label == DEGRADATION_DETECT_LATE
        and baseline_latency is not None
        and latency is not None
        and latency > baseline_latency + plan.total_stall_cycles
    ):
        ok = False
    return label, ok


#: Benign-peer fields that must match the adversary-free baseline
#: bit-for-bit: the verdict, its kind, and the detection latency.
_BENIGN_IDENTITY_FIELDS = ("detected", "violation_kind", "detection_latency")


def evaluate_hart_contract(
    plan: FaultPlan,
    role: str,
    baseline_row: dict,
    row: dict,
    quarantined: bool,
) -> Tuple[str, bool]:
    """Per-hart degradation contract for an adversarial run.

    Args:
        plan: the (hart-scoped) adversarial fault plan of the run.
        role: :data:`ROLE_ATTACKER` for the hart the plan compromises,
            :data:`ROLE_BENIGN` for every peer.
        baseline_row: the hart's per-hart report row from the
            adversary-free baseline run (same seed, same topology).
        row: the hart's per-hart report row from the adversarial run.
        quarantined: whether the monitor ended the run with this hart
            quarantined.

    Returns ``(label, ok)``:

    * **attacker** — ``ok`` iff the defense quarantined it (label
      ``fail-safe-quarantine``); an un-quarantined attacker is a
      ``documented-miss`` contract violation.  A benign hart must
      *never* be quarantined.
    * **benign** — ``ok`` iff ``detected``, ``violation_kind`` and
      ``detection_latency`` are bit-identical to the baseline row *and*
      the hart is not quarantined: degradation must not leak across
      harts.
    """
    if not plan.kinds & ADVERSARIAL_FAULTS:
        raise ValueError(
            "evaluate_hart_contract applies to adversarial plans only; "
            f"got kinds {sorted(plan.kinds)}"
        )
    if role == ROLE_ATTACKER:
        if quarantined:
            return DEGRADATION_QUARANTINE, True
        return DEGRADATION_MISS, False
    if role != ROLE_BENIGN:
        raise ValueError(f"unknown hart role {role!r}")
    identical = all(
        baseline_row.get(field) == row.get(field)
        for field in _BENIGN_IDENTITY_FIELDS
    )
    ok = identical and not quarantined
    if not ok:
        # Perturbed peer: name the damage relative to its baseline.
        label = classify_degradation(
            plan,
            bool(baseline_row.get("detected")),
            bool(row.get("detected")),
            baseline_row.get("detection_latency"),
            row.get("detection_latency"),
        )
        if quarantined:
            label = DEGRADATION_QUARANTINE
        return label, False
    label = (
        DEGRADATION_DETECT if row.get("detected") else DEGRADATION_TRANSPARENT
    )
    return label, True
