"""Fault-aware verdict oracle.

Extends the scenario-synthesis idea — predict the expected verdict
*without running the co-simulation* — to faulted runs: given the
fault-free commit-log stream a victim produces (captured once on a bare
hart, see :func:`repro.campaign.runner.capture_commit_logs`), the
oracle applies the fault plan's transport model to derive the stream
the monitor actually sees, then replays that stream through a fresh
policy instance with monitor resets applied at their delivered-check
indices.  The first violating check wins, mirroring the log writer.

The transport replay reuses :class:`repro.faults.inject.FaultController`
itself — the oracle and the simulator consult the *same* expanded plan
tables, so they cannot drift apart.

Monitor stalls are deliberately ignored for verdicts: a stall delays a
response but delivers the same events to the same policy state, so it
cannot change what is detected — that invariant is enforced separately
by the degradation contract (:mod:`repro.faults.contract`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.commit_log import CommitLog
from repro.faults.inject import FaultController
from repro.faults.plan import (
    ADVERSARIAL_FAULTS,
    FAULT_DOORBELL_FLOOD,
    FAULT_HART_SPOOF,
    FaultPlan,
)
from repro.firmware.policies import CheckResult, Policy


@dataclass(frozen=True)
class FaultPrediction:
    """Oracle verdict for one faulted run.

    Attributes:
        detected: whether any delivered check must return VIOLATION.
        violation_kind: the violating event's kind value, or ``None``.
        checks_until_detection: 1-based delivered-check count at the
            first violation, or ``None``.
        delivered_checks: total checks the monitor sees (after drops
            and duplicates) when no violation stops the run early.
    """

    detected: bool
    violation_kind: Optional[str] = None
    checks_until_detection: Optional[int] = None
    delivered_checks: int = 0


def delivered_stream(
    logs: Sequence[CommitLog], plan: FaultPlan
) -> List[CommitLog]:
    """The commit-log stream the monitor sees under ``plan``'s
    transport faults (drops removed, corruption applied, duplicates
    delivered back-to-back — the writer FSM is strictly serial)."""
    controller = FaultController(plan)
    delivered: List[CommitLog] = []
    for n, log in enumerate(logs):
        drop, dup, mask = controller.transport_actions(n)
        if drop:
            continue
        if mask:
            log = replace(log, target=(log.target ^ mask) & ((1 << 64) - 1))
        delivered.append(log)
        if dup:
            delivered.append(log)
    return delivered


def predict_verdict(
    logs: Sequence[CommitLog], plan: FaultPlan, policy: Policy
) -> FaultPrediction:
    """Replay the faulted stream through a *fresh* ``policy`` instance.

    The caller provides the policy exactly as the monitor would be
    provisioned for the run (same label sets, same configuration);
    the oracle consumes its state, so never pass a live monitor.
    """
    controller = FaultController(plan)
    stream = delivered_stream(logs, plan)
    for i, log in enumerate(stream):
        if controller.reset_before(i):
            reset = getattr(policy, "reset", None)
            if reset is not None:
                reset()
        if policy.check(log) is CheckResult.VIOLATION:
            return FaultPrediction(
                detected=True,
                violation_kind=log.kind.value,
                checks_until_detection=i + 1,
                delivered_checks=i + 1,
            )
    return FaultPrediction(detected=False, delivered_checks=len(stream))


def predict_adversarial(plan: FaultPlan, baseline_detected: bool) -> bool:
    """Expected ``detected`` flag for the *attacking* hart of an
    adversarial plan (a static expectation, no replay needed).

    A spoofed source id is caught by the monitor's owner/tag
    inconsistency check, and a flood's fabricated forged-return events
    always violate any return-checking policy — both surface as
    detections against the compromised hart.  An ``arbiter-hold``
    fabricates no event: the watchdog quarantines the squatter, but the
    hart's own (possibly benign) stream keeps its baseline verdict.
    """
    if not plan.kinds & ADVERSARIAL_FAULTS:
        raise ValueError(
            "predict_adversarial applies to adversarial plans only; "
            f"got kinds {sorted(plan.kinds)}"
        )
    if plan.kinds & {FAULT_HART_SPOOF, FAULT_DOORBELL_FLOOD}:
        return True
    return baseline_detected
