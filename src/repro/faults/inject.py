"""Fault controller: runtime state machine driving a :class:`FaultPlan`.

One :class:`FaultController` is attached per simulation run via
:func:`attach_faults`; the log writer consults it at every queue pop
(transport faults) and the policy host at every delivered check
(monitor faults).  The controller is pure bookkeeping — it never ticks,
owns no clock, and with an empty plan every query returns the identity
answer, so attaching an empty controller is cycle-invisible.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import FaultPlanError
from repro.faults.plan import (
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_EVENT_CORRUPT,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FaultPlan,
)


class FaultController:
    """Expanded, queryable view of a fault plan.

    Count windows are expanded into per-occurrence lookup tables at
    construction, so the hot-path queries are set/dict membership tests.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._drop: Set[int] = set()
        self._dup: Set[int] = set()
        self._corrupt: Dict[int, int] = {}
        self._stall: Dict[int, int] = {}
        self._reset: Set[int] = set()
        for event in plan.events:
            indices = range(event.index, event.index + event.count)
            if event.kind == FAULT_DOORBELL_DROP:
                self._drop.update(indices)
            elif event.kind == FAULT_DOORBELL_DUP:
                self._dup.update(indices)
            elif event.kind == FAULT_EVENT_CORRUPT:
                for i in indices:
                    self._corrupt[i] = event.param
            elif event.kind == FAULT_MONITOR_STALL:
                for i in indices:
                    self._stall[i] = event.param
            elif event.kind == FAULT_MONITOR_RESET:
                self._reset.update(indices)
        #: Scheduled occurrence slots per family (for armed-vs-fired stats).
        self.armed = {
            FAULT_DOORBELL_DROP: len(self._drop),
            FAULT_DOORBELL_DUP: len(self._dup),
            FAULT_EVENT_CORRUPT: len(self._corrupt),
            FAULT_MONITOR_STALL: len(self._stall),
            FAULT_MONITOR_RESET: len(self._reset),
        }
        self.fired = {kind: 0 for kind in self.armed}
        self.doorbells_observed = 0
        self.completions_observed = 0
        self.stall_cycles_injected = 0

    # -- transport path (log writer, indexed by queue pop) -----------------------

    def transport_actions(self, n: int) -> Tuple[bool, bool, int]:
        """Faults applying to the ``n``-th popped event.

        Returns ``(drop, dup, corrupt_mask)``; ``corrupt_mask`` is 0
        when the event's target is delivered intact.  Drop wins over
        dup/corrupt when a window schedules several kinds on one index.
        """
        drop = n in self._drop
        if drop:
            self.fired[FAULT_DOORBELL_DROP] += 1
            return True, False, 0
        dup = n in self._dup
        if dup:
            self.fired[FAULT_DOORBELL_DUP] += 1
        mask = self._corrupt.get(n, 0)
        if mask:
            self.fired[FAULT_EVENT_CORRUPT] += 1
        return False, dup, mask

    # -- monitor path (policy host, indexed by delivered check) ------------------

    def stall_cycles(self, n: int) -> int:
        """Extra response delay for the ``n``-th delivered check."""
        cycles = self._stall.get(n, 0)
        if cycles:
            self.fired[FAULT_MONITOR_STALL] += 1
            self.stall_cycles_injected += cycles
        return cycles

    def reset_before(self, n: int) -> bool:
        """True when the monitor must reset before servicing check ``n``."""
        if n in self._reset:
            self.fired[FAULT_MONITOR_RESET] += 1
            return True
        return False

    # -- mailbox observability wires ---------------------------------------------

    def note_doorbell(self) -> None:
        self.doorbells_observed += 1

    def note_completion(self) -> None:
        self.completions_observed += 1

    # -- reporting ----------------------------------------------------------------

    def stats_summary(self) -> Dict[str, object]:
        """JSON-able per-run fault statistics."""
        return {
            "armed": {k: v for k, v in self.armed.items() if v},
            "fired": {k: v for k, v in self.fired.items() if v},
            "doorbells_observed": self.doorbells_observed,
            "completions_observed": self.completions_observed,
            "stall_cycles_injected": self.stall_cycles_injected,
        }


def attach_faults(soc, plan: Optional[FaultPlan]):
    """Wire a fault controller into a built SoC.

    Hooks the log writer (transport faults), the CFI mailbox
    (doorbell/completion observability), and the policy host (monitor
    faults) when one is mounted.  Monitor faults require a policy-host
    agent — the RV32 firmware is an opaque binary we cannot inject
    into — so attaching a monitor plan to a firmware-agent SoC raises
    :class:`~repro.errors.FaultPlanError`.

    Returns the attached :class:`FaultController` (or ``None`` when
    ``plan`` is ``None``).
    """
    if plan is None:
        return None
    if soc.cfi_stage is None:
        raise FaultPlanError("cannot attach faults to a SoC without a CFI stage")
    if plan.needs_monitor and soc.policy_host is None:
        raise FaultPlanError(
            "monitor faults (stall/reset) require a policy-host agent; "
            "the RV32 firmware monitor cannot be injected into"
        )
    controller = FaultController(plan)
    soc.cfi_stage.writer.faults = controller
    soc.cfi_mailbox.faults = controller
    if soc.policy_host is not None:
        soc.policy_host.faults = controller
    soc.faults = controller
    return controller
