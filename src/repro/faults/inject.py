"""Fault controller: runtime state machine driving a :class:`FaultPlan`.

One :class:`FaultController` is attached per simulation run via
:func:`attach_faults`; the log writer consults it at every queue pop
(transport + adversarial faults) and the policy host at every delivered
check (monitor faults).  The controller is pure bookkeeping — it never
ticks, owns no clock, and with an empty plan every query returns the
identity answer, so attaching an empty controller is cycle-invisible.

On a multi-hart SoC :func:`attach_faults` instead builds a
:class:`FaultDirectory`: one controller per scoped hart, each wired to
that hart's own log writer, with merged statistics.  Plans attached to
an N > 1 topology **must** be hart-scoped — an unscoped plan would
silently fault hart 0 — and every scope must name an instantiated hart.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import FaultPlanError, UnknownHartError
from repro.faults.plan import (
    FAULT_ARBITER_HOLD,
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_DOORBELL_FLOOD,
    FAULT_EVENT_CORRUPT,
    FAULT_HART_SPOOF,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FaultPlan,
)


class FaultController:
    """Expanded, queryable view of a fault plan.

    Count windows are expanded into per-occurrence lookup tables at
    construction, so the hot-path queries are set/dict membership tests.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._drop: Set[int] = set()
        self._dup: Set[int] = set()
        self._corrupt: Dict[int, int] = {}
        self._stall: Dict[int, int] = {}
        self._reset: Set[int] = set()
        self._spoof: Dict[int, int] = {}
        self._flood: Dict[int, int] = {}
        self._hold: Set[int] = set()
        for event in plan.events:
            indices = range(event.index, event.index + event.count)
            if event.kind == FAULT_DOORBELL_DROP:
                self._drop.update(indices)
            elif event.kind == FAULT_DOORBELL_DUP:
                self._dup.update(indices)
            elif event.kind == FAULT_EVENT_CORRUPT:
                for i in indices:
                    self._corrupt[i] = event.param
            elif event.kind == FAULT_MONITOR_STALL:
                for i in indices:
                    self._stall[i] = event.param
            elif event.kind == FAULT_MONITOR_RESET:
                self._reset.update(indices)
            elif event.kind == FAULT_HART_SPOOF:
                for i in indices:
                    self._spoof[i] = event.param
            elif event.kind == FAULT_DOORBELL_FLOOD:
                for i in indices:
                    self._flood[i] = event.param
            elif event.kind == FAULT_ARBITER_HOLD:
                self._hold.update(indices)
        #: Scheduled occurrence slots per family (for armed-vs-fired stats).
        self.armed = {
            FAULT_DOORBELL_DROP: len(self._drop),
            FAULT_DOORBELL_DUP: len(self._dup),
            FAULT_EVENT_CORRUPT: len(self._corrupt),
            FAULT_MONITOR_STALL: len(self._stall),
            FAULT_MONITOR_RESET: len(self._reset),
            FAULT_HART_SPOOF: len(self._spoof),
            FAULT_DOORBELL_FLOOD: len(self._flood),
            FAULT_ARBITER_HOLD: len(self._hold),
        }
        self.fired = {kind: 0 for kind in self.armed}
        self.doorbells_observed = 0
        self.completions_observed = 0
        self.stall_cycles_injected = 0

    # -- transport path (log writer, indexed by queue pop) -----------------------

    def transport_actions(self, n: int) -> Tuple[bool, bool, int]:
        """Faults applying to the ``n``-th popped event.

        Returns ``(drop, dup, corrupt_mask)``; ``corrupt_mask`` is 0
        when the event's target is delivered intact.  Drop wins over
        dup/corrupt when a window schedules several kinds on one index.
        """
        drop = n in self._drop
        if drop:
            self.fired[FAULT_DOORBELL_DROP] += 1
            return True, False, 0
        dup = n in self._dup
        if dup:
            self.fired[FAULT_DOORBELL_DUP] += 1
        mask = self._corrupt.get(n, 0)
        if mask:
            self.fired[FAULT_EVENT_CORRUPT] += 1
        return False, dup, mask

    def adversarial_actions(self, n: int) -> Tuple[Optional[int], int, bool]:
        """Compromised-hart actions for the ``n``-th popped event.

        Returns ``(spoof_id, flood_burst, hold)``: a forged source-hart
        id (``None`` when the tag is honest), the number of fabricated
        events to inject after this one's verdict, and whether to squat
        on the doorbell grant after this event.  All identity for a
        plan without adversarial kinds.
        """
        spoof = self._spoof.get(n)
        if spoof is not None:
            self.fired[FAULT_HART_SPOOF] += 1
        flood = self._flood.get(n, 0)
        if flood:
            self.fired[FAULT_DOORBELL_FLOOD] += 1
        hold = n in self._hold
        if hold:
            self.fired[FAULT_ARBITER_HOLD] += 1
        return spoof, flood, hold

    def controller(self, hart: int) -> "Optional[FaultController]":
        """The controller handling ``hart``'s event stream.

        The single-controller form serves every hart (its plan is
        unscoped / single-hart); :class:`FaultDirectory` overrides this
        with a real per-hart lookup, giving the policy host one uniform
        accessor.
        """
        return self

    # -- monitor path (policy host, indexed by delivered check) ------------------

    def stall_cycles(self, n: int) -> int:
        """Extra response delay for the ``n``-th delivered check."""
        cycles = self._stall.get(n, 0)
        if cycles:
            self.fired[FAULT_MONITOR_STALL] += 1
            self.stall_cycles_injected += cycles
        return cycles

    def reset_before(self, n: int) -> bool:
        """True when the monitor must reset before servicing check ``n``."""
        if n in self._reset:
            self.fired[FAULT_MONITOR_RESET] += 1
            return True
        return False

    # -- mailbox observability wires ---------------------------------------------

    def note_doorbell(self) -> None:
        self.doorbells_observed += 1

    def note_completion(self) -> None:
        self.completions_observed += 1

    # -- reporting ----------------------------------------------------------------

    def stats_summary(self) -> Dict[str, object]:
        """JSON-able per-run fault statistics."""
        return {
            "armed": {k: v for k, v in self.armed.items() if v},
            "fired": {k: v for k, v in self.fired.items() if v},
            "doorbells_observed": self.doorbells_observed,
            "completions_observed": self.completions_observed,
            "stall_cycles_injected": self.stall_cycles_injected,
        }


class FaultDirectory:
    """Per-hart fault controllers for a multi-hart SoC.

    One :class:`FaultController` per scoped hart, each built from
    :meth:`FaultPlan.for_hart` and wired to that hart's own log writer,
    so each hart's fault indices count *its* event stream.  The
    directory itself takes the SoC-level hooks (mailbox observability
    wires, policy-host accessor, merged statistics).
    """

    def __init__(self, plan: FaultPlan, n_harts: int):
        self.plan = plan
        self.n_harts = n_harts
        self.controllers: Dict[int, FaultController] = {
            hart: FaultController(plan.for_hart(hart)) for hart in plan.harts
        }
        self.doorbells_observed = 0
        self.completions_observed = 0

    def controller(self, hart: int) -> Optional[FaultController]:
        """The controller scoped to ``hart``, or ``None`` (no faults)."""
        return self.controllers.get(hart)

    # -- mailbox observability wires (SoC-level, not per-hart) -------------------

    def note_doorbell(self) -> None:
        self.doorbells_observed += 1

    def note_completion(self) -> None:
        self.completions_observed += 1

    # -- reporting ----------------------------------------------------------------

    @property
    def stall_cycles_injected(self) -> int:
        return sum(c.stall_cycles_injected for c in self.controllers.values())

    def stats_summary(self) -> Dict[str, object]:
        """Merged per-run fault statistics with a per-hart breakdown."""
        armed: Dict[str, int] = {}
        fired: Dict[str, int] = {}
        for ctrl in self.controllers.values():
            for kind, v in ctrl.armed.items():
                if v:
                    armed[kind] = armed.get(kind, 0) + v
            for kind, v in ctrl.fired.items():
                if v:
                    fired[kind] = fired.get(kind, 0) + v
        return {
            "armed": armed,
            "fired": fired,
            "doorbells_observed": self.doorbells_observed,
            "completions_observed": self.completions_observed,
            "stall_cycles_injected": self.stall_cycles_injected,
            "per_hart": {
                str(hart): ctrl.stats_summary()
                for hart, ctrl in sorted(self.controllers.items())
            },
        }


def attach_faults(soc, plan: Optional[FaultPlan]):
    """Wire a fault controller into a built SoC.

    Hooks the log writer (transport + adversarial faults), the CFI
    mailbox (doorbell/completion observability), and the policy host
    (monitor faults) when one is mounted.  Monitor and adversarial
    faults require a policy-host agent — the RV32 firmware is an opaque
    binary we cannot inject into (nor does it mount the quarantine
    defense) — so attaching such a plan to a firmware-agent SoC raises
    :class:`~repro.errors.FaultPlanError`.

    Scoping rules:

    * every ``hart`` scope must name an instantiated hart
      (:class:`~repro.errors.UnknownHartError` otherwise);
    * on an N > 1 topology the plan must be fully hart-scoped — an
      unscoped event would *silently* fault hart 0
      (:class:`~repro.errors.FaultPlanError`);
    * adversarial kinds additionally need N > 1 (a lone hart has no
      peers to attack).

    Returns the attached :class:`FaultController` (N = 1) or
    :class:`FaultDirectory` (N > 1), or ``None`` when ``plan`` is
    ``None``.
    """
    if plan is None:
        return None
    if soc.cfi_stage is None:
        raise FaultPlanError("cannot attach faults to a SoC without a CFI stage")
    n_harts = soc.n_harts
    for hart in plan.harts:
        if hart >= n_harts:
            raise UnknownHartError(hart, n_harts)
    if plan.needs_monitor and soc.policy_host is None:
        raise FaultPlanError(
            "monitor and adversarial faults require a policy-host agent; "
            "the RV32 firmware monitor cannot be injected into"
        )
    if plan.adversarial and n_harts == 1:
        raise FaultPlanError(
            "adversarial faults model a compromised hart attacking its "
            "peers; they need a multi-hart topology (n_harts > 1)"
        )
    if n_harts > 1:
        if not plan.hart_scoped:
            raise FaultPlanError(
                "fault plans on a multi-hart topology must be hart-scoped "
                "(FaultPlan.scoped(hart)): an unscoped plan would silently "
                "fault hart 0"
            )
        directory = FaultDirectory(plan, n_harts)
        for hart, ctrl in directory.controllers.items():
            soc.cfi_stages[hart].writer.faults = ctrl
        soc.cfi_mailbox.faults = directory
        if soc.policy_host is not None:
            soc.policy_host.faults = directory
        soc.faults = directory
        return directory
    controller = FaultController(plan)
    soc.cfi_stage.writer.faults = controller
    soc.cfi_mailbox.faults = controller
    if soc.policy_host is not None:
        soc.policy_host.faults = controller
    soc.faults = controller
    return controller
