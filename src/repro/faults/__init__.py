"""Deterministic fault injection for the TitanCFI transport and monitor.

The package models the degraded-monitor conditions the SoK: Runtime
Integrity taxonomy treats as first-class: dropped/duplicated mailbox
doorbells, corrupted CFI event words, queue-overflow stress, stalled or
late-waking monitors, and mid-run monitor resets.  A seed-deterministic
:class:`~repro.faults.plan.FaultPlan` schedules faults at
*event-occurrence indices* (the Nth queue pop, the Nth delivered
check), so all three execution engines observe identical faulted
behaviour; :mod:`repro.faults.oracle` predicts the expected verdict
under fault, and :mod:`repro.faults.contract` checks each policy's
degradation contract (detect / detect-late / fail-safe / miss).

Beyond the benign-transport model, plans can be *hart-scoped* (each
event indexes a named writer's stream) and carry compromised-hart
adversarial kinds — ``hart-spoof``, ``doorbell-flood``,
``arbiter-hold`` — against which the policy-host monitor mounts a
quarantine defense; :func:`~repro.faults.contract.evaluate_hart_contract`
checks the resulting per-hart degradation contract (attacker
fail-safe-quarantined, benign peers bit-identical to the adversary-free
baseline).
"""

from repro.faults.contract import (
    DEGRADATION_DETECT,
    DEGRADATION_DETECT_LATE,
    DEGRADATION_FAIL_SAFE,
    DEGRADATION_MISS,
    DEGRADATION_QUARANTINE,
    DEGRADATION_TRANSPARENT,
    allowed_degradations,
    evaluate_contract,
    evaluate_hart_contract,
)
from repro.faults.inject import FaultController, FaultDirectory, attach_faults
from repro.faults.oracle import (
    FaultPrediction,
    predict_adversarial,
    predict_verdict,
)
from repro.faults.plan import (
    ADVERSARIAL_FAULTS,
    FAULT_ARBITER_HOLD,
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_DOORBELL_FLOOD,
    FAULT_EVENT_CORRUPT,
    FAULT_HART_SPOOF,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    build_plan,
)

__all__ = [
    "ADVERSARIAL_FAULTS",
    "DEGRADATION_DETECT",
    "DEGRADATION_DETECT_LATE",
    "DEGRADATION_FAIL_SAFE",
    "DEGRADATION_MISS",
    "DEGRADATION_QUARANTINE",
    "DEGRADATION_TRANSPARENT",
    "FAULT_ARBITER_HOLD",
    "FAULT_DOORBELL_DROP",
    "FAULT_DOORBELL_DUP",
    "FAULT_DOORBELL_FLOOD",
    "FAULT_EVENT_CORRUPT",
    "FAULT_HART_SPOOF",
    "FAULT_MONITOR_RESET",
    "FAULT_MONITOR_STALL",
    "FAULT_PLANS",
    "FaultController",
    "FaultDirectory",
    "FaultEvent",
    "FaultPlan",
    "FaultPrediction",
    "allowed_degradations",
    "attach_faults",
    "build_plan",
    "evaluate_contract",
    "evaluate_hart_contract",
    "predict_adversarial",
    "predict_verdict",
]
