"""Deterministic fault injection for the TitanCFI transport and monitor.

The package models the degraded-monitor conditions the SoK: Runtime
Integrity taxonomy treats as first-class: dropped/duplicated mailbox
doorbells, corrupted CFI event words, queue-overflow stress, stalled or
late-waking monitors, and mid-run monitor resets.  A seed-deterministic
:class:`~repro.faults.plan.FaultPlan` schedules faults at
*event-occurrence indices* (the Nth queue pop, the Nth delivered
check), so all three execution engines observe identical faulted
behaviour; :mod:`repro.faults.oracle` predicts the expected verdict
under fault, and :mod:`repro.faults.contract` checks each policy's
degradation contract (detect / detect-late / fail-safe / miss).
"""

from repro.faults.contract import (
    DEGRADATION_DETECT,
    DEGRADATION_DETECT_LATE,
    DEGRADATION_FAIL_SAFE,
    DEGRADATION_MISS,
    DEGRADATION_TRANSPARENT,
    allowed_degradations,
    evaluate_contract,
)
from repro.faults.inject import FaultController, attach_faults
from repro.faults.oracle import FaultPrediction, predict_verdict
from repro.faults.plan import (
    FAULT_DOORBELL_DROP,
    FAULT_DOORBELL_DUP,
    FAULT_EVENT_CORRUPT,
    FAULT_MONITOR_RESET,
    FAULT_MONITOR_STALL,
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    build_plan,
)

__all__ = [
    "DEGRADATION_DETECT",
    "DEGRADATION_DETECT_LATE",
    "DEGRADATION_FAIL_SAFE",
    "DEGRADATION_MISS",
    "DEGRADATION_TRANSPARENT",
    "FAULT_DOORBELL_DROP",
    "FAULT_DOORBELL_DUP",
    "FAULT_EVENT_CORRUPT",
    "FAULT_MONITOR_RESET",
    "FAULT_MONITOR_STALL",
    "FAULT_PLANS",
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "FaultPrediction",
    "allowed_degradations",
    "attach_faults",
    "build_plan",
    "evaluate_contract",
    "predict_verdict",
]
