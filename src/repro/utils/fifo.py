"""A bounded FIFO mirroring the behaviour of a hardware queue.

Used by the CFI queue model (:mod:`repro.core.queue`) and the trace-driven
overhead model.  Unlike :class:`collections.deque`, pushing into a full
queue is a *protocol error* — hardware FIFOs assert backpressure instead
of silently dropping, and we want tests to catch any model that forgets
to honour the ``full`` signal.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from repro.errors import ProtocolError

T = TypeVar("T")


class BoundedFifo(Generic[T]):
    """First-in/first-out queue with a hard capacity.

    Args:
        capacity: maximum number of simultaneously-stored entries; must be
            at least 1 (a zero-capacity FIFO cannot exist in hardware).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"FIFO capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: Deque[T] = deque()
        self._pushes = 0
        self._pops = 0
        self._high_water = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries."""
        return self._capacity

    @property
    def full(self) -> bool:
        """True when a push would overflow (hardware ``full`` signal)."""
        return len(self._entries) >= self._capacity

    @property
    def empty(self) -> bool:
        """True when a pop would underflow (hardware ``empty`` signal)."""
        return not self._entries

    @property
    def occupancy(self) -> int:
        """Current number of stored entries."""
        return len(self._entries)

    @property
    def pushes(self) -> int:
        """Lifetime count of successful pushes (for statistics)."""
        return self._pushes

    @property
    def pops(self) -> int:
        """Lifetime count of successful pops (for statistics)."""
        return self._pops

    @property
    def high_water(self) -> int:
        """Maximum occupancy ever observed."""
        return self._high_water

    def push(self, entry: T) -> None:
        """Append ``entry``; raises :class:`ProtocolError` when full."""
        if self.full:
            raise ProtocolError(
                f"push into full FIFO (capacity {self._capacity})"
            )
        self._entries.append(entry)
        self._pushes += 1
        if len(self._entries) > self._high_water:
            self._high_water = len(self._entries)

    def pop(self) -> T:
        """Remove and return the oldest entry; raises when empty."""
        if self.empty:
            raise ProtocolError("pop from empty FIFO")
        self._pops += 1
        return self._entries.popleft()

    def peek(self) -> T:
        """Return the oldest entry without removing it; raises when empty."""
        if self.empty:
            raise ProtocolError("peek into empty FIFO")
        return self._entries[0]

    def try_push(self, entry: T) -> bool:
        """Push if space is available; returns whether the push happened."""
        if self.full:
            return False
        self.push(entry)
        return True

    def try_pop(self) -> Optional[T]:
        """Pop if an entry is available, else return ``None``."""
        if self.empty:
            return None
        return self.pop()

    def clear(self) -> None:
        """Drop all entries (hardware reset); statistics are preserved."""
        self._entries.clear()

    def snapshot(self) -> List[T]:
        """Copy of the current contents, oldest first (for inspection)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[T]:
        return iter(self._entries)

    def __repr__(self) -> str:
        return (
            f"BoundedFifo(capacity={self._capacity}, "
            f"occupancy={len(self._entries)})"
        )
