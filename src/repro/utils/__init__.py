"""Shared low-level utilities: bit manipulation and bounded FIFOs."""

from repro.utils.bits import (
    bit,
    bits,
    mask,
    sext,
    zext,
    to_signed,
    to_unsigned,
    align_down,
    align_up,
    is_aligned,
    bit_length_fields,
    pack_fields,
    unpack_fields,
)
from repro.utils.fifo import BoundedFifo

__all__ = [
    "bit",
    "bits",
    "mask",
    "sext",
    "zext",
    "to_signed",
    "to_unsigned",
    "align_down",
    "align_up",
    "is_aligned",
    "bit_length_fields",
    "pack_fields",
    "unpack_fields",
    "BoundedFifo",
]
