"""Bit-manipulation helpers used across the ISA and hardware models.

All helpers operate on plain Python integers interpreted as fixed-width
bit vectors.  Width arguments are in bits; values are always masked to the
requested width so callers never see stray high bits.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import EncodeError


def mask(width: int) -> int:
    """Return a bitmask of ``width`` ones (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, position: int) -> int:
    """Extract the single bit of ``value`` at ``position`` (0 or 1)."""
    return (value >> position) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit-slice ``value[hi:lo]``.

    Mirrors the Verilog slice syntax used by the RISC-V spec, e.g.
    ``bits(insn, 31, 25)`` extracts ``insn[31:25]``.
    """
    if hi < lo:
        raise ValueError(f"invalid slice [{hi}:{lo}]")
    return (value >> lo) & mask(hi - lo + 1)


def sext(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int (two's complement)."""
    value &= mask(width)
    sign = 1 << (width - 1)
    return (value ^ sign) - sign


def zext(value: int, width: int) -> int:
    """Zero-extend (i.e. truncate) a value to ``width`` bits."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Alias of :func:`sext` with a name that reads well at call sites."""
    return sext(value, width)


def to_unsigned(value: int, width: int) -> int:
    """Convert a (possibly negative) int to its ``width``-bit encoding."""
    return value & mask(width)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True if ``value`` is a multiple of ``alignment`` (a power of two)."""
    return (value & (alignment - 1)) == 0


def bit_length_fields(layout: Sequence[Tuple[str, int]]) -> int:
    """Total width in bits of a ``(name, width)`` packed-field layout."""
    return sum(width for _, width in layout)


def pack_fields(layout: Sequence[Tuple[str, int]], values: Dict[str, int]) -> int:
    """Pack named fields into one integer, first field at the LSB.

    Args:
        layout: ordered ``(name, width)`` pairs, LSB first.
        values: value per field name; each must fit its width.

    Returns:
        The packed integer.

    Raises:
        EncodeError: if a field value does not fit in its width or a
            field is missing from ``values``.
    """
    packed = 0
    offset = 0
    for name, width in layout:
        if name not in values:
            raise EncodeError(f"missing field {name!r}")
        value = values[name]
        if value < 0 or value > mask(width):
            raise EncodeError(
                f"field {name!r} value {value:#x} does not fit in {width} bits"
            )
        packed |= value << offset
        offset += width
    return packed


def unpack_fields(layout: Sequence[Tuple[str, int]], packed: int) -> Dict[str, int]:
    """Inverse of :func:`pack_fields`: split an integer into named fields."""
    values: Dict[str, int] = {}
    offset = 0
    for name, width in layout:
        values[name] = (packed >> offset) & mask(width)
        offset += width
    return values
