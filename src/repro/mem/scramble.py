"""Address/data-scrambled, ECC-protected memory (OpenTitan flash model).

OpenTitan's embedded flash applies *address and data scrambling* plus ECC
(paper §III-B).  This device reproduces that behaviour functionally:

* addresses are permuted through a keyed 4-round Feistel network over the
  word index (a bijection, so the memory never aliases),
* data words are XOR-whitened with a keystream derived from the key and
  the *logical* address (so moving ciphertext between cells corrupts it),
* each stored word carries a SECDED code; reads correct single-bit upsets
  and raise :class:`repro.errors.EccError` on double-bit upsets.

The model is deliberately not cryptographically strong — neither is the
real PRESENT-based scrambler against a physical attacker with the key —
but it preserves the properties the RoT security argument relies on:
data at rest is key-dependent, and tampering is detected.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AccessFault
from repro.mem.ecc import SecdedCodec
from repro.utils.bits import mask


def _mix(value: int, key: int, round_index: int) -> int:
    """One keyed mixing step (xorshift-style, 16-bit)."""
    value = (value ^ (key >> (round_index * 8))) & 0xFFFF
    value = (value * 0x9E37 + round_index) & 0xFFFF
    value ^= value >> 7
    return value & 0xFFFF


class ScrambledMemory:
    """Word-organised scrambled memory device (device protocol compliant).

    Args:
        size: capacity in bytes (rounded down to whole 32-bit words).
        key: scrambling key (any int; only the low 64 bits are used).
        name: diagnostic name.
    """

    WORD = 4

    def __init__(self, size: int, key: int = 0x5F0CC5E5_1D5ED21E, name: str = "flash"):
        if size < self.WORD:
            raise ValueError(f"size must hold at least one word, got {size}")
        self.size = size - (size % self.WORD)
        self.name = name
        self._key = key & mask(64)
        self._words = self.size // self.WORD
        self._cells: Dict[int, int] = {}
        self._codec = SecdedCodec()

    # -- scrambling ----------------------------------------------------------

    def _permute_index(self, index: int) -> int:
        """Bijective keyed permutation of the word index (Feistel)."""
        width = max(self._words.bit_length(), 2)
        half = (width + 1) // 2
        left = index >> half
        right = index & mask(half)
        for round_index in range(4):
            left, right = right, (left ^ _mix(right, self._key, round_index)) & mask(half)
        permuted = (left << half) | right
        # Cycle-walk until the value is inside the valid range (keeps the
        # permutation bijective on [0, words)).
        while permuted >= self._words:
            left = permuted >> half
            right = permuted & mask(half)
            for round_index in range(4):
                left, right = right, (left ^ _mix(right, self._key, round_index)) & mask(half)
            permuted = (left << half) | right
        return permuted

    def _keystream(self, index: int) -> int:
        """32-bit whitening word for logical word ``index``."""
        x = (index * 0x9E3779B9 ^ self._key) & mask(64)
        x ^= x >> 29
        x = (x * 0xBF58476D1CE4E5B9) & mask(64)
        x ^= x >> 32
        return x & mask(32)

    # -- word access ---------------------------------------------------------

    def _read_word(self, index: int) -> int:
        cell = self._permute_index(index)
        stored = self._cells.get(cell)
        if stored is None:
            return 0
        decoded = self._codec.decode(stored)
        return decoded.data ^ self._keystream(index)

    def _write_word(self, index: int, value: int) -> None:
        cell = self._permute_index(index)
        whitened = (value & mask(32)) ^ self._keystream(index)
        self._cells[cell] = self._codec.encode(whitened)

    # -- device protocol ------------------------------------------------------

    def _check(self, offset: int, count: int, access: str) -> None:
        if offset < 0 or offset + count > self.size:
            raise AccessFault(offset, access, f"{self.name}: out of range")

    def read(self, offset: int, size: int) -> int:
        """Read ``size`` bytes; each covering word is decoded once."""
        self._check(offset, size, "read")
        out = 0
        produced = 0
        cursor = offset
        while produced < size:
            index = cursor // self.WORD
            word = self._read_word(index)
            in_word = cursor % self.WORD
            take = min(self.WORD - in_word, size - produced)
            chunk = (word >> (in_word * 8)) & ((1 << (take * 8)) - 1)
            out |= chunk << (produced * 8)
            produced += take
            cursor += take
        return out

    def write(self, offset: int, size: int, value: int) -> None:
        """Write ``size`` bytes; partial words use read-modify-write."""
        self._check(offset, size, "write")
        consumed = 0
        cursor = offset
        while consumed < size:
            index = cursor // self.WORD
            in_word = cursor % self.WORD
            take = min(self.WORD - in_word, size - consumed)
            chunk = (value >> (consumed * 8)) & ((1 << (take * 8)) - 1)
            if take == self.WORD:
                word = chunk
            else:
                word = self._read_word(index)
                byte_mask = ((1 << (take * 8)) - 1) << (in_word * 8)
                word = (word & ~byte_mask) | (chunk << (in_word * 8))
            self._write_word(index, word)
            consumed += take
            cursor += take

    def load(self, offset: int, data: bytes) -> None:
        """Bulk image load through the scrambler."""
        for i, byte in enumerate(data):
            self.write(offset + i, 1, byte)

    # -- fault injection / inspection -----------------------------------------

    def raw_cell(self, index: int) -> int:
        """Stored (scrambled+ECC) codeword of physical cell ``index``."""
        return self._cells.get(index, 0)

    def corrupt_cell(self, index: int, bit_position: int) -> None:
        """Flip one stored bit of a physical cell (fault injection)."""
        if index not in self._cells:
            raise ValueError(f"cell {index} has never been written")
        self._cells[index] = SecdedCodec.flip_bit(self._cells[index], bit_position)

    def physical_cell_of(self, byte_offset: int) -> int:
        """Physical cell index a logical byte lands in (test hook)."""
        return self._permute_index(byte_offset // self.WORD)

    @property
    def ecc_corrections(self) -> int:
        """Number of single-bit errors corrected so far."""
        return self._codec.corrections
