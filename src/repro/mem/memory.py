"""Byte-addressable memory devices.

:class:`SparseMemory` backs large address spaces without allocating them
eagerly (page-granular, dict-of-bytearrays).  :class:`Ram` and
:class:`Rom` wrap it with bounds and writability semantics and implement
the device protocol consumed by :class:`repro.mem.map.MemoryMap`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AccessFault


class SparseMemory:
    """Page-granular sparse byte store.

    Unbacked reads return zero, like initialised SRAM in the simulators
    this reproduces.
    """

    PAGE_BITS = 12
    PAGE_SIZE = 1 << PAGE_BITS
    PAGE_MASK = PAGE_SIZE - 1

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int, create: bool) -> Optional[bytearray]:
        index = address >> self.PAGE_BITS
        page = self._pages.get(index)
        if page is None and create:
            page = bytearray(self.PAGE_SIZE)
            self._pages[index] = page
        return page

    def read_bytes(self, address: int, count: int) -> bytes:
        """Read ``count`` bytes starting at ``address``."""
        # Fast path: the access sits inside one page (every CPU-sized
        # read does) — slice the backing page directly instead of
        # assembling a scratch bytearray.
        offset = address & self.PAGE_MASK
        if offset + count <= self.PAGE_SIZE:
            page = self._pages.get(address >> self.PAGE_BITS)
            if page is None:
                return bytes(count)
            return bytes(page[offset : offset + count])
        out = bytearray(count)
        done = 0
        while done < count:
            offset = (address + done) & self.PAGE_MASK
            chunk = min(count - done, self.PAGE_SIZE - offset)
            page = self._page(address + done, create=False)
            if page is not None:
                out[done : done + chunk] = page[offset : offset + chunk]
            done += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        done = 0
        count = len(data)
        while done < count:
            offset = (address + done) & (self.PAGE_SIZE - 1)
            chunk = min(count - done, self.PAGE_SIZE - offset)
            page = self._page(address + done, create=True)
            assert page is not None
            page[offset : offset + chunk] = data[done : done + chunk]
            done += chunk

    def read_int(self, address: int, size: int) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        # Zero-copy path for the common CPU access widths: assemble the
        # value straight from the page bytes, no intermediate buffer.
        offset = address & self.PAGE_MASK
        if offset + size <= self.PAGE_SIZE:
            page = self._pages.get(address >> self.PAGE_BITS)
            if page is None:
                return 0
            if size == 4:
                return (
                    page[offset]
                    | (page[offset + 1] << 8)
                    | (page[offset + 2] << 16)
                    | (page[offset + 3] << 24)
                )
            if size == 1:
                return page[offset]
            if size == 2:
                return page[offset] | (page[offset + 1] << 8)
            return int.from_bytes(page[offset : offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write_int(self, address: int, size: int, value: int) -> None:
        """Write a little-endian integer of ``size`` bytes."""
        offset = address & self.PAGE_MASK
        if offset + size <= self.PAGE_SIZE:
            page = self._page(address, create=True)
            page[offset : offset + size] = (
                value & ((1 << (size * 8)) - 1)
            ).to_bytes(size, "little")
            return
        self.write_bytes(address, (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"))

    @property
    def allocated_bytes(self) -> int:
        """Bytes of backing storage currently allocated."""
        return len(self._pages) * self.PAGE_SIZE


class Ram:
    """Bounded read/write memory device.

    Args:
        size: capacity in bytes; accesses beyond it fault.
        name: diagnostic name used in fault messages.
    """

    def __init__(self, size: int, name: str = "ram"):
        if size <= 0:
            raise ValueError(f"RAM size must be positive, got {size}")
        self.size = size
        self.name = name
        self._store = SparseMemory()
        # Pre-bounds-checked entry points for bus fast paths: callers
        # that have already validated the access against the mapped
        # region (which never exceeds the device) may skip the per-call
        # bounds re-check and the extra frame it costs.
        self.fast_read = self._store.read_int
        self.fast_write = self._store.write_int

    def _check(self, offset: int, count: int, access: str) -> None:
        if offset < 0 or offset + count > self.size:
            raise AccessFault(offset, access, f"{self.name}: {access} beyond size {self.size:#x}")

    def read(self, offset: int, size: int) -> int:
        """Device-protocol read of ``size`` bytes at ``offset``."""
        self._check(offset, size, "read")
        return self._store.read_int(offset, size)

    def write(self, offset: int, size: int, value: int) -> None:
        """Device-protocol write of ``size`` bytes at ``offset``."""
        self._check(offset, size, "write")
        self._store.write_int(offset, size, value)

    def load(self, offset: int, data: bytes) -> None:
        """Bulk image load (program loading); bypasses no checks."""
        self._check(offset, len(data), "write")
        self._store.write_bytes(offset, data)

    def dump(self, offset: int, count: int) -> bytes:
        """Bulk read for inspection."""
        self._check(offset, count, "read")
        return self._store.read_bytes(offset, count)


class Rom(Ram):
    """Read-only memory: CPU writes fault, :meth:`load` still works."""

    def __init__(self, size: int, name: str = "rom"):
        super().__init__(size, name)
        # Writes must keep faulting — no fast-path bypass.
        self.fast_write = None

    def write(self, offset: int, size: int, value: int) -> None:
        raise AccessFault(offset, "write", f"{self.name}: write to read-only memory")
