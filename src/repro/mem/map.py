"""Address map binding devices into a hart's or bus master's view.

Every region carries an access *latency* (cycles per access) and a *tag*.
The latency feeds the instruction-set simulators' timing models; the tag
feeds the Table I classification, which splits firmware memory cycles
into RoT-private versus SoC accesses exactly as the paper does.

An optional :class:`AccessObserver` receives every access — the firmware
analysis harness installs one to count accesses and cycles per region
tag without touching the firmware itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

from repro.errors import AccessFault, ConfigError


class MappedDevice(Protocol):
    """Protocol every bus-attachable device implements."""

    size: int

    def read(self, offset: int, size: int) -> int:
        """Read ``size`` bytes at device-relative ``offset``."""
        ...

    def write(self, offset: int, size: int, value: int) -> None:
        """Write ``size`` bytes at device-relative ``offset``."""
        ...


@dataclass(frozen=True)
class Region:
    """One mapped window.

    Attributes:
        base: first absolute address of the window.
        size: window length in bytes.
        device: target device (offsets are window-relative).
        latency: cycles consumed by one access through this window.
        tag: classification label (e.g. ``"rot-sram"``, ``"soc"``).
        name: diagnostic name.
        end: one past the last mapped address (derived; stored as a
            plain field because the bounds check runs on every single
            bus access and a property call there is measurable).
    """

    base: int
    size: int
    device: MappedDevice
    latency: int = 1
    tag: str = "untagged"
    name: str = "region"
    end: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "end", self.base + self.size)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this window."""
        return self.base <= address < self.end


@dataclass(frozen=True)
class BusAccess:
    """A record of one completed bus access, passed to observers."""

    kind: str        # "read" | "write" | "fetch"
    address: int
    size: int
    value: int
    latency: int
    tag: str


AccessObserver = Callable[[BusAccess], None]

#: Lightweight write notification ``(address, size)`` — fired on every
#: CPU/bus write and bulk image load.  Harts use this to invalidate
#: their per-pc decoded-instruction caches when a store lands in a page
#: they have executed from (self-modifying code).
StoreHook = Callable[[int, int], None]


class MemoryMap:
    """Routes absolute addresses to mapped devices.

    Args:
        name: diagnostic name (which master's view this is).
    """

    def __init__(self, name: str = "bus"):
        self.name = name
        self._regions: List[Region] = []
        self._observers: List[AccessObserver] = []
        self._store_hooks: List[StoreHook] = []
        # Last-hit region memo: bus traffic is strongly clustered (code
        # fetches, then a burst of data accesses), so remembering the
        # previous region short-circuits the linear scan.
        self._hot_region: Optional[Region] = None

    # -- construction -------------------------------------------------------

    def add(
        self,
        base: int,
        device: MappedDevice,
        *,
        size: Optional[int] = None,
        latency: int = 1,
        tag: str = "untagged",
        name: str = "region",
    ) -> Region:
        """Map ``device`` at ``base``; rejects overlapping windows."""
        window = size if size is not None else device.size
        if window <= 0:
            raise ConfigError(f"{name}: region size must be positive")
        region = Region(base, window, device, latency, tag, name)
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ConfigError(
                    f"{self.name}: {name} [{base:#x}, {region.end:#x}) overlaps "
                    f"{existing.name} [{existing.base:#x}, {existing.end:#x})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._hot_region = None
        return region

    def observe(self, observer: AccessObserver) -> None:
        """Register an access observer (fired after every access)."""
        self._observers.append(observer)

    def remove_observer(self, observer: AccessObserver) -> None:
        """Unregister a previously-added observer."""
        self._observers.remove(observer)

    def add_store_hook(self, hook: StoreHook) -> None:
        """Register a write-notification hook ``(address, size)``.

        Unlike observers, store hooks see bulk loads too and carry no
        :class:`BusAccess` allocation — they are cheap enough to leave
        armed on the hot path.
        """
        self._store_hooks.append(hook)

    # -- lookup --------------------------------------------------------------

    @property
    def regions(self) -> Tuple[Region, ...]:
        """All mapped regions, sorted by base address."""
        return tuple(self._regions)

    def region_for(self, address: int) -> Region:
        """Region containing ``address``; raises :class:`AccessFault`."""
        hot = self._hot_region
        if hot is not None and hot.base <= address < hot.end:
            return hot
        for region in self._regions:
            if region.contains(address):
                self._hot_region = region
                return region
        raise AccessFault(address, "read", f"{self.name}: unmapped address {address:#x}")

    def latency(self, address: int) -> int:
        """Access latency at ``address`` (cycles)."""
        return self.region_for(address).latency

    def tag(self, address: int) -> str:
        """Classification tag at ``address``."""
        return self.region_for(address).tag

    # -- access --------------------------------------------------------------

    def _notify(self, access: BusAccess) -> None:
        for observer in self._observers:
            observer(access)

    def read(self, address: int, size: int, kind: str = "read") -> int:
        """Read ``size`` bytes; returns the little-endian value."""
        region = self._region_checked(address, size, kind)
        value = region.device.read(address - region.base, size)
        if self._observers:
            self._notify(BusAccess(kind, address, size, value, region.latency, region.tag))
        return value

    def read_timed(self, address: int, size: int, kind: str = "read") -> Tuple[int, int]:
        """:meth:`read` plus the region latency, in one region lookup.

        The hot path for every instruction-set simulator access: the
        separate ``read(...)`` + ``latency(...)`` sequence decodes the
        address twice; this folds the pair.
        """
        region = self._region_checked(address, size, kind)
        value = region.device.read(address - region.base, size)
        if self._observers:
            self._notify(BusAccess(kind, address, size, value, region.latency, region.tag))
        return value, region.latency

    def write(self, address: int, size: int, value: int) -> None:
        """Write ``size`` bytes of ``value``."""
        region = self._region_checked(address, size, "write")
        region.device.write(address - region.base, size, value)
        for hook in self._store_hooks:
            hook(address, size)
        if self._observers:
            self._notify(BusAccess("write", address, size, value, region.latency, region.tag))

    def write_timed(self, address: int, size: int, value: int) -> int:
        """:meth:`write` returning the region latency (one lookup)."""
        region = self._region_checked(address, size, "write")
        region.device.write(address - region.base, size, value)
        for hook in self._store_hooks:
            hook(address, size)
        if self._observers:
            self._notify(BusAccess("write", address, size, value, region.latency, region.tag))
        return region.latency

    def fetch(self, address: int, size: int) -> int:
        """Instruction fetch (reported to observers as ``fetch``)."""
        return self.read(address, size, kind="fetch")

    def read_bytes(self, address: int, count: int) -> bytes:
        """Bulk read for program loading and inspection (single region)."""
        region = self._region_checked(address, count, "read")
        offset = address - region.base
        dumper = getattr(region.device, "dump", None)
        if dumper is not None:
            return dumper(offset, count)
        return bytes(
            region.device.read(offset + i, 1) for i in range(count)
        )

    def write_bytes(self, address: int, data: bytes) -> None:
        """Bulk write for program loading (single region, no observer)."""
        region = self._region_checked(address, len(data), "write")
        offset = address - region.base
        loader = getattr(region.device, "load", None)
        if loader is not None:
            loader(offset, data)
        else:
            for i, byte in enumerate(data):
                region.device.write(offset + i, 1, byte)
        for hook in self._store_hooks:
            hook(address, len(data))

    def _region_checked(self, address: int, size: int, kind: str) -> Region:
        try:
            region = self.region_for(address)
        except AccessFault:
            raise AccessFault(address, kind, f"{self.name}: unmapped {kind} at {address:#x}")
        if address + size > region.end:
            raise AccessFault(
                address, kind,
                f"{self.name}: {kind} of {size} bytes at {address:#x} crosses "
                f"region {region.name} boundary",
            )
        return region
