"""SECDED (single-error-correct, double-error-detect) Hamming codec.

OpenTitan's embedded flash and SRAM protect every word with an
ECC (paper §III-B: "embedded flash memory enhanced with Error Correcting
Code").  This module implements the classic Hamming(39,32) + overall
parity scheme used functionally by :class:`repro.mem.scramble` backed
memories and exercised by the fault-injection tests.

Codeword layout (39 bits): 32 data bits | 6 Hamming parity bits |
1 overall parity bit (MSB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import EccError

_DATA_BITS = 32
_PARITY_BITS = 6
_CODE_BITS = _DATA_BITS + _PARITY_BITS + 1  # + overall parity


def _parity_positions() -> List[List[int]]:
    """For each of the 6 Hamming parity bits, the data-bit indices it covers.

    Data bits are placed at the non-power-of-two positions of a classic
    Hamming code over positions 1..38.
    """
    # Position (1-based) of each data bit inside the Hamming codeword.
    data_positions: List[int] = []
    position = 1
    while len(data_positions) < _DATA_BITS:
        if position & (position - 1):  # not a power of two
            data_positions.append(position)
        position += 1
    covers: List[List[int]] = [[] for _ in range(_PARITY_BITS)]
    for data_index, pos in enumerate(data_positions):
        for parity_index in range(_PARITY_BITS):
            if pos & (1 << parity_index):
                covers[parity_index].append(data_index)
    return covers


_COVERS = _parity_positions()
_DATA_POSITIONS: List[int] = []
_pos = 1
while len(_DATA_POSITIONS) < _DATA_BITS:
    if _pos & (_pos - 1):
        _DATA_POSITIONS.append(_pos)
    _pos += 1
_POSITION_TO_DATA = {pos: i for i, pos in enumerate(_DATA_POSITIONS)}


@dataclass
class DecodeResult:
    """Outcome of decoding one codeword.

    Attributes:
        data: the (possibly corrected) 32-bit data word.
        corrected: True when a single-bit error was repaired.
    """

    data: int
    corrected: bool


class SecdedCodec:
    """Hamming(39,32) SECDED encoder/decoder with error statistics."""

    def __init__(self):
        self.corrections = 0
        self.detections = 0

    @staticmethod
    def encode(data: int) -> int:
        """Encode a 32-bit ``data`` word into a 39-bit codeword."""
        data &= 0xFFFFFFFF
        parity = 0
        for parity_index in range(_PARITY_BITS):
            bit_value = 0
            for data_index in _COVERS[parity_index]:
                bit_value ^= (data >> data_index) & 1
            parity |= bit_value << parity_index
        codeword = data | (parity << _DATA_BITS)
        overall = bin(codeword).count("1") & 1
        return codeword | (overall << (_CODE_BITS - 1))

    def decode(self, codeword: int) -> DecodeResult:
        """Decode and correct a 39-bit codeword.

        Raises:
            EccError: when two bit errors are detected (uncorrectable).
        """
        codeword &= (1 << _CODE_BITS) - 1
        data = codeword & 0xFFFFFFFF
        stored_parity = (codeword >> _DATA_BITS) & ((1 << _PARITY_BITS) - 1)
        stored_overall = (codeword >> (_CODE_BITS - 1)) & 1

        syndrome = 0
        for parity_index in range(_PARITY_BITS):
            bit_value = 0
            for data_index in _COVERS[parity_index]:
                bit_value ^= (data >> data_index) & 1
            if bit_value != ((stored_parity >> parity_index) & 1):
                syndrome |= 1 << parity_index

        overall_now = bin(codeword & ((1 << (_CODE_BITS - 1)) - 1)).count("1") & 1
        overall_error = overall_now != stored_overall

        if syndrome == 0 and not overall_error:
            return DecodeResult(data=data, corrected=False)

        if overall_error:
            # Odd number of flipped bits => single-bit error, correctable.
            self.corrections += 1
            if syndrome == 0:
                # The overall parity bit itself flipped; data is intact.
                return DecodeResult(data=data, corrected=True)
            if syndrome in _POSITION_TO_DATA:
                corrected = data ^ (1 << _POSITION_TO_DATA[syndrome])
                return DecodeResult(data=corrected, corrected=True)
            # A Hamming parity bit flipped; data is intact.
            return DecodeResult(data=data, corrected=True)

        # Even number of errors with nonzero syndrome: uncorrectable.
        self.detections += 1
        raise EccError(f"uncorrectable double-bit error (syndrome={syndrome:#x})")

    @staticmethod
    def flip_bit(codeword: int, position: int) -> int:
        """Flip one bit of a codeword (fault injection helper)."""
        if not 0 <= position < _CODE_BITS:
            raise ValueError(f"bit position out of range: {position}")
        return codeword ^ (1 << position)

    @staticmethod
    def codeword_bits() -> int:
        """Width of a codeword in bits (39)."""
        return _CODE_BITS
