"""Memory-system substrate: devices, maps, ECC and scrambling models."""

from repro.mem.memory import Ram, Rom, SparseMemory
from repro.mem.map import AccessObserver, BusAccess, MappedDevice, MemoryMap, Region
from repro.mem.ecc import SecdedCodec
from repro.mem.scramble import ScrambledMemory

__all__ = [
    "Ram",
    "Rom",
    "SparseMemory",
    "AccessObserver",
    "BusAccess",
    "MappedDevice",
    "MemoryMap",
    "Region",
    "SecdedCodec",
    "ScrambledMemory",
]
