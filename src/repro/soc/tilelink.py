"""Transaction-level TileLink-UL fabric model (OpenTitan's internal bus).

OpenTitan hangs Ibex, its SRAM, flash and peripherals off a TL-UL
crossbar (paper Fig. 1, "TL-UL Xbar").  TL-UL is uncached and carries at
most one data beat per request, so the model is a routed single-beat
access with a fixed request/response cost.

The paper's *Optimized* firmware variant replaces this interconnect with
a low-latency one so the private scratchpad is reachable in a single
cycle (§V-B); that is expressed here by constructing the xbar with
``TlulTimings(request_latency=0, response_latency=1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.mem.map import MemoryMap
from repro.soc.axi import BusStats


@dataclass(frozen=True)
class TlulTimings:
    """TL-UL timing parameters (cycles).

    Defaults reproduce the paper's measured ~5-cycle RoT scratchpad
    access (§V-B) once the SRAM's own latency is added by the device
    region; see :mod:`repro.opentitan.rot` for the composition.
    """

    request_latency: int = 2
    response_latency: int = 2
    data_width_bits: int = 32

    @property
    def bytes_per_beat(self) -> int:
        """Payload bytes per TL-UL beat."""
        return self.data_width_bits // 8

    def access_cycles(self, nbytes: int, device_latency: int) -> int:
        """Cycles for an access of ``nbytes`` to a device."""
        per = self.bytes_per_beat
        beats = max(1, (nbytes + per - 1) // per)
        return self.request_latency + self.response_latency + device_latency + (beats - 1)


class TlulXbar:
    """TL-UL crossbar routing masters to a memory map.

    Unlike :class:`repro.soc.axi.AxiXbar`, latency depends on the target
    region's own latency (the map regions model device response time).
    """

    def __init__(
        self,
        memory_map: MemoryMap,
        timings: Optional[TlulTimings] = None,
        name: str = "tlul-xbar",
    ):
        self.map = memory_map
        self.timings = timings or TlulTimings()
        self.name = name
        self._stats: Dict[str, BusStats] = {}
        # (nbytes, device_latency) → cycles.  The firmware's access mix
        # hits a handful of combinations millions of times; the memo
        # keeps `access_cycles`'s arithmetic off the per-access path.
        self._cycles_memo: Dict[Tuple[int, int], int] = {}

    def stats(self, master: str) -> BusStats:
        """Accounting for ``master`` (created on first use)."""
        if master not in self._stats:
            self._stats[master] = BusStats()
        return self._stats[master]

    def _access_cycles(self, nbytes: int, device_latency: int) -> int:
        key = (nbytes, device_latency)
        cycles = self._cycles_memo.get(key)
        if cycles is None:
            cycles = self.timings.access_cycles(nbytes, device_latency)
            self._cycles_memo[key] = cycles
        return cycles

    def read(self, master: str, address: int, nbytes: int) -> Tuple[int, int]:
        """Read for ``master``; returns ``(value, cycles)``."""
        if nbytes <= 0:
            raise ConfigError("read size must be positive")
        value, device_latency = self.map.read_timed(address, nbytes)
        cycles = self._access_cycles(nbytes, device_latency)
        stats = self._stats.get(master)
        if stats is None:
            stats = self.stats(master)
        stats.record("read", nbytes, cycles)
        return value, cycles

    def write(self, master: str, address: int, nbytes: int, value: int) -> int:
        """Write for ``master``; returns cycles consumed."""
        if nbytes <= 0:
            raise ConfigError("write size must be positive")
        device_latency = self.map.write_timed(address, nbytes, value)
        cycles = self._access_cycles(nbytes, device_latency)
        stats = self._stats.get(master)
        if stats is None:
            stats = self.stats(master)
        stats.record("write", nbytes, cycles)
        return cycles
