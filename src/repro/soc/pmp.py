"""IOPMP-style bus guard protecting address windows per master.

Paper §VI assumes "the CFI Mailbox cannot be tampered by other entities
in the SoC", enforced with RISC-V PMP-style protection so that "issuing
loads or stores to any address within the protected range results in an
access fault exception".  :class:`IoPmp` models that: rules bind an
address window to the set of masters allowed through; anything else
faults.  The fault-injection tests in ``tests/soc`` and the security
example drive this directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

from repro.errors import AccessFault, ConfigError


@dataclass(frozen=True)
class PmpRule:
    """One protection rule.

    Attributes:
        base: first protected address.
        size: window length in bytes.
        allowed_masters: master names allowed to access the window.
        name: diagnostic name.
        allow_read/allow_write: which access kinds the allowed masters get.
    """

    base: int
    size: int
    allowed_masters: FrozenSet[str]
    name: str = "pmp-rule"
    allow_read: bool = True
    allow_write: bool = True

    @property
    def end(self) -> int:
        """One past the last protected address."""
        return self.base + self.size

    def overlaps(self, address: int, nbytes: int) -> bool:
        """True when [address, address+nbytes) intersects the window."""
        return address < self.end and self.base < address + nbytes


class IoPmp:
    """Ordered rule list; the first rule covering an access decides it.

    Addresses not covered by any rule are unrestricted (matching PMP
    behaviour with no matching entry in machine mode).
    """

    def __init__(self):
        self._rules: List[PmpRule] = []
        self.faults = 0
        # Memo of already-permitted accesses: the CFI handshake repeats
        # the same handful of (master, address, size, kind) tuples every
        # check, so the rule scan runs once per distinct access shape.
        # Only *allowed* outcomes are cached (faults stay on the scan
        # path and keep counting); invalidated when rules change.
        self._allowed: set = set()

    def protect(
        self,
        base: int,
        size: int,
        allowed_masters: Iterable[str],
        *,
        name: str = "pmp-rule",
        allow_read: bool = True,
        allow_write: bool = True,
    ) -> PmpRule:
        """Append a protection rule for [base, base+size)."""
        if size <= 0:
            raise ConfigError(f"{name}: protected window must be non-empty")
        rule = PmpRule(
            base=base,
            size=size,
            allowed_masters=frozenset(allowed_masters),
            name=name,
            allow_read=allow_read,
            allow_write=allow_write,
        )
        self._rules.append(rule)
        self._allowed.clear()
        return rule

    @property
    def rules(self) -> List[PmpRule]:
        """Installed rules, in priority order."""
        return list(self._rules)

    def check(self, master: str, address: int, nbytes: int, kind: str) -> None:
        """Raise :class:`AccessFault` when the access violates a rule."""
        key = (master, address, nbytes, kind)
        if key in self._allowed:
            return
        for rule in self._rules:
            if not rule.overlaps(address, nbytes):
                continue
            permitted = master in rule.allowed_masters and (
                rule.allow_read if kind == "read" else rule.allow_write
            )
            if not permitted:
                self.faults += 1
                raise AccessFault(
                    address,
                    kind,
                    f"{rule.name}: master {master!r} denied {kind} at {address:#x}",
                )
            self._allowed.add(key)
            return  # first matching rule decides
        self._allowed.add(key)

    def allows(self, master: str, address: int, nbytes: int, kind: str) -> bool:
        """Non-raising variant of :meth:`check`."""
        try:
            self.check(master, address, nbytes, kind)
        except AccessFault:
            return False
        return True
