"""Platform-Level Interrupt Controller (PLIC) model.

Both interrupt domains of the reference SoC — the host PLIC in front of
CVA6 and the OpenTitan PLIC in front of Ibex (paper Fig. 1) — are
instances of this class.  The model implements the level-triggered
gateway + claim/complete protocol subset that the CFI firmware uses:

* a source's *level* is driven by its device (e.g. the CFI mailbox
  doorbell),
* a raised level latches a pending bit through the gateway,
* the target claims the highest-priority pending enabled source, which
  masks re-latching until completion.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError, ProtocolError


class Plic:
    """A single-target PLIC with ``source_count`` level-triggered inputs.

    Source IDs are 1-based; 0 means "no interrupt", as in the spec.
    """

    def __init__(self, source_count: int, name: str = "plic"):
        if source_count < 1:
            raise ConfigError("PLIC needs at least one source")
        self.name = name
        self.source_count = source_count
        self._levels: Dict[int, bool] = {s: False for s in self._sources()}
        self._pending: Dict[int, bool] = {s: False for s in self._sources()}
        self._enabled: Dict[int, bool] = {s: False for s in self._sources()}
        self._priority: Dict[int, int] = {s: 1 for s in self._sources()}
        self._in_service: Optional[int] = None

    def _sources(self):
        return range(1, self.source_count + 1)

    def _check_source(self, source: int) -> None:
        if not 1 <= source <= self.source_count:
            raise ConfigError(f"{self.name}: source {source} out of range")

    # -- configuration ---------------------------------------------------------

    def enable(self, source: int) -> None:
        """Enable ``source`` toward the target."""
        self._check_source(source)
        self._enabled[source] = True

    def disable(self, source: int) -> None:
        """Mask ``source``."""
        self._check_source(source)
        self._enabled[source] = False

    def set_priority(self, source: int, priority: int) -> None:
        """Set a source's priority (higher wins arbitration)."""
        self._check_source(source)
        if priority < 0:
            raise ConfigError("priority must be non-negative")
        self._priority[source] = priority

    # -- gateway ----------------------------------------------------------------

    def set_level(self, source: int, level: bool) -> None:
        """Drive a source's level line (called by devices)."""
        self._check_source(source)
        self._levels[source] = level
        if level and self._in_service != source:
            self._pending[source] = True
        if not level and self._in_service != source:
            # Level-triggered gateway: dropping the line clears pending
            # unless the interrupt is currently being serviced.
            self._pending[source] = False

    # -- target interface ---------------------------------------------------------

    @property
    def irq_line(self) -> bool:
        """Level of the external-interrupt wire into the core."""
        return any(
            self._pending[s] and self._enabled[s] and self._priority[s] > 0
            for s in self._sources()
        )

    def claim(self) -> int:
        """Claim the highest-priority pending enabled source (0 if none)."""
        best = 0
        best_priority = 0
        for source in self._sources():
            if not (self._pending[source] and self._enabled[source]):
                continue
            if self._priority[source] > best_priority:
                best, best_priority = source, self._priority[source]
        if best:
            self._pending[best] = False
            self._in_service = best
        return best

    def complete(self, source: int) -> None:
        """Signal end of service for a previously-claimed source."""
        self._check_source(source)
        if self._in_service != source:
            raise ProtocolError(
                f"{self.name}: completion for source {source} which is not in service"
            )
        self._in_service = None
        if self._levels[source]:
            # Line still high: re-latch immediately (level semantics).
            self._pending[source] = True

    def pending(self, source: int) -> bool:
        """Pending state of ``source`` (test hook)."""
        self._check_source(source)
        return self._pending[source]
