"""TileLink-UL ↔ AXI4 bridge.

OpenTitan reaches SoC memory "through a custom TileLink-to-AXI bridge"
(paper §III-B).  The bridge appears on the TL-UL side as a mapped device
window; accesses are re-issued on the AXI crossbar under the bridge's
master identity with a protocol-conversion latency added.  The combined
cost reproduces the paper's ~12-cycle SoC-memory access from Ibex
(8 cycles with the optimized interconnect, §V-B).
"""

from __future__ import annotations

from repro.soc.axi import AxiXbar


class Tl2AxiBridge:
    """Device-protocol adapter forwarding a TL window onto an AXI xbar.

    Args:
        axi: target crossbar.
        window_base: AXI address corresponding to bridge offset 0.
        window_size: size of the forwarded window in bytes.
        master: AXI master identity used for forwarded traffic (the
            IOPMP sees this name).
        conversion_latency: extra cycles per access for protocol
            conversion (both directions combined).
    """

    def __init__(
        self,
        axi: AxiXbar,
        window_base: int,
        window_size: int,
        master: str = "opentitan",
        conversion_latency: int = 2,
    ):
        self.axi = axi
        self.window_base = window_base
        self.size = window_size
        self.master = master
        self.conversion_latency = conversion_latency
        self.forwarded = 0
        self.last_cycles = 0

    def read(self, offset: int, size: int) -> int:
        """Forward a read; latency is recorded in :attr:`last_cycles`."""
        value, cycles = self.axi.read_int(self.master, self.window_base + offset, size)
        self.last_cycles = cycles + self.conversion_latency
        self.forwarded += 1
        return value

    def write(self, offset: int, size: int, value: int) -> None:
        """Forward a write; latency is recorded in :attr:`last_cycles`."""
        cycles = self.axi.write_int(self.master, self.window_base + offset, size, value)
        self.last_cycles = cycles + self.conversion_latency
        self.forwarded += 1
