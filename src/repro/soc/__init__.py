"""SoC fabric substrate: AXI, TileLink-UL, bridges, mailboxes, PLIC, PMP.

Mirrors the communication architecture of the reference SoC (paper §III):
an AXI4 crossbar in the host domain, a TileLink-UL fabric inside
OpenTitan, a TL↔AXI bridge between them, SCMI-style mailboxes, and a
PLIC per interrupt domain.
"""

from repro.soc.axi import AxiTimings, AxiXbar, BusStats
from repro.soc.tilelink import TlulTimings, TlulXbar
from repro.soc.bridge import Tl2AxiBridge
from repro.soc.mailbox import CfiMailbox, Mailbox, MailboxLayout
from repro.soc.plic import Plic
from repro.soc.pmp import IoPmp, PmpRule

__all__ = [
    "AxiTimings",
    "AxiXbar",
    "BusStats",
    "TlulTimings",
    "TlulXbar",
    "Tl2AxiBridge",
    "CfiMailbox",
    "Mailbox",
    "MailboxLayout",
    "Plic",
    "IoPmp",
    "PmpRule",
]
