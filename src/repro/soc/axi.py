"""Transaction-level AXI4 crossbar model.

The host domain of the reference SoC uses a "high-bandwidth, low-latency
AXI4" crossbar (paper §III-A).  The model is transaction-accurate, not
signal-accurate: each read/write is routed to a mapped device and costs

    ``address_latency + beats * beat_latency``

cycles, where a beat carries ``data_width_bits`` of payload.  That is the
level of fidelity the paper's own trace-driven evaluation uses, and it
is what the CFI log-writer FSM needs: a 224-bit commit log split into
64-bit beats (paper §IV-B3) costs four data beats per mailbox write.

Masters are identified by name so that the :class:`repro.soc.pmp.IoPmp`
guard can police who may reach the CFI mailbox (paper §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import AccessFault, ConfigError
from repro.mem.map import MemoryMap
from repro.soc.pmp import IoPmp


@dataclass(frozen=True)
class AxiTimings:
    """Crossbar timing parameters (cycles).

    Attributes:
        address_latency: arbitration + address-phase cost per transaction.
        beat_latency: cycles per data beat.
        data_width_bits: payload bits carried per beat (the reference SoC
            uses a 64-bit data bus).
    """

    address_latency: int = 2
    beat_latency: int = 1
    data_width_bits: int = 64

    @property
    def bytes_per_beat(self) -> int:
        """Payload bytes per beat."""
        return self.data_width_bits // 8

    def beats_for(self, nbytes: int) -> int:
        """Number of beats needed for ``nbytes`` of payload."""
        per = self.bytes_per_beat
        return max(1, (nbytes + per - 1) // per)

    def transaction_cycles(self, nbytes: int) -> int:
        """Total cycles for one transaction moving ``nbytes``."""
        return self.address_latency + self.beats_for(nbytes) * self.beat_latency


@dataclass
class BusStats:
    """Per-master accounting kept by fabric components."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    written_bytes: int = 0
    cycles: int = 0

    def record(self, kind: str, nbytes: int, cycles: int) -> None:
        """Fold one transaction into the counters."""
        if kind == "read":
            self.reads += 1
            self.read_bytes += nbytes
        else:
            self.writes += 1
            self.written_bytes += nbytes
        self.cycles += cycles


class AxiXbar:
    """AXI4 crossbar routing named masters to a shared memory map.

    Args:
        memory_map: address decode shared by all masters.
        timings: crossbar timing parameters.
        pmp: optional IOPMP guard consulted before every access.
        name: diagnostic name.
    """

    def __init__(
        self,
        memory_map: MemoryMap,
        timings: Optional[AxiTimings] = None,
        pmp: Optional[IoPmp] = None,
        name: str = "axi-xbar",
    ):
        self.map = memory_map
        self.timings = timings or AxiTimings()
        self.pmp = pmp
        self.name = name
        self._stats: Dict[str, BusStats] = {}
        # Hot paths for the single-beat integer accesses the CFI
        # handshake is made of (doorbell/verdict/completion traffic):
        # per-direction region memos plus a payload-size → cycles memo.
        # Stale region memos are harmless (regions are append-only).
        self._read_region = None
        self._write_region = None
        self._txn_memo: Dict[int, int] = {}

    def stats(self, master: str) -> BusStats:
        """Accounting for ``master`` (created on first use)."""
        if master not in self._stats:
            self._stats[master] = BusStats()
        return self._stats[master]

    def _txn_cycles(self, nbytes: int) -> int:
        cycles = self._txn_memo.get(nbytes)
        if cycles is None:
            cycles = self.timings.transaction_cycles(nbytes)
            self._txn_memo[nbytes] = cycles
        return cycles

    def _guard(self, master: str, address: int, nbytes: int, kind: str) -> None:
        if self.pmp is not None:
            self.pmp.check(master, address, nbytes, kind)

    def read(self, master: str, address: int, nbytes: int) -> Tuple[bytes, int]:
        """Read ``nbytes`` for ``master``; returns ``(data, cycles)``."""
        if nbytes <= 0:
            raise ConfigError("read size must be positive")
        self._guard(master, address, nbytes, "read")
        data = bytearray()
        per = self.timings.bytes_per_beat
        offset = 0
        while offset < nbytes:
            chunk = min(per, nbytes - offset)
            value = self.map.read(address + offset, chunk)
            data += value.to_bytes(chunk, "little")
            offset += chunk
        cycles = self.timings.transaction_cycles(nbytes)
        self.stats(master).record("read", nbytes, cycles)
        return bytes(data), cycles

    def read_int(self, master: str, address: int, nbytes: int) -> Tuple[int, int]:
        """Integer-read convenience wrapper (single-beat fast path)."""
        m = self.map
        if 0 < nbytes <= self.timings.bytes_per_beat and not m._observers:
            if self.pmp is not None:
                self.pmp.check(master, address, nbytes, "read")
            region = self._read_region
            if (region is None
                    or address < region.base or address + nbytes > region.end):
                region = m._region_checked(address, nbytes, "read")
                self._read_region = region
            value = region.device.read(address - region.base, nbytes)
            cycles = self._txn_memo.get(nbytes)
            if cycles is None:
                cycles = self._txn_cycles(nbytes)
            stats = self._stats.get(master)
            if stats is None:
                stats = self.stats(master)
            stats.reads += 1
            stats.read_bytes += nbytes
            stats.cycles += cycles
            return value, cycles
        data, cycles = self.read(master, address, nbytes)
        return int.from_bytes(data, "little"), cycles

    def write(self, master: str, address: int, data: bytes) -> int:
        """Write ``data`` for ``master``; returns cycles consumed."""
        if not data:
            raise ConfigError("write payload must be non-empty")
        self._guard(master, address, len(data), "write")
        per = self.timings.bytes_per_beat
        m = self.map
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + per]
            beat_address = address + offset
            nbytes = len(chunk)
            value = int.from_bytes(chunk, "little")
            region = self._write_region
            if (region is not None and not m._observers
                    and region.base <= beat_address
                    and beat_address + nbytes <= region.end):
                region.device.write(beat_address - region.base, nbytes, value)
                for hook in m._store_hooks:
                    hook(beat_address, nbytes)
            else:
                if not m._observers:
                    self._write_region = m._region_checked(
                        beat_address, nbytes, "write"
                    )
                m.write(beat_address, nbytes, value)
            offset += nbytes
        cycles = self._txn_cycles(len(data))
        self.stats(master).record("write", len(data), cycles)
        return cycles

    def write_int(self, master: str, address: int, nbytes: int, value: int) -> int:
        """Integer-write convenience wrapper (single-beat fast path)."""
        m = self.map
        if 0 < nbytes <= self.timings.bytes_per_beat and not m._observers:
            if self.pmp is not None:
                self.pmp.check(master, address, nbytes, "write")
            region = self._write_region
            if (region is None
                    or address < region.base or address + nbytes > region.end):
                region = m._region_checked(address, nbytes, "write")
                self._write_region = region
            region.device.write(
                address - region.base, nbytes, value & ((1 << (nbytes * 8)) - 1)
            )
            for hook in m._store_hooks:
                hook(address, nbytes)
            cycles = self._txn_memo.get(nbytes)
            if cycles is None:
                cycles = self._txn_cycles(nbytes)
            stats = self._stats.get(master)
            if stats is None:
                stats = self.stats(master)
            stats.writes += 1
            stats.written_bytes += nbytes
            stats.cycles += cycles
            return cycles
        return self.write(master, address, (value & ((1 << (nbytes * 8)) - 1)).to_bytes(nbytes, "little"))
