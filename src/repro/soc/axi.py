"""Transaction-level AXI4 crossbar model.

The host domain of the reference SoC uses a "high-bandwidth, low-latency
AXI4" crossbar (paper §III-A).  The model is transaction-accurate, not
signal-accurate: each read/write is routed to a mapped device and costs

    ``address_latency + beats * beat_latency``

cycles, where a beat carries ``data_width_bits`` of payload.  That is the
level of fidelity the paper's own trace-driven evaluation uses, and it
is what the CFI log-writer FSM needs: a 224-bit commit log split into
64-bit beats (paper §IV-B3) costs four data beats per mailbox write.

Masters are identified by name so that the :class:`repro.soc.pmp.IoPmp`
guard can police who may reach the CFI mailbox (paper §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import AccessFault, ConfigError
from repro.mem.map import MemoryMap
from repro.soc.pmp import IoPmp


@dataclass(frozen=True)
class AxiTimings:
    """Crossbar timing parameters (cycles).

    Attributes:
        address_latency: arbitration + address-phase cost per transaction.
        beat_latency: cycles per data beat.
        data_width_bits: payload bits carried per beat (the reference SoC
            uses a 64-bit data bus).
    """

    address_latency: int = 2
    beat_latency: int = 1
    data_width_bits: int = 64

    @property
    def bytes_per_beat(self) -> int:
        """Payload bytes per beat."""
        return self.data_width_bits // 8

    def beats_for(self, nbytes: int) -> int:
        """Number of beats needed for ``nbytes`` of payload."""
        per = self.bytes_per_beat
        return max(1, (nbytes + per - 1) // per)

    def transaction_cycles(self, nbytes: int) -> int:
        """Total cycles for one transaction moving ``nbytes``."""
        return self.address_latency + self.beats_for(nbytes) * self.beat_latency


@dataclass
class BusStats:
    """Per-master accounting kept by fabric components."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    written_bytes: int = 0
    cycles: int = 0

    def record(self, kind: str, nbytes: int, cycles: int) -> None:
        """Fold one transaction into the counters."""
        if kind == "read":
            self.reads += 1
            self.read_bytes += nbytes
        else:
            self.writes += 1
            self.written_bytes += nbytes
        self.cycles += cycles


class AxiXbar:
    """AXI4 crossbar routing named masters to a shared memory map.

    Args:
        memory_map: address decode shared by all masters.
        timings: crossbar timing parameters.
        pmp: optional IOPMP guard consulted before every access.
        name: diagnostic name.
    """

    def __init__(
        self,
        memory_map: MemoryMap,
        timings: Optional[AxiTimings] = None,
        pmp: Optional[IoPmp] = None,
        name: str = "axi-xbar",
    ):
        self.map = memory_map
        self.timings = timings or AxiTimings()
        self.pmp = pmp
        self.name = name
        self._stats: Dict[str, BusStats] = {}

    def stats(self, master: str) -> BusStats:
        """Accounting for ``master`` (created on first use)."""
        if master not in self._stats:
            self._stats[master] = BusStats()
        return self._stats[master]

    def _guard(self, master: str, address: int, nbytes: int, kind: str) -> None:
        if self.pmp is not None:
            self.pmp.check(master, address, nbytes, kind)

    def read(self, master: str, address: int, nbytes: int) -> Tuple[bytes, int]:
        """Read ``nbytes`` for ``master``; returns ``(data, cycles)``."""
        if nbytes <= 0:
            raise ConfigError("read size must be positive")
        self._guard(master, address, nbytes, "read")
        data = bytearray()
        per = self.timings.bytes_per_beat
        offset = 0
        while offset < nbytes:
            chunk = min(per, nbytes - offset)
            value = self.map.read(address + offset, chunk)
            data += value.to_bytes(chunk, "little")
            offset += chunk
        cycles = self.timings.transaction_cycles(nbytes)
        self.stats(master).record("read", nbytes, cycles)
        return bytes(data), cycles

    def read_int(self, master: str, address: int, nbytes: int) -> Tuple[int, int]:
        """Integer-read convenience wrapper."""
        data, cycles = self.read(master, address, nbytes)
        return int.from_bytes(data, "little"), cycles

    def write(self, master: str, address: int, data: bytes) -> int:
        """Write ``data`` for ``master``; returns cycles consumed."""
        if not data:
            raise ConfigError("write payload must be non-empty")
        self._guard(master, address, len(data), "write")
        per = self.timings.bytes_per_beat
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + per]
            self.map.write(address + offset, len(chunk), int.from_bytes(chunk, "little"))
            offset += len(chunk)
        cycles = self.timings.transaction_cycles(len(data))
        self.stats(master).record("write", len(data), cycles)
        return cycles

    def write_int(self, master: str, address: int, nbytes: int, value: int) -> int:
        """Integer-write convenience wrapper."""
        return self.write(master, address, (value & ((1 << (nbytes * 8)) - 1)).to_bytes(nbytes, "little"))
